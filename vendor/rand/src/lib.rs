//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so this tiny
//! path crate supplies exactly the surface the workspace uses: a seedable
//! [`rngs::StdRng`] plus the [`RngExt::random_range`] sampler over integer
//! and float ranges. Everything is deterministic from the seed, which is
//! what the workloads and property tests rely on; statistical quality is
//! SplitMix64-grade, which is plenty for test-case generation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// A source of pseudo-random 64-bit words.
pub trait RngCore {
    /// The next word in the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling on top of any [`RngCore`] (the subset of the real
/// crate's `Rng` extension trait this workspace uses).
pub trait RngExt: RngCore {
    /// A uniform sample from `range`. Panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                self.start.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64. Deterministic from
    /// its seed and good enough for test-case generation.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
