//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so this path crate provides
//! the slice of criterion the workspace's benches use: [`Criterion`],
//! benchmark groups, [`BenchmarkId`], `Bencher::iter`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! simple calibrated wall-clock loop printed as `name ... median time/iter`
//! — adequate for tracking relative pass cost, with none of criterion's
//! statistics machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Labels one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A label of the form `function/parameter`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    /// A label that is just the parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs one timed closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, first calibrating an iteration count so each sample
    /// takes a measurable slice of wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: grow the batch until one batch costs >= 1 ms.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                self.samples.push(elapsed / batch as u32);
                break;
            }
            batch *= 2;
        }
        // A few more samples at the calibrated batch size.
        for _ in 0..4 {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }

    fn median(&mut self) -> Duration {
        self.samples.sort();
        self.samples.get(self.samples.len() / 2).copied().unwrap_or_default()
    }
}

fn run_one(name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    println!("bench {name:<40} {:>12.3?}/iter", bencher.median());
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in's sample count is fixed
    /// by `Bencher::iter`'s calibration loop.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
