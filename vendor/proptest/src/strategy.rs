//! Value-generation strategies (no shrinking).

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                self.start.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

/// A uniform choice among boxed strategies of one value type (built by
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A strategy drawing uniformly from `options`. Panics if empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection;

    #[test]
    fn ranges_tuples_maps_and_vecs_compose() {
        let mut rng = TestRng::for_test("compose");
        let strat = collection::vec((0usize..5, 10u64..20), 3..6)
            .prop_map(|pairs| pairs.into_iter().map(|(a, b)| a as u64 + b).collect::<Vec<_>>());
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((3..6).contains(&v.len()));
            assert!(v.iter().all(|&x| (10..25).contains(&x)));
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        let strat = (0u64..1000, -5i64..5);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
