//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this path crate
//! implements the slice of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * range and tuple [`Strategy`] values, [`Strategy::prop_map`], and
//!   [`collection::vec`],
//! * [`test_runner::TestCaseError`] for fallible test bodies.
//!
//! Cases are generated deterministically (seeded from the test name), and
//! there is **no shrinking** — a failure reports the generated inputs via
//! `Debug`-free messages instead. That trade keeps the stand-in tiny while
//! preserving the tests' semantics and reproducibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections.

    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy producing `Vec`s of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property test needs in scope.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares deterministic property tests.
///
/// Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u64..100, y in 0usize..8) { prop_assert!(x as usize + y < 108); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    ::core::panic!(
                        "property '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
}

/// A uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec::Vec::new();
        $(options.push(::std::boxed::Box::new($strat));)+
        $crate::strategy::Union::new(options)
    }};
}

/// Fallible assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fallible equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} == {:?}: {}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Fallible inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {:?} != {:?}: {}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}
