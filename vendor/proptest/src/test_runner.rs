//! Test configuration, RNG, and failure type.

use std::error::Error;
use std::fmt;

/// How many cases each property runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed (or rejected) test case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property does not hold, with an explanation.
    Fail(String),
}

impl TestCaseError {
    /// A failure carrying `reason`.
    pub fn fail<S: Into<String>>(reason: S) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(reason) => write!(f, "{reason}"),
        }
    }
}

impl Error for TestCaseError {}

/// Deterministic per-test RNG (SplitMix64 seeded from the test name).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG whose stream is a pure function of `test_name`.
    pub fn for_test(test_name: &str) -> Self {
        // FNV-1a over the name gives a stable, collision-tolerant seed.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// The next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}
