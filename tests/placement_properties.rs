//! The placement re-platforming's safety rails, as property tests:
//!
//! * the topology- and traffic-aware placement driver never yields a higher
//!   assignment-level EPR cost (`CommMetrics::total_epr_cost`) than the
//!   identity block→node mapping — on linear, grid, and star topologies,
//!   across the whole workload suite and on random programs;
//! * on all-to-all machines, the `--placement oee` path (the driver with
//!   zero refinement rounds) is *bit-identical* to the historical pipeline
//!   — same assignment, same metrics, same schedule;
//! * compiles under a non-identity placement still lower to
//!   simulator-exact physical programs (placement relabels routes, never
//!   semantics).

use autocomm_repro::circuit::{unroll_circuit, Circuit, Partition};
use autocomm_repro::core::{
    lower_assigned_on, AutoComm, CommMetrics, CompileResult, PlacementConfig, PlacementReport,
};
use autocomm_repro::hardware::{HardwareSpec, NetworkTopology};
use autocomm_repro::partition::{oee_partition, InteractionGraph};
use autocomm_repro::sim::{Complex, SplitMix64, StateVector};
use autocomm_repro::workloads as wl;
use proptest::prelude::*;

fn sparse_topologies(nodes: usize) -> Vec<NetworkTopology> {
    vec![
        NetworkTopology::linear(nodes).unwrap(),
        NetworkTopology::grid(2, nodes / 2).unwrap(),
        NetworkTopology::star(nodes).unwrap(),
    ]
}

fn compile_both(
    circuit: &Circuit,
    partition: &Partition,
    hw: &HardwareSpec,
) -> (CompileResult, CompileResult, PlacementReport) {
    let identity = AutoComm::new().compile_on(circuit, partition, hw).unwrap();
    let (placed, report) = AutoComm::new()
        .compile_placed(circuit, partition, hw, &PlacementConfig::default())
        .unwrap();
    (identity, placed, report)
}

/// Deterministic suite-wide rail mirroring the acceptance criterion:
/// hop-weighted placement never yields a higher `total_epr_cost` than the
/// identity block→node mapping on linear/grid/star, for every workload.
#[test]
fn suite_topo_placement_never_loses_to_identity() {
    let nodes = 4;
    for config in wl::smoke_suite() {
        let circuit = wl::generate(&config);
        let unrolled = unroll_circuit(&circuit).unwrap();
        let partition = oee_partition(&InteractionGraph::from_circuit(&unrolled), nodes).unwrap();
        for topology in sparse_topologies(nodes) {
            let name = topology.name().to_owned();
            let hw = HardwareSpec::for_partition(&partition).with_topology(topology).unwrap();
            let (identity, placed, report) = compile_both(&circuit, &partition, &hw);
            assert!(
                placed.metrics.total_epr_cost <= identity.metrics.total_epr_cost,
                "{}/{name}: placed {} > identity {}",
                config.label(),
                placed.metrics.total_epr_cost,
                identity.metrics.total_epr_cost
            );
            assert_eq!(report.initial_epr_cost, identity.metrics.total_epr_cost);
            assert_eq!(report.final_epr_cost, placed.metrics.total_epr_cost);
            assert!(report.final_epr_cost <= report.initial_epr_cost);
            // The final map is a permutation of the machine's nodes.
            let mut seen: Vec<usize> = report.node_map.iter().map(|n| n.index()).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..nodes).collect::<Vec<_>>());
        }
    }
}

fn fidelity_of(
    physical: &autocomm_repro::protocols::PhysicalProgram,
    circuit: &Circuit,
    seed: u64,
) -> f64 {
    let mut rng = SplitMix64::new(seed);
    let input = StateVector::random_state(circuit.num_qubits(), &mut rng).unwrap();
    let mut expected = input.clone();
    expected.run(circuit, &mut rng.fork()).unwrap();

    let total = physical.circuit.num_qubits();
    let mut amps = vec![Complex::ZERO; 1 << total];
    amps[..input.amplitudes().len()].copy_from_slice(input.amplitudes());
    let mut state = StateVector::from_amplitudes(amps).unwrap();
    state.run(&physical.circuit, &mut rng).unwrap();
    state.subset_fidelity(&expected, &physical.logical_qubits()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random programs: the driver is monotone on every sparse topology.
    #[test]
    fn random_topo_placement_never_loses_to_identity(seed in 0u64..300) {
        let (c, p) = wl::random_distributed_circuit(8, 4, 50, seed);
        let c = unroll_circuit(&c).unwrap();
        for topology in sparse_topologies(4) {
            let name = topology.name().to_owned();
            let hw = HardwareSpec::for_partition(&p).with_topology(topology).unwrap();
            let (identity, placed, _) = compile_both(&c, &p, &hw);
            prop_assert!(
                placed.metrics.total_epr_cost <= identity.metrics.total_epr_cost,
                "seed {seed}/{name}: placed {} > identity {}",
                placed.metrics.total_epr_cost,
                identity.metrics.total_epr_cost
            );
        }
    }

    /// On all-to-all, the `--placement oee` path (zero refinement rounds)
    /// reproduces the historical pipeline bit for bit.
    #[test]
    fn all_to_all_oee_path_is_bit_identical(seed in 0u64..300) {
        let (c, p) = wl::random_distributed_circuit(6, 3, 40, seed);
        let c = unroll_circuit(&c).unwrap();
        let hw = HardwareSpec::for_partition(&p);
        let legacy = AutoComm::new().compile_on(&c, &p, &hw).unwrap();
        let (placed, report) = AutoComm::new()
            .compile_placed(&c, &p, &hw, &PlacementConfig { refine_iters: 0, force_full: false })
            .unwrap();
        prop_assert!(placed.placement.is_identity());
        prop_assert_eq!(report.iterations, 0);
        prop_assert_eq!(&placed.metrics, &legacy.metrics, "metrics must not change");
        prop_assert_eq!(&placed.schedule, &legacy.schedule, "schedule must be bit-identical");
        prop_assert_eq!(&placed.assigned, &legacy.assigned, "assignment must not change");
    }

    /// Placed compiles stay simulator-exact: lowering through the placed
    /// routes reproduces the logical state on a sparse machine.
    #[test]
    fn placed_lowering_is_simulator_exact(seed in 0u64..40) {
        let (c, p) = wl::random_distributed_circuit(6, 3, 24, seed + 5000);
        let c = unroll_circuit(&c).unwrap();
        let linear = NetworkTopology::linear(3).unwrap();
        let hw = HardwareSpec::for_partition(&p).with_topology(linear.clone()).unwrap();
        let (placed, _) = AutoComm::new()
            .compile_placed(&c, &p, &hw, &PlacementConfig::default())
            .unwrap();
        let physical = lower_assigned_on(&placed.assigned, &placed.placement, &linear).unwrap();
        let f = fidelity_of(&physical, &c, seed);
        prop_assert!((f - 1.0).abs() < 1e-8, "placed fidelity {f} at seed {seed}");
    }

    /// The measured traffic matrix in the metrics partitions the comm
    /// total and is placement-invariant at the logical-block level.
    #[test]
    fn pair_comms_partition_the_comm_total(seed in 0u64..200) {
        let (c, p) = wl::random_distributed_circuit(8, 4, 60, seed);
        let c = unroll_circuit(&c).unwrap();
        let hw = HardwareSpec::for_partition(&p);
        let r = AutoComm::new().compile_on(&c, &p, &hw).unwrap();
        let m: &CommMetrics = &r.metrics;
        let total: usize = m.pair_comms.iter().map(|&(_, _, comms)| comms).sum();
        prop_assert_eq!(total, m.total_comms);
        for &(a, b, comms) in &m.pair_comms {
            prop_assert!(a < b, "pairs are unordered with a < b");
            prop_assert!(comms > 0, "only communicating pairs are recorded");
        }
    }
}
