//! Property tests for the circuit content hash — the identity half of the
//! compile service's cache key. The cache is sound only if the hash is
//! (a) stable across parse → emit → re-parse, (b) sensitive to every
//! semantic gate edit, and (c) independent of gate-table interning order.

use autocomm_repro::circuit::{
    circuit_content_hash, from_qasm, stream_content_hash, to_qasm, Circuit, Gate, GateId, GateKind,
    GateTable, QubitId,
};
use autocomm_repro::workloads::random_circuit;
use proptest::prelude::*;

/// Rebuilds `circuit` with the gate at `at` replaced by `replacement`.
fn with_gate_replaced(circuit: &Circuit, at: usize, replacement: Gate) -> Circuit {
    let mut out = Circuit::with_cbits(circuit.num_qubits(), circuit.num_cbits());
    for (i, g) in circuit.gates().iter().enumerate() {
        let g = if i == at { replacement.clone() } else { g.clone() };
        out.push(g).unwrap();
    }
    out
}

/// A minimal semantic edit of `gate`: nudge a parameter if it has one,
/// otherwise move an operand, otherwise swap the kind.
fn mutated(gate: &Gate, num_qubits: usize) -> Gate {
    if !gate.params().is_empty() {
        let mut params = gate.params().to_vec();
        params[0] += 0.5;
        return Gate::try_new(gate.kind(), gate.qubits().to_vec(), params).unwrap();
    }
    if gate.qubits().len() == 1 {
        let q = (gate.qubits()[0].index() + 1) % num_qubits;
        return Gate::try_new(gate.kind(), vec![QubitId::new(q)], Vec::new()).unwrap();
    }
    let kind = if gate.kind() == GateKind::Cx { GateKind::Cz } else { GateKind::Cx };
    Gate::try_new(kind, gate.qubits().to_vec(), Vec::new()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The hash survives an OpenQASM round trip: the text format carries
    /// exactly the hashed fields and `f64` display round-trips bit-exactly.
    #[test]
    fn hash_is_stable_across_reparse(
        seed in 0u64..10_000,
        qubits in 2usize..8,
        gates in 0usize..60,
    ) {
        let c = random_circuit(qubits, gates, seed);
        let reparsed = from_qasm(&to_qasm(&c)).unwrap();
        prop_assert_eq!(circuit_content_hash(&c), circuit_content_hash(&reparsed));
        // And a second round trip still agrees (emission is canonical).
        let again = from_qasm(&to_qasm(&reparsed)).unwrap();
        prop_assert_eq!(circuit_content_hash(&c), circuit_content_hash(&again));
    }

    /// Editing any single gate — kind, operand, or parameter — changes
    /// the hash.
    #[test]
    fn hash_detects_single_gate_edits(
        seed in 0u64..10_000,
        qubits in 2usize..8,
        gates in 1usize..60,
        pick in 0usize..60,
    ) {
        let c = random_circuit(qubits, gates, seed);
        if c.is_empty() {
            return Ok(());
        }
        let at = pick % c.len();
        let replacement = mutated(&c.gates()[at], c.num_qubits());
        if replacement == c.gates()[at] {
            return Ok(());
        }
        let edited = with_gate_replaced(&c, at, replacement);
        prop_assert_ne!(circuit_content_hash(&c), circuit_content_hash(&edited));
    }

    /// Deleting or duplicating a gate changes the hash.
    #[test]
    fn hash_detects_length_edits(seed in 0u64..10_000, qubits in 2usize..6) {
        let c = random_circuit(qubits, 20, seed);
        if c.is_empty() {
            return Ok(());
        }
        let base = circuit_content_hash(&c);
        let mut shorter = Circuit::with_cbits(c.num_qubits(), c.num_cbits());
        for g in &c.gates()[..c.len() - 1] {
            shorter.push(g.clone()).unwrap();
        }
        prop_assert_ne!(base, circuit_content_hash(&shorter));
        let mut longer = c.clone();
        longer.push(c.gates()[0].clone()).unwrap();
        prop_assert_ne!(base, circuit_content_hash(&longer));
    }

    /// The stream hash equals the circuit hash and is invariant under the
    /// order in which the table interned the gates.
    #[test]
    fn stream_hash_is_interning_order_independent(
        seed in 0u64..10_000,
        warm_seed in 0u64..10_000,
        qubits in 2usize..8,
        gates in 1usize..60,
    ) {
        let c = random_circuit(qubits, gates, seed);
        let expected = circuit_content_hash(&c);

        let mut cold = GateTable::new();
        let cold_stream: Vec<GateId> = c.gates().iter().map(|g| cold.intern(g)).collect();
        prop_assert_eq!(
            stream_content_hash(&cold, &cold_stream, c.num_qubits(), c.num_cbits()),
            expected
        );

        // Warm a second table with unrelated traffic plus the program's own
        // gates in reverse, scrambling every interned id.
        let mut warm = GateTable::new();
        for g in random_circuit(qubits, 15, warm_seed).gates() {
            warm.intern(g);
        }
        for g in c.gates().iter().rev() {
            warm.intern(g);
        }
        let warm_stream: Vec<GateId> = c.gates().iter().map(|g| warm.intern(g)).collect();
        prop_assert_eq!(
            stream_content_hash(&warm, &warm_stream, c.num_qubits(), c.num_cbits()),
            expected
        );
    }
}
