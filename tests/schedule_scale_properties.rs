//! Schedule-stage scaling safety rails, as property tests:
//!
//! * the **parallel dual-rail** evaluation (base and buffered walks on two
//!   scoped threads) returns a summary bit-identical to the sequential
//!   reference ([`ScheduleOptions::sequential_rails`]) — on every suite
//!   workload across all five standard topologies under every
//!   [`BufferPolicy`], and on a program large enough to actually cross the
//!   fork threshold;
//! * the **indexed timeline** (earliest-free slot/channel indexes) emits
//!   the same event log as the historical linear-scan lookups
//!   ([`ScheduleOptions::linear_scan_timeline`]) under `record_events` —
//!   the indexes must preserve the lowest-index tie-breaks exactly, not
//!   just the makespan;
//! * **schedule reuse** in the placement driver (skipping the final
//!   full recompile when the held artifacts are identical) stays
//!   bit-identical to the historical full driver
//!   ([`PlacementConfig::force_full`]) under buffered policies too.

use autocomm_repro::circuit::Partition;
use autocomm_repro::core::{
    schedule, AutoComm, AutoCommOptions, BufferPolicy, PlacementConfig, ScheduleOptions,
};
use autocomm_repro::hardware::{HardwareSpec, NetworkTopology};
use autocomm_repro::workloads as wl;

fn topologies(nodes: usize) -> Vec<NetworkTopology> {
    vec![
        NetworkTopology::all_to_all(nodes),
        NetworkTopology::linear(nodes).unwrap(),
        NetworkTopology::grid(2, nodes / 2).unwrap(),
        NetworkTopology::star(nodes).unwrap(),
        NetworkTopology::ring(nodes).unwrap(),
    ]
}

fn policies() -> [BufferPolicy; 4] {
    [
        BufferPolicy::OnDemand,
        BufferPolicy::Prefetch { depth: 1 },
        BufferPolicy::Prefetch { depth: 4 },
        BufferPolicy::Greedy,
    ]
}

/// Schedules one compiled program under `base` with the given overrides
/// and compares the full summaries (including recorded event logs).
fn assert_schedule_modes_match(
    circuit: &autocomm_repro::circuit::Circuit,
    hw: &HardwareSpec,
    partition: &Partition,
    reference: ScheduleOptions,
    candidate: ScheduleOptions,
    what: &str,
) {
    let compiled = AutoComm::new().compile_on(circuit, partition, hw).unwrap();
    let expected = schedule(&compiled.assigned, &compiled.placement, hw, reference);
    let actual = schedule(&compiled.assigned, &compiled.placement, hw, candidate);
    assert_eq!(
        expected,
        actual,
        "{what} drifted on {} under {}",
        hw.topology().name(),
        reference.buffer.name()
    );
}

#[test]
fn suite_parallel_dual_rail_matches_sequential() {
    let nodes = 4;
    for config in wl::smoke_suite() {
        let circuit = wl::generate(&config);
        let partition = Partition::block(circuit.num_qubits(), nodes).unwrap();
        for topology in topologies(nodes) {
            let hw = HardwareSpec::for_partition(&partition).with_topology(topology).unwrap();
            for policy in policies() {
                let parallel = ScheduleOptions {
                    record_events: true,
                    ..ScheduleOptions::default().with_buffer(policy)
                };
                let sequential = ScheduleOptions { sequential_rails: true, ..parallel };
                assert_schedule_modes_match(
                    &circuit,
                    &hw,
                    &partition,
                    sequential,
                    parallel,
                    "parallel dual-rail",
                );
            }
        }
    }
}

/// Suite programs sit under the fork threshold; this one actually spawns
/// the base rail on a second thread.
#[test]
fn large_program_parallel_dual_rail_matches_sequential() {
    let nodes = 4;
    let (circuit, partition) = wl::random_distributed_circuit(16, nodes, 10_000, 11);
    let hw = HardwareSpec::for_partition(&partition)
        .with_topology(NetworkTopology::ring(nodes).unwrap())
        .unwrap();
    for policy in policies() {
        let parallel = ScheduleOptions::default().with_buffer(policy);
        let sequential = ScheduleOptions { sequential_rails: true, ..parallel };
        assert_schedule_modes_match(
            &circuit,
            &hw,
            &partition,
            sequential,
            parallel,
            "parallel dual-rail (threaded)",
        );
    }
}

#[test]
fn suite_indexed_timeline_event_log_matches_linear_scan_reference() {
    let nodes = 4;
    for config in wl::smoke_suite() {
        let circuit = wl::generate(&config);
        let partition = Partition::block(circuit.num_qubits(), nodes).unwrap();
        for topology in topologies(nodes) {
            let hw = HardwareSpec::for_partition(&partition).with_topology(topology).unwrap();
            for policy in policies() {
                let indexed = ScheduleOptions {
                    record_events: true,
                    ..ScheduleOptions::default().with_buffer(policy)
                };
                let linear = ScheduleOptions { linear_scan_timeline: true, ..indexed };
                assert_schedule_modes_match(
                    &circuit,
                    &hw,
                    &partition,
                    linear,
                    indexed,
                    "indexed timeline",
                );
            }
        }
    }
}

/// Schedule reuse in `compile_placed` under buffered policies: the reused
/// final schedule must equal what the historical full driver produces.
#[test]
fn buffered_schedule_reuse_matches_force_full() {
    let nodes = 4;
    let circuit = wl::qft(12);
    let partition = Partition::block(12, nodes).unwrap();
    for topology in topologies(nodes) {
        let hw = HardwareSpec::for_partition(&partition).with_topology(topology.clone()).unwrap();
        for policy in [BufferPolicy::OnDemand, BufferPolicy::Prefetch { depth: 4 }] {
            let compiler = AutoComm::with_options(AutoCommOptions::default().with_buffer(policy));
            let (reused, reused_report) = compiler
                .compile_placed(&circuit, &partition, &hw, &PlacementConfig::default())
                .unwrap();
            let (full, full_report) = compiler
                .compile_placed(
                    &circuit,
                    &partition,
                    &hw,
                    &PlacementConfig { force_full: true, ..Default::default() },
                )
                .unwrap();
            let context = format!("{} under {}", topology.name(), policy.name());
            assert_eq!(reused_report, full_report, "report differs on {context}");
            assert_eq!(reused.metrics, full.metrics, "metrics differ on {context}");
            assert_eq!(reused.schedule, full.schedule, "schedule differs on {context}");
            assert_eq!(reused.passes.len(), full.passes.len(), "pass list differs on {context}");
        }
    }
}
