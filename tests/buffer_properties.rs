//! The EPR-buffering re-platform's safety rails, as property tests:
//!
//! * `Prefetch` never yields a longer makespan than `OnDemand` — on every
//!   suite workload across all five standard topologies, and on random
//!   programs (the strict-improvement rail makes this structural; the
//!   tests also confirm the rail engages rather than masking a broken
//!   engine by checking EPR accounting stays identical);
//! * `OnDemand` is *bit-identical* to the pre-buffering (PR 4 / 2c9ead1)
//!   pipeline: the summary's deterministic fields are locked against
//!   golden values recorded from that binary, and the explicit policy
//!   equals the default-options compile field for field;
//! * buffered compiles still lower to simulator-exact physical programs
//!   (buffering changes *when* pairs are generated, never the Cat/TP
//!   protocol sequences they lower to).

use autocomm_repro::circuit::{unroll_circuit, Circuit, Partition};
use autocomm_repro::core::{
    lower_assigned_on, AutoComm, AutoCommOptions, BufferPolicy, CompileResult,
};
use autocomm_repro::hardware::{validate_events, HardwareSpec, NetworkTopology};
use autocomm_repro::sim::{Complex, SplitMix64, StateVector};
use autocomm_repro::workloads as wl;
use proptest::prelude::*;

fn topologies(nodes: usize) -> Vec<NetworkTopology> {
    vec![
        NetworkTopology::all_to_all(nodes),
        NetworkTopology::linear(nodes).unwrap(),
        NetworkTopology::grid(2, nodes / 2).unwrap(),
        NetworkTopology::star(nodes).unwrap(),
        NetworkTopology::ring(nodes).unwrap(),
    ]
}

fn compile_with(
    circuit: &Circuit,
    partition: &Partition,
    hw: &HardwareSpec,
    policy: BufferPolicy,
) -> CompileResult {
    AutoComm::with_options(AutoCommOptions::default().with_buffer(policy))
        .compile_on(circuit, partition, hw)
        .unwrap()
}

/// Deterministic suite-wide rail mirroring the acceptance criterion:
/// `prefetch:N` never loses to `on-demand` on any workload × topology, and
/// never changes the physical EPR/swap accounting.
#[test]
fn suite_prefetch_never_loses_to_on_demand() {
    let nodes = 4;
    for config in wl::smoke_suite() {
        let circuit = wl::generate(&config);
        let partition = Partition::block(circuit.num_qubits(), nodes).unwrap();
        for topology in topologies(nodes) {
            let name = topology.name().to_owned();
            let hw = HardwareSpec::for_partition(&partition).with_topology(topology).unwrap();
            let base = compile_with(&circuit, &partition, &hw, BufferPolicy::OnDemand);
            for policy in [
                BufferPolicy::Prefetch { depth: 1 },
                BufferPolicy::Prefetch { depth: 4 },
                BufferPolicy::Greedy,
            ] {
                let buffered = compile_with(&circuit, &partition, &hw, policy);
                assert!(
                    buffered.schedule.makespan <= base.schedule.makespan + 1e-9,
                    "{}/{name}: {policy:?} {} > on-demand {}",
                    config.label(),
                    buffered.schedule.makespan,
                    base.schedule.makespan
                );
                assert_eq!(buffered.schedule.epr_pairs, base.schedule.epr_pairs);
                assert_eq!(buffered.schedule.swaps, base.schedule.swaps);
                assert_eq!(buffered.schedule.link_traffic, base.schedule.link_traffic);
                assert_eq!(buffered.metrics, base.metrics, "buffering is schedule-only");
                let b = &buffered.schedule.buffering;
                assert_eq!(b.requests, b.prefetch_hits + b.prefetch_misses);
            }
        }
    }
}

/// The acceptance win itself, locked as a test: under the default finite
/// comm-qubit budget, `prefetch:4` strictly reduces the suite-summed
/// makespan on linear, grid, and star.
#[test]
fn suite_prefetch_strictly_wins_on_sparse_topologies() {
    let nodes = 4;
    for topology in [
        NetworkTopology::linear(nodes).unwrap(),
        NetworkTopology::grid(2, 2).unwrap(),
        NetworkTopology::star(nodes).unwrap(),
    ] {
        let name = topology.name().to_owned();
        let mut base_total = 0.0;
        let mut prefetch_total = 0.0;
        for config in wl::smoke_suite() {
            let circuit = wl::generate(&config);
            let partition = Partition::block(circuit.num_qubits(), nodes).unwrap();
            let hw =
                HardwareSpec::for_partition(&partition).with_topology(topology.clone()).unwrap();
            base_total +=
                compile_with(&circuit, &partition, &hw, BufferPolicy::OnDemand).schedule.makespan;
            prefetch_total +=
                compile_with(&circuit, &partition, &hw, BufferPolicy::Prefetch { depth: 4 })
                    .schedule
                    .makespan;
        }
        assert!(
            prefetch_total + 1e-6 < base_total,
            "{name}: prefetch must strictly beat on-demand suite-wide: {prefetch_total} vs \
             {base_total}"
        );
    }
}

/// `OnDemand` reproduces the pre-buffering (2c9ead1) pipeline bit for bit:
/// suite-summed makespans and EPR pairs recorded from that binary, per
/// topology (nodes=4, OEE partition — the CLI suite batch configuration).
#[test]
fn suite_on_demand_matches_recorded_pre_buffering_goldens() {
    // (topology, suite-summed makespan, suite-summed scheduled EPR pairs)
    // recorded from the 2c9ead1 binary:
    // `autocomm batch --suite --nodes 4 --topology <t> --json`.
    let goldens: [(&str, f64, usize); 5] = [
        ("all-to-all", 6377.299999999987, 438),
        ("linear", 7614.2999999999965, 637),
        ("grid:2x2", 7409.300000000018, 523),
        ("star", 9012.40000000006, 603),
        ("ring", 7766.899999999999, 585),
    ];
    for (spec, want_makespan, want_epr) in goldens {
        let topology = NetworkTopology::parse_spec(spec, 4).unwrap();
        let mut makespan = 0.0;
        let mut epr = 0usize;
        for config in wl::smoke_suite() {
            let circuit = wl::generate(&config);
            let unrolled = unroll_circuit(&circuit).unwrap();
            let partition = autocomm_repro::partition::oee_partition(
                &autocomm_repro::partition::InteractionGraph::from_circuit(&unrolled),
                4,
            )
            .unwrap();
            let hw =
                HardwareSpec::for_partition(&partition).with_topology(topology.clone()).unwrap();
            let r = compile_with(&circuit, &partition, &hw, BufferPolicy::OnDemand);
            makespan += r.schedule.makespan;
            epr += r.schedule.epr_pairs;
        }
        assert!(
            (makespan - want_makespan).abs() < 1e-6,
            "{spec}: on-demand drifted from the 2c9ead1 golden: {makespan} vs {want_makespan}"
        );
        assert_eq!(epr, want_epr, "{spec}: EPR count drifted from the 2c9ead1 golden");
    }
}

/// Explicit `OnDemand` equals the default-options compile field for field
/// (the policy is the default, not a parallel code path).
#[test]
fn explicit_on_demand_equals_the_default_pipeline() {
    let c = wl::qft(12);
    let p = Partition::block(12, 4).unwrap();
    let hw =
        HardwareSpec::for_partition(&p).with_topology(NetworkTopology::linear(4).unwrap()).unwrap();
    let default = AutoComm::new().compile_on(&c, &p, &hw).unwrap();
    let explicit = compile_with(&c, &p, &hw, BufferPolicy::OnDemand);
    assert_eq!(default.schedule, explicit.schedule);
    assert_eq!(default.metrics, explicit.metrics);
    assert_eq!(default.assigned, explicit.assigned);
}

fn fidelity_of(
    physical: &autocomm_repro::protocols::PhysicalProgram,
    circuit: &Circuit,
    seed: u64,
) -> f64 {
    let mut rng = SplitMix64::new(seed);
    let input = StateVector::random_state(circuit.num_qubits(), &mut rng).unwrap();
    let mut expected = input.clone();
    expected.run(circuit, &mut rng.fork()).unwrap();

    let total = physical.circuit.num_qubits();
    let mut amps = vec![Complex::ZERO; 1 << total];
    amps[..input.amplitudes().len()].copy_from_slice(input.amplitudes());
    let mut state = StateVector::from_amplitudes(amps).unwrap();
    state.run(&physical.circuit, &mut rng).unwrap();
    state.subset_fidelity(&expected, &physical.logical_qubits()).unwrap()
}

/// Buffered compiles lower to simulator-exact physical programs on sparse
/// machines: buffering never touches the Cat/TP protocol sequences.
#[test]
fn buffered_compiles_lower_simulator_exact() {
    let mut c = Circuit::new(6);
    let q = autocomm_repro::circuit::QubitId::new;
    c.push(autocomm_repro::circuit::Gate::h(q(0))).unwrap();
    c.push(autocomm_repro::circuit::Gate::cx(q(0), q(2))).unwrap();
    c.push(autocomm_repro::circuit::Gate::cx(q(0), q(4))).unwrap();
    c.push(autocomm_repro::circuit::Gate::cx(q(2), q(0))).unwrap();
    c.push(autocomm_repro::circuit::Gate::cx(q(4), q(5))).unwrap();
    let p = Partition::block(6, 3).unwrap();
    let hw =
        HardwareSpec::for_partition(&p).with_topology(NetworkTopology::linear(3).unwrap()).unwrap();
    let unrolled = unroll_circuit(&c).unwrap();
    for policy in [BufferPolicy::Prefetch { depth: 4 }, BufferPolicy::Greedy] {
        let r = compile_with(&c, &p, &hw, policy);
        let physical = lower_assigned_on(&r.assigned, &r.placement, hw.topology()).unwrap();
        assert_eq!(physical.epr_pairs, r.schedule.epr_pairs, "{policy:?}: accounting agrees");
        for seed in [3u64, 17] {
            let f = fidelity_of(&physical, &unrolled, seed);
            assert!(f > 1.0 - 1e-9, "{policy:?}: lowered fidelity {f}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random programs: buffered schedules stay resource-valid (the
    /// independent event replay finds no double-booked qubit or slot) and
    /// never lose to on-demand.
    #[test]
    fn random_buffered_schedules_validate_and_never_lose(seed in 0u64..300) {
        use autocomm_repro::core::{
            aggregate, assign, schedule, AggregateOptions, Placement, ScheduleOptions,
        };
        let (circuit, partition) = wl::random_distributed_circuit(8, 4, 50, seed);
        let circuit = unroll_circuit(&circuit).unwrap();
        let program = assign(&aggregate(&circuit, &partition, AggregateOptions::default()));
        for topology in topologies(4) {
            let hw = HardwareSpec::for_partition(&partition).with_topology(topology).unwrap();
            let placement = Placement::identity(&partition);
            let base = schedule(
                &program,
                &placement,
                &hw,
                ScheduleOptions { record_events: true, ..ScheduleOptions::default() },
            );
            let buffered = schedule(
                &program,
                &placement,
                &hw,
                ScheduleOptions { record_events: true, ..ScheduleOptions::default() }
                    .with_buffer(BufferPolicy::Prefetch { depth: 4 }),
            );
            validate_events(buffered.events.as_ref().unwrap(), &hw).map_err(|e| {
                TestCaseError::fail(format!("seed {seed}/{}: {e}", hw.topology().name()))
            })?;
            prop_assert!(
                buffered.makespan <= base.makespan + 1e-9,
                "seed {seed}/{}: buffered {} > on-demand {}",
                hw.topology().name(),
                buffered.makespan,
                base.makespan
            );
            prop_assert_eq!(buffered.epr_pairs, base.epr_pairs);
        }
    }
}
