//! Placement-stage scaling safety rails, as property tests:
//!
//! * the **CSR sparse interaction graph** agrees pairwise with a dense
//!   brute-force weight matrix built straight from the gate list — weights,
//!   degrees, and cut weights — on the suite and on random programs;
//! * the **gain-cached exchange loop** (positive-candidate set + delta
//!   updates) returns the same partition and exchange count as the
//!   historical full-rescan reference ([`OeeOptions::full_rescan`]) — on
//!   every suite workload across all five standard topologies and a range
//!   of refinement budgets;
//! * the **parallel cold scan** merges to the same result as the sequential
//!   rail ([`OeeOptions::sequential_scan`]) on a register large enough to
//!   actually cross the parallel fan-out threshold;
//! * the **warm-started placement driver** (OEE cache carried across
//!   rounds, unchanged-traffic round skipping) matches the historical
//!   `force_full` driver report-for-report and metric-for-metric;
//! * both `max_exchanges` safety valves (OEE refinement and block
//!   placement) report saturation when they clip the loop and stay silent
//!   when they don't.

use autocomm_repro::circuit::{unroll_circuit, Circuit, NodeId, Partition, QubitId};
use autocomm_repro::core::{AutoComm, PlacementConfig};
use autocomm_repro::hardware::{HardwareSpec, NetworkTopology};
use autocomm_repro::partition::{
    oee_refine_on_stats, place_blocks_stats, InteractionGraph, OeeOptions, PlaceOptions,
    UniformDistance,
};
use autocomm_repro::workloads as wl;
use proptest::prelude::*;

fn topologies(nodes: usize) -> Vec<NetworkTopology> {
    vec![
        NetworkTopology::all_to_all(nodes),
        NetworkTopology::linear(nodes).unwrap(),
        NetworkTopology::grid(2, nodes / 2).unwrap(),
        NetworkTopology::star(nodes).unwrap(),
        NetworkTopology::ring(nodes).unwrap(),
    ]
}

/// Dense brute-force weight matrix: every two-qubit gate adds one unit of
/// weight to its unordered pair — the reference the CSR graph must match.
fn dense_weights(circuit: &Circuit) -> Vec<Vec<u64>> {
    let n = circuit.num_qubits();
    let mut w = vec![vec![0u64; n]; n];
    for gate in circuit.gates() {
        let qs = gate.qubits();
        if qs.len() == 2 {
            let (a, b) = (qs[0].index(), qs[1].index());
            w[a][b] += 1;
            w[b][a] += 1;
        }
    }
    w
}

fn assert_graph_matches_dense(circuit: &Circuit, what: &str) {
    let graph = InteractionGraph::from_circuit(circuit);
    let dense = dense_weights(circuit);
    let n = circuit.num_qubits();
    for (a, row) in dense.iter().enumerate() {
        let mut degree = 0;
        for (b, &w) in row.iter().enumerate() {
            assert_eq!(
                graph.weight(QubitId::new(a), QubitId::new(b)),
                w,
                "{what}: weight({a}, {b}) drifted from the dense reference"
            );
            degree += usize::from(w > 0);
        }
        assert_eq!(graph.degree(QubitId::new(a)), degree, "{what}: degree({a}) drifted");
        let from_neighbors: u64 = graph.neighbors(QubitId::new(a)).map(|(_, w)| w).sum();
        assert_eq!(from_neighbors, row.iter().sum::<u64>(), "{what}: row sum drifted");
    }
    // Cut weight against the dense definition, on a nontrivial partition.
    if n >= 2 && n.is_multiple_of(2) {
        let p = Partition::round_robin(n, 2).unwrap();
        let mut cut = 0u64;
        for (a, row) in dense.iter().enumerate() {
            for (b, &w) in row.iter().enumerate().skip(a + 1) {
                if p.node_of(QubitId::new(a)) != p.node_of(QubitId::new(b)) {
                    cut += w;
                }
            }
        }
        assert_eq!(graph.cut_weight(&p), cut, "{what}: cut weight drifted");
    }
}

#[test]
fn suite_sparse_graph_matches_dense_reference() {
    for config in wl::smoke_suite() {
        let circuit = unroll_circuit(&wl::generate(&config)).unwrap();
        assert_graph_matches_dense(&circuit, config.label().as_str());
    }
}

/// Refines one graph under `reference` and `candidate` and asserts the
/// partitions and applied exchange counts are identical.
fn assert_refine_modes_match(
    graph: &InteractionGraph,
    initial: &Partition,
    dist: &NetworkTopology,
    reference: OeeOptions,
    candidate: OeeOptions,
    what: &str,
) {
    let nodes = initial.num_nodes();
    let node_map: Vec<NodeId> = (0..nodes).map(NodeId::new).collect();
    let (expected, expected_stats) =
        oee_refine_on_stats(graph, initial.clone(), &node_map, dist, reference);
    let (actual, actual_stats) =
        oee_refine_on_stats(graph, initial.clone(), &node_map, dist, candidate);
    assert_eq!(expected, actual, "{what} drifted on {}", dist.name());
    assert_eq!(
        expected_stats.exchanges,
        actual_stats.exchanges,
        "{what} applied a different exchange count on {}",
        dist.name()
    );
    assert_eq!(
        expected_stats.saturated,
        actual_stats.saturated,
        "{what} saturation flag drifted on {}",
        dist.name()
    );
}

#[test]
fn suite_gain_cached_matches_full_rescan_on_every_topology() {
    let nodes = 4;
    for config in wl::smoke_suite() {
        let circuit = unroll_circuit(&wl::generate(&config)).unwrap();
        let graph = InteractionGraph::from_circuit(&circuit);
        let initial = Partition::round_robin(circuit.num_qubits(), nodes).unwrap();
        for topology in topologies(nodes) {
            // Unbounded and clipped budgets: the cached loop must pick the
            // same exchange as the rescan at every step, not just converge
            // to the same fixed point.
            for max_exchanges in [usize::MAX, 3, 1, 0] {
                let cached = OeeOptions { max_exchanges, ..OeeOptions::default() };
                let rescan = OeeOptions { full_rescan: true, ..cached };
                assert_refine_modes_match(
                    &graph,
                    &initial,
                    &topology,
                    rescan,
                    cached,
                    &format!("{} (cap {max_exchanges})", config.label()),
                );
            }
        }
    }
}

/// A register above `PAR_THRESHOLD` rows, so the cold scan actually fans
/// out. The exchange budget is clipped to keep the debug-build runtime
/// bounded — the scan itself is the property under test.
#[test]
fn large_register_parallel_scan_matches_sequential() {
    let nodes = 8;
    let qubits = 4096;
    let circuit = unroll_circuit(&wl::large_sparse_circuit(qubits, qubits * 2, 0xA11CE)).unwrap();
    let graph = InteractionGraph::from_circuit(&circuit);
    let initial = Partition::block(qubits, nodes).unwrap();
    let topology = NetworkTopology::ring(nodes).unwrap();
    for max_exchanges in [0usize, 2] {
        let parallel = OeeOptions { max_exchanges, ..OeeOptions::default() };
        let sequential = OeeOptions { sequential_scan: true, ..parallel };
        assert_refine_modes_match(
            &graph,
            &initial,
            &topology,
            sequential,
            parallel,
            &format!("4096-qubit parallel scan (cap {max_exchanges})"),
        );
    }
}

/// The warm-started incremental driver against the historical full driver:
/// identical reports (iterations, node map, costs, work counters compare
/// outside the report's own equality, which excludes work) and metrics.
#[test]
fn warm_driver_matches_force_full_on_every_topology() {
    let nodes = 4;
    for config in wl::smoke_suite() {
        let circuit = wl::generate(&config);
        let unrolled = unroll_circuit(&circuit).unwrap();
        let graph = InteractionGraph::from_circuit(&unrolled);
        let partition = autocomm_repro::partition::oee_partition(&graph, nodes).unwrap();
        for topology in topologies(nodes) {
            let hw =
                HardwareSpec::for_partition(&partition).with_topology(topology.clone()).unwrap();
            let (warm, warm_report) = AutoComm::new()
                .compile_placed(&circuit, &partition, &hw, &PlacementConfig::default())
                .unwrap();
            let (full, full_report) = AutoComm::new()
                .compile_placed(
                    &circuit,
                    &partition,
                    &hw,
                    &PlacementConfig { force_full: true, ..Default::default() },
                )
                .unwrap();
            let context = format!("{}/{}", config.label(), topology.name());
            assert_eq!(warm_report, full_report, "report differs on {context}");
            assert_eq!(warm.metrics, full.metrics, "metrics differ on {context}");
            assert_eq!(warm.schedule, full.schedule, "schedule differs on {context}");
        }
    }
}

#[test]
fn oee_saturation_valve_reports_and_clears() {
    // qft(8) over 2 nodes from round-robin has improving exchanges; a zero
    // budget must trip the valve, an ample budget must not.
    let circuit = unroll_circuit(&wl::qft(8)).unwrap();
    let graph = InteractionGraph::from_circuit(&circuit);
    let initial = Partition::round_robin(8, 2).unwrap();
    let node_map: Vec<NodeId> = (0..2).map(NodeId::new).collect();
    let clipped = OeeOptions { max_exchanges: 0, ..OeeOptions::default() };
    let (clipped_p, clipped_stats) =
        oee_refine_on_stats(&graph, initial.clone(), &node_map, &UniformDistance, clipped);
    assert!(clipped_stats.saturated, "zero budget with improving exchanges must saturate");
    assert_eq!(clipped_p, initial, "zero budget must leave the partition untouched");
    let (_, free_stats) =
        oee_refine_on_stats(&graph, initial, &node_map, &UniformDistance, OeeOptions::default());
    assert!(!free_stats.saturated, "a converged run must not report saturation");
    assert!(free_stats.exchanges > 0, "round-robin qft(8) should improve");
}

#[test]
fn place_saturation_valve_reports_and_clears() {
    // Heavy traffic between blocks 0-3 and 1-2 on a chain: the identity
    // map is improvable, so a zero budget must saturate.
    let mut traffic = vec![vec![0u64; 4]; 4];
    traffic[0][3] = 50;
    traffic[3][0] = 50;
    traffic[1][2] = 30;
    traffic[2][1] = 30;
    let chain = NetworkTopology::linear(4).unwrap();
    let (_, clipped) = place_blocks_stats(&traffic, 4, &chain, PlaceOptions { max_exchanges: 0 });
    assert!(clipped.saturated, "zero budget with an improving swap must saturate");
    let (_, free) = place_blocks_stats(&traffic, 4, &chain, PlaceOptions::default());
    assert!(!free.saturated, "a converged placement must not report saturation");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random programs: CSR graph == dense reference.
    #[test]
    fn random_sparse_graph_matches_dense_reference(seed in 0u64..300) {
        let circuit = unroll_circuit(&wl::random_circuit(10, 80, seed)).unwrap();
        assert_graph_matches_dense(&circuit, &format!("seed {seed}"));
    }

    /// Random power-law programs: gain-cached == full-rescan under the
    /// hop-weighted metric on a sparse machine.
    #[test]
    fn random_gain_cached_matches_full_rescan(seed in 0u64..100) {
        let nodes = 4;
        let circuit = unroll_circuit(&wl::large_sparse_circuit(48, 300, seed)).unwrap();
        let graph = InteractionGraph::from_circuit(&circuit);
        let initial = Partition::block(48, nodes).unwrap();
        let topology = NetworkTopology::linear(nodes).unwrap();
        let cached = OeeOptions::default();
        let rescan = OeeOptions { full_rescan: true, ..cached };
        assert_refine_modes_match(
            &graph,
            &initial,
            &topology,
            rescan,
            cached,
            &format!("seed {seed}"),
        );
    }
}
