//! Property tests for the OEE partitioner and the partition type.

use autocomm_repro::circuit::{NodeId, Partition, QubitId};
use autocomm_repro::partition::{oee_partition, oee_refine, InteractionGraph, OeeOptions};
use proptest::prelude::*;

/// Strategy: a random weighted interaction graph over `n` qubits.
fn arb_graph(n: usize) -> impl Strategy<Value = InteractionGraph> {
    proptest::collection::vec((0..n, 0..n, 1u64..20), 0..40).prop_map(move |edges| {
        let mut g = InteractionGraph::new(n);
        for (a, b, w) in edges {
            if a != b {
                g.add_weight(QubitId::new(a), QubitId::new(b), w);
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// OEE never increases the cut and always preserves balance.
    #[test]
    fn oee_improves_and_balances(g in arb_graph(12), k in 1usize..5) {
        let initial = Partition::block(12, k).unwrap();
        let before = g.cut_weight(&initial);
        let initial_imbalance = initial.imbalance();
        let refined = oee_refine(&g, initial, OeeOptions::default());
        prop_assert!(g.cut_weight(&refined) <= before);
        prop_assert_eq!(refined.imbalance(), initial_imbalance);
        // Still a valid assignment over k nodes.
        prop_assert_eq!(refined.num_nodes(), k);
        prop_assert_eq!(refined.num_qubits(), 12);
    }

    /// The refined cut is invariant to starting from the worst layout only
    /// in being no worse than that layout's cut (sanity of the gain math).
    #[test]
    fn oee_from_round_robin_is_no_worse(g in arb_graph(10), k in 2usize..4) {
        let initial = Partition::round_robin(10, k).unwrap();
        let before = g.cut_weight(&initial);
        let refined = oee_refine(&g, initial, OeeOptions::default());
        prop_assert!(g.cut_weight(&refined) <= before);
    }

    /// Cut weight equals the number of remote multi-qubit gates when the
    /// graph came from a circuit.
    #[test]
    fn cut_counts_remote_gates(seed in 0u64..500) {
        let (c, p) = autocomm_repro::workloads::random_distributed_circuit(8, 2, 40, seed);
        let g = InteractionGraph::from_circuit(&c);
        let remote = c.gates().iter().filter(|gate| p.is_remote(gate)).count() as u64;
        prop_assert_eq!(g.cut_weight(&p), remote);
    }
}

#[test]
fn oee_recovers_planted_clusters() {
    // Two dense clusters scattered across the initial layout: OEE must
    // find the zero-cut assignment.
    let mut g = InteractionGraph::new(8);
    let cluster_a = [0usize, 2, 4, 6];
    let cluster_b = [1usize, 3, 5, 7];
    for c in [cluster_a, cluster_b] {
        for i in 0..4 {
            for j in i + 1..4 {
                g.add_weight(QubitId::new(c[i]), QubitId::new(c[j]), 10);
            }
        }
    }
    let p = oee_partition(&g, 2).unwrap();
    assert_eq!(g.cut_weight(&p), 0);
    // Each cluster sits wholly on one node.
    let node_of_0 = p.node_of(QubitId::new(0));
    for &q in &cluster_a {
        assert_eq!(p.node_of(QubitId::new(q)), node_of_0);
    }
}

#[test]
fn partition_queries_are_consistent() {
    let p = Partition::block(9, 3).unwrap();
    let mut seen = 0;
    for n in 0..3 {
        let node = NodeId::new(n);
        let qs = p.qubits_on(node);
        assert_eq!(qs.len(), p.load_of(node));
        for q in qs {
            assert_eq!(p.node_of(q), node);
            seen += 1;
        }
    }
    assert_eq!(seen, 9);
}
