//! The topology re-platforming's safety rail, as property tests:
//!
//! * compiling against an explicit `NetworkTopology::all_to_all(n)` is
//!   *bit-identical* to the historical implicit all-to-all path — same
//!   assignment, same EPR counts, same makespan, and a lowered circuit
//!   that reproduces the logical state;
//! * sparse (linear) topologies can only cost more: makespan and EPR
//!   pairs are monotonically ≥ all-to-all on every random program, and the
//!   per-link traffic attribution partitions the EPR total;
//! * sparse lowering stays simulator-checkable (the swap chains are real
//!   protocol circuits, not accounting fictions).

use autocomm_repro::circuit::{unroll_circuit, Partition};
use autocomm_repro::core::{
    aggregate, assign, assign_on, lower_assigned, lower_assigned_on, schedule, AggregateOptions,
    Placement, ScheduleOptions,
};
use autocomm_repro::hardware::{HardwareSpec, NetworkTopology};
use autocomm_repro::sim::{Complex, SplitMix64, StateVector};
use autocomm_repro::workloads::random_distributed_circuit;
use proptest::prelude::*;

fn fidelity_of(
    physical: &autocomm_repro::protocols::PhysicalProgram,
    circuit: &autocomm_repro::circuit::Circuit,
    seed: u64,
) -> f64 {
    let mut rng = SplitMix64::new(seed);
    let input = StateVector::random_state(circuit.num_qubits(), &mut rng).unwrap();
    let mut expected = input.clone();
    expected.run(circuit, &mut rng.fork()).unwrap();

    let total = physical.circuit.num_qubits();
    let mut amps = vec![Complex::ZERO; 1 << total];
    amps[..input.amplitudes().len()].copy_from_slice(input.amplitudes());
    let mut state = StateVector::from_amplitudes(amps).unwrap();
    state.run(&physical.circuit, &mut rng).unwrap();
    state.subset_fidelity(&expected, &physical.logical_qubits()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Explicit all-to-all reproduces the pre-topology pipeline exactly.
    #[test]
    fn all_to_all_is_bit_identical_to_the_implicit_path(seed in 0u64..300) {
        let (c, p) = random_distributed_circuit(6, 3, 40, seed);
        let c = unroll_circuit(&c).unwrap();
        let aggregated = aggregate(&c, &p, AggregateOptions::default());

        let placement = Placement::identity(&p);
        let implicit = assign(&aggregated);
        let explicit = assign_on(&aggregated, &placement, &NetworkTopology::all_to_all(3));
        prop_assert_eq!(&implicit, &explicit, "assignment must not change");

        let dense_hw = HardwareSpec::for_partition(&p);
        let explicit_hw = HardwareSpec::for_partition(&p)
            .with_topology(NetworkTopology::all_to_all(3))
            .unwrap();
        let a = schedule(&implicit, &placement, &dense_hw, ScheduleOptions::default());
        let b = schedule(&explicit, &placement, &explicit_hw, ScheduleOptions::default());
        prop_assert_eq!(a.epr_pairs, b.epr_pairs);
        prop_assert_eq!(a.makespan, b.makespan, "makespan must be bit-identical");
        prop_assert_eq!(a.fusion_savings, b.fusion_savings);
        prop_assert_eq!(b.swaps, 0);

        // Lowered circuits agree gate for gate.
        let la = lower_assigned(&implicit, &p).unwrap();
        let lb = lower_assigned_on(&explicit, &placement, &NetworkTopology::all_to_all(3)).unwrap();
        prop_assert_eq!(la.epr_pairs, lb.epr_pairs);
        prop_assert_eq!(la.circuit.gates(), lb.circuit.gates());
    }

    /// Sparse routing is monotone: a linear chain never beats all-to-all,
    /// and its link traffic partitions the EPR total.
    #[test]
    fn linear_topology_is_monotonically_no_cheaper(seed in 0u64..300) {
        let (c, p) = random_distributed_circuit(6, 3, 40, seed);
        let c = unroll_circuit(&c).unwrap();
        let aggregated = aggregate(&c, &p, AggregateOptions::default());
        let linear = NetworkTopology::linear(3).unwrap();

        let placement = Placement::identity(&p);
        let dense = schedule(
            &assign(&aggregated),
            &placement,
            &HardwareSpec::for_partition(&p),
            ScheduleOptions::default(),
        );
        let sparse_hw =
            HardwareSpec::for_partition(&p).with_topology(linear.clone()).unwrap();
        let sparse = schedule(
            &assign_on(&aggregated, &placement, &linear),
            &placement,
            &sparse_hw,
            ScheduleOptions::default(),
        );
        prop_assert!(
            sparse.makespan + 1e-9 >= dense.makespan,
            "linear {} must be >= all-to-all {}",
            sparse.makespan,
            dense.makespan
        );
        prop_assert!(sparse.epr_pairs >= dense.epr_pairs);
        let per_link: usize = sparse.link_traffic.iter().map(|&(_, _, t)| t).sum();
        prop_assert_eq!(per_link, sparse.epr_pairs);
    }

    /// Swap-chain lowering on a linear machine reproduces the logical
    /// state exactly.
    #[test]
    fn sparse_lowering_is_simulator_exact(seed in 0u64..60) {
        let (c, p) = random_distributed_circuit(5, 3, 24, seed + 1000);
        let c = unroll_circuit(&c).unwrap();
        let linear = NetworkTopology::linear(3).unwrap();
        let placement = Placement::identity(&p);
        let assigned =
            assign_on(&aggregate(&c, &p, AggregateOptions::default()), &placement, &linear);
        let physical = lower_assigned_on(&assigned, &placement, &linear).unwrap();
        let f = fidelity_of(&physical, &c, seed);
        prop_assert!((f - 1.0).abs() < 1e-8, "sparse fidelity {f} at seed {seed}");
    }
}

/// Deterministic spot-check mirroring the acceptance criterion: on at
/// least three suite workloads the linear topology routes multi-hop
/// communication with visible swap chains.
#[test]
fn suite_workloads_swap_on_linear_topologies() {
    let linear = NetworkTopology::linear(4).unwrap();
    let mut swapped = 0;
    for circuit in [
        autocomm_repro::workloads::qft(12),
        autocomm_repro::workloads::bv(12),
        autocomm_repro::workloads::qaoa_maxcut(12, 2, 7),
        autocomm_repro::workloads::rca(12),
    ] {
        let p = Partition::block(circuit.num_qubits(), 4).unwrap();
        let c = unroll_circuit(&circuit).unwrap();
        let placement = Placement::identity(&p);
        let assigned =
            assign_on(&aggregate(&c, &p, AggregateOptions::default()), &placement, &linear);
        let hw = HardwareSpec::for_partition(&p).with_topology(linear.clone()).unwrap();
        let s = schedule(&assigned, &placement, &hw, ScheduleOptions::default());
        let physical = lower_assigned_on(&assigned, &placement, &linear).unwrap();
        if s.swaps > 0 {
            swapped += 1;
            assert!(physical.swaps > 0, "schedule swaps must appear in the lowered circuit");
        }
        // Lowering does not fuse TP chains, so it can only use more pairs.
        assert!(physical.epr_pairs >= s.epr_pairs);
    }
    assert!(swapped >= 3, "only {swapped} of 4 suite workloads routed multi-hop");
}
