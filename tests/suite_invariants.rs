//! Suite-wide invariants: every benchmark workload, compiled through the
//! pass manager under every configuration, satisfies the paper's metric
//! relations — and the pass-manager pipeline produces *exactly* the same
//! artifacts as composing the passes by hand (the legacy
//! orient → unroll → aggregate → assign → schedule sequence).

use autocomm_repro::circuit::{unroll_circuit, Circuit, Partition};
use autocomm_repro::core::{
    aggregate, aggregate_no_commute, assign, assign_cat_only, orient_symmetric_gates, schedule,
    Ablation, AutoComm, AutoCommOptions, CommMetrics, CompileResult, Placement,
};
use autocomm_repro::hardware::HardwareSpec;
use autocomm_repro::workloads as wl;

/// Small instances of all six Table-2 workload families.
fn suite() -> Vec<(&'static str, Circuit, usize)> {
    vec![
        ("mctr", wl::mctr(12), 2),
        ("rca", wl::rca(12), 3),
        ("qft", wl::qft(12), 3),
        ("bv", wl::bv(12), 3),
        ("qaoa", wl::qaoa_maxcut(12, 30, 1), 3),
        ("uccsd", wl::uccsd(8), 4),
    ]
}

/// The pre-pass-manager compiler: direct calls to each pass in the fixed
/// legacy order, with the same option toggles `AutoComm` honours.
fn compile_legacy(
    circuit: &Circuit,
    partition: &Partition,
    options: &AutoCommOptions,
) -> (Circuit, CommMetrics, autocomm_repro::core::ScheduleSummary, usize) {
    let oriented = if options.orient_symmetric {
        orient_symmetric_gates(circuit, partition)
    } else {
        circuit.clone()
    };
    let unrolled = unroll_circuit(&oriented).unwrap();
    let aggregated = if options.commutation_aggregation {
        aggregate(&unrolled, partition, options.aggregate)
    } else {
        aggregate_no_commute(&unrolled, partition)
    };
    let assigned =
        if options.hybrid_assignment { assign(&aggregated) } else { assign_cat_only(&aggregated) };
    let metrics = CommMetrics::of(&assigned);
    let hw = HardwareSpec::for_partition(partition);
    let summary = schedule(&assigned, &Placement::identity(partition), &hw, options.schedule);
    (unrolled, metrics, summary, assigned.items().len())
}

fn configurations() -> Vec<(String, AutoCommOptions)> {
    let mut configs = vec![("full".to_string(), AutoCommOptions::default())];
    for ablation in Ablation::all() {
        configs.push((
            ablation.name().to_string(),
            AutoCommOptions::default().with_ablation(ablation),
        ));
    }
    configs
}

#[test]
fn every_workload_satisfies_metric_invariants() {
    for (name, circuit, nodes) in suite() {
        let partition = Partition::block(circuit.num_qubits(), nodes).unwrap();
        for (config, options) in configurations() {
            let r: CompileResult =
                AutoComm::with_options(options).compile(&circuit, &partition).unwrap();
            let label = format!("{name}/{config}");
            assert!(
                r.metrics.tp_comms <= r.metrics.total_comms,
                "{label}: tp_comms {} > total_comms {}",
                r.metrics.tp_comms,
                r.metrics.total_comms
            );
            assert!(r.schedule.makespan > 0.0, "{label}: empty schedule");
            assert!(
                r.metrics.total_comms <= r.metrics.total_rem_cx,
                "{label}: more comms than remote CXs"
            );
            assert!(r.metrics.improvement_factor() >= 1.0, "{label}: regressed vs sparse");
            // Every pass reported, and the report covers the whole pipeline.
            assert!(
                r.passes.iter().any(|p| p.pass == "schedule"),
                "{label}: missing schedule report"
            );
        }
    }
}

#[test]
fn pass_manager_matches_legacy_compiler_on_every_workload() {
    for (name, circuit, nodes) in suite() {
        let partition = Partition::block(circuit.num_qubits(), nodes).unwrap();
        for (config, options) in configurations() {
            let label = format!("{name}/{config}");
            let r = AutoComm::with_options(options).compile(&circuit, &partition).unwrap();
            let (unrolled, metrics, summary, num_items) =
                compile_legacy(&circuit, &partition, &options);
            assert_eq!(r.unrolled, unrolled, "{label}: unrolled circuit differs");
            assert_eq!(r.metrics, metrics, "{label}: metrics differ");
            assert_eq!(r.schedule, summary, "{label}: schedule differs");
            assert_eq!(r.assigned.items().len(), num_items, "{label}: assignment differs");
        }
    }
}

/// Property: flattening the index-based `AggregatedProgram` back to a
/// circuit is simulator-equivalent to the input, for random circuits across
/// register shapes — the end-to-end soundness certificate of the `CommIr`
/// refactor (ids, summaries, and DAG filters must never change a decision
/// the pairwise oracle would not have made).
#[test]
fn indexed_aggregation_flattening_is_sim_equivalent_on_random_circuits() {
    use autocomm_repro::core::{aggregate, AggregateOptions};
    for (num_qubits, num_nodes, num_gates) in [(4, 2, 60), (5, 2, 40), (6, 3, 50)] {
        for seed in 0..5u64 {
            let (c, p) = wl::random_distributed_circuit(num_qubits, num_nodes, num_gates, seed);
            let c = unroll_circuit(&c).unwrap();
            let agg = aggregate(&c, &p, AggregateOptions::default());
            let flat = agg.to_circuit();
            assert_eq!(flat.len(), c.len(), "{num_qubits}q/{num_nodes}n seed {seed}: gate lost");
            assert!(
                autocomm_repro::sim::circuits_equivalent(&c, &flat, 1e-8).unwrap(),
                "{num_qubits}q/{num_nodes}n seed {seed}: aggregation changed semantics"
            );
        }
    }
}

/// Property: every edge of the IR's conflict DAG links a provably
/// non-commuting pair, and the id-level commutation oracle agrees with the
/// pairwise `commutes` everywhere, for random circuits.
#[test]
fn dag_edges_and_id_oracle_agree_with_pairwise_commutes() {
    use autocomm_repro::circuit::commutes;
    use autocomm_repro::core::CommIr;
    for seed in 0..5u64 {
        let (c, p) = wl::random_distributed_circuit(6, 2, 80, seed);
        let c = unroll_circuit(&c).unwrap();
        let ir = CommIr::build(&c, &p);
        let table = ir.table();
        for a in 0..ir.len() {
            for b in (a + 1)..ir.len() {
                let (ga, gb) = (ir.gate_at(a), ir.gate_at(b));
                assert_eq!(
                    table.commutes_ids(ir.stream()[a], ir.stream()[b]),
                    commutes(ga, gb),
                    "seed {seed}: id oracle diverges on {ga} vs {gb}"
                );
                if ir.conflicts_directly(a, b) {
                    assert!(
                        !commutes(ga, gb),
                        "seed {seed}: DAG edge {a}->{b} links commuting gates {ga}, {gb}"
                    );
                }
            }
        }
    }
}

/// Property: the incremental `CommSummary` answers exactly like
/// `commutes_with_all` over random gate windows (the check the aggregation
/// hoist loop and the scheduler's parallel-group test rely on).
#[test]
fn comm_summary_matches_pairwise_commutes_on_random_windows() {
    use autocomm_repro::circuit::{commutes_with_all, CommSummary, GateTable};
    for seed in 0..8u64 {
        let c = wl::random_circuit(5, 60, seed ^ 0xA5A5);
        let mut table = GateTable::new();
        let ids: Vec<_> = c.gates().iter().map(|g| table.intern(g)).collect();
        // Slide a window over the stream; summarize it; probe with every gate.
        for start in (0..c.len().saturating_sub(8)).step_by(7) {
            let window = &c.gates()[start..start + 8];
            let mut summary = CommSummary::new(c.num_qubits(), 0);
            for (off, g) in window.iter().enumerate() {
                let _ = g;
                summary.add(&table, ids[start + off]);
            }
            for (i, probe) in c.gates().iter().enumerate() {
                assert_eq!(
                    summary.commutes_with(&table, ids[i]),
                    commutes_with_all(probe, window),
                    "seed {seed}, window at {start}, probe {probe}"
                );
            }
        }
    }
}

#[test]
fn whole_table2_suite_compiles_under_the_quick_configs() {
    // The same configurations dqc-bench smoke-tests: every workload family
    // at two scales, end to end through the pass manager.
    for workload in wl::Workload::all() {
        let (qubits, nodes) = if workload == wl::Workload::Uccsd { (8, 4) } else { (20, 2) };
        let config = wl::BenchConfig::new(workload, qubits, nodes);
        let circuit = wl::generate(&config);
        let partition = Partition::block(circuit.num_qubits(), nodes).unwrap();
        let r = AutoComm::new().compile(&circuit, &partition).unwrap();
        assert!(r.metrics.tp_comms <= r.metrics.total_comms);
        assert!(r.schedule.makespan > 0.0);
    }
}
