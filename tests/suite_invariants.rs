//! Suite-wide invariants: every benchmark workload, compiled through the
//! pass manager under every configuration, satisfies the paper's metric
//! relations — and the pass-manager pipeline produces *exactly* the same
//! artifacts as composing the passes by hand (the legacy
//! orient → unroll → aggregate → assign → schedule sequence).

use autocomm_repro::circuit::{unroll_circuit, Circuit, Partition};
use autocomm_repro::core::{
    aggregate, aggregate_no_commute, assign, assign_cat_only, orient_symmetric_gates, schedule,
    Ablation, AutoComm, AutoCommOptions, CommMetrics, CompileResult,
};
use autocomm_repro::hardware::HardwareSpec;
use autocomm_repro::workloads as wl;

/// Small instances of all six Table-2 workload families.
fn suite() -> Vec<(&'static str, Circuit, usize)> {
    vec![
        ("mctr", wl::mctr(12), 2),
        ("rca", wl::rca(12), 3),
        ("qft", wl::qft(12), 3),
        ("bv", wl::bv(12), 3),
        ("qaoa", wl::qaoa_maxcut(12, 30, 1), 3),
        ("uccsd", wl::uccsd(8), 4),
    ]
}

/// The pre-pass-manager compiler: direct calls to each pass in the fixed
/// legacy order, with the same option toggles `AutoComm` honours.
fn compile_legacy(
    circuit: &Circuit,
    partition: &Partition,
    options: &AutoCommOptions,
) -> (Circuit, CommMetrics, autocomm_repro::core::ScheduleSummary, usize) {
    let oriented = if options.orient_symmetric {
        orient_symmetric_gates(circuit, partition)
    } else {
        circuit.clone()
    };
    let unrolled = unroll_circuit(&oriented).unwrap();
    let aggregated = if options.commutation_aggregation {
        aggregate(&unrolled, partition, options.aggregate)
    } else {
        aggregate_no_commute(&unrolled, partition)
    };
    let assigned =
        if options.hybrid_assignment { assign(&aggregated) } else { assign_cat_only(&aggregated) };
    let metrics = CommMetrics::of(&assigned);
    let hw = HardwareSpec::for_partition(partition);
    let summary = schedule(&assigned, partition, &hw, options.schedule);
    (unrolled, metrics, summary, assigned.items().len())
}

fn configurations() -> Vec<(String, AutoCommOptions)> {
    let mut configs = vec![("full".to_string(), AutoCommOptions::default())];
    for ablation in Ablation::all() {
        configs.push((
            ablation.name().to_string(),
            AutoCommOptions::default().with_ablation(ablation),
        ));
    }
    configs
}

#[test]
fn every_workload_satisfies_metric_invariants() {
    for (name, circuit, nodes) in suite() {
        let partition = Partition::block(circuit.num_qubits(), nodes).unwrap();
        for (config, options) in configurations() {
            let r: CompileResult =
                AutoComm::with_options(options).compile(&circuit, &partition).unwrap();
            let label = format!("{name}/{config}");
            assert!(
                r.metrics.tp_comms <= r.metrics.total_comms,
                "{label}: tp_comms {} > total_comms {}",
                r.metrics.tp_comms,
                r.metrics.total_comms
            );
            assert!(r.schedule.makespan > 0.0, "{label}: empty schedule");
            assert!(
                r.metrics.total_comms <= r.metrics.total_rem_cx,
                "{label}: more comms than remote CXs"
            );
            assert!(r.metrics.improvement_factor() >= 1.0, "{label}: regressed vs sparse");
            // Every pass reported, and the report covers the whole pipeline.
            assert!(
                r.passes.iter().any(|p| p.pass == "schedule"),
                "{label}: missing schedule report"
            );
        }
    }
}

#[test]
fn pass_manager_matches_legacy_compiler_on_every_workload() {
    for (name, circuit, nodes) in suite() {
        let partition = Partition::block(circuit.num_qubits(), nodes).unwrap();
        for (config, options) in configurations() {
            let label = format!("{name}/{config}");
            let r = AutoComm::with_options(options).compile(&circuit, &partition).unwrap();
            let (unrolled, metrics, summary, num_items) =
                compile_legacy(&circuit, &partition, &options);
            assert_eq!(r.unrolled, unrolled, "{label}: unrolled circuit differs");
            assert_eq!(r.metrics, metrics, "{label}: metrics differ");
            assert_eq!(r.schedule, summary, "{label}: schedule differs");
            assert_eq!(r.assigned.items().len(), num_items, "{label}: assignment differs");
        }
    }
}

#[test]
fn whole_table2_suite_compiles_under_the_quick_configs() {
    // The same configurations dqc-bench smoke-tests: every workload family
    // at two scales, end to end through the pass manager.
    for workload in wl::Workload::all() {
        let (qubits, nodes) = if workload == wl::Workload::Uccsd { (8, 4) } else { (20, 2) };
        let config = wl::BenchConfig::new(workload, qubits, nodes);
        let circuit = wl::generate(&config);
        let partition = Partition::block(circuit.num_qubits(), nodes).unwrap();
        let r = AutoComm::new().compile(&circuit, &partition).unwrap();
        assert!(r.metrics.tp_comms <= r.metrics.total_comms);
        assert!(r.schedule.makespan > 0.0);
    }
}
