//! Artifact serialization invariants: every benchmark workload, compiled
//! under every topology family (and every ablation on one workload),
//! produces a [`CompiledArtifact`] whose text form survives
//! serialize → deserialize → re-serialize **byte-identically** — the
//! property the compile service's cache relies on to answer warm hits
//! with the exact bytes a cold compile would have produced.

use autocomm_repro::circuit::{Circuit, NodeId, Partition};
use autocomm_repro::core::{
    Ablation, ArtifactCircuitStats, ArtifactConfig, AutoComm, AutoCommOptions, BufferPolicy,
    CompiledArtifact, PlacementConfig,
};
use autocomm_repro::hardware::{HardwareSpec, NetworkTopology};
use autocomm_repro::workloads as wl;

const NODES: usize = 4;

/// Small instances of all six Table-2 workload families, sized for a
/// four-node machine.
fn suite() -> Vec<(&'static str, Circuit)> {
    vec![
        ("mctr", wl::mctr(12)),
        ("rca", wl::rca(12)),
        ("qft", wl::qft(12)),
        ("bv", wl::bv(12)),
        ("qaoa", wl::qaoa_maxcut(12, 30, 1)),
        ("uccsd", wl::uccsd(8)),
    ]
}

/// All five topology families at four nodes.
const TOPOLOGIES: [&str; 5] = ["all-to-all", "linear", "ring", "grid:2x2", "star"];

fn compile_artifact(
    name: &str,
    circuit: &Circuit,
    spec: &str,
    options: AutoCommOptions,
    ablations: Vec<Ablation>,
) -> CompiledArtifact {
    let partition = Partition::block(circuit.num_qubits(), NODES).unwrap();
    let topology = NetworkTopology::parse_spec(spec, NODES).unwrap();
    let hw = HardwareSpec::for_partition(&partition).with_topology(topology).unwrap();
    let compiler = AutoComm::with_options(options);
    let (result, placement) = compiler
        .compile_placed(circuit, &partition, &hw, &PlacementConfig::default())
        .unwrap_or_else(|e| panic!("{name} on {spec}: {e}"));
    let config = ArtifactConfig {
        key: format!("{name}-{spec}"),
        nodes: NODES,
        comm_qubits: hw.comm_qubits_per_node(),
        strategy: "topo".to_string(),
        refine_iters: PlacementConfig::default().refine_iters,
        buffer: BufferPolicy::OnDemand,
        ablations,
        ..ArtifactConfig::default()
    };
    let stats = ArtifactCircuitStats {
        qubits: circuit.num_qubits(),
        gates: circuit.len(),
        two_qubit_gates: result.metrics.total_rem_cx,
        remote_cx: result.metrics.total_rem_cx,
    };
    CompiledArtifact::capture(config, stats, &hw, &placement, &result)
}

fn assert_round_trip(label: &str, artifact: &CompiledArtifact) {
    let text = artifact.to_text();
    let parsed =
        CompiledArtifact::from_text(&text).unwrap_or_else(|e| panic!("{label}: parse failed: {e}"));
    assert_eq!(&parsed, artifact, "{label}: artifact changed across round trip");
    assert_eq!(parsed.to_text(), text, "{label}: re-serialization not byte-identical");
}

#[test]
fn suite_round_trips_on_every_topology() {
    for (name, circuit) in suite() {
        for spec in TOPOLOGIES {
            let label = format!("{name} on {spec}");
            let artifact =
                compile_artifact(name, &circuit, spec, AutoCommOptions::default(), Vec::new());
            assert!(!artifact.program.is_empty(), "{label}: empty lowered program");
            assert_eq!(
                artifact.config.topology,
                NetworkTopology::parse_spec(spec, NODES).unwrap().name()
            );
            assert_round_trip(&label, &artifact);
        }
    }
}

#[test]
fn every_ablation_round_trips() {
    let circuit = wl::qft(12);
    for ablation in Ablation::all() {
        let label = format!("qft under {}", ablation.name());
        let artifact = compile_artifact(
            "qft",
            &circuit,
            "linear",
            AutoCommOptions::default().with_ablation(ablation),
            vec![ablation],
        );
        assert_round_trip(&label, &artifact);
        let text = artifact.to_text();
        assert!(
            text.contains(&format!("ablations {}", ablation.name())),
            "{label}: ablation list not serialized"
        );
    }
}

#[test]
fn artifacts_distinguish_configurations() {
    let circuit = wl::qft(12);
    let a = compile_artifact("qft", &circuit, "linear", AutoCommOptions::default(), Vec::new());
    let b = compile_artifact("qft", &circuit, "ring", AutoCommOptions::default(), Vec::new());
    assert_ne!(a.to_text(), b.to_text(), "different topologies must serialize differently");
}

#[test]
fn node_map_survives_round_trip_verbatim() {
    let circuit = wl::qft(12);
    let artifact =
        compile_artifact("qft", &circuit, "linear", AutoCommOptions::default(), Vec::new());
    let parsed = CompiledArtifact::from_text(&artifact.to_text()).unwrap();
    assert_eq!(parsed.placement.node_map, artifact.placement.node_map);
    assert!(parsed.placement.node_map.iter().all(|n| n.index() < NODES));
    assert_eq!(parsed.schedule.link_traffic, artifact.schedule.link_traffic);
    let _: Vec<NodeId> = parsed.placement.node_map;
}
