//! Front-end flattening invariants: the streaming aggregation filter is
//! bit-identical to the materialized-DAG reference rail, and the chunked
//! parallel QASM parse is bit-identical to the sequential reference —
//! across the workload suite, seeded random programs, and adversarial
//! QASM shaped to straddle the parallel parser's chunk boundaries.
//!
//! Both claims rest on the same structure: the streaming conflict filter
//! only short-circuits commutation checks that would provably fail (any
//! sound under-approximation of the conflict relation yields the same
//! aggregation output), and the chunked parser feeds per-line parse
//! results through one shared assembler in input order (so statements,
//! errors, and error *precedence* are position-exact).

use autocomm_repro::circuit::{
    from_qasm, from_qasm_sequential, to_qasm, unroll_circuit, unroll_circuit_sequential, Partition,
    PAR_THRESHOLD,
};
use autocomm_repro::core::{
    aggregate, aggregate_ir_with_stats, orient_symmetric_gates, orient_symmetric_gates_sequential,
    AggregateOptions, CommIr,
};
use autocomm_repro::workloads::{self as wl, random_distributed_circuit};
use proptest::prelude::*;
use std::sync::Arc;

/// Node counts standing in for five machine shapes; block partitions over
/// them give aggregation five distinct remote structures per program.
const NODE_COUNTS: [usize; 5] = [2, 3, 4, 5, 8];

/// Defer-limit corners: sealed-immediately, tiny window, default.
const DEFER_LIMITS: [usize; 3] = [0, 2, 64];

/// The streaming filter must match the materialized-DAG rail on every
/// suite program × partition shape × aggregation option, leaving the DAG
/// un-materialized and its working set wire-bounded.
#[test]
fn streaming_aggregation_matches_materialized_rail_on_suite() {
    for config in wl::smoke_suite() {
        let circuit = wl::generate(&config);
        let unrolled = unroll_circuit(&circuit).unwrap();
        for nodes in NODE_COUNTS {
            if circuit.num_qubits() < nodes {
                continue;
            }
            let partition = Partition::block(circuit.num_qubits(), nodes).unwrap();
            for defer_limit in DEFER_LIMITS {
                let streaming = AggregateOptions { defer_limit, materialized_dag: false };
                let materialized = AggregateOptions { defer_limit, materialized_dag: true };
                let ir = Arc::new(CommIr::build(&unrolled, &partition));
                let (a, stats) = aggregate_ir_with_stats(Arc::clone(&ir), streaming);
                let b = aggregate(&unrolled, &partition, materialized);
                assert_eq!(
                    a,
                    b,
                    "rails diverged on {} x {nodes} nodes x defer {defer_limit}",
                    config.label()
                );
                assert!(
                    stats.peak_tracked_entries <= stats.tracked_entry_bound,
                    "working set exceeded its wire bound on {}",
                    config.label()
                );
                assert_eq!(
                    ir.dag_edges_if_built(),
                    None,
                    "streaming aggregation forced the DAG on {}",
                    config.label()
                );
            }
        }
    }
}

/// An adversarial QASM program bigger than the parallel threshold: block
/// comments, blank lines, inline comments, multi-statement lines, and
/// conditioned gates land on arbitrary chunk boundaries.
fn adversarial_qasm(lines: usize) -> String {
    let mut text = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[6];\ncreg c[2];\n");
    for i in 0..lines {
        match i % 7 {
            0 => text.push_str("// chunk-boundary comment\n"),
            1 => text.push('\n'),
            2 => text.push_str(&format!("h q[{}];\n", i % 6)),
            3 => text.push_str(&format!(
                "h q[{}]; cx q[{}],q[{}]; t q[1];\n",
                i % 6,
                i % 6,
                (i + 1) % 6
            )),
            4 => text.push_str(&format!(
                "rz({}) q[{}]; // trailing comment\n",
                (i % 31) as f64 / 10.0,
                i % 6
            )),
            5 => text.push_str("measure q[0] -> c[0];\n"),
            _ => text.push_str("if (c[0] == 1) x q[3];\n"),
        }
    }
    text
}

/// The chunked parser must agree with the sequential rail on adversarial
/// input spanning many chunk boundaries.
#[test]
fn chunked_parse_matches_sequential_on_adversarial_qasm() {
    let text = adversarial_qasm(2 * PAR_THRESHOLD + 13);
    let parallel = from_qasm(&text).unwrap();
    let sequential = from_qasm_sequential(&text).unwrap();
    assert_eq!(parallel, sequential);
}

/// Both parse rails must report the *same first error in input order*,
/// even when later chunks contain earlier-detectable errors.
#[test]
fn chunked_parse_matches_sequential_on_errors() {
    for (label, mutate) in [
        ("missing semicolon", "h q[0]\n"),
        ("unsupported gate", "frobnicate q[0];\n"),
        ("bad register", "qreg r[4];\n"),
        ("garbage", "%%%;\n"),
    ] {
        let mut text = adversarial_qasm(PAR_THRESHOLD);
        // Inject the fault mid-program, then append a *different*,
        // per-line-detectable fault near the end — the reported error must
        // be the first by input position even though a later chunk's
        // worker sees its own error "first" in wall-clock time.
        text.push_str(mutate);
        for i in 0..256 {
            text.push_str(&format!("h q[{}];\n", i % 6));
        }
        text.push_str("x q[0]\n");
        let parallel = from_qasm(&text);
        let sequential = from_qasm_sequential(&text);
        assert_eq!(parallel, sequential, "rails disagreed on {label}");
        assert!(parallel.is_err(), "{label} should not parse");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Streaming == materialized aggregation on seeded random programs.
    #[test]
    fn streaming_aggregation_matches_materialized_rail_random(
        seed in 0u64..500,
        defer_idx in 0usize..DEFER_LIMITS.len(),
    ) {
        let defer_limit = DEFER_LIMITS[defer_idx];
        let (c, p) = random_distributed_circuit(6, 3, 90, seed);
        let unrolled = unroll_circuit(&c).unwrap();
        let streaming = AggregateOptions { defer_limit, materialized_dag: false };
        let materialized = AggregateOptions { defer_limit, materialized_dag: true };
        prop_assert_eq!(
            aggregate(&unrolled, &p, streaming),
            aggregate(&unrolled, &p, materialized)
        );
    }

    /// Chunked == sequential parse on generated programs large enough to
    /// take the parallel path, and the round trip is exact.
    #[test]
    fn chunked_parse_matches_sequential_random(seed in 0u64..40) {
        let (c, _) = random_distributed_circuit(16, 4, PAR_THRESHOLD + 512, seed);
        let text = to_qasm(&c);
        let parallel = from_qasm(&text).unwrap();
        let sequential = from_qasm_sequential(&text).unwrap();
        prop_assert_eq!(&parallel, &sequential);
        prop_assert_eq!(&parallel, &c);
    }

    /// The fanned unroll and orient paths match their sequential rails on
    /// circuits large enough to take the parallel path.
    #[test]
    fn fanned_unroll_and_orient_match_sequential_random(seed in 0u64..20) {
        let (c, p) = random_distributed_circuit(16, 4, PAR_THRESHOLD + 512, seed);
        prop_assert_eq!(
            unroll_circuit(&c).unwrap(),
            unroll_circuit_sequential(&c).unwrap()
        );
        prop_assert_eq!(
            orient_symmetric_gates(&c, &p),
            orient_symmetric_gates_sequential(&c, &p)
        );
    }
}
