//! Independent validation of every scheduler: replayed event logs must
//! never double-book a qubit or a communication slot, and the burst-greedy
//! optimizations must never lose to the plain schedule.

use autocomm_repro::circuit::{unroll_circuit, Partition};
use autocomm_repro::core::{
    aggregate, assign, schedule, AggregateOptions, AutoComm, AutoCommOptions, Placement,
    ScheduleOptions,
};
use autocomm_repro::hardware::{validate_events, HardwareSpec};
use autocomm_repro::workloads as wl;
use proptest::prelude::*;

fn recorded_schedule(
    circuit: &autocomm_repro::circuit::Circuit,
    partition: &Partition,
    options: ScheduleOptions,
) -> autocomm_repro::core::ScheduleSummary {
    let unrolled = unroll_circuit(circuit).unwrap();
    let aggregated = aggregate(&unrolled, partition, AggregateOptions::default());
    let assigned = assign(&aggregated);
    let hw = HardwareSpec::for_partition(partition);
    schedule(
        &assigned,
        &Placement::identity(partition),
        &hw,
        ScheduleOptions { record_events: true, ..options },
    )
}

#[test]
fn workload_schedules_validate() {
    let cases: Vec<(autocomm_repro::circuit::Circuit, usize)> = vec![
        (wl::qft(12), 3),
        (wl::bv(12), 3),
        (wl::rca(12), 3),
        (wl::mctr(12), 2),
        (wl::qaoa_maxcut(12, 30, 1), 3),
        (wl::uccsd(8), 4),
    ];
    for (circuit, nodes) in cases {
        let partition = Partition::block(circuit.num_qubits(), nodes).unwrap();
        let hw = HardwareSpec::for_partition(&partition);
        for options in [
            ScheduleOptions::default(),
            ScheduleOptions::plain_greedy(),
            ScheduleOptions::default()
                .with_buffer(autocomm_repro::core::BufferPolicy::Prefetch { depth: 4 }),
            ScheduleOptions::default().with_buffer(autocomm_repro::core::BufferPolicy::Greedy),
        ] {
            let summary = recorded_schedule(&circuit, &partition, options);
            let events = summary.events.as_ref().expect("recording on");
            validate_events(events, &hw)
                .unwrap_or_else(|e| panic!("{nodes}-node schedule invalid: {e}"));
            assert!(summary.makespan > 0.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random distributed programs always produce resource-valid schedules.
    #[test]
    fn random_schedules_validate(seed in 0u64..1000) {
        let (circuit, partition) = wl::random_distributed_circuit(8, 2, 60, seed);
        let hw = HardwareSpec::for_partition(&partition);
        let summary = recorded_schedule(&circuit, &partition, ScheduleOptions::default());
        let events = summary.events.as_ref().expect("recording on");
        validate_events(events, &hw).map_err(|e| {
            TestCaseError::fail(format!("seed {seed}: {e}"))
        })?;
    }

    /// Burst-greedy never loses to plain greedy, and fusion never increases
    /// EPR usage.
    #[test]
    fn burst_greedy_dominates(seed in 0u64..500) {
        let (circuit, partition) = wl::random_distributed_circuit(8, 3, 50, seed);
        let burst = recorded_schedule(&circuit, &partition, ScheduleOptions::default());
        let plain = recorded_schedule(&circuit, &partition, ScheduleOptions::plain_greedy());
        prop_assert!(burst.makespan <= plain.makespan + 1e-9);
        prop_assert!(burst.epr_pairs <= plain.epr_pairs);
    }
}

#[test]
fn fusion_reduces_epr_on_chained_tp_blocks() {
    // Construct a qubit that bursts bidirectionally to three nodes in turn.
    use autocomm_repro::circuit::{Circuit, Gate, QubitId};
    let q = |i| QubitId::new(i);
    let mut c = Circuit::new(8);
    for peer in [2usize, 4, 6] {
        c.push(Gate::cx(q(0), q(peer))).unwrap();
        c.push(Gate::h(q(0))).unwrap(); // force bidirectional → TP
        c.push(Gate::cx(q(peer), q(0))).unwrap();
        c.push(Gate::h(q(0))).unwrap();
    }
    let partition = Partition::block(8, 4).unwrap();
    let fused = recorded_schedule(&c, &partition, ScheduleOptions::default());
    let plain = recorded_schedule(&c, &partition, ScheduleOptions::plain_greedy());
    assert!(fused.fusion_savings > 0, "chain must fuse");
    assert!(fused.epr_pairs < plain.epr_pairs);
    assert!(fused.makespan < plain.makespan);
}

#[test]
fn more_comm_qubits_never_slow_the_schedule() {
    let circuit = wl::qft(16);
    let partition = Partition::block(16, 4).unwrap();
    let unrolled = unroll_circuit(&circuit).unwrap();
    let aggregated = aggregate(&unrolled, &partition, AggregateOptions::default());
    let assigned = assign(&aggregated);
    // TP-Comm inherently needs two communication qubits per node (the
    // destination holds the state while the return EPR pair forms), so the
    // sweep starts at the paper's budget of 2.
    let mut last = f64::INFINITY;
    for budget in [2usize, 3, 4, 8] {
        let hw = HardwareSpec::for_partition(&partition)
            .with_comm_qubits(budget)
            .expect("positive budget");
        let summary =
            schedule(&assigned, &Placement::identity(&partition), &hw, ScheduleOptions::default());
        assert!(
            summary.makespan <= last + 1e-9,
            "budget {budget} slowed the schedule: {} > {last}",
            summary.makespan
        );
        last = summary.makespan;
    }
}

#[test]
fn pipeline_options_roundtrip() {
    // The compiler exposes its options and the ablations change only what
    // they claim to change.
    let c = wl::qft(12);
    let p = Partition::block(12, 2).unwrap();
    let full = AutoComm::new().compile(&c, &p).unwrap();
    let plain = AutoComm::with_options(AutoCommOptions {
        schedule: ScheduleOptions::plain_greedy(),
        ..AutoCommOptions::default()
    })
    .compile(&c, &p)
    .unwrap();
    assert_eq!(full.metrics.total_comms, plain.metrics.total_comms);
    assert_eq!(full.metrics.tp_comms, plain.metrics.tp_comms);
    assert!(plain.schedule.makespan >= full.schedule.makespan);
}
