//! End-to-end semantic verification of the compiler: aggregation reorders
//! only commuting gates, orientation is exactly symmetric, and the full
//! pipeline lowered through physical Cat-Comm / TP-Comm protocols
//! reproduces the logical state on every seed.

use autocomm_repro::circuit::{unroll_circuit, Partition};
use autocomm_repro::core::{
    aggregate, assign, assign_cat_only, lower_assigned, orient_symmetric_gates, AggregateOptions,
};
use autocomm_repro::sim::{circuits_equivalent, Complex, SplitMix64, StateVector};
use autocomm_repro::workloads::random_distributed_circuit;
use proptest::prelude::*;

/// Compiles and physically lowers a circuit, returning the fidelity of the
/// logical register against direct simulation of the input.
fn pipeline_fidelity(
    circuit: &autocomm_repro::circuit::Circuit,
    partition: &Partition,
    seed: u64,
    cat_only: bool,
) -> f64 {
    let oriented = orient_symmetric_gates(circuit, partition);
    let unrolled = unroll_circuit(&oriented).unwrap();
    let aggregated = aggregate(&unrolled, partition, AggregateOptions::default());
    let assigned = if cat_only { assign_cat_only(&aggregated) } else { assign(&aggregated) };
    let physical = lower_assigned(&assigned, partition).unwrap();

    let mut rng = SplitMix64::new(seed);
    let input = StateVector::random_state(circuit.num_qubits(), &mut rng).unwrap();
    let mut expected = input.clone();
    expected.run(circuit, &mut rng.fork()).unwrap();

    let total = physical.circuit.num_qubits();
    let mut amps = vec![Complex::ZERO; 1 << total];
    amps[..input.amplitudes().len()].copy_from_slice(input.amplitudes());
    let mut state = StateVector::from_amplitudes(amps).unwrap();
    state.run(&physical.circuit, &mut rng).unwrap();
    state.subset_fidelity(&expected, &physical.logical_qubits()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Aggregation output flattens to a circuit equivalent to its input.
    #[test]
    fn aggregation_preserves_semantics(seed in 0u64..1000) {
        let (c, p) = random_distributed_circuit(5, 2, 35, seed);
        let unrolled = unroll_circuit(&c).unwrap();
        let agg = aggregate(&unrolled, &p, AggregateOptions::default());
        prop_assert!(circuits_equivalent(&unrolled, &agg.to_circuit(), 1e-8).unwrap());
    }

    /// The hybrid pipeline, lowered to physical protocols with mid-circuit
    /// measurement and feed-forward, reproduces the logical program.
    #[test]
    fn hybrid_pipeline_is_exact(seed in 0u64..1000) {
        let (c, p) = random_distributed_circuit(5, 2, 25, seed);
        let f = pipeline_fidelity(&c, &p, seed ^ 0xfeed, false);
        prop_assert!((f - 1.0).abs() < 1e-8, "fidelity {f}");
    }

    /// The Cat-only ablation is also semantics-preserving.
    #[test]
    fn cat_only_pipeline_is_exact(seed in 0u64..1000) {
        let (c, p) = random_distributed_circuit(5, 2, 20, seed);
        let f = pipeline_fidelity(&c, &p, seed ^ 0xcafe, true);
        prop_assert!((f - 1.0).abs() < 1e-8, "fidelity {f}");
    }

    /// Three-node programs exercise TP fusion chains and node-crossing
    /// blocks.
    #[test]
    fn three_node_pipeline_is_exact(seed in 0u64..500) {
        let (c, p) = random_distributed_circuit(6, 3, 24, seed);
        let f = pipeline_fidelity(&c, &p, seed ^ 0xbeef, false);
        prop_assert!((f - 1.0).abs() < 1e-8, "fidelity {f}");
    }

    /// Orientation of symmetric gates never changes semantics.
    #[test]
    fn orientation_preserves_semantics(seed in 0u64..1000) {
        let (c, p) = random_distributed_circuit(4, 2, 25, seed);
        let oriented = orient_symmetric_gates(&c, &p);
        prop_assert!(circuits_equivalent(&c, &oriented, 1e-9).unwrap());
    }
}

#[test]
fn workload_pipelines_are_exact() {
    // Small instances of the actual benchmark generators, end to end.
    let cases: Vec<(autocomm_repro::circuit::Circuit, usize)> = vec![
        (autocomm_repro::workloads::qft(6), 2),
        (autocomm_repro::workloads::bv(7), 2),
        (autocomm_repro::workloads::rca(6), 3),
        (autocomm_repro::workloads::qaoa_maxcut(6, 9, 5), 2),
    ];
    for (circuit, nodes) in cases {
        let partition = Partition::block(circuit.num_qubits(), nodes).unwrap();
        let f = pipeline_fidelity(&circuit, &partition, 77, false);
        assert!((f - 1.0).abs() < 1e-8, "fidelity {f} for {nodes}-node workload");
    }
}
