//! Shape assertions against the paper's evaluation: who wins, by roughly
//! what factor, and which qualitative patterns hold. These tests pin the
//! reproduction to the published trends without requiring exact numbers.

use autocomm_repro::baselines::{ablation, compile_ferrari, compile_gp_tp};
use autocomm_repro::circuit::{unroll_circuit, Partition};
use autocomm_repro::core::{burst_distribution, AutoComm};
use autocomm_repro::hardware::HardwareSpec;
use autocomm_repro::partition::{oee_partition, InteractionGraph};
use autocomm_repro::workloads as wl;

fn oee(circuit: &autocomm_repro::circuit::Circuit, nodes: usize) -> Partition {
    let unrolled = unroll_circuit(circuit).unwrap();
    let graph = InteractionGraph::from_circuit(&unrolled);
    oee_partition(&graph, nodes).unwrap()
}

fn improv(circuit: &autocomm_repro::circuit::Circuit, nodes: usize) -> f64 {
    let p = oee(circuit, nodes);
    let hw = HardwareSpec::for_partition(&p);
    let r = AutoComm::new().compile(circuit, &p).unwrap();
    let b = compile_ferrari(circuit, &p, &hw).unwrap();
    b.total_comms as f64 / r.metrics.total_comms.max(1) as f64
}

#[test]
fn bv_matches_paper_exactly() {
    // Paper Table 3: BV-100-10 → 9 comms, all Cat, improv 6.22.
    let c = wl::bv(100);
    let p = oee(&c, 10);
    let r = AutoComm::new().compile(&c, &p).unwrap();
    assert_eq!(r.metrics.total_comms, 9);
    assert_eq!(r.metrics.tp_comms, 0);
    let f = improv(&c, 10);
    assert!(f > 5.0, "BV improv {f}");
}

#[test]
fn improvement_ordering_follows_the_paper() {
    // Paper Table 3 ordering at the 100-qubit scale:
    // QFT > BV > MCTR/RCA/QAOA > UCCSD (UCCSD is always the smallest win).
    let qft = improv(&wl::qft(60), 6);
    let bv = improv(&wl::bv(60), 6);
    let qaoa = improv(&wl::qaoa_maxcut(60, 600, 3), 6);
    let uccsd = improv(&wl::uccsd(12), 6);
    assert!(qft > bv, "QFT {qft} vs BV {bv}");
    assert!(bv > qaoa, "BV {bv} vs QAOA {qaoa}");
    assert!(qaoa > uccsd, "QAOA {qaoa} vs UCCSD {uccsd}");
    assert!(uccsd >= 1.0, "UCCSD {uccsd} must still win");
}

#[test]
fn rca_is_tp_dominated_bv_is_cat_only() {
    // Paper Table 3: RCA's comms are mostly TP, BV's are all Cat.
    let c = wl::rca(60);
    let p = oee(&c, 6);
    let r = AutoComm::new().compile(&c, &p).unwrap();
    assert!(
        r.metrics.tp_comms * 2 > r.metrics.total_comms,
        "RCA should be TP-dominated: {} of {}",
        r.metrics.tp_comms,
        r.metrics.total_comms
    );

    let c = wl::bv(60);
    let p = oee(&c, 6);
    let r = AutoComm::new().compile(&c, &p).unwrap();
    assert_eq!(r.metrics.tp_comms, 0, "BV must be all Cat");
}

#[test]
fn burst_distribution_shows_bursts_everywhere() {
    // Paper Fig. 15: on average ≥ 2 remote CX per communication for ~77% of
    // communications. Check the ≥2 mass is substantial on every workload.
    for (circuit, nodes) in [
        (wl::qft(40), 4),
        (wl::bv(40), 4),
        (wl::qaoa_maxcut(40, 400, 7), 4),
        (wl::mctr(40), 4),
        (wl::rca(40), 4),
        (wl::uccsd(12), 6),
    ] {
        let p = oee(&circuit, nodes);
        let r = AutoComm::new().compile(&circuit, &p).unwrap();
        let dist = burst_distribution(&r.metrics, 4);
        // UCCSD's interleaved basis changes fragment blocks the most
        // (lowest improvement in the paper as well): accept a lower floor.
        let floor = if circuit.num_qubits() == 12 { 0.2 } else { 0.3 };
        assert!(
            dist[1] > floor,
            "expected bursts: Pr[>=2] = {} on a {}-node workload",
            dist[1],
            nodes
        );
    }
}

#[test]
fn autocomm_beats_gp_tp_everywhere() {
    // Paper Fig. 16: AutoComm wins against GP-TP on every family, most on
    // BV/QFT, least on RCA/QAOA.
    let mut factors = Vec::new();
    for (name, circuit, nodes) in [
        ("rca", wl::rca(40), 4),
        ("qaoa", wl::qaoa_maxcut(40, 400, 7), 4),
        ("qft", wl::qft(40), 4),
        ("bv", wl::bv(40), 4),
    ] {
        let p = oee(&circuit, nodes);
        let hw = HardwareSpec::for_partition(&p);
        let r = AutoComm::new().compile(&circuit, &p).unwrap();
        let g = compile_gp_tp(&circuit, &p, &hw).unwrap();
        let factor = g.total_comms as f64 / r.metrics.total_comms.max(1) as f64;
        assert!(factor >= 1.0, "{name}: GP-TP beat AutoComm ({factor})");
        factors.push((name, factor));
    }
    let qft = factors.iter().find(|(n, _)| *n == "qft").unwrap().1;
    let rca = factors.iter().find(|(n, _)| *n == "rca").unwrap().1;
    assert!(qft > rca, "QFT ({qft}) should beat RCA ({rca}) as in Fig. 16");
}

#[test]
fn ablation_ratios_in_paper_bands() {
    // Fig. 17(a): no-commute costs several times more comms on QFT and BV.
    let c = wl::qft(40);
    let p = oee(&c, 4);
    let full = AutoComm::new().compile(&c, &p).unwrap();
    let nc = ablation::compile_no_commute(&c, &p).unwrap();
    let ratio = nc.metrics.total_comms as f64 / full.metrics.total_comms as f64;
    assert!(ratio > 3.0, "QFT no-commute ratio {ratio} (paper ≈ 4.35)");

    let c = wl::bv(40);
    let p = oee(&c, 4);
    let full = AutoComm::new().compile(&c, &p).unwrap();
    let nc = ablation::compile_no_commute(&c, &p).unwrap();
    let ratio = nc.metrics.total_comms as f64 / full.metrics.total_comms as f64;
    assert!(ratio > 3.0, "BV no-commute ratio {ratio} (paper ≈ 6.22)");

    // Fig. 17(b): Cat-only hurts QFT-like target-form workloads only
    // mildly here (our QFT compiles Cat-friendly), but must never help.
    let c = wl::rca(40);
    let p = oee(&c, 4);
    let full = AutoComm::new().compile(&c, &p).unwrap();
    let co = ablation::compile_cat_only(&c, &p).unwrap();
    assert!(co.metrics.total_comms >= full.metrics.total_comms);

    // Fig. 17(c): plain greedy scheduling is slower on TP-heavy workloads
    // (our QFT compiles all-Cat, so MCTR carries this assertion; see
    // EXPERIMENTS.md “Known deviations”).
    let c = wl::mctr(40);
    let p = oee(&c, 4);
    let full = AutoComm::new().compile(&c, &p).unwrap();
    let pg = ablation::compile_plain_greedy(&c, &p).unwrap();
    let ratio = pg.schedule.makespan / full.schedule.makespan;
    assert!(ratio > 1.1, "greedy/burst-greedy latency ratio {ratio} (paper 1.2–1.6)");
    // And it must never help, on any workload.
    let c = wl::qft(40);
    let p = oee(&c, 4);
    let full = AutoComm::new().compile(&c, &p).unwrap();
    let pg = ablation::compile_plain_greedy(&c, &p).unwrap();
    assert!(pg.schedule.makespan >= full.schedule.makespan - 1e-9);
}

#[test]
fn sensitivity_trends_match_fig17de() {
    // Fig. 17(d)/(e): the improvement factor grows with qubits-per-node and
    // shrinks when qubits spread over more nodes.
    let few_nodes = improv(&wl::qft(48), 2);
    let many_nodes = improv(&wl::qft(48), 12);
    assert!(few_nodes > many_nodes, "more qubits per node must help: {few_nodes} vs {many_nodes}");
}

#[test]
fn tot_comm_never_exceeds_rem_cx() {
    // Aggregation + assignment can never cost more than sparse comms.
    for (circuit, nodes) in [
        (wl::qft(30), 3),
        (wl::bv(30), 3),
        (wl::rca(30), 3),
        (wl::mctr(30), 3),
        (wl::qaoa_maxcut(30, 120, 3), 3),
        (wl::uccsd(8), 4),
    ] {
        let p = oee(&circuit, nodes);
        let r = AutoComm::new().compile(&circuit, &p).unwrap();
        assert!(r.metrics.total_comms <= r.metrics.total_rem_cx);
    }
}
