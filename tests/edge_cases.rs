//! Edge cases and failure injection across the pipeline.

use autocomm_repro::circuit::{
    from_qasm, to_qasm, unroll_circuit, CBitId, Circuit, Gate, Partition, QubitId,
};
use autocomm_repro::core::{
    aggregate, assign, schedule, AggregateOptions, AutoComm, AutoCommOptions, Placement,
    ScheduleOptions,
};
use autocomm_repro::hardware::{HardwareSpec, LatencyModel};

fn q(i: usize) -> QubitId {
    QubitId::new(i)
}

#[test]
fn empty_circuit_compiles_to_nothing() {
    let c = Circuit::new(4);
    let p = Partition::block(4, 2).unwrap();
    let r = AutoComm::new().compile(&c, &p).unwrap();
    assert_eq!(r.metrics.total_comms, 0);
    assert_eq!(r.schedule.makespan, 0.0);
    assert_eq!(r.aggregated.block_count(), 0);
}

#[test]
fn single_node_partition_means_no_communication() {
    let c = autocomm_repro::workloads::qft(8);
    let p = Partition::block(8, 1).unwrap();
    let r = AutoComm::new().compile(&c, &p).unwrap();
    assert_eq!(r.metrics.total_comms, 0);
    assert_eq!(r.schedule.epr_pairs, 0);
    assert!(r.schedule.makespan > 0.0, "local gates still take time");
}

#[test]
fn measurements_and_feedforward_pass_through() {
    // A program with mid-circuit measurement and a conditioned gate: the
    // compiler must route the remote gates into blocks while leaving the
    // classical control untouched and in order.
    let mut c = Circuit::with_cbits(4, 1);
    c.push(Gate::h(q(0))).unwrap();
    c.push(Gate::cx(q(0), q(2))).unwrap(); // remote
    c.push(Gate::measure(q(0), CBitId::new(0))).unwrap();
    c.push(Gate::x(q(1)).with_condition(CBitId::new(0))).unwrap();
    c.push(Gate::cx(q(1), q(3))).unwrap(); // remote
    let p = Partition::block(4, 2).unwrap();
    let r = AutoComm::new().compile(&c, &p).unwrap();
    assert_eq!(r.metrics.total_comms, 2);
    // Flattened program preserves the measure → conditioned-X order.
    let flat = r.aggregated.to_circuit();
    let measure_pos =
        flat.gates().iter().position(|g| g.cbit().is_some()).expect("measure survives");
    let cond_pos = flat
        .gates()
        .iter()
        .position(|g| g.condition().is_some())
        .expect("conditioned gate survives");
    assert!(measure_pos < cond_pos);
}

#[test]
fn zero_defer_window_still_compiles_correctly() {
    let (c, p) = autocomm_repro::workloads::random_distributed_circuit(5, 2, 40, 3);
    let c = unroll_circuit(&c).unwrap();
    let agg = aggregate(&c, &p, AggregateOptions { defer_limit: 0, ..AggregateOptions::default() });
    // Correctness must not depend on the window (only block quality does).
    assert!(autocomm_repro::sim::circuits_equivalent(&c, &agg.to_circuit(), 1e-8).unwrap());
    let remote = c.gates().iter().filter(|g| p.is_remote(g)).count();
    let in_blocks: usize = agg.blocks().map(|b| b.remote_gate_count()).sum();
    assert_eq!(remote, in_blocks);
}

#[test]
fn generous_defer_window_never_worsens_aggregation() {
    for seed in 0..5 {
        let (c, p) = autocomm_repro::workloads::random_distributed_circuit(6, 2, 60, seed);
        let c = unroll_circuit(&c).unwrap();
        let tight =
            aggregate(&c, &p, AggregateOptions { defer_limit: 0, ..AggregateOptions::default() });
        let wide =
            aggregate(&c, &p, AggregateOptions { defer_limit: 256, ..AggregateOptions::default() });
        assert!(
            wide.block_count() <= tight.block_count(),
            "seed {seed}: wider window produced more blocks"
        );
    }
}

#[test]
fn free_epr_latency_model_collapses_comm_cost() {
    // With tep = 0 the schedule should be dominated by protocol phases
    // only; sanity-check the latency model plumbing end to end.
    let c = autocomm_repro::workloads::bv(12);
    let p = Partition::block(12, 2).unwrap();
    let unrolled = unroll_circuit(&c).unwrap();
    let assigned = assign(&aggregate(&unrolled, &p, AggregateOptions::default()));
    let normal = schedule(
        &assigned,
        &Placement::identity(&p),
        &HardwareSpec::for_partition(&p),
        ScheduleOptions::plain_greedy(),
    );
    let free_epr = schedule(
        &assigned,
        &Placement::identity(&p),
        &HardwareSpec::for_partition(&p)
            .with_latency(LatencyModel { t_epr: 0.0, ..LatencyModel::default() }),
        ScheduleOptions::plain_greedy(),
    );
    assert!(free_epr.makespan < normal.makespan);
    assert_eq!(free_epr.epr_pairs, normal.epr_pairs);
}

#[test]
fn qasm_roundtrip_of_compiled_physical_program() {
    // Lower a small program to its physical form and round-trip the QASM.
    use autocomm_repro::core::lower_assigned;
    let mut c = Circuit::new(4);
    c.push(Gate::cx(q(0), q(2))).unwrap();
    c.push(Gate::cx(q(0), q(3))).unwrap();
    let p = Partition::block(4, 2).unwrap();
    let unrolled = unroll_circuit(&c).unwrap();
    let assigned = assign(&aggregate(&unrolled, &p, AggregateOptions::default()));
    let physical = lower_assigned(&assigned, &p).unwrap();
    let text = to_qasm(&physical.circuit);
    let parsed = from_qasm(&text).unwrap();
    assert_eq!(parsed, physical.circuit);
}

#[test]
fn orientation_ablation_changes_only_symmetric_gates() {
    let c = autocomm_repro::workloads::qaoa_maxcut(20, 60, 9);
    let p = Partition::block(20, 2).unwrap();
    let with = AutoComm::new().compile(&c, &p).unwrap();
    let without = AutoComm::with_options(AutoCommOptions {
        orient_symmetric: false,
        ..AutoCommOptions::default()
    })
    .compile(&c, &p)
    .unwrap();
    // Orientation can only help QAOA (more control-form Cat blocks).
    assert!(with.metrics.total_comms <= without.metrics.total_comms);
    assert!(with.metrics.tp_comms <= without.metrics.tp_comms);
    // Remote CX totals are identical — only direction choices differ.
    assert_eq!(with.metrics.total_rem_cx, without.metrics.total_rem_cx);
}

#[test]
fn mcx_workload_unrolls_without_ancilla_failures() {
    // MCTR with the paper's node counts always has enough dirty ancillas.
    for n in [20usize, 50, 100] {
        let c = autocomm_repro::workloads::mctr(n);
        assert!(unroll_circuit(&c).is_ok(), "MCTR-{n} must unroll");
    }
}

#[test]
fn barrier_fences_aggregation() {
    // A barrier between two remote gates of the same pair must keep them in
    // separate blocks (it commutes with nothing).
    let mut c = Circuit::new(4);
    c.push(Gate::cx(q(0), q(2))).unwrap();
    c.push(Gate::barrier(&[q(0), q(1), q(2), q(3)])).unwrap();
    c.push(Gate::cx(q(0), q(3))).unwrap();
    let p = Partition::block(4, 2).unwrap();
    let agg = aggregate(&c, &p, AggregateOptions::default());
    assert_eq!(agg.block_count(), 2);
}
