//! Property tests for the OpenQASM-2 import/export pair and for structural
//! invariants of the commutation oracle.

use autocomm_repro::circuit::{commutes, from_qasm, to_qasm, Gate, QubitId};
use autocomm_repro::workloads::random_circuit;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Export → import is the identity on random circuits.
    #[test]
    fn qasm_round_trip_is_identity(
        seed in 0u64..10_000,
        qubits in 2usize..8,
        gates in 0usize..60,
    ) {
        let c = random_circuit(qubits, gates, seed);
        let parsed = from_qasm(&to_qasm(&c)).unwrap();
        prop_assert_eq!(parsed.num_qubits(), c.num_qubits());
        prop_assert_eq!(parsed.len(), c.len());
        for (a, b) in parsed.gates().iter().zip(c.gates()) {
            prop_assert_eq!(a.kind(), b.kind());
            prop_assert_eq!(a.qubits(), b.qubits());
            for (pa, pb) in a.params().iter().zip(b.params()) {
                prop_assert!((pa - pb).abs() < 1e-12);
            }
        }
    }

    /// The commutation oracle is symmetric.
    #[test]
    fn commutation_is_symmetric(seed in 0u64..10_000) {
        let c = random_circuit(4, 20, seed);
        for a in c.gates() {
            for b in c.gates() {
                prop_assert_eq!(commutes(a, b), commutes(b, a), "{} vs {}", a, b);
            }
        }
    }

    /// Every unitary gate commutes with itself, and gates on disjoint
    /// supports always commute.
    #[test]
    fn commutation_basics(seed in 0u64..10_000) {
        let c = random_circuit(6, 20, seed);
        for g in c.gates() {
            prop_assert!(commutes(g, g), "{} with itself", g);
        }
        for a in c.gates() {
            for b in c.gates() {
                let disjoint = a.qubits().iter().all(|x| !b.acts_on(*x));
                if disjoint {
                    prop_assert!(commutes(a, b), "{} vs {} (disjoint)", a, b);
                }
            }
        }
    }
}

#[test]
fn qasm_rejects_malformed_programs() {
    for bad in [
        "qreg q[2];\ncx q[0];\n",               // wrong arity
        "qreg q[2];\nrz q[0];\n",               // missing parameter
        "qreg q[2];\nif (c[0] == 0) x q[0];\n", // unsupported condition value
        "qreg q[2];\nmeasure q[0];\n",          // measure without target
        "qreg q[2];\ncx q[0], q[5];\n",         // out-of-range operand
    ] {
        assert!(from_qasm(bad).is_err(), "accepted: {bad}");
    }
}

#[test]
fn exported_gate_text_is_stable() {
    // Pin the textual forms downstream tools would parse.
    let q = QubitId::new;
    let mut c = autocomm_repro::circuit::Circuit::new(3);
    c.push(Gate::crz(0.5, q(0), q(1))).unwrap();
    c.push(Gate::ccx(q(0), q(1), q(2))).unwrap();
    let text = to_qasm(&c);
    assert!(text.contains("crz(0.5) q[0], q[1];"));
    assert!(text.contains("ccx q[0], q[1], q[2];"));
}
