//! Property tests: the symbolic commutation oracle and the gate unrolling
//! rules are sound with respect to dense unitaries.

use autocomm_repro::circuit::{commutes, unroll_circuit, Circuit, Gate, GateKind, QubitId};
use autocomm_repro::sim::{circuit_unitary, circuits_equivalent, equivalent_up_to_phase};
use proptest::prelude::*;

fn q(i: usize) -> QubitId {
    QubitId::new(i)
}

/// A strategy producing arbitrary unitary gates over a 4-qubit register.
fn arb_gate() -> impl Strategy<Value = Gate> {
    let qubit = 0..4usize;
    let angle = -6.3..6.3f64;
    prop_oneof![
        qubit.clone().prop_map(|a| Gate::h(q(a))),
        qubit.clone().prop_map(|a| Gate::x(q(a))),
        qubit.clone().prop_map(|a| Gate::y(q(a))),
        qubit.clone().prop_map(|a| Gate::z(q(a))),
        qubit.clone().prop_map(|a| Gate::s(q(a))),
        qubit.clone().prop_map(|a| Gate::t(q(a))),
        qubit.clone().prop_map(|a| Gate::sx(q(a))),
        (qubit.clone(), angle.clone()).prop_map(|(a, t)| Gate::rx(t, q(a))),
        (qubit.clone(), angle.clone()).prop_map(|(a, t)| Gate::ry(t, q(a))),
        (qubit.clone(), angle.clone()).prop_map(|(a, t)| Gate::rz(t, q(a))),
        (qubit.clone(), angle.clone()).prop_map(|(a, t)| Gate::phase(t, q(a))),
        pair().prop_map(|(a, b)| Gate::cx(q(a), q(b))),
        pair().prop_map(|(a, b)| Gate::cz(q(a), q(b))),
        pair().prop_map(|(a, b)| Gate::swap(q(a), q(b))),
        (pair(), angle.clone()).prop_map(|((a, b), t)| Gate::crz(t, q(a), q(b))),
        (pair(), angle.clone()).prop_map(|((a, b), t)| Gate::cp(t, q(a), q(b))),
        (pair(), angle).prop_map(|((a, b), t)| Gate::rzz(t, q(a), q(b))),
    ]
}

fn pair() -> impl Strategy<Value = (usize, usize)> {
    (0..4usize, 0..3usize).prop_map(|(a, d)| (a, (a + 1 + d) % 4))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// If the symbolic oracle says two gates commute, their dense unitaries
    /// must commute exactly.
    #[test]
    fn symbolic_commutation_is_sound(a in arb_gate(), b in arb_gate()) {
        if commutes(&a, &b) {
            let mut ab = Circuit::new(4);
            ab.push(a.clone()).unwrap();
            ab.push(b.clone()).unwrap();
            let mut ba = Circuit::new(4);
            ba.push(b.clone()).unwrap();
            ba.push(a.clone()).unwrap();
            let ua = circuit_unitary(&ab).unwrap();
            let ub = circuit_unitary(&ba).unwrap();
            prop_assert!(
                equivalent_up_to_phase(&ua, &ub, 1e-9),
                "oracle claimed {a} and {b} commute"
            );
        }
    }

    /// Unrolling any gate preserves its unitary exactly.
    #[test]
    fn unrolling_is_sound(g in arb_gate()) {
        let mut orig = Circuit::new(4);
        orig.push(g.clone()).unwrap();
        let unrolled = unroll_circuit(&orig).unwrap();
        prop_assert!(
            circuits_equivalent(&orig, &unrolled, 1e-9).unwrap(),
            "unrolling changed {g}"
        );
        // And the result is in the CX + U3 basis.
        for ug in unrolled.gates() {
            prop_assert!(ug.num_qubits() == 1 || ug.kind() == GateKind::Cx);
        }
    }

    /// Unrolling a whole random circuit preserves semantics.
    #[test]
    fn circuit_unrolling_is_sound(seed in 0u64..500) {
        let c = autocomm_repro::workloads::random_circuit(4, 12, seed);
        let unrolled = unroll_circuit(&c).unwrap();
        prop_assert!(circuits_equivalent(&c, &unrolled, 1e-8).unwrap());
    }
}

#[test]
fn anti_commuting_pairs_are_never_claimed() {
    // A non-exhaustive blacklist of famous non-commuting pairs.
    let pairs = vec![
        (Gate::x(q(0)), Gate::z(q(0))),
        (Gate::h(q(0)), Gate::t(q(0))),
        (Gate::cx(q(0), q(1)), Gate::cx(q(1), q(0))),
        (Gate::cx(q(0), q(1)), Gate::h(q(0))),
        (Gate::rz(0.5, q(0)), Gate::rx(0.5, q(0))),
    ];
    for (a, b) in pairs {
        assert!(!commutes(&a, &b), "{a} vs {b}");
    }
}
