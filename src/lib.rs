//! Umbrella crate for the AutoComm (MICRO 2022) reproduction.
//!
//! This crate re-exports the whole workspace behind one dependency so the
//! `examples/` binaries and `tests/` integration suite can reach every
//! subsystem. The implementation lives in the `crates/` members:
//!
//! * [`circuit`] — quantum circuit IR, commutation analysis, gate unrolling;
//! * [`sim`] — state-vector simulation and unitary equivalence checking;
//! * [`hardware`] — node/latency model of the distributed machine;
//! * [`partition`] — static qubit-to-node partitioning (OEE);
//! * [`protocols`] — Cat-Comm / TP-Comm physical expansions;
//! * [`core`] — the AutoComm passes (aggregate → assign → schedule);
//! * [`baselines`] — Ferrari-style and GP-TP baseline compilers + ablations;
//! * [`workloads`] — benchmark circuit generators.

pub use autocomm as core;
pub use dqc_baselines as baselines;
pub use dqc_circuit as circuit;
pub use dqc_hardware as hardware;
pub use dqc_partition as partition;
pub use dqc_protocols as protocols;
pub use dqc_sim as sim;
pub use dqc_workloads as workloads;
