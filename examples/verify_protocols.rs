//! End-to-end functional verification demo: compile a distributed program,
//! lower it through the physical Cat-Comm / TP-Comm protocol expansions
//! (EPR preparations, mid-circuit measurements, classically conditioned
//! corrections), simulate the physical circuit, and check that the logical
//! register's state matches the original program exactly.
//!
//! Run with `cargo run --example verify_protocols`.

use autocomm::{aggregate, assign, lower_assigned, AggregateOptions};
use dqc_circuit::{unroll_circuit, Partition};
use dqc_sim::{Complex, SplitMix64, StateVector};
use dqc_workloads::{bv_with_secret, qft, random_distributed_circuit};

fn verify(name: &str, circuit: &dqc_circuit::Circuit, partition: &Partition, seed: u64) {
    let unrolled = unroll_circuit(circuit).expect("unrolls");
    let aggregated = aggregate(&unrolled, partition, AggregateOptions::default());
    let assigned = assign(&aggregated);
    let physical = lower_assigned(&assigned, partition).expect("lowers");

    // Evolve a random input under the logical circuit...
    let mut rng = SplitMix64::new(seed);
    let input = StateVector::random_state(circuit.num_qubits(), &mut rng).expect("small");
    let mut expected = input.clone();
    expected.run(&unrolled, &mut rng.fork()).expect("simulates");

    // ...and under the physical lowering (comm qubits start in |0⟩).
    let total = physical.circuit.num_qubits();
    let mut amps = vec![Complex::ZERO; 1 << total];
    amps[..input.amplitudes().len()].copy_from_slice(input.amplitudes());
    let mut state = StateVector::from_amplitudes(amps).expect("small");
    state.run(&physical.circuit, &mut rng).expect("simulates");

    let fidelity =
        state.subset_fidelity(&expected, &physical.logical_qubits()).expect("aligned registers");
    println!(
        "{name:<28} {} EPR pairs ({} cat / {} tp blocks)  fidelity {fidelity:.12}",
        physical.epr_pairs, physical.cat_blocks, physical.tp_blocks
    );
    assert!((fidelity - 1.0).abs() < 1e-8, "fidelity must be 1");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("verifying compiled programs against state-vector simulation:\n");

    let partition = Partition::block(6, 2)?;
    verify("QFT-6 over 2 nodes", &qft(6), &partition, 11);

    let partition = Partition::block(7, 3)?;
    verify(
        "BV-7 over 3 nodes",
        &bv_with_secret(&[true, true, false, true, true, true]),
        &partition,
        22,
    );

    for seed in 0..4 {
        let (circuit, partition) = random_distributed_circuit(6, 3, 40, seed);
        verify(&format!("random-6q-3n (seed {seed})"), &circuit, &partition, 33 + seed);
    }

    println!("\nall lowerings reproduce the logical semantics exactly.");
    Ok(())
}
