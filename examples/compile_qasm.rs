//! Compile an OpenQASM-2 program for a distributed machine.
//!
//! Usage: `cargo run --example compile_qasm [file.qasm] [num_nodes]`
//!
//! Without arguments a built-in sample is compiled. The example parses the
//! program with `dqc-circuit`'s QASM front end, maps it with OEE, compiles
//! it with AutoComm, and emits the physically lowered circuit (EPR
//! preparations, measurements, conditioned corrections) back as QASM.

use autocomm::{aggregate, assign, lower_assigned, AggregateOptions, AutoComm};
use dqc_circuit::{from_qasm, to_qasm, unroll_circuit};
use dqc_partition::{oee_partition, InteractionGraph};

const SAMPLE: &str = "OPENQASM 2.0;
include \"qelib1.inc\";
qreg q[6];
h q[0];
cx q[0], q[3];
cx q[0], q[4];
t q[3];
cx q[1], q[4];
cx q[4], q[1];
cp(0.785398) q[2], q[5];
cx q[2], q[5];
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let source = match args.next() {
        Some(path) if path != "-" => std::fs::read_to_string(&path)?,
        _ => SAMPLE.to_string(),
    };
    let num_nodes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);

    let circuit = from_qasm(&source)?;
    println!(
        "parsed {} gates over {} qubits; compiling for {num_nodes} nodes",
        circuit.len(),
        circuit.num_qubits()
    );

    let unrolled = unroll_circuit(&circuit)?;
    let graph = InteractionGraph::from_circuit(&unrolled);
    let partition = oee_partition(&graph, num_nodes)?;
    let result = AutoComm::new().compile(&circuit, &partition)?;
    println!(
        "AutoComm: {} comms ({} TP), latency {:.1} CX units, {} blocks",
        result.metrics.total_comms,
        result.metrics.tp_comms,
        result.schedule.makespan,
        result.metrics.num_blocks,
    );

    // Physically lower and dump the distributed program as QASM again.
    let aggregated = aggregate(&unrolled, &partition, AggregateOptions::default());
    let assigned = assign(&aggregated);
    let physical = lower_assigned(&assigned, &partition)?;
    println!(
        "\nlowered physical circuit ({} qubits incl. comm, {} EPR pairs):\n",
        physical.circuit.num_qubits(),
        physical.epr_pairs,
    );
    print!("{}", to_qasm(&physical.circuit));
    Ok(())
}
