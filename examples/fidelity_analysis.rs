//! Fidelity analysis: translate the communication and latency reductions
//! into the estimated program fidelity that motivates the paper (§1 —
//! remote operations are ≈ 40× noisier than local gates, and schedule time
//! costs decoherence).
//!
//! Run with `cargo run --example fidelity_analysis`.

use autocomm::AutoComm;
use dqc_baselines::{compile_ferrari, compile_gp_tp};
use dqc_circuit::{unroll_circuit, CircuitStats};
use dqc_hardware::{FidelityModel, HardwareSpec};
use dqc_partition::{oee_partition, InteractionGraph};
use dqc_workloads::{bv, ghz, qft, qpe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = FidelityModel::default();
    println!(
        "error model: e_1q={:.0e} e_2q={:.0e} e_meas={:.0e} e_epr={:.0e} gamma={:.0e}\n",
        model.e_1q, model.e_2q, model.e_measure, model.e_epr, model.gamma
    );
    println!(
        "{:<14} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "program", "F(auto)", "F(sparse)", "F(gp-tp)", "EPR(a)", "EPR(s)", "EPR(g)"
    );
    println!("{:-<14} {:->9} {:->9} {:->9}-|-{:->9} {:->9} {:->9}", "", "", "", "", "", "", "");

    let programs: Vec<(&str, dqc_circuit::Circuit, usize)> = vec![
        ("GHZ-24/4", ghz(24), 4),
        ("QFT-20/4", qft(20), 4),
        ("BV-24/4", bv(24), 4),
        ("QPE-15/4", qpe(15, 0.3), 4),
    ];

    for (name, circuit, nodes) in programs {
        let unrolled = unroll_circuit(&circuit)?;
        let graph = InteractionGraph::from_circuit(&unrolled);
        let partition = oee_partition(&graph, nodes)?;
        let hw = HardwareSpec::for_partition(&partition);
        let stats = CircuitStats::of(&unrolled, Some(&partition));

        let auto = AutoComm::new().compile(&circuit, &partition)?;
        let sparse = compile_ferrari(&circuit, &partition, &hw)?;
        let gp = compile_gp_tp(&circuit, &partition, &hw)?;

        let estimate = |epr: usize, makespan: f64| {
            let inputs = FidelityModel::inputs_for(
                stats.num_1q,
                stats.num_2q,
                epr,
                circuit.num_qubits(),
                makespan,
                hw.latency(),
            );
            model.estimate(&inputs)
        };
        let f_auto = estimate(auto.schedule.epr_pairs, auto.schedule.makespan);
        let f_sparse = estimate(sparse.total_comms, sparse.makespan);
        let f_gp = estimate(gp.total_comms, gp.makespan);

        println!(
            "{name:<14} {f_auto:>9.4} {f_sparse:>9.4} {f_gp:>9.4} | {:>9} {:>9} {:>9}",
            auto.schedule.epr_pairs, sparse.total_comms, gp.total_comms
        );
    }

    println!("\ncommunication dominates the error budget at realistic EPR error");
    println!("rates, so the comm reduction translates almost directly into the");
    println!("fidelity gap between AutoComm and the per-CX baseline.");
    Ok(())
}
