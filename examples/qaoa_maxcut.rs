//! QAOA max-cut on a random graph, compiled for a modular quantum machine —
//! the near-term application workload from the paper's evaluation, compared
//! across AutoComm, the sparse baseline, and GP-TP.
//!
//! Run with `cargo run --example qaoa_maxcut [qubits] [nodes]`.

use autocomm::AutoComm;
use dqc_baselines::{compile_ferrari, compile_gp_tp};
use dqc_circuit::unroll_circuit;
use dqc_hardware::HardwareSpec;
use dqc_partition::{oee_partition, InteractionGraph};
use dqc_workloads::qaoa_maxcut;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let num_qubits: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(40);
    let num_nodes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let num_edges = (20 * num_qubits).min(num_qubits * (num_qubits - 1) / 4);

    println!("QAOA max-cut: {num_qubits} vertices, {num_edges} edges, {num_nodes} nodes");
    let circuit = qaoa_maxcut(num_qubits, num_edges, 2022);

    // Map qubits to nodes with OEE over the interaction graph.
    let unrolled = unroll_circuit(&circuit)?;
    let graph = InteractionGraph::from_circuit(&unrolled);
    let block = dqc_circuit::Partition::block(num_qubits, num_nodes)?;
    let partition = oee_partition(&graph, num_nodes)?;
    println!(
        "OEE mapping: cut {} → {} remote interactions",
        graph.cut_weight(&block),
        graph.cut_weight(&partition),
    );

    let hw = HardwareSpec::for_partition(&partition);
    let autocomm = AutoComm::new().compile(&circuit, &partition)?;
    let sparse = compile_ferrari(&circuit, &partition, &hw)?;
    let gp = compile_gp_tp(&circuit, &partition, &hw)?;

    println!("\n{:<22} {:>10} {:>14}", "compiler", "EPR pairs", "latency (CX)");
    println!("{:-<22} {:->10} {:->14}", "", "", "");
    println!(
        "{:<22} {:>10} {:>14.1}",
        "AutoComm", autocomm.metrics.total_comms, autocomm.schedule.makespan
    );
    println!("{:<22} {:>10} {:>14.1}", "sparse (Cat per CX)", sparse.total_comms, sparse.makespan);
    println!("{:<22} {:>10} {:>14.1}", "GP-TP (relocation)", gp.total_comms, gp.makespan);

    println!(
        "\nAutoComm vs sparse: {:.2}x fewer comms, {:.2}x faster",
        sparse.total_comms as f64 / autocomm.metrics.total_comms as f64,
        sparse.makespan / autocomm.schedule.makespan,
    );
    println!(
        "AutoComm vs GP-TP:  {:.2}x fewer comms, {:.2}x faster",
        gp.total_comms as f64 / autocomm.metrics.total_comms as f64,
        gp.makespan / autocomm.schedule.makespan,
    );
    Ok(())
}
