//! Sensitivity study in the spirit of paper Fig. 17(d)(e): how the
//! communication-reduction factor responds to register size, node count,
//! and the per-node communication-qubit budget (the paper's future-work
//! knob).
//!
//! Run with `cargo run --example sensitivity`.

use autocomm::{AutoComm, AutoCommOptions, BufferPolicy};
use dqc_baselines::compile_ferrari;
use dqc_circuit::unroll_circuit;
use dqc_hardware::{HardwareSpec, NetworkTopology};
use dqc_partition::{oee_partition, InteractionGraph};
use dqc_workloads::qft;

fn factor(num_qubits: usize, num_nodes: usize, comm_qubits: usize) -> (f64, f64) {
    let circuit = qft(num_qubits);
    let unrolled = unroll_circuit(&circuit).expect("unrolls");
    let graph = InteractionGraph::from_circuit(&unrolled);
    let partition = oee_partition(&graph, num_nodes).expect("valid nodes");
    let hw = HardwareSpec::for_partition(&partition)
        .with_comm_qubits(comm_qubits)
        .expect("positive budget");
    let result = AutoComm::new().compile_on(&circuit, &partition, &hw).expect("compiles");
    let baseline = compile_ferrari(&circuit, &partition, &hw).expect("compiles");
    (
        baseline.total_comms as f64 / result.metrics.total_comms.max(1) as f64,
        baseline.makespan / result.schedule.makespan.max(1e-9),
    )
}

fn main() {
    println!("QFT improv. factor vs register size (4 nodes, 2 comm qubits):");
    for q in [16usize, 24, 32, 48, 64] {
        let (improv, lat) = factor(q, 4, 2);
        println!("  {q:>3} qubits: improv {improv:.2}x, LAT-DEC {lat:.2}x");
    }

    println!("\nQFT-48 improv. factor vs node count:");
    for n in [2usize, 3, 4, 6, 8, 12] {
        let (improv, lat) = factor(48, n, 2);
        println!("  {n:>3} nodes: improv {improv:.2}x, LAT-DEC {lat:.2}x");
    }

    println!("\nQFT-32/4 LAT-DEC vs comm-qubit budget (paper future work):");
    for c in [1usize, 2, 4, 8] {
        let (_, lat) = factor(32, 4, c);
        println!("  {c:>3} comm qubits/node: LAT-DEC {lat:.2}x");
    }

    println!("\nQFT-32/4 on a 4-chain: makespan vs EPR buffering policy:");
    let circuit = qft(32);
    let unrolled = unroll_circuit(&circuit).expect("unrolls");
    let partition =
        oee_partition(&InteractionGraph::from_circuit(&unrolled), 4).expect("valid nodes");
    let hw = HardwareSpec::for_partition(&partition)
        .with_topology(NetworkTopology::linear(4).expect("valid chain"))
        .expect("valid machine");
    for policy in [
        BufferPolicy::OnDemand,
        BufferPolicy::Prefetch { depth: 1 },
        BufferPolicy::Prefetch { depth: 4 },
        BufferPolicy::Greedy,
    ] {
        let result = AutoComm::with_options(AutoCommOptions::default().with_buffer(policy))
            .compile_on(&circuit, &partition, &hw)
            .expect("compiles");
        let s = &result.schedule;
        println!(
            "  {:>10}: makespan {:>8.1}, {:>3}/{} prefetch hits, mean pair age {:.1}",
            policy.name(),
            s.makespan,
            s.buffering.prefetch_hits,
            s.buffering.requests,
            s.buffering.mean_pair_age
        );
    }

    println!("\ntrends: factors grow with qubits-per-node and shrink as nodes");
    println!("multiply (paper Fig. 17d/e); extra comm qubits buy schedule slack,");
    println!("and prefetched EPR buffers hide generation latency behind computation.");
}
