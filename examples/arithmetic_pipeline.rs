//! Walks the paper's worked example (Figures 4, 8, and 11) through every
//! AutoComm pass, printing the intermediate artifacts: a small arithmetic
//! snippet over three nodes is aggregated into burst blocks, the blocks are
//! assigned Cat-Comm or TP-Comm, and the schedule is laid on the
//! two-comm-qubit hardware model.
//!
//! Run with `cargo run --example arithmetic_pipeline`.

use autocomm::{
    aggregate, assign, schedule, AggregateOptions, AssignedItem, CommMetrics, Item, Placement,
    ScheduleOptions, Scheme,
};
use dqc_circuit::{Circuit, Gate, NodeId, Partition, QubitId};
use dqc_hardware::HardwareSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 7-qubit snippet in the spirit of paper Fig. 4 (modified from
    // quantum arithmetic): q0,q1 on node A, q2,q3,q4 on node B, q5,q6 on
    // node C. It mixes shared-control bursts, a T† obstruction, and
    // bidirectional interactions.
    let q: Vec<QubitId> = (0..7).map(QubitId::new).collect();
    let mut circuit = Circuit::new(7);
    circuit.push(Gate::cx(q[0], q[2]))?; // q0 → node B   (burst 1)
    circuit.push(Gate::t(q[2]))?;
    circuit.push(Gate::cx(q[0], q[3]))?; // q0 → node B
    circuit.push(Gate::cx(q[1], q[3]))?; // q1 → node B
    circuit.push(Gate::cx(q[0], q[5]))?; // q0 → node C   (interleaved pair)
    circuit.push(Gate::cx(q[2], q[0]))?; // node B → q0   (direction flip)
    circuit.push(Gate::tdg(q[0]))?; // obstruction on the burst qubit
    circuit.push(Gate::cx(q[0], q[4]))?; // q0 → node B
    circuit.push(Gate::h(q[6]))?;
    circuit.push(Gate::cx(q[0], q[6]))?; // q0 → node C
    circuit.push(Gate::cx(q[4], q[1]))?; // node B → node A

    let assignment = [0, 0, 1, 1, 1, 2, 2].map(NodeId::new).to_vec();
    let partition = Partition::from_assignment(assignment, 3)?;

    println!("input program ({} gates):", circuit.len());
    for (i, g) in circuit.gates().iter().enumerate() {
        let marker = if partition.is_remote(g) { "remote" } else { "local" };
        println!("  {i:>2}: {g:<14} [{marker}]");
    }

    // Pass 1: communication aggregation (paper §4.2, Fig. 8).
    let aggregated = aggregate(&circuit, &partition, AggregateOptions::default());
    println!("\nafter aggregation ({} blocks):", aggregated.block_count());
    let table = aggregated.ir().table();
    for (i, item) in aggregated.items().iter().enumerate() {
        match item {
            Item::Local(id) => println!("  {i:>2}: {}", aggregated.gate(*id)),
            Item::Block(b) => {
                println!("  {i:>2}: {b}");
                for g in b.gates(table) {
                    println!("        | {g}");
                }
            }
        }
    }

    // Pass 2: communication assignment (paper §4.3, Fig. 11a).
    let assigned = assign(&aggregated);
    println!("\nafter assignment:");
    for item in assigned.items() {
        if let AssignedItem::Block(b) = item {
            let scheme = match b.scheme {
                Scheme::Cat(o) => format!("Cat-Comm ({o:?})"),
                Scheme::Tp => "TP-Comm".to_string(),
            };
            println!("  {}  →  {scheme}, {} comm(s), {} segment(s)", b.block, b.comms, b.segments);
        }
    }
    let metrics = CommMetrics::of(&assigned);
    println!(
        "\nmetrics: {} comms total ({} TP), {} remote CX, peak {:.1} REM CX/comm",
        metrics.total_comms, metrics.tp_comms, metrics.total_rem_cx, metrics.peak_rem_cx
    );

    // Pass 3: communication scheduling (paper §4.4, Fig. 11b).
    let hw = HardwareSpec::for_partition(&partition);
    let placement = Placement::identity(&partition);
    let summary = schedule(&assigned, &placement, &hw, ScheduleOptions::default());
    let plain = schedule(&assigned, &placement, &hw, ScheduleOptions::plain_greedy());
    println!(
        "\nschedule (burst-greedy): {:.1} CX units, {} EPR pairs",
        summary.makespan, summary.epr_pairs
    );
    println!(
        "schedule (plain greedy): {:.1} CX units, {} EPR pairs",
        plain.makespan, plain.epr_pairs
    );
    println!(
        "burst-greedy saves {:.1}x latency; TP fusion saved {} teleport(s)",
        plain.makespan / summary.makespan,
        summary.fusion_savings
    );

    // The baseline would pay one EPR pair per remote CX.
    let remote = circuit.gates().iter().filter(|g| partition.is_remote(g)).count();
    println!(
        "\nsparse baseline would issue {} comms → improv. factor {:.2}x",
        remote,
        remote as f64 / metrics.total_comms as f64
    );
    Ok(())
}
