//! Quickstart: compile a distributed QFT with AutoComm and compare it
//! against the sparse Cat-per-CX baseline.
//!
//! Run with `cargo run --example quickstart`.

use autocomm::AutoComm;
use dqc_baselines::compile_ferrari;
use dqc_circuit::{unroll_circuit, CircuitStats};
use dqc_hardware::HardwareSpec;
use dqc_partition::{oee_partition, InteractionGraph};
use dqc_workloads::qft;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 16-qubit QFT spread over 4 quantum nodes (4 qubits per node).
    let circuit = qft(16);
    let unrolled = unroll_circuit(&circuit)?;
    let graph = InteractionGraph::from_circuit(&unrolled);
    let partition = oee_partition(&graph, 4)?;
    let hw = HardwareSpec::for_partition(&partition);

    let stats = CircuitStats::of(&unrolled, Some(&partition));
    println!("program: QFT-16 over 4 nodes");
    println!("  gates (CX+U3 basis): {}", stats.num_gates);
    println!("  two-qubit gates:     {}", stats.num_2q);
    println!("  remote CX gates:     {}", stats.num_remote_2q);

    // AutoComm: aggregate → assign → schedule.
    let result = AutoComm::new().compile(&circuit, &partition)?;
    println!("\nAutoComm:");
    println!("  burst blocks:        {}", result.metrics.num_blocks);
    println!("  total comms (EPR):   {}", result.metrics.total_comms);
    println!("  of which TP-Comm:    {}", result.metrics.tp_comms);
    println!("  peak REM CX / comm:  {:.1}", result.metrics.peak_rem_cx);
    println!("  latency (CX units):  {:.1}", result.schedule.makespan);

    // The sparse baseline pays one EPR pair per remote CX.
    let baseline = compile_ferrari(&circuit, &partition, &hw)?;
    println!("\nSparse baseline (one Cat-Comm per remote CX):");
    println!("  total comms (EPR):   {}", baseline.total_comms);
    println!("  latency (CX units):  {:.1}", baseline.makespan);

    println!(
        "\nimprov. factor: {:.2}x   LAT-DEC factor: {:.2}x",
        baseline.total_comms as f64 / result.metrics.total_comms as f64,
        baseline.makespan / result.schedule.makespan,
    );
    Ok(())
}
