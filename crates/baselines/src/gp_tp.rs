//! The GP-TP baseline: graph-partition-style compilation with TP-Comm
//! qubit relocation (paper §5.3).

use dqc_circuit::{unroll_circuit, Circuit, CircuitError, Partition};
use dqc_hardware::{HardwareSpec, Timeline};

use crate::BaselineResult;

/// Compiles `circuit` GP-TP style: the qubit → node map starts from the
/// static OEE assignment and every remote two-qubit gate triggers a
/// teleport-based relocation that makes it local — the moving operand is
/// *exchanged* with the least-recently-used qubit of the peer node (keeping
/// node loads constant), at the paper's cost of one remote SWAP = two
/// EPR pairs. Gates then execute locally under ASAP scheduling.
///
/// # Errors
///
/// Propagates unrolling failures ([`CircuitError`]).
///
/// # Panics
///
/// Panics if some node holds fewer than two qubits (no exchange victim).
pub fn compile_gp_tp(
    circuit: &Circuit,
    partition: &Partition,
    hw: &HardwareSpec,
) -> Result<BaselineResult, CircuitError> {
    let unrolled = unroll_circuit(circuit)?;
    let lat = *hw.latency();
    let mut mapping = partition.clone();
    let mut tl = Timeline::new(unrolled.num_qubits(), hw);
    let mut last_use = vec![0.0f64; unrolled.num_qubits()];
    let mut total_comms = 0usize;
    let mut total_rem_cx = 0usize;
    let mut relocations = 0usize;

    for gate in unrolled.gates() {
        if gate.is_two_qubit_unitary() && partition.is_remote(gate) {
            // Throughput accounting uses the static partition: how many of
            // the program's remote gates each communication ends up serving.
            total_rem_cx += 1;
        }
        if gate.is_two_qubit_unitary() && mapping.is_remote(gate) {
            let mover = gate.qubits()[0];
            let stay = gate.qubits()[1];
            let dest = mapping.node_of(stay);
            // Exchange victim: the least-recently-used qubit of the peer
            // node, excluding the gate's resident operand.
            let victim = mapping
                .qubits_on(dest)
                .into_iter()
                .filter(|&v| v != stay)
                .min_by(|a, b| last_use[a.index()].total_cmp(&last_use[b.index()]))
                .expect("peer node must hold an exchange victim");

            // One remote SWAP via TP-Comm: two EPR pairs, two teleports
            // that can overlap (each node has two comm qubits).
            let src = mapping.node_of(mover);
            let claim_out = tl.claim_comm(src, dest, 0.0);
            let claim_back = tl.claim_comm(dest, src, 0.0);
            let out_start = claim_out.epr_ready.max(tl.qubit_free_at(mover));
            let back_start = claim_back.epr_ready.max(tl.qubit_free_at(victim));
            let out_end = out_start + lat.teleport();
            let back_end = back_start + lat.teleport();
            tl.occupy_qubits("tp-move", &[mover], out_start, out_end);
            tl.occupy_qubits("tp-move", &[victim], back_start, back_end);
            tl.release_comm(&claim_out, out_end.max(claim_out.epr_ready));
            tl.release_comm(&claim_back, back_end.max(claim_back.epr_ready));
            mapping.swap_qubits(mover, victim);
            total_comms += 2;
            relocations += 1;

            debug_assert!(!mapping.is_remote(gate), "relocation makes the gate local");
        }
        let (_, end) = tl.schedule_gate(gate);
        for &q in gate.qubits() {
            last_use[q.index()] = end;
        }
    }

    Ok(BaselineResult { total_comms, makespan: tl.makespan(), total_rem_cx, relocations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_circuit::{Gate, QubitId};

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn relocation_costs_two_comms() {
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        let r = compile_gp_tp(&c, &p, &HardwareSpec::for_partition(&p)).unwrap();
        assert_eq!(r.total_comms, 2);
        assert_eq!(r.relocations, 1);
    }

    #[test]
    fn relocated_qubit_stays_for_follow_up_gates() {
        // After moving q0 next to q2, the second CX(q0,q2) is free.
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::cx(q(0), q(2))).unwrap();
        let r = compile_gp_tp(&c, &p, &HardwareSpec::for_partition(&p)).unwrap();
        assert_eq!(r.total_comms, 2);
        assert_eq!(r.rem_cx_per_comm(), 1.0); // 2 (static) remote CX / 2 comms
    }

    #[test]
    fn ping_pong_pattern_is_expensive() {
        // Alternating partners force repeated relocations — the paper's
        // argument for burst communication over qubit movement (§5.3).
        let p = Partition::block(6, 3).unwrap();
        let mut c = Circuit::new(6);
        for _ in 0..3 {
            c.push(Gate::cx(q(0), q(2))).unwrap(); // node 1
            c.push(Gate::cx(q(0), q(4))).unwrap(); // node 2
        }
        let r = compile_gp_tp(&c, &p, &HardwareSpec::for_partition(&p)).unwrap();
        assert_eq!(r.relocations, 6);
        assert_eq!(r.total_comms, 12);
    }

    #[test]
    fn loads_stay_balanced() {
        let p = Partition::block(6, 3).unwrap();
        let mut c = Circuit::new(6);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::cx(q(1), q(4))).unwrap();
        c.push(Gate::cx(q(3), q(5))).unwrap();
        // The exchange-based relocation keeps two qubits on each node, so
        // compilation never panics for want of a victim. The exchanges even
        // happen to make the third gate local (q3 and q5 both end up on
        // node 0), so only two relocations are needed.
        let r = compile_gp_tp(&c, &p, &HardwareSpec::for_partition(&p)).unwrap();
        assert_eq!(r.relocations, 2);
    }

    #[test]
    fn local_programs_are_free() {
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(1))).unwrap();
        let r = compile_gp_tp(&c, &p, &HardwareSpec::for_partition(&p)).unwrap();
        assert_eq!(r.total_comms, 0);
        assert_eq!(r.relocations, 0);
    }
}
