//! Single-knob AutoComm ablations (paper Fig. 17a–c).
//!
//! Each entry point is a *pipeline configuration* — [`Ablation`] applied
//! to the full option set, compiled through the same pass manager as the
//! real compiler — so measured deltas isolate exactly one component and
//! there is no parallel pipeline code to drift.

use autocomm::{Ablation, AutoComm, CompileError, CompileResult};
use dqc_circuit::{Circuit, Partition};

/// Compiles with one [`Ablation`] applied to the full optimization set.
///
/// # Errors
///
/// See [`AutoComm::compile`].
pub fn compile_ablated(
    ablation: Ablation,
    circuit: &Circuit,
    partition: &Partition,
) -> Result<CompileResult, CompileError> {
    AutoComm::with_ablations(&[ablation]).compile(circuit, partition)
}

/// Fig. 17(a): aggregation without commutation rules — every remote gate
/// becomes a singleton block.
///
/// # Errors
///
/// See [`AutoComm::compile`].
pub fn compile_no_commute(
    circuit: &Circuit,
    partition: &Partition,
) -> Result<CompileResult, CompileError> {
    compile_ablated(Ablation::NoCommute, circuit, partition)
}

/// Fig. 17(b): Cat-Comm-only assignment (one EPR pair per single-call
/// segment; no TP fallback), extending the Diadamo-style VQE compiler.
///
/// # Errors
///
/// See [`AutoComm::compile`].
pub fn compile_cat_only(
    circuit: &Circuit,
    partition: &Partition,
) -> Result<CompileResult, CompileError> {
    compile_ablated(Ablation::CatOnly, circuit, partition)
}

/// Fig. 17(c): plain as-soon-as-possible block scheduling — no EPR
/// prefetching, no commutable-block parallelism, no TP fusion.
///
/// # Errors
///
/// See [`AutoComm::compile`].
pub fn compile_plain_greedy(
    circuit: &Circuit,
    partition: &Partition,
) -> Result<CompileResult, CompileError> {
    compile_ablated(Ablation::PlainGreedy, circuit, partition)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_degrade_monotonically_on_qft() {
        let c = dqc_workloads::qft(10);
        let p = Partition::block(10, 2).unwrap();
        let full = AutoComm::new().compile(&c, &p).unwrap();
        let a = compile_no_commute(&c, &p).unwrap();
        let b = compile_cat_only(&c, &p).unwrap();
        let s = compile_plain_greedy(&c, &p).unwrap();

        assert!(a.metrics.total_comms > full.metrics.total_comms);
        assert!(b.metrics.total_comms > full.metrics.total_comms);
        assert!(s.schedule.makespan > full.schedule.makespan);
        // Comm counts are unchanged by the scheduling knob.
        assert_eq!(s.metrics.total_comms, full.metrics.total_comms);
    }

    #[test]
    fn ablation_results_share_the_indexed_ir_shape() {
        // Non-circuit-rewriting ablations compile over the same `CommIr`
        // contents (same unrolled stream, table, and conflict DAG) — the
        // Fig. 17 deltas are pure pass behavior, not IR differences.
        let c = dqc_workloads::qft(10);
        let p = Partition::block(10, 2).unwrap();
        let full = AutoComm::new().compile(&c, &p).unwrap();
        for r in [
            compile_no_commute(&c, &p).unwrap(),
            compile_cat_only(&c, &p).unwrap(),
            compile_plain_greedy(&c, &p).unwrap(),
        ] {
            assert_eq!(r.ir.len(), full.ir.len());
            assert_eq!(r.ir.unique_gates(), full.ir.unique_gates());
            assert_eq!(r.ir.dag().edge_count(), full.ir.dag().edge_count());
            assert_eq!(r.ir.ranked_pairs(), full.ir.ranked_pairs());
        }
    }

    #[test]
    fn no_commute_equals_remote_cx_count() {
        // Singleton blocks: Tot Comm = # REM CX (the sparse baseline).
        let c = dqc_workloads::bv(12);
        let p = Partition::block(12, 3).unwrap();
        let r = compile_no_commute(&c, &p).unwrap();
        assert_eq!(r.metrics.total_comms, r.metrics.total_rem_cx);
    }
}
