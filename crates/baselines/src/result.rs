//! Shared baseline result type.

/// What a baseline compiler reports for one program.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineResult {
    /// Remote communications issued (EPR pairs under the paper's metric).
    pub total_comms: usize,
    /// Program latency in CX units under the Table-1 model.
    pub makespan: f64,
    /// Remote CX gates in the unrolled program.
    pub total_rem_cx: usize,
    /// Qubit relocations performed (GP-TP only; 0 for the sparse baseline).
    pub relocations: usize,
}

impl BaselineResult {
    /// Remote CXs carried per communication — below 2 for GP-TP, exactly 1
    /// for the sparse baseline (paper §5.3).
    pub fn rem_cx_per_comm(&self) -> f64 {
        if self.total_comms == 0 {
            0.0
        } else {
            self.total_rem_cx as f64 / self.total_comms as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_comm_ratio() {
        let r = BaselineResult { total_comms: 4, makespan: 10.0, total_rem_cx: 4, relocations: 0 };
        assert_eq!(r.rem_cx_per_comm(), 1.0);
        let empty =
            BaselineResult { total_comms: 0, makespan: 0.0, total_rem_cx: 0, relocations: 0 };
        assert_eq!(empty.rem_cx_per_comm(), 0.0);
    }
}
