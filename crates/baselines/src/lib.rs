//! Baseline DQC compilers and AutoComm ablations.
//!
//! The paper evaluates AutoComm against:
//!
//! * **the Ferrari-style baseline** ([`compile_ferrari`]) — one Cat-Comm
//!   invocation per remote CX (“sparse communication”), scheduled as soon
//!   as possible; its communication count is exactly the program's remote
//!   CX count and it anchors Table 3's improv. / LAT-DEC factors;
//! * **GP-TP** ([`compile_gp_tp`]) — the graph-partition-style compiler of
//!   Baker et al. with TP-Comm qubit relocation: every remote gate is made
//!   local by teleport-swapping one operand into the peer node (two EPR
//!   pairs per relocation), Fig. 16's comparator;
//! * **single-knob ablations** ([`ablation`]) — aggregation without
//!   commutation, Cat-Comm-only assignment, and plain-greedy scheduling,
//!   reproducing Fig. 17(a)–(c).
//!
//! ```
//! use dqc_baselines::compile_ferrari;
//! use dqc_circuit::{Circuit, Gate, Partition, QubitId};
//! use dqc_hardware::HardwareSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let q = |i| QubitId::new(i);
//! let mut c = Circuit::new(4);
//! c.push(Gate::cx(q(0), q(2)))?;
//! c.push(Gate::cx(q(0), q(3)))?;
//! let p = Partition::block(4, 2)?;
//! let r = compile_ferrari(&c, &p, &HardwareSpec::for_partition(&p))?;
//! assert_eq!(r.total_comms, 2); // one EPR pair per remote CX
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
mod ferrari;
mod gp_tp;
mod result;

pub use ferrari::compile_ferrari;
pub use gp_tp::compile_gp_tp;
pub use result::BaselineResult;
