//! The sparse Cat-per-CX baseline (Ferrari et al.).

use dqc_circuit::{unroll_circuit, Circuit, CircuitError, Partition};
use dqc_hardware::{HardwareSpec, Timeline};

use crate::BaselineResult;

/// Compiles `circuit` the way the paper's baseline does: every remote CX is
/// implemented by its own Cat-Comm invocation (Fig. 2a), and operations are
/// scheduled as soon as possible on the two-comm-qubit hardware model (EPR
/// preparations are issued as early as slots allow — the baseline is greedy
/// too; AutoComm's advantage must come from burst communication, not from
/// a handicapped scheduler).
///
/// # Errors
///
/// Propagates unrolling failures ([`CircuitError`]).
pub fn compile_ferrari(
    circuit: &Circuit,
    partition: &Partition,
    hw: &HardwareSpec,
) -> Result<BaselineResult, CircuitError> {
    let unrolled = unroll_circuit(circuit)?;
    let lat = *hw.latency();
    let mut tl = Timeline::new(unrolled.num_qubits(), hw);
    let mut total_comms = 0usize;

    for gate in unrolled.gates() {
        if gate.is_two_qubit_unitary() && partition.is_remote(gate) {
            let control = gate.qubits()[0];
            let target = gate.qubits()[1];
            let home = partition.node_of(control);
            let peer = partition.node_of(target);
            total_comms += 1;

            let claim = tl.claim_comm(home, peer, 0.0);
            let ent_start = claim.epr_ready.max(tl.qubit_free_at(control));
            // Local CX onto the comm qubit keeps the control busy briefly.
            tl.occupy_qubits("cat-entangle", &[control], ent_start, ent_start + lat.t_2q);
            let ent_end = ent_start + lat.cat_entangle();
            let body_start = ent_end.max(tl.qubit_free_at(target));
            let body_end = body_start + lat.gate(gate);
            tl.occupy_qubits("remote-gate", &[target], body_start, body_end);
            let dis_end = body_end + lat.cat_disentangle();
            tl.bump_qubit(control, dis_end);
            tl.release_comm(&claim, dis_end);
        } else {
            tl.schedule_gate(gate);
        }
    }

    Ok(BaselineResult {
        total_comms,
        makespan: tl.makespan(),
        total_rem_cx: total_comms,
        relocations: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_circuit::{Gate, QubitId};

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn counts_one_comm_per_remote_cx() {
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::cx(q(0), q(3))).unwrap();
        c.push(Gate::cx(q(0), q(1))).unwrap(); // local
        let r = compile_ferrari(&c, &p, &HardwareSpec::for_partition(&p)).unwrap();
        assert_eq!(r.total_comms, 2);
        assert_eq!(r.rem_cx_per_comm(), 1.0);
    }

    #[test]
    fn unrolls_before_counting() {
        // One remote CRZ = two remote CX = two communications.
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::crz(0.5, q(0), q(2))).unwrap();
        let r = compile_ferrari(&c, &p, &HardwareSpec::for_partition(&p)).unwrap();
        assert_eq!(r.total_comms, 2);
    }

    #[test]
    fn sparse_latency_matches_model() {
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        let hw = HardwareSpec::for_partition(&p);
        let r = compile_ferrari(&c, &p, &hw).unwrap();
        assert!((r.makespan - hw.latency().sparse_remote_cx()).abs() < 1e-9);
    }

    #[test]
    fn parallel_remote_gates_overlap() {
        // Two remote CXs on disjoint qubit pairs and node pairs overlap.
        let p = Partition::block(8, 4).unwrap();
        let mut c = Circuit::new(8);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::cx(q(4), q(6))).unwrap();
        let hw = HardwareSpec::for_partition(&p);
        let r = compile_ferrari(&c, &p, &hw).unwrap();
        assert!((r.makespan - hw.latency().sparse_remote_cx()).abs() < 1e-9);
    }

    #[test]
    fn local_circuit_needs_no_comm() {
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(1))).unwrap();
        let r = compile_ferrari(&c, &p, &HardwareSpec::for_partition(&p)).unwrap();
        assert_eq!(r.total_comms, 0);
        assert!((r.makespan - 1.0).abs() < 1e-9);
    }
}
