//! The circuit container.

use std::fmt;

use crate::{CircuitError, Gate, QubitId};

/// An ordered list of gates over a fixed register of qubits and classical
/// bits.
///
/// The container validates every pushed gate against the register bounds, so
/// a constructed `Circuit` is always internally consistent.
///
/// ```
/// use dqc_circuit::{Circuit, Gate, QubitId};
/// # fn main() -> Result<(), dqc_circuit::CircuitError> {
/// let mut c = Circuit::new(2);
/// c.push(Gate::h(QubitId::new(0)))?;
/// c.push(Gate::cx(QubitId::new(0), QubitId::new(1)))?;
/// assert_eq!(c.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    num_cbits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits and no classical
    /// bits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit { num_qubits, num_cbits: 0, gates: Vec::new() }
    }

    /// Creates an empty circuit with both quantum and classical registers.
    pub fn with_cbits(num_qubits: usize, num_cbits: usize) -> Self {
        Circuit { num_qubits, num_cbits, gates: Vec::new() }
    }

    /// Number of qubits in the register.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits in the register.
    pub fn num_cbits(&self) -> usize {
        self.num_cbits
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit contains no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gate sequence, in program order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Iterates over the gates in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Gate> {
        self.gates.iter()
    }

    /// Appends a gate after validating its operands against the register.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] or
    /// [`CircuitError::CBitOutOfRange`] when the gate references bits outside
    /// the registers.
    pub fn push(&mut self, gate: Gate) -> Result<(), CircuitError> {
        for &q in gate.qubits() {
            if q.index() >= self.num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
        }
        for c in [gate.cbit(), gate.condition()].into_iter().flatten() {
            if c.index() >= self.num_cbits {
                return Err(CircuitError::CBitOutOfRange { cbit: c, num_cbits: self.num_cbits });
            }
        }
        self.gates.push(gate);
        Ok(())
    }

    /// Appends every gate from `gates`.
    ///
    /// # Errors
    ///
    /// Fails on the first gate that does not fit the registers; earlier gates
    /// remain appended.
    pub fn extend_gates(
        &mut self,
        gates: impl IntoIterator<Item = Gate>,
    ) -> Result<(), CircuitError> {
        for g in gates {
            self.push(g)?;
        }
        Ok(())
    }

    /// Appends all gates of `other` (registers must already be large enough).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Circuit::push`].
    pub fn append_circuit(&mut self, other: &Circuit) -> Result<(), CircuitError> {
        self.extend_gates(other.gates.iter().cloned())
    }

    /// Reserves capacity for at least `additional` more gates.
    pub fn reserve(&mut self, additional: usize) {
        self.gates.reserve(additional);
    }

    /// Grows the classical register to at least `n` bits.
    pub fn ensure_cbits(&mut self, n: usize) {
        self.num_cbits = self.num_cbits.max(n);
    }

    /// Grows the quantum register to at least `n` qubits.
    pub fn ensure_qubits(&mut self, n: usize) {
        self.num_qubits = self.num_qubits.max(n);
    }

    /// Consumes the circuit, returning its gate list.
    pub fn into_gates(self) -> Vec<Gate> {
        self.gates
    }

    /// Returns the circuit with the gate order reversed (not the inverse
    /// circuit — gates are not daggered). Useful for building mirrored
    /// benchmark structures.
    pub fn reversed(&self) -> Circuit {
        let mut c = self.clone();
        c.gates.reverse();
        c
    }

    /// All qubits touched by at least one gate.
    pub fn used_qubits(&self) -> Vec<QubitId> {
        let mut used = vec![false; self.num_qubits];
        for g in &self.gates {
            for q in g.qubits() {
                used[q.index()] = true;
            }
        }
        (0..self.num_qubits).filter(|&i| used[i]).map(QubitId::new).collect()
    }

    /// Counts gates acting on exactly two qubits (the paper's “# CX” column
    /// counts these after unrolling).
    pub fn two_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit_unitary()).count()
    }

    /// Counts gates acting on one qubit.
    pub fn single_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_single_qubit_unitary()).count()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit({} qubits, {} cbits)", self.num_qubits, self.num_cbits)?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;

    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CBitId;

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn push_validates_qubits() {
        let mut c = Circuit::new(2);
        assert!(c.push(Gate::h(q(0))).is_ok());
        let err = c.push(Gate::h(q(2))).unwrap_err();
        assert!(matches!(err, CircuitError::QubitOutOfRange { .. }));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn push_validates_cbits() {
        let mut c = Circuit::with_cbits(1, 1);
        assert!(c.push(Gate::measure(q(0), CBitId::new(0))).is_ok());
        let err = c.push(Gate::measure(q(0), CBitId::new(1))).unwrap_err();
        assert!(matches!(err, CircuitError::CBitOutOfRange { .. }));
        let err = c.push(Gate::x(q(0)).with_condition(CBitId::new(9))).unwrap_err();
        assert!(matches!(err, CircuitError::CBitOutOfRange { .. }));
    }

    #[test]
    fn counts_and_iteration() {
        let mut c = Circuit::new(3);
        c.push(Gate::h(q(0))).unwrap();
        c.push(Gate::cx(q(0), q(1))).unwrap();
        c.push(Gate::crz(0.2, q(1), q(2))).unwrap();
        assert_eq!(c.two_qubit_gate_count(), 2);
        assert_eq!(c.single_qubit_gate_count(), 1);
        assert_eq!(c.iter().count(), 3);
        assert_eq!((&c).into_iter().count(), 3);
    }

    #[test]
    fn used_qubits_skips_idle_wires() {
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(3))).unwrap();
        assert_eq!(c.used_qubits(), vec![q(0), q(3)]);
    }

    #[test]
    fn ensure_registers_grow_monotonically() {
        let mut c = Circuit::new(2);
        c.ensure_qubits(5);
        c.ensure_qubits(3);
        assert_eq!(c.num_qubits(), 5);
        c.ensure_cbits(2);
        assert_eq!(c.num_cbits(), 2);
    }

    #[test]
    fn append_circuit_concatenates() {
        let mut a = Circuit::new(2);
        a.push(Gate::h(q(0))).unwrap();
        let mut b = Circuit::new(2);
        b.push(Gate::cx(q(0), q(1))).unwrap();
        a.append_circuit(&b).unwrap();
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn reversed_reverses_order_only() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(q(0))).unwrap();
        c.push(Gate::cx(q(0), q(1))).unwrap();
        let r = c.reversed();
        assert_eq!(r.gates()[0], Gate::cx(q(0), q(1)));
        assert_eq!(r.gates()[1], Gate::h(q(0)));
    }

    #[test]
    fn display_lists_gates() {
        let mut c = Circuit::new(2);
        c.push(Gate::cx(q(0), q(1))).unwrap();
        let s = c.to_string();
        assert!(s.contains("cx q0,q1"));
        assert!(s.contains("2 qubits"));
    }
}
