//! Gate unrolling into the `CX + U3` basis (the paper's “Gate Unrolling”
//! front-end stage, Figure 1).
//!
//! Every multi-qubit gate is rewritten into CX gates plus single-qubit
//! gates. Multi-controlled X gates use the linear-cost dirty-ancilla
//! V-chain of Barenco et al. (Lemma 7.2), falling back to one level of the
//! Lemma 7.3 ABAB split when fewer than `n - 2` ancillas are free; both
//! constructions tolerate ancillas in arbitrary (dirty) states. Correctness
//! of every rule is verified against dense unitaries in `dqc-sim`'s test
//! suite.

use crate::{Circuit, CircuitError, Gate, GateKind, QubitId};

/// Unrolls one gate into the `CX + U3` basis.
///
/// `num_qubits` is the register size, used to locate dirty ancillas for
/// multi-controlled gates.
///
/// # Errors
///
/// Returns [`CircuitError::InsufficientAncillas`] when a `Mcx` with three or
/// more controls has no free qubit to borrow.
///
/// ```
/// use dqc_circuit::{unroll_gate, Gate, GateKind, QubitId};
/// let crz = Gate::crz(0.5, QubitId::new(0), QubitId::new(1));
/// let gates = unroll_gate(&crz, 2).unwrap();
/// assert_eq!(gates.iter().filter(|g| g.kind() == GateKind::Cx).count(), 2);
/// ```
pub fn unroll_gate(gate: &Gate, num_qubits: usize) -> Result<Vec<Gate>, CircuitError> {
    // Already in basis (or non-unitary bookkeeping): pass through. This is
    // the single source of truth for the basis set — `unroll_circuit`'s
    // fast path uses the same predicate.
    if in_basis(gate.kind()) {
        return Ok(vec![gate.clone()]);
    }
    let q = gate.qubits();
    let out = match gate.kind() {
        GateKind::Cz => {
            let (a, b) = (q[0], q[1]);
            vec![Gate::h(b), Gate::cx(a, b), Gate::h(b)]
        }
        GateKind::Crz => {
            let theta = gate.theta().expect("crz has a parameter");
            let (c, t) = (q[0], q[1]);
            vec![
                Gate::rz(theta / 2.0, t),
                Gate::cx(c, t),
                Gate::rz(-theta / 2.0, t),
                Gate::cx(c, t),
            ]
        }
        GateKind::Cp => {
            let theta = gate.theta().expect("cp has a parameter");
            let (a, b) = (q[0], q[1]);
            vec![
                Gate::phase(theta / 2.0, a),
                Gate::phase(theta / 2.0, b),
                Gate::cx(a, b),
                Gate::phase(-theta / 2.0, b),
                Gate::cx(a, b),
            ]
        }
        GateKind::Rzz => {
            let theta = gate.theta().expect("rzz has a parameter");
            let (a, b) = (q[0], q[1]);
            vec![Gate::cx(a, b), Gate::rz(theta, b), Gate::cx(a, b)]
        }
        GateKind::Swap => {
            let (a, b) = (q[0], q[1]);
            vec![Gate::cx(a, b), Gate::cx(b, a), Gate::cx(a, b)]
        }
        GateKind::Ccx => ccx_basis(q[0], q[1], q[2]),
        GateKind::Mcx => {
            let (controls, target) = q.split_at(q.len() - 1);
            let mut toffolis = Vec::new();
            mcx_to_toffolis(controls, target[0], num_qubits, &mut toffolis)?;
            let mut out = Vec::with_capacity(toffolis.len() * 15);
            for g in toffolis {
                match g.kind() {
                    GateKind::Ccx => {
                        let p = g.qubits();
                        out.extend(ccx_basis(p[0], p[1], p[2]));
                    }
                    _ => out.push(g),
                }
            }
            out
        }
        kind => unreachable!("in_basis claims `{kind}` needs decomposition but no rule exists"),
    };
    Ok(out)
}

/// Unrolls every gate of `circuit` into the `CX + U3` basis.
///
/// Unrolling is per-gate pure, so large circuits
/// (≥ [`crate::PAR_THRESHOLD`] gates) fan the rewrites across
/// [`crate::par_map`] worker threads and splice the expansions back in
/// input order — bit-identical to [`unroll_circuit_sequential`] by
/// construction (the property tests pin it), including which error
/// surfaces first when several gates fail.
///
/// # Errors
///
/// Propagates [`CircuitError::InsufficientAncillas`] from multi-controlled
/// gates; register-bound errors cannot occur because the input circuit is
/// already validated.
pub fn unroll_circuit(circuit: &Circuit) -> Result<Circuit, CircuitError> {
    if circuit.len() < crate::PAR_THRESHOLD || crate::worker_count() < 2 {
        return unroll_circuit_sequential(circuit);
    }
    let n = circuit.num_qubits();
    // `None` marks in-basis pass-throughs so the fan-out never allocates a
    // singleton Vec per unchanged gate (the overwhelmingly common case).
    let expanded: Vec<Result<Option<Vec<Gate>>, CircuitError>> =
        crate::par_map(circuit.gates(), |gate| {
            if in_basis(gate.kind()) {
                Ok(None)
            } else {
                unroll_gate(gate, n).map(Some)
            }
        });
    let mut out = Circuit::with_cbits(n, circuit.num_cbits());
    out.reserve(circuit.len());
    for (gate, exp) in circuit.gates().iter().zip(expanded) {
        match exp? {
            None => out.push(gate.clone())?,
            Some(gates) => {
                for g in gates {
                    out.push(g)?;
                }
            }
        }
    }
    Ok(out)
}

/// The sequential reference rail of [`unroll_circuit`]: one gate at a time
/// on the calling thread. Kept runtime-selectable as the bit-identity
/// baseline for the property tests and the `frontend_scale_gate` bench.
///
/// # Errors
///
/// Exactly as [`unroll_circuit`].
pub fn unroll_circuit_sequential(circuit: &Circuit) -> Result<Circuit, CircuitError> {
    let mut out = Circuit::with_cbits(circuit.num_qubits(), circuit.num_cbits());
    out.reserve(circuit.len());
    for gate in circuit.gates() {
        if in_basis(gate.kind()) {
            out.push(gate.clone())?;
        } else {
            for g in unroll_gate(gate, circuit.num_qubits())? {
                out.push(g)?;
            }
        }
    }
    Ok(out)
}

/// Whether gates of this kind pass through unrolling unchanged.
fn in_basis(kind: GateKind) -> bool {
    matches!(
        kind,
        GateKind::I
            | GateKind::H
            | GateKind::X
            | GateKind::Y
            | GateKind::Z
            | GateKind::S
            | GateKind::Sdg
            | GateKind::T
            | GateKind::Tdg
            | GateKind::Sx
            | GateKind::Rx
            | GateKind::Ry
            | GateKind::Rz
            | GateKind::Phase
            | GateKind::U3
            | GateKind::Cx
            | GateKind::Measure
            | GateKind::Reset
            | GateKind::Barrier
    )
}

/// Textbook 6-CX Toffoli decomposition (controls `a`, `b`; target `t`).
fn ccx_basis(a: QubitId, b: QubitId, t: QubitId) -> Vec<Gate> {
    vec![
        Gate::h(t),
        Gate::cx(b, t),
        Gate::tdg(t),
        Gate::cx(a, t),
        Gate::t(t),
        Gate::cx(b, t),
        Gate::tdg(t),
        Gate::cx(a, t),
        Gate::t(b),
        Gate::t(t),
        Gate::h(t),
        Gate::cx(a, b),
        Gate::t(a),
        Gate::tdg(b),
        Gate::cx(a, b),
    ]
}

/// Lowers an `n`-controlled X into Toffoli/CX/X gates using dirty ancillas.
fn mcx_to_toffolis(
    controls: &[QubitId],
    target: QubitId,
    num_qubits: usize,
    out: &mut Vec<Gate>,
) -> Result<(), CircuitError> {
    match controls.len() {
        0 => {
            out.push(Gate::x(target));
            Ok(())
        }
        1 => {
            out.push(Gate::cx(controls[0], target));
            Ok(())
        }
        2 => {
            out.push(Gate::ccx(controls[0], controls[1], target));
            Ok(())
        }
        n => {
            let free = free_qubits(controls, target, num_qubits);
            if free.len() >= n - 2 {
                v_chain(controls, &free[..n - 2], target, out);
                Ok(())
            } else if !free.is_empty() {
                split_mcx(controls, target, free[0], num_qubits, out)
            } else {
                Err(CircuitError::InsufficientAncillas { needed: 1, available: 0 })
            }
        }
    }
}

/// Qubits in `0..num_qubits` that are neither controls nor the target.
fn free_qubits(controls: &[QubitId], target: QubitId, num_qubits: usize) -> Vec<QubitId> {
    (0..num_qubits).map(QubitId::new).filter(|q| *q != target && !controls.contains(q)).collect()
}

/// Barenco Lemma 7.2 V-chain: `4(n-2)` Toffolis with `n-2` dirty ancillas.
///
/// The toggle network is emitted twice; the second pass cancels all dirt on
/// the ancillas while the target accumulates exactly the AND of all
/// controls.
fn v_chain(controls: &[QubitId], ancillas: &[QubitId], target: QubitId, out: &mut Vec<Gate>) {
    let n = controls.len();
    debug_assert!(n >= 3 && ancillas.len() >= n - 2);
    let mut seq = Vec::with_capacity(2 * (n - 2));
    seq.push(Gate::ccx(controls[n - 1], ancillas[n - 3], target));
    for i in (2..=n - 2).rev() {
        seq.push(Gate::ccx(controls[i], ancillas[i - 2], ancillas[i - 1]));
    }
    seq.push(Gate::ccx(controls[1], controls[0], ancillas[0]));
    for i in 2..=n - 2 {
        seq.push(Gate::ccx(controls[i], ancillas[i - 2], ancillas[i - 1]));
    }
    out.extend(seq.iter().cloned());
    out.extend(seq);
}

/// Barenco Lemma 7.3 ABAB split using a single dirty ancilla; each half then
/// has enough spare qubits for the V-chain.
fn split_mcx(
    controls: &[QubitId],
    target: QubitId,
    ancilla: QubitId,
    num_qubits: usize,
    out: &mut Vec<Gate>,
) -> Result<(), CircuitError> {
    let n = controls.len();
    let m = n.div_ceil(2);
    let (low, high) = controls.split_at(m);
    let mut upper: Vec<QubitId> = high.to_vec();
    upper.push(ancilla);
    // Time order A B A B with A = C^{|upper|}X(upper → target) reading the
    // ancilla's initial value first, B = C^{m}X(low → ancilla); the target
    // toggles exactly when all of `low` and `high` are one.
    for _ in 0..2 {
        mcx_to_toffolis(&upper, target, num_qubits, out)?;
        mcx_to_toffolis(low, ancilla, num_qubits, out)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    fn cx_count(gates: &[Gate]) -> usize {
        gates.iter().filter(|g| g.kind() == GateKind::Cx).count()
    }

    fn in_basis(gates: &[Gate]) -> bool {
        gates.iter().all(|g| g.num_qubits() == 1 || g.kind() == GateKind::Cx)
    }

    #[test]
    fn basis_gates_pass_through() {
        for g in [Gate::h(q(0)), Gate::rz(0.2, q(0)), Gate::cx(q(0), q(1))] {
            assert_eq!(unroll_gate(&g, 2).unwrap(), vec![g.clone()]);
        }
    }

    #[test]
    fn crz_uses_two_cx() {
        let gates = unroll_gate(&Gate::crz(0.7, q(0), q(1)), 2).unwrap();
        assert_eq!(gates.len(), 4);
        assert_eq!(cx_count(&gates), 2);
        assert!(in_basis(&gates));
    }

    #[test]
    fn cp_uses_two_cx() {
        let gates = unroll_gate(&Gate::cp(0.7, q(0), q(1)), 2).unwrap();
        assert_eq!(cx_count(&gates), 2);
        assert!(in_basis(&gates));
    }

    #[test]
    fn rzz_uses_two_cx() {
        let gates = unroll_gate(&Gate::rzz(0.7, q(0), q(1)), 2).unwrap();
        assert_eq!(gates.len(), 3);
        assert_eq!(cx_count(&gates), 2);
    }

    #[test]
    fn swap_uses_three_cx() {
        let gates = unroll_gate(&Gate::swap(q(0), q(1)), 2).unwrap();
        assert_eq!(gates.len(), 3);
        assert_eq!(cx_count(&gates), 3);
    }

    #[test]
    fn ccx_uses_six_cx() {
        let gates = unroll_gate(&Gate::ccx(q(0), q(1), q(2)), 3).unwrap();
        assert_eq!(gates.len(), 15);
        assert_eq!(cx_count(&gates), 6);
        assert!(in_basis(&gates));
    }

    #[test]
    fn mcx_small_cases() {
        let g = Gate::mcx(&[], q(0));
        assert_eq!(unroll_gate(&g, 1).unwrap(), vec![Gate::x(q(0))]);
        let g = Gate::mcx(&[q(0)], q(1));
        assert_eq!(unroll_gate(&g, 2).unwrap(), vec![Gate::cx(q(0), q(1))]);
        let g = Gate::mcx(&[q(0), q(1)], q(2));
        assert_eq!(cx_count(&unroll_gate(&g, 3).unwrap()), 6);
    }

    #[test]
    fn mcx_v_chain_is_linear() {
        // n controls with n-2 spare qubits → 4(n-2) Toffolis → 24(n-2) CX.
        for n in 3..10usize {
            let total = 2 * n - 1; // n controls + 1 target + (n-2) ancillas
            let controls: Vec<QubitId> = (0..n).map(q).collect();
            let g = Gate::mcx(&controls, q(n));
            let gates = unroll_gate(&g, total).unwrap();
            assert_eq!(cx_count(&gates), 24 * (n - 2), "n = {n}");
            assert!(in_basis(&gates));
        }
    }

    #[test]
    fn mcx_split_with_single_ancilla() {
        // 5 controls, 1 target, exactly 1 spare qubit → must use the split.
        let controls: Vec<QubitId> = (0..5).map(q).collect();
        let g = Gate::mcx(&controls, q(5));
        let gates = unroll_gate(&g, 7).unwrap();
        assert!(in_basis(&gates));
        assert!(cx_count(&gates) > 0);
    }

    #[test]
    fn mcx_without_ancilla_fails() {
        let controls: Vec<QubitId> = (0..5).map(q).collect();
        let g = Gate::mcx(&controls, q(5));
        let err = unroll_gate(&g, 6).unwrap_err();
        assert!(matches!(err, CircuitError::InsufficientAncillas { .. }));
    }

    #[test]
    fn unroll_circuit_preserves_registers() {
        let mut c = Circuit::with_cbits(3, 2);
        c.push(Gate::crz(0.1, q(0), q(1))).unwrap();
        c.push(Gate::swap(q(1), q(2))).unwrap();
        let u = unroll_circuit(&c).unwrap();
        assert_eq!(u.num_qubits(), 3);
        assert_eq!(u.num_cbits(), 2);
        assert_eq!(u.len(), 7);
        assert!(in_basis(u.gates()));
    }
}
