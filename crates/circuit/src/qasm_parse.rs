//! Minimal OpenQASM-2 parser for the dialect produced by [`crate::to_qasm`].
//!
//! Supports one quantum and one classical register, the `qelib1` gate names
//! used by this workspace, `measure`, `barrier`, `reset`, and the
//! single-bit `if (c[i] == 1)` conditional form — enough for round-tripping
//! compiled programs and for importing externally generated benchmarks that
//! stick to this common subset.

use std::error::Error;
use std::fmt;

use crate::{CBitId, Circuit, CircuitError, Gate, QubitId};

/// Errors produced while parsing OpenQASM text.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum QasmParseError {
    /// The line could not be understood.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The program uses a gate the IR does not model.
    UnsupportedGate {
        /// 1-based line number.
        line: usize,
        /// The offending gate name.
        name: String,
    },
    /// A register was re-declared or missing.
    Register {
        /// Description of the problem.
        message: String,
    },
    /// The parsed gate failed IR validation.
    Circuit(CircuitError),
}

impl fmt::Display for QasmParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QasmParseError::Syntax { line, message } => {
                write!(f, "syntax error on line {line}: {message}")
            }
            QasmParseError::UnsupportedGate { line, name } => {
                write!(f, "unsupported gate `{name}` on line {line}")
            }
            QasmParseError::Register { message } => write!(f, "register error: {message}"),
            QasmParseError::Circuit(e) => write!(f, "invalid gate: {e}"),
        }
    }
}

impl Error for QasmParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QasmParseError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for QasmParseError {
    fn from(e: CircuitError) -> Self {
        QasmParseError::Circuit(e)
    }
}

/// One statement of a parsed line, position-independent: everything the
/// splice state machine ([`Assembler`]) needs to grow the circuit in input
/// order. Produced by the pure per-line parser shared by the sequential
/// and chunked-parallel rails.
#[derive(Clone, Debug)]
enum LineStmt {
    /// `qreg q[n];`
    Qreg(usize),
    /// `creg c[n];`
    Creg(usize),
    /// A gate statement (conditional prefix already applied).
    Gate(Gate),
}

/// All statements of one source line. Statements are `;`-terminated and a
/// line may carry several; the common one-statement case avoids the `Vec`.
#[derive(Clone, Debug)]
enum ParsedLine {
    /// Blank, comment-only, `OPENQASM`, or `include` line.
    Empty,
    One(LineStmt),
    Many(Vec<LineStmt>),
}

/// Parses one raw source line in isolation. Pure: no register state, so
/// arbitrary line subsets parse independently on worker threads; errors
/// carry the global 1-based `line_no`.
fn parse_line(raw: &str, line_no: usize) -> Result<ParsedLine, QasmParseError> {
    let line = strip_comment(raw).trim();
    if line.starts_with("OPENQASM") {
        // Only the 2.x dialect is modeled; refuse other versions loudly
        // instead of silently mis-parsing their statements.
        let version = line
            .strip_prefix("OPENQASM")
            .map(|v| v.trim().trim_end_matches(';').trim())
            .unwrap_or("");
        if !(version.starts_with("2.") || version == "2") {
            return Err(QasmParseError::Syntax {
                line: line_no,
                message: format!("unsupported OpenQASM version `{version}` (expected 2.x)"),
            });
        }
        return Ok(ParsedLine::Empty);
    }
    if line.is_empty() || line.starts_with("include") {
        return Ok(ParsedLine::Empty);
    }
    match line.strip_suffix(';') {
        // Fast path: exactly one `;`-terminated statement (the shape
        // `to_qasm` emits), no per-line allocation.
        Some(body) if !body.contains(';') => {
            let body = body.trim();
            if body.is_empty() {
                return Ok(ParsedLine::Empty);
            }
            Ok(ParsedLine::One(parse_statement(body, line_no)?))
        }
        _ => {
            // Multi-statement (or malformed) line: every statement must be
            // terminated, so text after the final `;` is an error — checked
            // before any statement parses, matching the sequential rail.
            if !line.ends_with(';') {
                return Err(QasmParseError::Syntax {
                    line: line_no,
                    message: "missing `;`".into(),
                });
            }
            let mut stmts = Vec::new();
            for part in line.split(';') {
                let body = part.trim();
                if body.is_empty() {
                    continue;
                }
                stmts.push(parse_statement(body, line_no)?);
            }
            Ok(match stmts.len() {
                0 => ParsedLine::Empty,
                1 => ParsedLine::One(stmts.pop().expect("len checked")),
                _ => ParsedLine::Many(stmts),
            })
        }
    }
}

/// Parses one `;`-stripped statement body.
fn parse_statement(stmt: &str, line_no: usize) -> Result<LineStmt, QasmParseError> {
    if let Some(rest) = stmt.strip_prefix("qreg") {
        let size = parse_decl(rest, 'q').ok_or_else(|| QasmParseError::Register {
            message: format!("bad qreg declaration `{stmt}`"),
        })?;
        return Ok(LineStmt::Qreg(size));
    }
    if let Some(rest) = stmt.strip_prefix("creg") {
        let size = parse_decl(rest, 'c').ok_or_else(|| QasmParseError::Register {
            message: format!("bad creg declaration `{stmt}`"),
        })?;
        return Ok(LineStmt::Creg(size));
    }

    // Conditional prefix: `if (c[i] == 1) <gate>`.
    let (condition, body) = if let Some(rest) = stmt.strip_prefix("if") {
        let rest = rest.trim_start();
        let close = rest.find(')').ok_or_else(|| QasmParseError::Syntax {
            line: line_no,
            message: "unterminated `if (...)`".into(),
        })?;
        let cond_text = &rest[..close];
        let bit = cond_text
            .trim_start_matches(['(', ' '])
            .strip_prefix("c[")
            .and_then(|t| t.split(']').next())
            .and_then(|t| t.parse::<usize>().ok())
            .ok_or_else(|| QasmParseError::Syntax {
                line: line_no,
                message: format!("bad condition `{cond_text}`"),
            })?;
        if !cond_text.contains("== 1") {
            return Err(QasmParseError::Syntax {
                line: line_no,
                message: "only `== 1` conditions are supported".into(),
            });
        }
        (Some(CBitId::new(bit)), rest[close + 1..].trim())
    } else {
        (None, stmt)
    };

    let gate = parse_gate(body, line_no)?;
    Ok(LineStmt::Gate(match condition {
        Some(c) => gate.with_condition(c),
        None => gate,
    }))
}

/// The sequential splice state machine both rails feed parsed statements
/// through, in input order: register declarations, the
/// statement-before-qreg check, classical-register growth, and gate
/// validation all live here, so the rails cannot diverge on anything but
/// *where* lines were parsed.
#[derive(Default)]
struct Assembler {
    circuit: Option<Circuit>,
    num_cbits: usize,
}

impl Assembler {
    fn feed(&mut self, stmt: LineStmt) -> Result<(), QasmParseError> {
        match stmt {
            LineStmt::Qreg(size) => {
                if self.circuit.is_some() {
                    return Err(QasmParseError::Register {
                        message: "multiple qreg declarations".into(),
                    });
                }
                self.circuit = Some(Circuit::with_cbits(size, self.num_cbits));
            }
            LineStmt::Creg(size) => {
                self.num_cbits = size;
                if let Some(c) = &mut self.circuit {
                    c.ensure_cbits(size);
                }
            }
            LineStmt::Gate(gate) => {
                let circuit = self.circuit.as_mut().ok_or_else(|| QasmParseError::Register {
                    message: "statement before qreg declaration".into(),
                })?;
                for bit in [gate.cbit(), gate.condition()].into_iter().flatten() {
                    circuit.ensure_cbits(bit.index() + 1);
                }
                circuit.push(gate)?;
            }
        }
        Ok(())
    }

    fn feed_line(&mut self, parsed: ParsedLine) -> Result<(), QasmParseError> {
        match parsed {
            ParsedLine::Empty => Ok(()),
            ParsedLine::One(stmt) => self.feed(stmt),
            ParsedLine::Many(stmts) => stmts.into_iter().try_for_each(|s| self.feed(s)),
        }
    }

    fn finish(self) -> Result<Circuit, QasmParseError> {
        self.circuit.ok_or(QasmParseError::Register { message: "no qreg declaration".into() })
    }
}

/// Parses OpenQASM-2 text into a [`Circuit`].
///
/// Large inputs (≥ [`crate::PAR_THRESHOLD`] lines) are parsed in parallel:
/// the line list is split into contiguous chunks, each chunk's lines parse
/// independently ([`parse_line`] is pure), and the per-line statements are
/// spliced through the same sequential [`Assembler`] in input order — so
/// the result, including the first error in input order, is bit-identical
/// to [`from_qasm_sequential`] by construction.
///
/// # Errors
///
/// Returns [`QasmParseError`] for unknown syntax, unsupported gates, or
/// register violations.
///
/// ```
/// use dqc_circuit::{from_qasm, to_qasm, Circuit, Gate, QubitId};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut c = Circuit::new(2);
/// c.push(Gate::h(QubitId::new(0)))?;
/// c.push(Gate::cx(QubitId::new(0), QubitId::new(1)))?;
/// let parsed = from_qasm(&to_qasm(&c))?;
/// assert_eq!(parsed, c);
/// # Ok(())
/// # }
/// ```
pub fn from_qasm(text: &str) -> Result<Circuit, QasmParseError> {
    let lines: Vec<(usize, &str)> = text.lines().enumerate().collect();
    if lines.len() < crate::PAR_THRESHOLD || crate::worker_count() < 2 {
        return from_qasm_sequential(text);
    }
    let parsed = crate::par_map(&lines, |&(idx, raw)| parse_line(raw, idx + 1));
    let mut asm = Assembler::default();
    for result in parsed {
        asm.feed_line(result?)?;
    }
    asm.finish()
}

/// The sequential reference rail of [`from_qasm`]: parses line by line on
/// the calling thread with no intermediate line table. Kept
/// runtime-selectable (mirroring `sequential_rails` elsewhere) as the
/// bit-identity baseline the property tests and the `frontend_scale_gate`
/// bench compare the chunked-parallel parse against.
///
/// # Errors
///
/// Returns [`QasmParseError`] exactly as [`from_qasm`] does.
pub fn from_qasm_sequential(text: &str) -> Result<Circuit, QasmParseError> {
    let mut asm = Assembler::default();
    for (idx, raw) in text.lines().enumerate() {
        asm.feed_line(parse_line(raw, idx + 1)?)?;
    }
    asm.finish()
}

fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_decl(rest: &str, reg: char) -> Option<usize> {
    let rest = rest.trim();
    let rest = rest.strip_prefix(reg)?;
    let rest = rest.strip_prefix('[')?;
    rest.strip_suffix(']')?.parse().ok()
}

fn parse_operand(token: &str, line: usize) -> Result<usize, QasmParseError> {
    token
        .trim()
        .strip_prefix("q[")
        .and_then(|t| t.strip_suffix(']'))
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| QasmParseError::Syntax {
            line,
            message: format!("bad qubit operand `{token}`"),
        })
}

fn parse_gate(body: &str, line: usize) -> Result<Gate, QasmParseError> {
    // measure q[i] -> c[j]
    if let Some(rest) = body.strip_prefix("measure") {
        let (qpart, cpart) = rest.split_once("->").ok_or_else(|| QasmParseError::Syntax {
            line,
            message: "measure without `->`".into(),
        })?;
        let q = parse_operand(qpart, line)?;
        let c = cpart
            .trim()
            .strip_prefix("c[")
            .and_then(|t| t.strip_suffix(']'))
            .and_then(|t| t.parse::<usize>().ok())
            .ok_or_else(|| QasmParseError::Syntax {
                line,
                message: format!("bad classical operand `{cpart}`"),
            })?;
        return Ok(Gate::measure(QubitId::new(q), CBitId::new(c)));
    }

    // name(params)? operands — split after the parameter list when present
    // (parameters may contain spaces, e.g. `u3(0.1, 0.2, 0.3) q[3]`).
    let (head, operand_text) = if let Some(open) = body.find('(') {
        let close = body[open..].find(')').map(|i| open + i).ok_or_else(|| {
            QasmParseError::Syntax { line, message: "unterminated parameter list".into() }
        })?;
        (&body[..=close], body[close + 1..].trim())
    } else {
        body.split_once(' ').ok_or_else(|| QasmParseError::Syntax {
            line,
            message: format!("missing operands in `{body}`"),
        })?
    };
    let (name, params): (&str, Vec<f64>) = match head.split_once('(') {
        Some((n, ptext)) => {
            let ptext = ptext.strip_suffix(')').ok_or_else(|| QasmParseError::Syntax {
                line,
                message: "unterminated parameter list".into(),
            })?;
            let params = ptext
                .split(',')
                .map(|p| p.trim().parse::<f64>())
                .collect::<Result<Vec<f64>, _>>()
                .map_err(|_| QasmParseError::Syntax {
                    line,
                    message: format!("bad parameters `{ptext}`"),
                })?;
            (n, params)
        }
        None => (head, Vec::new()),
    };

    let operands: Vec<QubitId> = operand_text
        .split(',')
        .map(|t| parse_operand(t, line).map(QubitId::new))
        .collect::<Result<_, _>>()?;
    // The infallible gate constructors assume distinct operands; reject
    // repeats here so malformed input surfaces as an error, not a panic.
    for (i, qb) in operands.iter().enumerate() {
        if operands[..i].contains(qb) {
            return Err(QasmParseError::Circuit(CircuitError::DuplicateOperand { qubit: *qb }));
        }
    }

    let q = |i: usize| operands[i];
    let arity = operands.len();
    let expect = |n: usize| -> Result<(), QasmParseError> {
        if arity == n {
            Ok(())
        } else {
            Err(QasmParseError::Syntax {
                line,
                message: format!("`{name}` expects {n} operands, got {arity}"),
            })
        }
    };
    let theta = |params: &[f64]| -> Result<f64, QasmParseError> {
        params.first().copied().ok_or_else(|| QasmParseError::Syntax {
            line,
            message: format!("`{name}` needs a parameter"),
        })
    };

    let gate = match name {
        "id" => {
            expect(1)?;
            Gate::i(q(0))
        }
        "h" => {
            expect(1)?;
            Gate::h(q(0))
        }
        "x" => {
            expect(1)?;
            Gate::x(q(0))
        }
        "y" => {
            expect(1)?;
            Gate::y(q(0))
        }
        "z" => {
            expect(1)?;
            Gate::z(q(0))
        }
        "s" => {
            expect(1)?;
            Gate::s(q(0))
        }
        "sdg" => {
            expect(1)?;
            Gate::sdg(q(0))
        }
        "t" => {
            expect(1)?;
            Gate::t(q(0))
        }
        "tdg" => {
            expect(1)?;
            Gate::tdg(q(0))
        }
        "sx" => {
            expect(1)?;
            Gate::sx(q(0))
        }
        "rx" => {
            expect(1)?;
            Gate::rx(theta(&params)?, q(0))
        }
        "ry" => {
            expect(1)?;
            Gate::ry(theta(&params)?, q(0))
        }
        "rz" => {
            expect(1)?;
            Gate::rz(theta(&params)?, q(0))
        }
        "p" | "u1" => {
            expect(1)?;
            Gate::phase(theta(&params)?, q(0))
        }
        "u3" | "u" => {
            expect(1)?;
            if params.len() != 3 {
                return Err(QasmParseError::Syntax {
                    line,
                    message: "u3 needs three parameters".into(),
                });
            }
            Gate::u3(params[0], params[1], params[2], q(0))
        }
        "cx" | "CX" => {
            expect(2)?;
            Gate::cx(q(0), q(1))
        }
        "cz" => {
            expect(2)?;
            Gate::cz(q(0), q(1))
        }
        "swap" => {
            expect(2)?;
            Gate::swap(q(0), q(1))
        }
        "crz" => {
            expect(2)?;
            Gate::crz(theta(&params)?, q(0), q(1))
        }
        "cp" | "cu1" => {
            expect(2)?;
            Gate::cp(theta(&params)?, q(0), q(1))
        }
        "rzz" => {
            expect(2)?;
            Gate::rzz(theta(&params)?, q(0), q(1))
        }
        "ccx" => {
            expect(3)?;
            Gate::ccx(q(0), q(1), q(2))
        }
        "mcx" => {
            let (controls, target) = operands.split_at(arity - 1);
            Gate::mcx(controls, target[0])
        }
        "reset" => {
            expect(1)?;
            Gate::reset(q(0))
        }
        "barrier" => Gate::barrier(&operands),
        other => return Err(QasmParseError::UnsupportedGate { line, name: other.into() }),
    };
    Ok(gate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_qasm;

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn parses_basic_program() {
        let text = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncreg c[1];\nh q[0];\ncx q[0], q[1];\nrz(0.5) q[2];\nmeasure q[2] -> c[0];\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.num_cbits(), 1);
        assert_eq!(c.len(), 4);
        assert_eq!(c.gates()[0], Gate::h(q(0)));
        assert_eq!(c.gates()[1], Gate::cx(q(0), q(1)));
    }

    #[test]
    fn parses_conditionals_and_reset() {
        let text = "qreg q[2];\ncreg c[2];\nreset q[0];\nif (c[1] == 1) x q[0];\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.gates()[0], Gate::reset(q(0)));
        assert_eq!(c.gates()[1], Gate::x(q(0)).with_condition(CBitId::new(1)));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "// header\nqreg q[1];\n\nh q[0]; // flip basis\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn errors_are_located() {
        let err = from_qasm("qreg q[1];\nfrobnicate q[0];\n").unwrap_err();
        assert!(matches!(err, QasmParseError::UnsupportedGate { line: 2, .. }));
        let err = from_qasm("qreg q[1];\nh q[0]\n").unwrap_err();
        assert!(matches!(err, QasmParseError::Syntax { line: 2, .. }));
        let err = from_qasm("h q[0];\n").unwrap_err();
        assert!(matches!(err, QasmParseError::Register { .. }));
    }

    #[test]
    fn rejects_unsupported_versions() {
        let err = from_qasm("OPENQASM 3.0;\nqreg q[2];\nh q[0];\n").unwrap_err();
        assert!(
            matches!(&err, QasmParseError::Syntax { line: 1, message } if message.contains("3.0")),
            "got {err:?}"
        );
        // 2.x variants all pass.
        for header in ["OPENQASM 2.0;", "OPENQASM 2.1;", "OPENQASM 2;"] {
            let text = format!("{header}\nqreg q[1];\nh q[0];\n");
            assert!(from_qasm(&text).is_ok(), "rejected {header}");
        }
    }

    #[test]
    fn malformed_headers_are_register_errors() {
        for (text, needle) in [
            ("qreg q[x];\n", "bad qreg declaration"),
            ("qreg p[4];\n", "bad qreg declaration"),
            ("qreg q[2];\nqreg q[3];\n", "multiple qreg"),
            ("qreg q[2];\ncreg c[y];\n", "bad creg declaration"),
            ("creg c[2];\nh q[0];\n", "before qreg"),
            ("", "no qreg"),
        ] {
            let err = from_qasm(text).unwrap_err();
            assert!(
                matches!(&err, QasmParseError::Register { message } if message.contains(needle)),
                "{text:?}: expected register error containing {needle:?}, got {err:?}"
            );
        }
    }

    #[test]
    fn out_of_range_operands_are_rejected() {
        // Quantum index past the register.
        let err = from_qasm("qreg q[3];\nh q[5];\n").unwrap_err();
        assert!(matches!(err, QasmParseError::Circuit(_)), "got {err:?}");
        // Two-qubit gate with one operand out of range.
        let err = from_qasm("qreg q[3];\ncx q[0], q[3];\n").unwrap_err();
        assert!(matches!(err, QasmParseError::Circuit(_)), "got {err:?}");
        // Classical target past the register.
        let err = from_qasm("qreg q[2];\ncreg c[1];\nmeasure q[0] -> c[-1];\n").unwrap_err();
        assert!(matches!(err, QasmParseError::Syntax { line: 3, .. }), "got {err:?}");
        // Negative quantum index never parses.
        let err = from_qasm("qreg q[3];\nh q[-1];\n").unwrap_err();
        assert!(matches!(err, QasmParseError::Syntax { line: 2, .. }), "got {err:?}");
        // Duplicate operands violate gate validation.
        let err = from_qasm("qreg q[3];\ncx q[1], q[1];\n").unwrap_err();
        assert!(matches!(err, QasmParseError::Circuit(_)), "got {err:?}");
    }

    #[test]
    fn malformed_gates_are_located_syntax_errors() {
        for (text, line) in [
            ("qreg q[2];\nrz q[0];\n", 2),               // missing parameter
            ("qreg q[2];\nrz(abc) q[0];\n", 2),          // non-numeric parameter
            ("qreg q[2];\nrz(0.5 q[0];\n", 2),           // unterminated params
            ("qreg q[2];\nu3(0.1, 0.2) q[0];\n", 2),     // wrong param count
            ("qreg q[2];\ncx q[0];\n", 2),               // wrong arity
            ("qreg q[2];\nmeasure q[0];\n", 2),          // measure without ->
            ("qreg q[2];\nif (c[0] == 0) x q[0];\n", 2), // unsupported condition
            ("qreg q[2];\nif (c[0] == 1 x q[0];\n", 2),  // unterminated if
            ("qreg q[2];\nh;\n", 2),                     // no operands
        ] {
            let err = from_qasm(text).unwrap_err();
            assert!(
                matches!(err, QasmParseError::Syntax { line: l, .. } if l == line),
                "{text:?}: expected syntax error on line {line}, got {err:?}"
            );
        }
        let err = from_qasm("qreg q[2];\nfredkin q[0], q[1];\n").unwrap_err();
        assert!(matches!(err, QasmParseError::UnsupportedGate { line: 2, .. }));
    }

    #[test]
    fn multi_statement_lines_parse_in_order() {
        let text = "qreg q[2]; creg c[1];\nh q[0]; cx q[0], q[1]; measure q[1] -> c[0];\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.num_cbits(), 1);
        assert_eq!(c.gates()[0], Gate::h(q(0)));
        assert_eq!(c.gates()[1], Gate::cx(q(0), q(1)));
        assert_eq!(c.gates()[2], Gate::measure(q(1), CBitId::new(0)));
        // Stray `;;` and trailing spaces are harmless; an unterminated
        // trailing fragment is not.
        assert!(from_qasm("qreg q[1];; h q[0];  \n").is_ok());
        let err = from_qasm("qreg q[1];\nh q[0]; x q[0]\n").unwrap_err();
        assert!(
            matches!(&err, QasmParseError::Syntax { line: 2, message } if message.contains(';')),
            "got {err:?}"
        );
    }

    #[test]
    fn parallel_parse_matches_sequential_rail() {
        // Enough lines to cross PAR_THRESHOLD and engage the chunked path,
        // with adversarial shapes sprinkled at chunk-boundary-agnostic
        // positions: comments, blank lines, multi-statement lines.
        let mut text = String::from("OPENQASM 2.0;\nqreg q[4];\ncreg c[2];\n");
        for i in 0..(2 * crate::PAR_THRESHOLD) {
            match i % 7 {
                0 => text.push_str("// comment line\n"),
                1 => text.push('\n'),
                2 => text.push_str("h q[0]; t q[1]; cx q[1], q[2];\n"),
                3 => text.push_str(&format!("rz({}.125) q[3];\n", i % 10)),
                4 => text.push_str("if (c[1] == 1) x q[2];\n"),
                5 => text.push_str("cx q[0], q[3]; // trailing comment\n"),
                _ => text.push_str("measure q[2] -> c[0];\n"),
            }
        }
        let parallel = from_qasm(&text).unwrap();
        let sequential = from_qasm_sequential(&text).unwrap();
        assert_eq!(parallel, sequential);
        assert!(parallel.len() > 2 * crate::PAR_THRESHOLD / 2);
    }

    #[test]
    fn parallel_parse_reports_first_error_in_input_order() {
        // Two errors, the earlier one in a later chunk position — both
        // rails must report the *first* in input order with its line.
        let mut text = String::from("qreg q[2];\n");
        for _ in 0..(2 * crate::PAR_THRESHOLD) {
            text.push_str("h q[0];\n");
        }
        let bad_line = 100usize;
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[bad_line - 1] = "frobnicate q[0];".into();
        lines.push("h q[0]".into()); // second error, much later
        let text = lines.join("\n");
        let err_par = from_qasm(&text).unwrap_err();
        let err_seq = from_qasm_sequential(&text).unwrap_err();
        assert_eq!(err_par, err_seq);
        assert!(
            matches!(err_par, QasmParseError::UnsupportedGate { line, .. } if line == bad_line),
            "got {err_par:?}"
        );
    }

    #[test]
    fn round_trips_every_gate_kind() {
        let mut c = Circuit::with_cbits(4, 2);
        c.push(Gate::h(q(0))).unwrap();
        c.push(Gate::sdg(q(1))).unwrap();
        c.push(Gate::rx(0.25, q(2))).unwrap();
        c.push(Gate::u3(0.1, 0.2, 0.3, q(3))).unwrap();
        c.push(Gate::cx(q(0), q(1))).unwrap();
        c.push(Gate::crz(1.5, q(1), q(2))).unwrap();
        c.push(Gate::rzz(0.7, q(2), q(3))).unwrap();
        c.push(Gate::ccx(q(0), q(1), q(2))).unwrap();
        c.push(Gate::mcx(&[q(0), q(1), q(2)], q(3))).unwrap();
        c.push(Gate::barrier(&[q(0), q(1)])).unwrap();
        c.push(Gate::measure(q(0), CBitId::new(0))).unwrap();
        c.push(Gate::z(q(1)).with_condition(CBitId::new(0))).unwrap();
        let parsed = from_qasm(&to_qasm(&c)).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn round_trips_generated_workload_text() {
        // Structural round-trip of a decomposed benchmark circuit.
        let mut c = Circuit::new(4);
        for g in [
            Gate::h(q(3)),
            Gate::cp(0.785, q(2), q(3)),
            Gate::cp(0.392, q(1), q(3)),
            Gate::swap(q(0), q(3)),
        ] {
            c.push(g).unwrap();
        }
        let parsed = from_qasm(&to_qasm(&c)).unwrap();
        assert_eq!(parsed, c);
    }
}
