//! Circuit statistics matching the columns of the paper's Table 2.

use std::collections::HashMap;

use crate::{Circuit, GateKind, Partition};

/// Summary statistics of a (possibly distributed) circuit.
///
/// The fields mirror the paper's Table 2: total gate count, two-qubit gate
/// count in the unrolled basis, and — when a [`Partition`] is supplied —
/// the number of remote two-qubit gates under that qubit mapping.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CircuitStats {
    /// Total number of gates (excluding barriers).
    pub num_gates: usize,
    /// Number of two-qubit unitaries (“# CX” once unrolled).
    pub num_2q: usize,
    /// Number of single-qubit unitaries.
    pub num_1q: usize,
    /// Number of measurements.
    pub num_measure: usize,
    /// Number of remote two-qubit unitaries under the partition (0 when no
    /// partition was supplied).
    pub num_remote_2q: usize,
    /// Gate count per kind.
    pub by_kind: HashMap<GateKind, usize>,
}

impl CircuitStats {
    /// Computes statistics for `circuit`, counting remote gates against
    /// `partition` when one is given.
    ///
    /// ```
    /// use dqc_circuit::{Circuit, CircuitStats, Gate, Partition, QubitId};
    /// # fn main() -> Result<(), dqc_circuit::CircuitError> {
    /// let mut c = Circuit::new(4);
    /// c.push(Gate::h(QubitId::new(0)))?;
    /// c.push(Gate::cx(QubitId::new(0), QubitId::new(2)))?;
    /// let p = Partition::block(4, 2)?;
    /// let stats = CircuitStats::of(&c, Some(&p));
    /// assert_eq!(stats.num_2q, 1);
    /// assert_eq!(stats.num_remote_2q, 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn of(circuit: &Circuit, partition: Option<&Partition>) -> Self {
        let mut s = CircuitStats::default();
        for g in circuit.gates() {
            if g.kind() == GateKind::Barrier {
                continue;
            }
            s.num_gates += 1;
            *s.by_kind.entry(g.kind()).or_insert(0) += 1;
            if g.is_two_qubit_unitary() {
                s.num_2q += 1;
                if let Some(p) = partition {
                    if p.is_remote(g) {
                        s.num_remote_2q += 1;
                    }
                }
            } else if g.is_single_qubit_unitary() {
                s.num_1q += 1;
            } else if g.kind() == GateKind::Measure {
                s.num_measure += 1;
            }
        }
        s
    }
}

/// Circuit depth: the length of the longest qubit-dependency chain, with
/// every gate counted as one layer (classical bits included as dependencies).
///
/// ```
/// use dqc_circuit::{circuit_depth, Circuit, Gate, QubitId};
/// # fn main() -> Result<(), dqc_circuit::CircuitError> {
/// let q = |i| QubitId::new(i);
/// let mut c = Circuit::new(3);
/// c.push(Gate::h(q(0)))?;
/// c.push(Gate::cx(q(0), q(1)))?;
/// c.push(Gate::h(q(2)))?; // parallel with the others
/// assert_eq!(circuit_depth(&c), 2);
/// # Ok(())
/// # }
/// ```
pub fn circuit_depth(circuit: &Circuit) -> usize {
    let mut qubit_level = vec![0usize; circuit.num_qubits()];
    let mut cbit_level = vec![0usize; circuit.num_cbits()];
    let mut depth = 0;
    for g in circuit.gates() {
        let mut level = 0;
        for &q in g.qubits() {
            level = level.max(qubit_level[q.index()]);
        }
        for c in [g.cbit(), g.condition()].into_iter().flatten() {
            level = level.max(cbit_level[c.index()]);
        }
        let level = level + 1;
        for &q in g.qubits() {
            qubit_level[q.index()] = level;
        }
        for c in [g.cbit(), g.condition()].into_iter().flatten() {
            cbit_level[c.index()] = level;
        }
        depth = depth.max(level);
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CBitId, Gate, QubitId};

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn stats_count_kinds() {
        let mut c = Circuit::with_cbits(3, 1);
        c.push(Gate::h(q(0))).unwrap();
        c.push(Gate::h(q(1))).unwrap();
        c.push(Gate::cx(q(0), q(1))).unwrap();
        c.push(Gate::measure(q(0), CBitId::new(0))).unwrap();
        c.push(Gate::barrier(&[q(0), q(1)])).unwrap();
        let s = CircuitStats::of(&c, None);
        assert_eq!(s.num_gates, 4); // barrier excluded
        assert_eq!(s.num_1q, 2);
        assert_eq!(s.num_2q, 1);
        assert_eq!(s.num_measure, 1);
        assert_eq!(s.by_kind[&GateKind::H], 2);
    }

    #[test]
    fn remote_counting_respects_partition() {
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(1))).unwrap(); // local
        c.push(Gate::cx(q(1), q(2))).unwrap(); // remote
        c.push(Gate::cx(q(2), q(3))).unwrap(); // local
        let p = Partition::block(4, 2).unwrap();
        let s = CircuitStats::of(&c, Some(&p));
        assert_eq!(s.num_remote_2q, 1);
    }

    #[test]
    fn depth_of_empty_circuit_is_zero() {
        assert_eq!(circuit_depth(&Circuit::new(3)), 0);
    }

    #[test]
    fn depth_chains_through_shared_qubits() {
        let mut c = Circuit::new(2);
        for _ in 0..5 {
            c.push(Gate::cx(q(0), q(1))).unwrap();
        }
        assert_eq!(circuit_depth(&c), 5);
    }

    #[test]
    fn depth_chains_through_classical_bits() {
        let mut c = Circuit::with_cbits(2, 1);
        c.push(Gate::measure(q(0), CBitId::new(0))).unwrap();
        c.push(Gate::x(q(1)).with_condition(CBitId::new(0))).unwrap();
        assert_eq!(circuit_depth(&c), 2);
    }
}
