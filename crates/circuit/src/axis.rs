//! Per-qubit basis-diagonality classification used for symbolic commutation.
//!
//! The AutoComm paper's Figure 7 lists X-rotation-centered rewrite rules
//! (e.g. `X P = P† X`, `H RX = RZ H`, RX commutes through a CX target, RZ
//! through a CX control). All *order-preserving* instances of those rules are
//! captured uniformly by classifying how a gate acts on each of its qubit
//! operands:
//!
//! * [`AxisBehavior::ZDiag`] — the gate can be written as
//!   `Σ_b |b⟩⟨b| ⊗ U_b` on that qubit (diagonal in the computational basis);
//! * [`AxisBehavior::XDiag`] — likewise in the |±⟩ basis;
//! * [`AxisBehavior::Opaque`] — neither.
//!
//! Two gates sharing qubits commute whenever, on every shared qubit, their
//! behaviors match in some diagonal basis (both `ZDiag` or both `XDiag`) —
//! each gate then decomposes over the same projector family and the
//! coefficient operators act on disjoint qubits. The test is *sound*
//! (never claims commutation falsely) but deliberately incomplete, which is
//! exactly what a compiler needs. `dqc-sim` property-tests soundness against
//! dense unitaries.

use crate::{Gate, GateKind, QubitId};

/// How a gate acts on one specific operand qubit, for commutation purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AxisBehavior {
    /// Diagonal in the computational (Z) basis on this qubit.
    ZDiag,
    /// Diagonal in the Hadamard (X) basis on this qubit.
    XDiag,
    /// Neither; the gate blocks commutation through this qubit.
    Opaque,
}

impl AxisBehavior {
    /// Classifies how `gate` behaves on operand `q`.
    ///
    /// Returns [`AxisBehavior::Opaque`] when `q` is not an operand of `gate`
    /// (a gate is trivially diagonal on non-operands, but callers only ask
    /// about shared qubits, so the conservative answer keeps misuse safe).
    pub fn of(gate: &Gate, q: QubitId) -> AxisBehavior {
        let Some(pos) = gate.qubits().iter().position(|&x| x == q) else {
            return AxisBehavior::Opaque;
        };
        // A classically conditioned unitary is a measurement-correlated mixture;
        // its per-branch behavior is the same as the bare gate, and the classical
        // bit ordering is handled separately by the scheduler, so classification
        // by kind remains sound for reordering *quantum* operands.
        match gate.kind() {
            GateKind::I
            | GateKind::Z
            | GateKind::S
            | GateKind::Sdg
            | GateKind::T
            | GateKind::Tdg
            | GateKind::Rz
            | GateKind::Phase
            | GateKind::Cz
            | GateKind::Cp
            | GateKind::Rzz => AxisBehavior::ZDiag,
            GateKind::X | GateKind::Sx | GateKind::Rx => AxisBehavior::XDiag,
            GateKind::Cx | GateKind::Crz => {
                if pos == 0 {
                    AxisBehavior::ZDiag
                } else if gate.kind() == GateKind::Cx {
                    AxisBehavior::XDiag
                } else {
                    // CRZ target: RZ is diagonal, so the whole gate is.
                    AxisBehavior::ZDiag
                }
            }
            GateKind::Ccx | GateKind::Mcx => {
                if pos + 1 == gate.num_qubits() {
                    AxisBehavior::XDiag
                } else {
                    AxisBehavior::ZDiag
                }
            }
            // Z-basis measurement commutes exactly with Z-diagonal unitaries on
            // the measured qubit (RZ · |b⟩⟨b| = |b⟩⟨b| · RZ).
            GateKind::Measure => AxisBehavior::ZDiag,
            GateKind::H
            | GateKind::Y
            | GateKind::Ry
            | GateKind::U3
            | GateKind::Swap
            | GateKind::Reset
            | GateKind::Barrier => AxisBehavior::Opaque,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn cx_control_is_zdiag_target_is_xdiag() {
        let g = Gate::cx(q(0), q(1));
        assert_eq!(AxisBehavior::of(&g, q(0)), AxisBehavior::ZDiag);
        assert_eq!(AxisBehavior::of(&g, q(1)), AxisBehavior::XDiag);
    }

    #[test]
    fn crz_is_diagonal_on_both_operands() {
        let g = Gate::crz(0.3, q(0), q(1));
        assert_eq!(AxisBehavior::of(&g, q(0)), AxisBehavior::ZDiag);
        assert_eq!(AxisBehavior::of(&g, q(1)), AxisBehavior::ZDiag);
    }

    #[test]
    fn phase_family_is_zdiag() {
        for g in [
            Gate::z(q(0)),
            Gate::s(q(0)),
            Gate::sdg(q(0)),
            Gate::t(q(0)),
            Gate::tdg(q(0)),
            Gate::rz(0.7, q(0)),
            Gate::phase(0.7, q(0)),
        ] {
            assert_eq!(AxisBehavior::of(&g, q(0)), AxisBehavior::ZDiag, "{g}");
        }
    }

    #[test]
    fn x_family_is_xdiag() {
        for g in [Gate::x(q(0)), Gate::sx(q(0)), Gate::rx(0.7, q(0))] {
            assert_eq!(AxisBehavior::of(&g, q(0)), AxisBehavior::XDiag, "{g}");
        }
    }

    #[test]
    fn opaque_gates() {
        for g in [
            Gate::h(q(0)),
            Gate::y(q(0)),
            Gate::ry(0.3, q(0)),
            Gate::u3(0.1, 0.2, 0.3, q(0)),
            Gate::reset(q(0)),
            Gate::barrier(&[q(0)]),
        ] {
            assert_eq!(AxisBehavior::of(&g, q(0)), AxisBehavior::Opaque, "{g}");
        }
        let sw = Gate::swap(q(0), q(1));
        assert_eq!(AxisBehavior::of(&sw, q(0)), AxisBehavior::Opaque);
    }

    #[test]
    fn mcx_controls_zdiag_target_xdiag() {
        let g = Gate::mcx(&[q(0), q(1), q(2)], q(3));
        for c in [q(0), q(1), q(2)] {
            assert_eq!(AxisBehavior::of(&g, c), AxisBehavior::ZDiag);
        }
        assert_eq!(AxisBehavior::of(&g, q(3)), AxisBehavior::XDiag);
    }

    #[test]
    fn non_operand_is_opaque() {
        let g = Gate::cx(q(0), q(1));
        assert_eq!(AxisBehavior::of(&g, q(9)), AxisBehavior::Opaque);
    }

    #[test]
    fn measure_is_zdiag() {
        let g = Gate::measure(q(0), crate::CBitId::new(0));
        assert_eq!(AxisBehavior::of(&g, q(0)), AxisBehavior::ZDiag);
    }
}
