//! Interned gate storage and constant-time set-commutation summaries.
//!
//! The indexed IR (`CommIr` in `autocomm`) stores every gate of a program
//! **once** in a [`GateTable`] and refers to it by [`GateId`] everywhere
//! else — blocks, items, and schedules hold `u32` indices instead of cloned
//! [`Gate`] values. Interning is by content, so repeated gates (the common
//! case in unrolled circuits) share one slot and one id, which also makes
//! "are these the same gate?" an integer comparison.
//!
//! On intern the table precomputes, per unique gate, a flat (CSR) record of
//! its wires and their commutation classes, so the hot passes never touch
//! the heap-allocated [`Gate`] at all:
//!
//! * [`GateTable::commutes_ids`] — the exact pairwise [`crate::commutes`]
//!   oracle over ids (identical-gate test becomes `a == b`);
//! * [`CommSummary`] — summarizes a *set* of gates per qubit wire so that
//!   "does gate `g` commute with every gate in the set?"
//!   ([`CommSummary::commutes_with`]) is answered in `O(operands(g))`
//!   instead of `O(|set|)`, with answers **exactly** equal to
//!   [`crate::commutes_with_all`] — same axis-diagonality algebra, same
//!   classical-bit hazards, same identical-unitary rule, as the property
//!   suite asserts.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::{AxisBehavior, Gate, GateKind, QubitId};

/// Index of an interned gate in a [`GateTable`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(u32);

impl GateId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for GateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Minimal FNV-1a hasher for the interning index — the keys are already
/// well-mixed 64-bit content hashes, and the offline container has no
/// external fast-hash crates.
#[derive(Default)]
struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.0 = h;
    }

    fn write_u64(&mut self, v: u64) {
        let mut h = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
        self.0 = h;
    }
}

type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// Content hash of a gate (parameters bit-exact, `-0.0` normalized).
fn content_hash(gate: &Gate) -> u64 {
    let mut h = FnvHasher::default();
    h.write_u64(gate.kind() as u64);
    for q in gate.qubits() {
        h.write_u64(q.index() as u64 + 1);
    }
    h.write_u64(0x9e37_79b9_7f4a_7c15); // qubit/param separator
    for p in gate.params() {
        h.write_u64((p + 0.0).to_bits());
    }
    h.write_u64(bit_code(gate.cbit()));
    h.write_u64(bit_code(gate.condition()));
    h.finish()
}

fn bit_code(bit: Option<crate::CBitId>) -> u64 {
    match bit {
        Some(b) => b.index() as u64 + 2,
        None => 1,
    }
}

/// Bit-exact gate content equality (matches [`Gate`]'s `PartialEq` on the
/// values produced by this workspace; `-0.0` and `0.0` compare equal).
fn content_eq(a: &Gate, b: &Gate) -> bool {
    a.kind() == b.kind()
        && a.qubits() == b.qubits()
        && a.params().len() == b.params().len()
        && a.params()
            .iter()
            .zip(b.params())
            .all(|(x, y)| (x + 0.0).to_bits() == (y + 0.0).to_bits())
        && a.cbit() == b.cbit()
        && a.condition() == b.condition()
}

/// Per-wire commutation class tag stored in the table's CSR record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WireTag {
    /// Diagonal in the computational basis on this wire.
    Z,
    /// Diagonal in the |±⟩ basis on this wire.
    X,
    /// Opaque but unitary: commutes only with bit-identical copies.
    Opaque,
    /// Barrier/reset: conflicts with everything sharing the wire.
    Block,
}

fn wire_tag(gate: &Gate, q: QubitId) -> WireTag {
    if matches!(gate.kind(), GateKind::Barrier | GateKind::Reset) {
        return WireTag::Block;
    }
    match AxisBehavior::of(gate, q) {
        AxisBehavior::ZDiag => WireTag::Z,
        AxisBehavior::XDiag => WireTag::X,
        AxisBehavior::Opaque if gate.kind().is_unitary() => WireTag::Opaque,
        AxisBehavior::Opaque => WireTag::Block,
    }
}

/// One wire of a gate's precomputed commutation record.
#[derive(Clone, Copy, Debug)]
struct Wire {
    qubit: u32,
    tag: WireTag,
}

/// Public view of a gate's precomputed per-wire commutation class — what
/// [`GateTable::wire_class_on`] reports so hot passes (segmentation,
/// aggregation) can classify a gate's action on a wire without resolving
/// the heap-allocated [`Gate`] at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireClass {
    /// Diagonal in the computational basis on this wire.
    ZDiag,
    /// Diagonal in the |±⟩ basis on this wire.
    XDiag,
    /// Opaque but unitary: commutes only with bit-identical copies.
    Opaque,
    /// Barrier/reset: conflicts with everything sharing the wire.
    Block,
}

const NO_CBIT: u32 = u32::MAX;

/// Fixed-size classical-bit record: `[cbit, condition]`, `NO_CBIT` = none.
#[derive(Clone, Copy, Debug)]
struct CBits([u32; 2]);

impl CBits {
    fn of(gate: &Gate) -> CBits {
        let code = |b: Option<crate::CBitId>| b.map_or(NO_CBIT, |c| c.index() as u32);
        CBits([code(gate.cbit()), code(gate.condition())])
    }

    fn iter(self) -> impl Iterator<Item = u32> {
        self.0.into_iter().filter(|&c| c != NO_CBIT)
    }

    fn any(self) -> bool {
        self.0[0] != NO_CBIT || self.0[1] != NO_CBIT
    }
}

/// An append-only, content-interned gate store with per-gate precomputed
/// commutation records.
///
/// ```
/// use dqc_circuit::{Gate, GateTable, QubitId};
/// let q = |i| QubitId::new(i);
/// let mut table = GateTable::new();
/// let a = table.intern(&Gate::cx(q(0), q(1)));
/// let b = table.intern(&Gate::cx(q(0), q(1)));
/// let c = table.intern(&Gate::h(q(0)));
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// assert_eq!(table.len(), 2);
/// assert_eq!(table.gate(a), &Gate::cx(q(0), q(1)));
/// assert!(table.commutes_ids(a, c) == dqc_circuit::commutes(table.gate(a), table.gate(c)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct GateTable {
    gates: Vec<Gate>,
    /// content hash → interned id (collisions verified by full content
    /// comparison; true 64-bit collisions spill to `collisions`).
    index: FnvMap<u64, GateId>,
    /// Overflow entries for distinct gates sharing a content hash.
    collisions: Vec<(u64, GateId)>,
    /// CSR wire records: `wires[offsets[id]..offsets[id + 1]]`.
    wires: Vec<Wire>,
    offsets: Vec<u32>,
    /// Arena (bump) copies of the per-gate scalar metadata, so the hot
    /// passes read flat `Vec`s instead of chasing each [`Gate`]'s
    /// heap-allocated operand storage: one [`GateKind`] per gate…
    kinds: Vec<GateKind>,
    /// …and the rotation parameters in a CSR arena
    /// (`params[param_off[id]..param_off[id + 1]]`).
    params: Vec<f64>,
    param_off: Vec<u32>,
    cbits: Vec<CBits>,
    /// Per-gate folded wire mask: bit `q % 64` per operand (collisions past
    /// 64 qubits only ever make overlap checks conservative).
    masks: Vec<u64>,
    /// Like `masks`, but all-ones for classically-entangled gates so a
    /// single load answers "certainly disjoint and classically clean?".
    disjoint_masks: Vec<u64>,
}

impl GateTable {
    /// An empty table.
    pub fn new() -> Self {
        GateTable { offsets: vec![0], param_off: vec![0], ..GateTable::default() }
    }

    /// An empty table sized for roughly `gates` interned gates.
    pub fn with_capacity(gates: usize) -> Self {
        let mut t = GateTable::new();
        t.gates.reserve(gates);
        t.index.reserve(gates);
        t.wires.reserve(gates * 2);
        t.offsets.reserve(gates);
        t.kinds.reserve(gates);
        t.params.reserve(gates);
        t.param_off.reserve(gates);
        t.cbits.reserve(gates);
        t.masks.reserve(gates);
        t.disjoint_masks.reserve(gates);
        t
    }

    /// Interns `gate`, returning the id of its unique copy.
    pub fn intern(&mut self, gate: &Gate) -> GateId {
        let hash = content_hash(gate);
        let mut collided = false;
        if let Some(&id) = self.index.get(&hash) {
            if content_eq(&self.gates[id.index()], gate) {
                return id;
            }
            collided = true;
            for &(h, cid) in &self.collisions {
                if h == hash && content_eq(&self.gates[cid.index()], gate) {
                    return cid;
                }
            }
        }
        let id = GateId(u32::try_from(self.gates.len()).expect("gate table fits in u32"));
        let mut mask = 0u64;
        for &q in gate.qubits() {
            self.wires.push(Wire { qubit: q.index() as u32, tag: wire_tag(gate, q) });
            mask |= 1u64 << (q.index() % 64);
        }
        self.offsets.push(self.wires.len() as u32);
        self.kinds.push(gate.kind());
        self.params.extend_from_slice(gate.params());
        self.param_off.push(self.params.len() as u32);
        let cbits = CBits::of(gate);
        self.disjoint_masks.push(if cbits.any() { u64::MAX } else { mask });
        self.cbits.push(cbits);
        self.masks.push(mask);
        self.gates.push(gate.clone());
        if collided {
            self.collisions.push((hash, id));
        } else {
            self.index.insert(hash, id);
        }
        id
    }

    /// Resolves an id to its gate.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this table.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Resolves a slice of ids to gate references.
    pub fn gates<'a>(&'a self, ids: &'a [GateId]) -> impl Iterator<Item = &'a Gate> + 'a {
        ids.iter().map(|&id| self.gate(id))
    }

    /// Number of distinct gates interned.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    fn wires_of(&self, id: GateId) -> &[Wire] {
        &self.wires[self.offsets[id.index()] as usize..self.offsets[id.index() + 1] as usize]
    }

    /// The operand qubit indices of `id`, without touching the gate.
    pub fn qubit_indices(&self, id: GateId) -> impl Iterator<Item = usize> + '_ {
        self.wires_of(id).iter().map(|w| w.qubit as usize)
    }

    /// The kind of gate `id`, from the flat kind arena.
    pub fn kind_of(&self, id: GateId) -> GateKind {
        self.kinds[id.index()]
    }

    /// The rotation parameters of `id`, from the CSR parameter arena.
    pub fn params_of(&self, id: GateId) -> &[f64] {
        &self.params[self.param_off[id.index()] as usize..self.param_off[id.index() + 1] as usize]
    }

    /// Number of qubit operands of `id` (CSR offset difference; no gate
    /// resolution).
    pub fn operand_count(&self, id: GateId) -> usize {
        (self.offsets[id.index() + 1] - self.offsets[id.index()]) as usize
    }

    /// Whether `id` is a unitary gate (not a measure/reset/barrier).
    pub fn is_unitary(&self, id: GateId) -> bool {
        self.kinds[id.index()].is_unitary()
    }

    /// The precomputed commutation class of `id`'s action on `qubit`, or
    /// `None` when the gate does not act on that wire.
    pub fn wire_class_on(&self, id: GateId, qubit: usize) -> Option<WireClass> {
        self.wires_of(id).iter().find(|w| w.qubit as usize == qubit).map(|w| match w.tag {
            WireTag::Z => WireClass::ZDiag,
            WireTag::X => WireClass::XDiag,
            WireTag::Opaque => WireClass::Opaque,
            WireTag::Block => WireClass::Block,
        })
    }

    /// The classical bit written by `id` if it is a measurement.
    pub fn measure_bit(&self, id: GateId) -> Option<usize> {
        let c = self.cbits[id.index()].0[0];
        (c != NO_CBIT).then_some(c as usize)
    }

    /// The classical bit conditioning `id`, if any.
    pub fn condition_bit(&self, id: GateId) -> Option<usize> {
        let c = self.cbits[id.index()].0[1];
        (c != NO_CBIT).then_some(c as usize)
    }

    /// Whether `id` reads or writes any classical bit.
    pub fn touches_classical(&self, id: GateId) -> bool {
        self.cbits[id.index()].any()
    }

    /// The classical bits `id` reads or writes (measurement target and
    /// condition bit).
    pub fn classical_bits(&self, id: GateId) -> impl Iterator<Item = usize> + '_ {
        self.cbits[id.index()].iter().map(|c| c as usize)
    }

    /// Folded operand mask of `id`: bit `q % 64` set per operand qubit.
    /// Disjoint masks prove disjoint supports; overlapping masks prove
    /// nothing past 64 qubits (fold collisions are conservative).
    pub fn wire_mask(&self, id: GateId) -> u64 {
        self.masks[id.index()]
    }

    /// [`Self::wire_mask`], except all-ones when `id` touches a classical
    /// bit: `disjoint_mask(id) & set_mask == 0` proves in one load that the
    /// gate overlaps none of the set's wires and carries no classical
    /// hazard (the fast-path test of the aggregation hoist loop).
    pub fn disjoint_mask(&self, id: GateId) -> u64 {
        self.disjoint_masks[id.index()]
    }

    /// Approximate heap footprint of the flat arenas in bytes: the CSR wire
    /// records and offsets plus the kind/param/cbit/mask copies. Excludes
    /// the resolved [`Gate`] values and the interning index (whose sizes
    /// depend on hash-map capacity growth, not on content) so the number is
    /// deterministic for a given program — the memory counter the front-end
    /// scale gate records in its baseline.
    pub fn arena_bytes(&self) -> usize {
        use std::mem::size_of;
        self.wires.len() * size_of::<Wire>()
            + self.offsets.len() * size_of::<u32>()
            + self.kinds.len() * size_of::<GateKind>()
            + self.params.len() * size_of::<f64>()
            + self.param_off.len() * size_of::<u32>()
            + self.cbits.len() * size_of::<CBits>()
            + self.masks.len() * size_of::<u64>()
            + self.disjoint_masks.len() * size_of::<u64>()
    }

    /// Exact pairwise commutation over interned ids — identical to
    /// [`crate::commutes`] on the resolved gates, but using the precomputed
    /// wire records (the identical-unitary rule becomes `a == b`).
    pub fn commutes_ids(&self, a: GateId, b: GateId) -> bool {
        let (ca, cb) = (self.cbits[a.index()], self.cbits[b.index()]);
        if ca.any() && cb.any() {
            for x in ca.iter() {
                for y in cb.iter() {
                    if x == y {
                        return false;
                    }
                }
            }
        }
        let (wa, wb) = (self.wires_of(a), self.wires_of(b));
        for x in wa {
            for y in wb {
                if x.qubit == y.qubit {
                    let ok = match (x.tag, y.tag) {
                        (WireTag::Z, WireTag::Z) | (WireTag::X, WireTag::X) => true,
                        // Identical-unitary rule; barriers/resets carry
                        // `Block` and conflict even with identical copies.
                        (WireTag::Opaque, WireTag::Opaque) => a == b,
                        _ => false,
                    };
                    if !ok {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Per-wire state of a [`CommSummary`]: what class of gates touched the
/// wire (generation-stamped so `clear` is O(1)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WireState {
    /// All touches so far are Z-diagonal.
    Z,
    /// All touches so far are X-diagonal.
    X,
    /// All touches so far are bit-identical copies of one opaque unitary.
    Same(GateId),
    /// Mixed classes or a barrier/reset: nothing further commutes here.
    Conflict,
}

#[derive(Clone, Copy, Debug)]
struct WireEntry {
    gen: u32,
    state: WireState,
}

/// An exact, incrementally-built summary of a gate *set* that answers
/// "does `g` commute with every member?" in `O(operands(g))`.
///
/// Equivalent to [`crate::commutes_with_all`] over the inserted gates — the
/// replacement for the pass-internal `O(set)` rescans:
///
/// ```
/// use dqc_circuit::{commutes_with_all, CommSummary, Gate, GateTable, QubitId};
/// let q = |i| QubitId::new(i);
/// let mut table = GateTable::new();
/// let set = vec![Gate::cx(q(0), q(1)), Gate::cx(q(0), q(2))];
/// let mut summary = CommSummary::new(4, 0);
/// for g in &set {
///     let id = table.intern(g);
///     summary.add(&table, id);
/// }
/// let rz = table.intern(&Gate::rz(0.1, q(0)));
/// assert!(summary.commutes_with(&table, rz));
/// let x = table.intern(&Gate::x(q(0)));
/// assert!(!summary.commutes_with(&table, x));
/// ```
#[derive(Clone, Debug)]
pub struct CommSummary {
    gen: u32,
    wires: Vec<WireEntry>,
    cbit_gen: Vec<u32>,
    len: usize,
}

impl CommSummary {
    /// An empty summary over registers of the given widths (both grow on
    /// demand).
    pub fn new(num_qubits: usize, num_cbits: usize) -> Self {
        CommSummary {
            gen: 1,
            wires: vec![WireEntry { gen: 0, state: WireState::Conflict }; num_qubits],
            cbit_gen: vec![0; num_cbits],
            len: 0,
        }
    }

    /// Empties the summary in O(1) (the backing storage is reused).
    pub fn clear(&mut self) {
        self.gen += 1;
        self.len = 0;
    }

    /// Number of gates inserted since the last [`CommSummary::clear`].
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no gate has been inserted since the last clear.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts gate `id` into the set.
    pub fn add(&mut self, table: &GateTable, id: GateId) {
        self.len += 1;
        for w in table.wires_of(id) {
            let incoming = match w.tag {
                WireTag::Z => WireState::Z,
                WireTag::X => WireState::X,
                WireTag::Opaque => WireState::Same(id),
                WireTag::Block => WireState::Conflict,
            };
            let qi = w.qubit as usize;
            if qi >= self.wires.len() {
                self.wires.resize(qi + 1, WireEntry { gen: 0, state: WireState::Conflict });
            }
            let entry = &mut self.wires[qi];
            if entry.gen != self.gen {
                *entry = WireEntry { gen: self.gen, state: incoming };
            } else if entry.state != incoming || incoming == WireState::Conflict {
                entry.state = WireState::Conflict;
            }
        }
        for c in table.cbits[id.index()].iter() {
            let ci = c as usize;
            if ci >= self.cbit_gen.len() {
                self.cbit_gen.resize(ci + 1, 0);
            }
            self.cbit_gen[ci] = self.gen;
        }
    }

    /// Whether gate `id` commutes with **every** gate in the set — exactly
    /// [`crate::commutes_with_all`] over the inserted gates.
    pub fn commutes_with(&self, table: &GateTable, id: GateId) -> bool {
        if self.len == 0 {
            return true;
        }
        for c in table.cbits[id.index()].iter() {
            if self.cbit_gen.get(c as usize).copied() == Some(self.gen) {
                return false;
            }
        }
        for w in table.wires_of(id) {
            let Some(entry) = self.wires.get(w.qubit as usize) else { continue };
            if entry.gen != self.gen {
                continue; // wire untouched by the set
            }
            let ok = match (w.tag, entry.state) {
                (WireTag::Z, WireState::Z) | (WireTag::X, WireState::X) => true,
                (WireTag::Opaque, WireState::Same(member)) => member == id,
                _ => false,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{commutes, commutes_with_all, CBitId};

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    fn zoo() -> Vec<Gate> {
        vec![
            Gate::h(q(0)),
            Gate::h(q(1)),
            Gate::t(q(0)),
            Gate::x(q(1)),
            Gate::rz(0.5, q(2)),
            Gate::rx(0.5, q(2)),
            Gate::cx(q(0), q(1)),
            Gate::cx(q(1), q(0)),
            Gate::cx(q(0), q(2)),
            Gate::cz(q(1), q(2)),
            Gate::rzz(0.3, q(0), q(2)),
            Gate::swap(q(0), q(1)),
            Gate::swap(q(1), q(2)),
            Gate::ccx(q(0), q(1), q(2)),
            Gate::barrier(&[q(1)]),
            Gate::reset(q(2)),
            Gate::measure(q(0), CBitId::new(0)),
            Gate::x(q(1)).with_condition(CBitId::new(0)),
            Gate::x(q(1)).with_condition(CBitId::new(1)),
        ]
    }

    fn summary_of(gates: &[Gate], table: &mut GateTable) -> CommSummary {
        let mut s = CommSummary::new(0, 0);
        for g in gates {
            let id = table.intern(g);
            s.add(table, id);
        }
        s
    }

    /// Exhaustive agreement with `commutes_with_all` over a gate zoo.
    #[test]
    fn summary_matches_pairwise_commutation() {
        let zoo = zoo();
        let mut table = GateTable::new();
        // Every subset would be 2^19; instead check every (pair, probe) —
        // the shapes the passes actually use.
        for i in 0..zoo.len() {
            for j in 0..zoo.len() {
                let set = [zoo[i].clone(), zoo[j].clone()];
                let summary = summary_of(&set, &mut table);
                for probe in &zoo {
                    let id = table.intern(probe);
                    assert_eq!(
                        summary.commutes_with(&table, id),
                        commutes_with_all(probe, &set),
                        "set [{}, {}], probe {probe}",
                        zoo[i],
                        zoo[j],
                    );
                }
            }
        }
    }

    /// The id-level pairwise oracle agrees with `commutes` everywhere.
    #[test]
    fn commutes_ids_matches_commutes() {
        let zoo = zoo();
        let mut table = GateTable::new();
        let ids: Vec<GateId> = zoo.iter().map(|g| table.intern(g)).collect();
        for (i, a) in zoo.iter().enumerate() {
            for (j, b) in zoo.iter().enumerate() {
                assert_eq!(table.commutes_ids(ids[i], ids[j]), commutes(a, b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn identical_opaque_gates_commute_through_summary() {
        let mut table = GateTable::new();
        let h = Gate::h(q(0));
        let summary = summary_of(&[h.clone(), h.clone()], &mut table);
        let id = table.intern(&h);
        assert!(summary.commutes_with(&table, id));
        let other = table.intern(&Gate::y(q(0)));
        assert!(!summary.commutes_with(&table, other));
    }

    #[test]
    fn clear_reuses_storage() {
        let mut table = GateTable::new();
        let mut s = CommSummary::new(3, 1);
        let id = table.intern(&Gate::h(q(0)));
        s.add(&table, id);
        let zid = table.intern(&Gate::z(q(0)));
        assert!(!s.commutes_with(&table, zid));
        s.clear();
        assert!(s.is_empty());
        assert!(s.commutes_with(&table, zid));
    }

    #[test]
    fn interning_is_content_based() {
        let mut table = GateTable::new();
        let a = table.intern(&Gate::rz(0.5, q(0)));
        let b = table.intern(&Gate::rz(0.5, q(0)));
        let c = table.intern(&Gate::rz(0.25, q(0)));
        assert_eq!(a, b);
        assert_ne!(a, c);
        let neg = table.intern(&Gate::rz(-0.0, q(1)));
        let pos = table.intern(&Gate::rz(0.0, q(1)));
        assert_eq!(neg, pos, "-0.0 and 0.0 parameters intern identically");
    }

    #[test]
    fn summary_grows_past_initial_register() {
        let mut table = GateTable::new();
        let mut s = CommSummary::new(1, 0);
        let id = table.intern(&Gate::cx(q(5), q(9)));
        s.add(&table, id);
        let probe = table.intern(&Gate::h(q(9)));
        assert!(!s.commutes_with(&table, probe));
    }

    /// The arena accessors agree with the resolved gate for every zoo gate.
    #[test]
    fn arena_metadata_matches_gates() {
        let mut table = GateTable::new();
        let ids: Vec<GateId> = zoo().iter().map(|g| table.intern(g)).collect();
        for &id in &ids {
            let gate = table.gate(id).clone();
            assert_eq!(table.kind_of(id), gate.kind());
            assert_eq!(table.params_of(id), gate.params());
            assert_eq!(table.operand_count(id), gate.qubits().len());
            assert_eq!(table.is_unitary(id), gate.kind().is_unitary());
            for &q in gate.qubits() {
                let class = table.wire_class_on(id, q.index()).expect("gate acts on operand");
                let expected = match wire_tag(&gate, q) {
                    WireTag::Z => WireClass::ZDiag,
                    WireTag::X => WireClass::XDiag,
                    WireTag::Opaque => WireClass::Opaque,
                    WireTag::Block => WireClass::Block,
                };
                assert_eq!(class, expected, "{gate} on q{}", q.index());
            }
            assert_eq!(table.wire_class_on(id, 63), None, "{gate} does not act on q63");
        }
    }

    #[test]
    fn table_exposes_wire_metadata() {
        let mut table = GateTable::new();
        let id = table.intern(&Gate::cx(q(2), q(7)));
        assert_eq!(table.qubit_indices(id).collect::<Vec<_>>(), vec![2, 7]);
        assert!(!table.touches_classical(id));
        let m = table.intern(&Gate::measure(q(0), CBitId::new(3)));
        assert!(table.touches_classical(m));
    }
}
