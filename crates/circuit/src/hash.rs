//! Stable 128-bit content hashing of circuits — the identity half of the
//! compile-service cache key.
//!
//! [`circuit_content_hash`] folds everything that determines compilation
//! output — register widths and, per gate in program order: kind, operand
//! qubits, bit-exact rotation parameters (`-0.0` normalized to `0.0`, the
//! same rule [`GateTable`] interning uses), measurement target, and
//! condition bit. Nothing else enters the hash, so it is
//!
//! * **stable across parse → emit → re-parse** — OpenQASM text carries
//!   exactly the hashed fields, and Rust's shortest-round-trip `f64`
//!   formatting reproduces parameters bit-for-bit;
//! * **independent of interning order** — [`stream_content_hash`] walks a
//!   program stream of [`GateId`]s through the arena accessors, so two
//!   tables interning the same program after different warm-up traffic
//!   hash identically;
//! * **sensitive to any semantic edit** — changing one gate kind, operand,
//!   or parameter anywhere in the program changes the hash (two
//!   independently-seeded FNV-1a streams make silent 64-bit collisions a
//!   ~2⁻¹²⁸ event).
//!
//! ```
//! use dqc_circuit::{circuit_content_hash, Circuit, Gate, QubitId};
//! let q = QubitId::new;
//! let mut a = Circuit::new(2);
//! a.push(Gate::cx(q(0), q(1))).unwrap();
//! let mut b = Circuit::new(2);
//! b.push(Gate::cx(q(1), q(0))).unwrap();
//! assert_ne!(circuit_content_hash(&a), circuit_content_hash(&b));
//! assert_eq!(circuit_content_hash(&a).to_string().len(), 32);
//! ```

use std::fmt;

use crate::{CBitId, Circuit, Gate, GateId, GateKind, GateTable};

/// A 128-bit circuit content hash, displayed as 32 lower-case hex digits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash {
    hi: u64,
    lo: u64,
}

impl ContentHash {
    /// The raw `(hi, lo)` words.
    pub fn to_words(self) -> (u64, u64) {
        (self.hi, self.lo)
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Two independently-seeded FNV-1a streams absorbing the same word
/// sequence. One 64-bit stream is collision-prone at service scale
/// (birthday bound ~2³² keys); the pair is not.
struct ContentHasher {
    hi: u64,
    lo: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
/// Second-stream seed: the golden-ratio constant already used as the
/// table's qubit/param separator, reused here as an offset basis.
const HI_OFFSET: u64 = 0x9e37_79b9_7f4a_7c15;

impl ContentHasher {
    fn new() -> Self {
        ContentHasher { hi: HI_OFFSET, lo: FNV_OFFSET }
    }

    fn absorb(&mut self, v: u64) {
        self.lo = (self.lo ^ v).wrapping_mul(FNV_PRIME);
        self.hi = (self.hi ^ v.rotate_left(32)).wrapping_mul(FNV_PRIME);
    }

    fn absorb_gate_fields(
        &mut self,
        kind: GateKind,
        qubits: impl Iterator<Item = usize>,
        params: &[f64],
        cbit: Option<usize>,
        condition: Option<usize>,
    ) {
        self.absorb(kind_code(kind));
        for q in qubits {
            self.absorb(q as u64 + 1);
        }
        // Separates the variadic qubit list from the parameter list so
        // (qubits=[1], params=[]) never aliases (qubits=[], params=…).
        self.absorb(HI_OFFSET);
        for p in params {
            // Normalize -0.0 to 0.0, matching `GateTable` interning.
            self.absorb((p + 0.0).to_bits());
        }
        self.absorb(bit_code(cbit));
        self.absorb(bit_code(condition));
    }

    fn finish(&self) -> ContentHash {
        ContentHash { hi: self.hi, lo: self.lo }
    }
}

fn bit_code(bit: Option<usize>) -> u64 {
    match bit {
        Some(b) => b as u64 + 2,
        None => 1,
    }
}

/// Stable numeric code per gate kind. Deliberately **not** the enum
/// discriminant: `GateKind` is `#[non_exhaustive]` and may be reordered,
/// but cached artifacts keyed by old hashes must not silently alias new
/// ones, so the code ↔ kind mapping is frozen here.
fn kind_code(kind: GateKind) -> u64 {
    match kind {
        GateKind::I => 1,
        GateKind::H => 2,
        GateKind::X => 3,
        GateKind::Y => 4,
        GateKind::Z => 5,
        GateKind::S => 6,
        GateKind::Sdg => 7,
        GateKind::T => 8,
        GateKind::Tdg => 9,
        GateKind::Sx => 10,
        GateKind::Rx => 11,
        GateKind::Ry => 12,
        GateKind::Rz => 13,
        GateKind::Phase => 14,
        GateKind::U3 => 15,
        GateKind::Cx => 16,
        GateKind::Cz => 17,
        GateKind::Swap => 18,
        GateKind::Crz => 19,
        GateKind::Cp => 20,
        GateKind::Rzz => 21,
        GateKind::Ccx => 22,
        GateKind::Mcx => 23,
        GateKind::Measure => 24,
        GateKind::Reset => 25,
        GateKind::Barrier => 26,
        // No catch-all: a newly added kind must fail to compile here until
        // it gets a frozen code, rather than hash-collide with an old one.
    }
}

fn absorb_header(h: &mut ContentHasher, num_qubits: usize, num_cbits: usize, gates: usize) {
    h.absorb(num_qubits as u64);
    h.absorb(num_cbits as u64);
    h.absorb(gates as u64);
}

fn cbit_index(bit: Option<CBitId>) -> Option<usize> {
    bit.map(|c| c.index())
}

/// Content hash of a circuit: register widths plus every gate in program
/// order (see the module docs for the exact field set).
pub fn circuit_content_hash(circuit: &Circuit) -> ContentHash {
    let mut h = ContentHasher::new();
    absorb_header(&mut h, circuit.num_qubits(), circuit.num_cbits(), circuit.len());
    for gate in circuit.gates() {
        absorb_gate(&mut h, gate);
    }
    h.finish()
}

fn absorb_gate(h: &mut ContentHasher, gate: &Gate) {
    h.absorb_gate_fields(
        gate.kind(),
        gate.qubits().iter().map(|q| q.index()),
        gate.params(),
        cbit_index(gate.cbit()),
        cbit_index(gate.condition()),
    );
}

/// Content hash of a program stream over an interned [`GateTable`] —
/// identical to [`circuit_content_hash`] of the circuit the stream spells
/// out, reading only the table's flat arenas (kind, CSR wires/params,
/// classical-bit records). Because the stream drives the walk, the hash is
/// independent of the order in which gates were interned (and of any
/// unrelated gates the table also holds).
pub fn stream_content_hash(
    table: &GateTable,
    stream: &[GateId],
    num_qubits: usize,
    num_cbits: usize,
) -> ContentHash {
    let mut h = ContentHasher::new();
    absorb_header(&mut h, num_qubits, num_cbits, stream.len());
    for &id in stream {
        h.absorb_gate_fields(
            table.kind_of(id),
            table.qubit_indices(id),
            table.params_of(id),
            table.measure_bit(id),
            table.condition_bit(id),
        );
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_qasm, to_qasm, QubitId};

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    fn sample() -> Circuit {
        let mut c = Circuit::with_cbits(3, 2);
        c.push(Gate::h(q(0))).unwrap();
        c.push(Gate::cx(q(0), q(1))).unwrap();
        c.push(Gate::rz(0.25, q(2))).unwrap();
        c.push(Gate::measure(q(1), CBitId::new(0))).unwrap();
        c.push(Gate::x(q(2)).with_condition(CBitId::new(0))).unwrap();
        c
    }

    #[test]
    fn hash_survives_qasm_round_trip() {
        let c = sample();
        let reparsed = from_qasm(&to_qasm(&c)).unwrap();
        assert_eq!(circuit_content_hash(&c), circuit_content_hash(&reparsed));
    }

    #[test]
    fn hash_changes_with_any_field() {
        let base = circuit_content_hash(&sample());
        let mut kind = sample();
        kind.push(Gate::h(q(0))).unwrap();
        assert_ne!(base, circuit_content_hash(&kind));

        let mut operand = Circuit::with_cbits(3, 2);
        operand.push(Gate::h(q(1))).unwrap();
        let mut other = Circuit::with_cbits(3, 2);
        other.push(Gate::h(q(0))).unwrap();
        assert_ne!(circuit_content_hash(&operand), circuit_content_hash(&other));

        let mut p1 = Circuit::new(1);
        p1.push(Gate::rz(0.5, q(0))).unwrap();
        let mut p2 = Circuit::new(1);
        p2.push(Gate::rz(0.5000001, q(0))).unwrap();
        assert_ne!(circuit_content_hash(&p1), circuit_content_hash(&p2));
    }

    #[test]
    fn register_widths_are_hashed() {
        assert_ne!(circuit_content_hash(&Circuit::new(3)), circuit_content_hash(&Circuit::new(4)));
        assert_ne!(
            circuit_content_hash(&Circuit::with_cbits(3, 0)),
            circuit_content_hash(&Circuit::with_cbits(3, 1))
        );
    }

    #[test]
    fn negative_zero_params_hash_like_zero() {
        let mut a = Circuit::new(1);
        a.push(Gate::rz(0.0, q(0))).unwrap();
        let mut b = Circuit::new(1);
        b.push(Gate::rz(-0.0, q(0))).unwrap();
        assert_eq!(circuit_content_hash(&a), circuit_content_hash(&b));
    }

    #[test]
    fn stream_hash_matches_circuit_hash() {
        let c = sample();
        let mut table = GateTable::new();
        let stream: Vec<GateId> = c.gates().iter().map(|g| table.intern(g)).collect();
        assert_eq!(
            stream_content_hash(&table, &stream, c.num_qubits(), c.num_cbits()),
            circuit_content_hash(&c)
        );
    }

    #[test]
    fn stream_hash_ignores_interning_order() {
        let c = sample();
        // Warm the second table with unrelated traffic and the program's
        // own gates in reverse, scrambling every interned id.
        let mut warm = GateTable::new();
        warm.intern(&Gate::ccx(q(0), q(1), q(2)));
        for g in c.gates().iter().rev() {
            warm.intern(g);
        }
        let warm_stream: Vec<GateId> = c.gates().iter().map(|g| warm.intern(g)).collect();
        let mut cold = GateTable::new();
        let cold_stream: Vec<GateId> = c.gates().iter().map(|g| cold.intern(g)).collect();
        assert_ne!(warm_stream, cold_stream, "ids differ; hashes must not");
        assert_eq!(
            stream_content_hash(&warm, &warm_stream, c.num_qubits(), c.num_cbits()),
            stream_content_hash(&cold, &cold_stream, c.num_qubits(), c.num_cbits())
        );
    }

    #[test]
    fn display_is_32_hex_digits() {
        let s = circuit_content_hash(&sample()).to_string();
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
