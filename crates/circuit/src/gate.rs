//! Gate kinds and gate instances.

use std::fmt;

use crate::{CBitId, CircuitError, QubitId};

/// The gate alphabet understood by the compiler.
///
/// The set mirrors what the AutoComm paper's benchmarks are built from:
/// Clifford+T single-qubit gates, axis rotations, the `CX` family of
/// two-qubit gates, Toffoli / multi-controlled X, and the non-unitary
/// operations required by the communication protocol expansions
/// (measurement, reset, and barriers).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum GateKind {
    /// Identity (useful as a scheduling placeholder).
    I,
    /// Hadamard.
    H,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Phase gate S = diag(1, i).
    S,
    /// Inverse phase gate S†.
    Sdg,
    /// T = diag(1, e^{iπ/4}).
    T,
    /// T†.
    Tdg,
    /// Square root of X.
    Sx,
    /// Rotation about X: exp(-iθX/2).
    Rx,
    /// Rotation about Y: exp(-iθY/2).
    Ry,
    /// Rotation about Z: exp(-iθZ/2).
    Rz,
    /// Phase rotation diag(1, e^{iθ}).
    Phase,
    /// Generic single-qubit unitary U3(θ, φ, λ).
    U3,
    /// Controlled X (CNOT); operands are `[control, target]`.
    Cx,
    /// Controlled Z; symmetric on its two operands.
    Cz,
    /// Swap of two qubits.
    Swap,
    /// Controlled RZ; operands are `[control, target]`.
    Crz,
    /// Controlled phase; symmetric on its two operands.
    Cp,
    /// Two-qubit ZZ interaction exp(-iθ Z⊗Z / 2).
    Rzz,
    /// Toffoli; operands are `[control, control, target]`.
    Ccx,
    /// Multi-controlled X; operands are `[control, ..., control, target]`.
    Mcx,
    /// Z-basis measurement into a classical bit.
    Measure,
    /// Reset a qubit to |0⟩.
    Reset,
    /// Scheduling barrier over its operand qubits; commutes with nothing.
    Barrier,
}

impl GateKind {
    /// Lower-case mnemonic, as used in textual dumps and OpenQASM export.
    pub fn name(self) -> &'static str {
        match self {
            GateKind::I => "id",
            GateKind::H => "h",
            GateKind::X => "x",
            GateKind::Y => "y",
            GateKind::Z => "z",
            GateKind::S => "s",
            GateKind::Sdg => "sdg",
            GateKind::T => "t",
            GateKind::Tdg => "tdg",
            GateKind::Sx => "sx",
            GateKind::Rx => "rx",
            GateKind::Ry => "ry",
            GateKind::Rz => "rz",
            GateKind::Phase => "p",
            GateKind::U3 => "u3",
            GateKind::Cx => "cx",
            GateKind::Cz => "cz",
            GateKind::Swap => "swap",
            GateKind::Crz => "crz",
            GateKind::Cp => "cp",
            GateKind::Rzz => "rzz",
            GateKind::Ccx => "ccx",
            GateKind::Mcx => "mcx",
            GateKind::Measure => "measure",
            GateKind::Reset => "reset",
            GateKind::Barrier => "barrier",
        }
    }

    /// Parses a lower-case mnemonic back to its kind — the inverse of
    /// [`GateKind::name`], used by textual artifact formats.
    pub fn parse(name: &str) -> Option<GateKind> {
        Some(match name {
            "id" => GateKind::I,
            "h" => GateKind::H,
            "x" => GateKind::X,
            "y" => GateKind::Y,
            "z" => GateKind::Z,
            "s" => GateKind::S,
            "sdg" => GateKind::Sdg,
            "t" => GateKind::T,
            "tdg" => GateKind::Tdg,
            "sx" => GateKind::Sx,
            "rx" => GateKind::Rx,
            "ry" => GateKind::Ry,
            "rz" => GateKind::Rz,
            "p" => GateKind::Phase,
            "u3" => GateKind::U3,
            "cx" => GateKind::Cx,
            "cz" => GateKind::Cz,
            "swap" => GateKind::Swap,
            "crz" => GateKind::Crz,
            "cp" => GateKind::Cp,
            "rzz" => GateKind::Rzz,
            "ccx" => GateKind::Ccx,
            "mcx" => GateKind::Mcx,
            "measure" => GateKind::Measure,
            "reset" => GateKind::Reset,
            "barrier" => GateKind::Barrier,
            _ => return None,
        })
    }

    /// Number of real parameters carried by gates of this kind.
    pub fn num_params(self) -> usize {
        match self {
            GateKind::Rx
            | GateKind::Ry
            | GateKind::Rz
            | GateKind::Phase
            | GateKind::Crz
            | GateKind::Cp
            | GateKind::Rzz => 1,
            GateKind::U3 => 3,
            _ => 0,
        }
    }

    /// Fixed qubit arity, or `None` for variadic kinds (`Mcx`, `Barrier`).
    pub fn arity(self) -> Option<usize> {
        match self {
            GateKind::I
            | GateKind::H
            | GateKind::X
            | GateKind::Y
            | GateKind::Z
            | GateKind::S
            | GateKind::Sdg
            | GateKind::T
            | GateKind::Tdg
            | GateKind::Sx
            | GateKind::Rx
            | GateKind::Ry
            | GateKind::Rz
            | GateKind::Phase
            | GateKind::U3
            | GateKind::Measure
            | GateKind::Reset => Some(1),
            GateKind::Cx
            | GateKind::Cz
            | GateKind::Swap
            | GateKind::Crz
            | GateKind::Cp
            | GateKind::Rzz => Some(2),
            GateKind::Ccx => Some(3),
            GateKind::Mcx | GateKind::Barrier => None,
        }
    }

    /// Whether gates of this kind are unitary operations.
    pub fn is_unitary(self) -> bool {
        !matches!(self, GateKind::Measure | GateKind::Reset | GateKind::Barrier)
    }

    /// Whether the gate matrix is diagonal in the computational (Z) basis on
    /// all of its operands.
    pub fn is_diagonal(self) -> bool {
        matches!(
            self,
            GateKind::I
                | GateKind::Z
                | GateKind::S
                | GateKind::Sdg
                | GateKind::T
                | GateKind::Tdg
                | GateKind::Rz
                | GateKind::Phase
                | GateKind::Cz
                | GateKind::Crz
                | GateKind::Cp
                | GateKind::Rzz
        )
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One gate instance: a [`GateKind`] applied to concrete qubits, with
/// optional rotation parameters, an optional classical measurement target,
/// and an optional classical condition bit.
///
/// A gate with `condition = Some(c)` is applied only when classical bit `c`
/// holds 1 — exactly the classically controlled corrections appearing in the
/// Cat-Comm and TP-Comm protocols (paper Figure 2).
///
/// ```
/// use dqc_circuit::{Gate, GateKind, QubitId};
/// let g = Gate::crz(0.5, QubitId::new(0), QubitId::new(1));
/// assert_eq!(g.kind(), GateKind::Crz);
/// assert_eq!(g.control(), Some(QubitId::new(0)));
/// assert_eq!(g.target(), Some(QubitId::new(1)));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Gate {
    kind: GateKind,
    qubits: Vec<QubitId>,
    params: Vec<f64>,
    cbit: Option<CBitId>,
    condition: Option<CBitId>,
}

impl Gate {
    /// Builds a gate after validating operand arity, parameter count, and
    /// operand distinctness.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::ArityMismatch`] when the operand or parameter
    /// count does not match the kind, and [`CircuitError::DuplicateOperand`]
    /// when a qubit is repeated.
    pub fn try_new(
        kind: GateKind,
        qubits: Vec<QubitId>,
        params: Vec<f64>,
    ) -> Result<Self, CircuitError> {
        if let Some(arity) = kind.arity() {
            if qubits.len() != arity {
                return Err(CircuitError::ArityMismatch {
                    kind: kind.name(),
                    expected: arity,
                    actual: qubits.len(),
                });
            }
        } else if kind == GateKind::Mcx && qubits.is_empty() {
            return Err(CircuitError::ArityMismatch { kind: kind.name(), expected: 1, actual: 0 });
        }
        if params.len() != kind.num_params() {
            return Err(CircuitError::ArityMismatch {
                kind: kind.name(),
                expected: kind.num_params(),
                actual: params.len(),
            });
        }
        for (i, q) in qubits.iter().enumerate() {
            if qubits[..i].contains(q) {
                return Err(CircuitError::DuplicateOperand { qubit: *q });
            }
        }
        Ok(Gate { kind, qubits, params, cbit: None, condition: None })
    }

    fn new_unchecked(kind: GateKind, qubits: Vec<QubitId>, params: Vec<f64>) -> Self {
        Gate::try_new(kind, qubits, params).expect("gate constructor invariant")
    }

    /// Identity gate on `q`.
    pub fn i(q: QubitId) -> Self {
        Gate::new_unchecked(GateKind::I, vec![q], vec![])
    }

    /// Hadamard on `q`.
    pub fn h(q: QubitId) -> Self {
        Gate::new_unchecked(GateKind::H, vec![q], vec![])
    }

    /// Pauli X on `q`.
    pub fn x(q: QubitId) -> Self {
        Gate::new_unchecked(GateKind::X, vec![q], vec![])
    }

    /// Pauli Y on `q`.
    pub fn y(q: QubitId) -> Self {
        Gate::new_unchecked(GateKind::Y, vec![q], vec![])
    }

    /// Pauli Z on `q`.
    pub fn z(q: QubitId) -> Self {
        Gate::new_unchecked(GateKind::Z, vec![q], vec![])
    }

    /// S gate on `q`.
    pub fn s(q: QubitId) -> Self {
        Gate::new_unchecked(GateKind::S, vec![q], vec![])
    }

    /// S† gate on `q`.
    pub fn sdg(q: QubitId) -> Self {
        Gate::new_unchecked(GateKind::Sdg, vec![q], vec![])
    }

    /// T gate on `q`.
    pub fn t(q: QubitId) -> Self {
        Gate::new_unchecked(GateKind::T, vec![q], vec![])
    }

    /// T† gate on `q`.
    pub fn tdg(q: QubitId) -> Self {
        Gate::new_unchecked(GateKind::Tdg, vec![q], vec![])
    }

    /// √X gate on `q`.
    pub fn sx(q: QubitId) -> Self {
        Gate::new_unchecked(GateKind::Sx, vec![q], vec![])
    }

    /// X rotation by `theta` on `q`.
    pub fn rx(theta: f64, q: QubitId) -> Self {
        Gate::new_unchecked(GateKind::Rx, vec![q], vec![theta])
    }

    /// Y rotation by `theta` on `q`.
    pub fn ry(theta: f64, q: QubitId) -> Self {
        Gate::new_unchecked(GateKind::Ry, vec![q], vec![theta])
    }

    /// Z rotation by `theta` on `q`.
    pub fn rz(theta: f64, q: QubitId) -> Self {
        Gate::new_unchecked(GateKind::Rz, vec![q], vec![theta])
    }

    /// Phase rotation diag(1, e^{iθ}) on `q`.
    pub fn phase(theta: f64, q: QubitId) -> Self {
        Gate::new_unchecked(GateKind::Phase, vec![q], vec![theta])
    }

    /// Generic single-qubit unitary U3(θ, φ, λ) on `q`.
    pub fn u3(theta: f64, phi: f64, lambda: f64, q: QubitId) -> Self {
        Gate::new_unchecked(GateKind::U3, vec![q], vec![theta, phi, lambda])
    }

    /// CNOT with the given `control` and `target`.
    ///
    /// # Panics
    ///
    /// Panics if `control == target`.
    pub fn cx(control: QubitId, target: QubitId) -> Self {
        Gate::new_unchecked(GateKind::Cx, vec![control, target], vec![])
    }

    /// Controlled Z between `a` and `b` (symmetric).
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn cz(a: QubitId, b: QubitId) -> Self {
        Gate::new_unchecked(GateKind::Cz, vec![a, b], vec![])
    }

    /// Swap of `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn swap(a: QubitId, b: QubitId) -> Self {
        Gate::new_unchecked(GateKind::Swap, vec![a, b], vec![])
    }

    /// Controlled RZ(θ) with the given `control` and `target`.
    ///
    /// # Panics
    ///
    /// Panics if `control == target`.
    pub fn crz(theta: f64, control: QubitId, target: QubitId) -> Self {
        Gate::new_unchecked(GateKind::Crz, vec![control, target], vec![theta])
    }

    /// Controlled phase gate between `a` and `b` (symmetric).
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn cp(theta: f64, a: QubitId, b: QubitId) -> Self {
        Gate::new_unchecked(GateKind::Cp, vec![a, b], vec![theta])
    }

    /// ZZ interaction exp(-iθ Z⊗Z / 2) between `a` and `b` (symmetric).
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn rzz(theta: f64, a: QubitId, b: QubitId) -> Self {
        Gate::new_unchecked(GateKind::Rzz, vec![a, b], vec![theta])
    }

    /// Toffoli with controls `c0`, `c1` and target `t`.
    ///
    /// # Panics
    ///
    /// Panics if any two operands coincide.
    pub fn ccx(c0: QubitId, c1: QubitId, t: QubitId) -> Self {
        Gate::new_unchecked(GateKind::Ccx, vec![c0, c1, t], vec![])
    }

    /// Multi-controlled X with the given controls and target.
    ///
    /// # Panics
    ///
    /// Panics if any two operands coincide or the operand list is empty.
    pub fn mcx(controls: &[QubitId], target: QubitId) -> Self {
        let mut qubits = controls.to_vec();
        qubits.push(target);
        Gate::new_unchecked(GateKind::Mcx, qubits, vec![])
    }

    /// Z-basis measurement of `q` into classical bit `c`.
    pub fn measure(q: QubitId, c: CBitId) -> Self {
        let mut g = Gate::new_unchecked(GateKind::Measure, vec![q], vec![]);
        g.cbit = Some(c);
        g
    }

    /// Reset of `q` to |0⟩.
    pub fn reset(q: QubitId) -> Self {
        Gate::new_unchecked(GateKind::Reset, vec![q], vec![])
    }

    /// Barrier across `qubits`.
    ///
    /// # Panics
    ///
    /// Panics if a qubit is repeated.
    pub fn barrier(qubits: &[QubitId]) -> Self {
        Gate::new_unchecked(GateKind::Barrier, qubits.to_vec(), vec![])
    }

    /// Returns a copy of this gate conditioned on classical bit `c` being 1.
    ///
    /// ```
    /// use dqc_circuit::{CBitId, Gate, QubitId};
    /// let fixup = Gate::x(QubitId::new(2)).with_condition(CBitId::new(0));
    /// assert_eq!(fixup.condition(), Some(CBitId::new(0)));
    /// ```
    pub fn with_condition(mut self, c: CBitId) -> Self {
        self.condition = Some(c);
        self
    }

    /// The gate kind.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The qubit operands, controls before targets.
    pub fn qubits(&self) -> &[QubitId] {
        &self.qubits
    }

    /// The rotation parameters (empty for non-parameterized kinds).
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// The classical bit written by a measurement, if any.
    pub fn cbit(&self) -> Option<CBitId> {
        self.cbit
    }

    /// The classical bit conditioning this gate, if any.
    pub fn condition(&self) -> Option<CBitId> {
        self.condition
    }

    /// First rotation parameter, if the kind is parameterized.
    pub fn theta(&self) -> Option<f64> {
        self.params.first().copied()
    }

    /// Number of qubit operands.
    pub fn num_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// Whether this is a unitary acting on exactly one qubit.
    pub fn is_single_qubit_unitary(&self) -> bool {
        self.kind.is_unitary() && self.qubits.len() == 1
    }

    /// Whether this is a unitary acting on exactly two qubits.
    pub fn is_two_qubit_unitary(&self) -> bool {
        self.kind.is_unitary() && self.qubits.len() == 2
    }

    /// The control qubit for asymmetric controlled gates (`Cx`, `Crz`).
    ///
    /// Symmetric diagonal gates (`Cz`, `Cp`, `Rzz`) report their first
    /// operand, which is interchangeable with the second.
    pub fn control(&self) -> Option<QubitId> {
        match self.kind {
            GateKind::Cx | GateKind::Crz | GateKind::Cz | GateKind::Cp | GateKind::Rzz => {
                Some(self.qubits[0])
            }
            _ => None,
        }
    }

    /// The target qubit for controlled gates, the last operand for `Ccx` and
    /// `Mcx`.
    pub fn target(&self) -> Option<QubitId> {
        match self.kind {
            GateKind::Cx
            | GateKind::Crz
            | GateKind::Cz
            | GateKind::Cp
            | GateKind::Rzz
            | GateKind::Ccx
            | GateKind::Mcx => self.qubits.last().copied(),
            _ => None,
        }
    }

    /// Whether `q` is one of this gate's operands.
    pub fn acts_on(&self, q: QubitId) -> bool {
        self.qubits.contains(&q)
    }

    /// Returns the same gate with each qubit operand remapped through `f`.
    ///
    /// Used when relocating logical qubits between nodes (GP-TP baseline) or
    /// when splicing block bodies onto communication qubits.
    ///
    /// # Panics
    ///
    /// Panics if the remapping makes two operands collide.
    pub fn map_qubits(&self, mut f: impl FnMut(QubitId) -> QubitId) -> Gate {
        let mut g = self.clone();
        g.qubits = self.qubits.iter().map(|&q| f(q)).collect();
        for (i, q) in g.qubits.iter().enumerate() {
            assert!(!g.qubits[..i].contains(q), "qubit remapping created duplicate operand {q}");
        }
        g
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(c) = self.condition {
            write!(f, "if({c}) ")?;
        }
        f.write_str(self.kind.name())?;
        if !self.params.is_empty() {
            write!(f, "(")?;
            for (i, p) in self.params.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{p:.4}")?;
            }
            write!(f, ")")?;
        }
        write!(f, " ")?;
        for (i, q) in self.qubits.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{q}")?;
        }
        if let Some(c) = self.cbit {
            write!(f, " -> {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn constructors_set_kind_and_operands() {
        let g = Gate::cx(q(0), q(1));
        assert_eq!(g.kind(), GateKind::Cx);
        assert_eq!(g.qubits(), &[q(0), q(1)]);
        assert_eq!(g.control(), Some(q(0)));
        assert_eq!(g.target(), Some(q(1)));
        assert!(g.is_two_qubit_unitary());
        assert!(!g.is_single_qubit_unitary());
    }

    #[test]
    fn parameterized_constructors_store_params() {
        let g = Gate::rz(1.5, q(3));
        assert_eq!(g.theta(), Some(1.5));
        let g = Gate::u3(0.1, 0.2, 0.3, q(0));
        assert_eq!(g.params(), &[0.1, 0.2, 0.3]);
    }

    #[test]
    #[should_panic(expected = "gate constructor invariant")]
    fn duplicate_operand_panics() {
        let _ = Gate::cx(q(1), q(1));
    }

    #[test]
    fn try_new_rejects_bad_arity() {
        let err = Gate::try_new(GateKind::Cx, vec![q(0)], vec![]).unwrap_err();
        assert!(matches!(err, CircuitError::ArityMismatch { .. }));
        let err = Gate::try_new(GateKind::Rz, vec![q(0)], vec![]).unwrap_err();
        assert!(matches!(err, CircuitError::ArityMismatch { .. }));
        let err = Gate::try_new(GateKind::Cx, vec![q(0), q(0)], vec![]).unwrap_err();
        assert!(matches!(err, CircuitError::DuplicateOperand { .. }));
        let err = Gate::try_new(GateKind::Mcx, vec![], vec![]).unwrap_err();
        assert!(matches!(err, CircuitError::ArityMismatch { .. }));
    }

    #[test]
    fn measurement_carries_cbit() {
        let g = Gate::measure(q(2), CBitId::new(7));
        assert_eq!(g.cbit(), Some(CBitId::new(7)));
        assert!(!g.kind().is_unitary());
    }

    #[test]
    fn condition_builder() {
        let g = Gate::z(q(0)).with_condition(CBitId::new(1));
        assert_eq!(g.condition(), Some(CBitId::new(1)));
        assert_eq!(g.to_string(), "if(c1) z q0");
    }

    #[test]
    fn mcx_operands() {
        let g = Gate::mcx(&[q(0), q(1), q(2)], q(5));
        assert_eq!(g.num_qubits(), 4);
        assert_eq!(g.target(), Some(q(5)));
        assert_eq!(g.kind().arity(), None);
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(Gate::cx(q(0), q(1)).to_string(), "cx q0,q1");
        assert_eq!(Gate::rz(0.5, q(2)).to_string(), "rz(0.5000) q2");
        assert_eq!(Gate::measure(q(1), CBitId::new(0)).to_string(), "measure q1 -> c0");
    }

    #[test]
    fn map_qubits_relocates_operands() {
        let g = Gate::cx(q(0), q(1)).map_qubits(|x| QubitId::new(x.index() + 10));
        assert_eq!(g.qubits(), &[q(10), q(11)]);
    }

    #[test]
    fn diagonal_kinds() {
        assert!(GateKind::Crz.is_diagonal());
        assert!(GateKind::Rzz.is_diagonal());
        assert!(!GateKind::Cx.is_diagonal());
        assert!(!GateKind::H.is_diagonal());
    }

    #[test]
    fn kind_parse_inverts_name() {
        for kind in [
            GateKind::I,
            GateKind::H,
            GateKind::X,
            GateKind::Y,
            GateKind::Z,
            GateKind::S,
            GateKind::Sdg,
            GateKind::T,
            GateKind::Tdg,
            GateKind::Sx,
            GateKind::Rx,
            GateKind::Ry,
            GateKind::Rz,
            GateKind::Phase,
            GateKind::U3,
            GateKind::Cx,
            GateKind::Cz,
            GateKind::Swap,
            GateKind::Crz,
            GateKind::Cp,
            GateKind::Rzz,
            GateKind::Ccx,
            GateKind::Mcx,
            GateKind::Measure,
            GateKind::Reset,
            GateKind::Barrier,
        ] {
            assert_eq!(GateKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(GateKind::parse("bogus"), None);
    }

    #[test]
    fn gate_equality_includes_params() {
        assert_eq!(Gate::rz(0.5, q(0)), Gate::rz(0.5, q(0)));
        assert_ne!(Gate::rz(0.5, q(0)), Gate::rz(0.6, q(0)));
    }
}
