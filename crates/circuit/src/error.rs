//! Error type shared by all fallible circuit operations.

use std::error::Error;
use std::fmt;

use crate::{CBitId, QubitId};

/// Errors produced while constructing or transforming circuits.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A gate references a qubit outside the circuit's register.
    QubitOutOfRange {
        /// The offending qubit.
        qubit: QubitId,
        /// Number of qubits in the circuit.
        num_qubits: usize,
    },
    /// A gate references a classical bit outside the circuit's register.
    CBitOutOfRange {
        /// The offending classical bit.
        cbit: CBitId,
        /// Number of classical bits in the circuit.
        num_cbits: usize,
    },
    /// The same qubit appears twice in one gate's operand list.
    DuplicateOperand {
        /// The repeated qubit.
        qubit: QubitId,
    },
    /// A gate was built with the wrong number of qubit operands.
    ArityMismatch {
        /// Gate name for diagnostics.
        kind: &'static str,
        /// Number of operands expected.
        expected: usize,
        /// Number of operands supplied.
        actual: usize,
    },
    /// A multi-controlled gate decomposition ran out of dirty ancilla qubits.
    InsufficientAncillas {
        /// Ancillas the decomposition needs.
        needed: usize,
        /// Ancillas available in the register.
        available: usize,
    },
    /// A partition was requested with an invalid node count.
    InvalidPartition {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => {
                write!(f, "qubit {qubit} out of range for {num_qubits}-qubit circuit")
            }
            CircuitError::CBitOutOfRange { cbit, num_cbits } => {
                write!(f, "classical bit {cbit} out of range for {num_cbits}-bit register")
            }
            CircuitError::DuplicateOperand { qubit } => {
                write!(f, "qubit {qubit} appears more than once in a gate operand list")
            }
            CircuitError::ArityMismatch { kind, expected, actual } => {
                write!(f, "gate {kind} expects {expected} qubit operands, got {actual}")
            }
            CircuitError::InsufficientAncillas { needed, available } => {
                write!(
                    f,
                    "multi-controlled decomposition needs {needed} dirty ancillas, only {available} available"
                )
            }
            CircuitError::InvalidPartition { reason } => {
                write!(f, "invalid partition: {reason}")
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_meaningfully() {
        let e = CircuitError::QubitOutOfRange { qubit: QubitId::new(9), num_qubits: 4 };
        assert!(e.to_string().contains("q9"));
        assert!(e.to_string().contains("4-qubit"));

        let e = CircuitError::ArityMismatch { kind: "cx", expected: 2, actual: 3 };
        assert!(e.to_string().contains("cx"));

        let e = CircuitError::InsufficientAncillas { needed: 5, available: 1 };
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<CircuitError>();
    }
}
