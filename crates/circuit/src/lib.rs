//! Quantum circuit intermediate representation for distributed quantum
//! compilation.
//!
//! This crate is the substrate beneath the AutoComm reproduction: a
//! self-contained circuit IR with
//!
//! * a gate set covering everything the paper's benchmarks need
//!   ([`GateKind`]): Clifford+T single-qubit gates, rotations, `CX`-family
//!   two-qubit gates, Toffoli and multi-controlled X, plus non-unitary
//!   `Measure`/`Reset`/`Barrier` and classically conditioned gates (needed by
//!   the Cat-Comm / TP-Comm protocol expansions);
//! * symbolic commutation analysis ([`commutes`]) implementing the
//!   generalized form of the paper's Figure-7 rewrite rules via Z-/X-basis
//!   diagonality classes ([`AxisBehavior`]);
//! * gate unrolling ([`unroll_circuit`]) into the `CX + U3` basis used by the
//!   paper when counting remote CX gates, including a linear-cost
//!   dirty-ancilla decomposition of multi-controlled X gates;
//! * the qubit-to-node [`Partition`] type shared by the partitioner, the
//!   AutoComm passes, and every baseline compiler.
//!
//! # Example
//!
//! ```
//! use dqc_circuit::{Circuit, Gate, Partition, QubitId};
//!
//! # fn main() -> Result<(), dqc_circuit::CircuitError> {
//! let mut circuit = Circuit::new(4);
//! let q: Vec<QubitId> = (0..4).map(QubitId::new).collect();
//! circuit.push(Gate::h(q[0]))?;
//! circuit.push(Gate::cx(q[0], q[2]))?;
//! circuit.push(Gate::crz(0.25, q[1], q[3]))?;
//!
//! // Two nodes with two qubits each: qubits 0,1 on node 0 and 2,3 on node 1.
//! let partition = Partition::block(4, 2)?;
//! let unrolled = dqc_circuit::unroll_circuit(&circuit)?;
//! let remote = unrolled
//!     .gates()
//!     .iter()
//!     .filter(|g| partition.is_remote(g))
//!     .count();
//! assert_eq!(remote, 3); // CX(0,2) plus the two CX of CRZ(1,3)
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod axis;
mod circuit;
mod commute;
mod dag;
mod error;
mod gate;
mod hash;
mod ids;
mod par;
mod partition;
mod qasm;
mod qasm_parse;
mod stats;
mod table;
mod unroll;

pub use axis::AxisBehavior;
pub use circuit::Circuit;
pub use commute::{commutes, commutes_with_all, disjoint_supports};
pub use dag::{ConflictScan, DependencyDag};
pub use error::CircuitError;
pub use gate::{Gate, GateKind};
pub use hash::{circuit_content_hash, stream_content_hash, ContentHash};
pub use ids::{CBitId, NodeId, QubitId};
pub use par::{par_map, worker_count, PAR_THRESHOLD};
pub use partition::Partition;
pub use qasm::to_qasm;
pub use qasm_parse::{from_qasm, from_qasm_sequential, QasmParseError};
pub use stats::{circuit_depth, CircuitStats};
pub use table::{CommSummary, GateId, GateTable, WireClass};
pub use unroll::{unroll_circuit, unroll_circuit_sequential, unroll_gate};
