//! Qubit-to-node assignment.

use std::fmt;

use crate::{CircuitError, Gate, NodeId, QubitId};

/// A static assignment of every logical qubit to a quantum computing node.
///
/// All compilers in this reproduction (AutoComm, the Ferrari-style baseline,
/// and GP-TP) consume a `Partition` produced by the OEE partitioner in
/// `dqc-partition`; this type lives in the IR crate so that no dependency
/// cycles arise.
///
/// ```
/// use dqc_circuit::{Gate, Partition, QubitId};
/// # fn main() -> Result<(), dqc_circuit::CircuitError> {
/// let p = Partition::block(6, 3)?; // qubits {0,1} {2,3} {4,5}
/// assert_eq!(p.node_of(QubitId::new(4)).index(), 2);
/// assert!(p.is_remote(&Gate::cx(QubitId::new(0), QubitId::new(2))));
/// assert!(!p.is_remote(&Gate::cx(QubitId::new(2), QubitId::new(3))));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    node_of: Vec<NodeId>,
    num_nodes: usize,
}

impl Partition {
    /// Builds a partition from an explicit qubit → node map.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidPartition`] if `num_nodes` is zero or
    /// any entry references a node `>= num_nodes`.
    pub fn from_assignment(node_of: Vec<NodeId>, num_nodes: usize) -> Result<Self, CircuitError> {
        if num_nodes == 0 {
            return Err(CircuitError::InvalidPartition {
                reason: "node count must be positive".into(),
            });
        }
        if let Some(bad) = node_of.iter().find(|n| n.index() >= num_nodes) {
            return Err(CircuitError::InvalidPartition {
                reason: format!("qubit assigned to node {bad} but only {num_nodes} nodes exist"),
            });
        }
        Ok(Partition { node_of, num_nodes })
    }

    /// Contiguous block partition: the first `⌈n/k⌉` qubits on node 0, the
    /// next on node 1, and so on. This is the paper's “evenly distributed”
    /// layout and the starting point the OEE partitioner refines.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidPartition`] if `num_nodes` is zero or
    /// exceeds `num_qubits`.
    pub fn block(num_qubits: usize, num_nodes: usize) -> Result<Self, CircuitError> {
        if num_nodes == 0 || num_nodes > num_qubits.max(1) {
            return Err(CircuitError::InvalidPartition {
                reason: format!("cannot spread {num_qubits} qubits over {num_nodes} nodes"),
            });
        }
        let per = num_qubits.div_ceil(num_nodes);
        let node_of = (0..num_qubits).map(|q| NodeId::new((q / per).min(num_nodes - 1))).collect();
        Ok(Partition { node_of, num_nodes })
    }

    /// Round-robin partition (qubit `i` on node `i mod k`); a deliberately
    /// bad layout useful in tests and partitioner comparisons.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidPartition`] if `num_nodes` is zero.
    pub fn round_robin(num_qubits: usize, num_nodes: usize) -> Result<Self, CircuitError> {
        if num_nodes == 0 {
            return Err(CircuitError::InvalidPartition {
                reason: "node count must be positive".into(),
            });
        }
        let node_of = (0..num_qubits).map(|q| NodeId::new(q % num_nodes)).collect();
        Ok(Partition { node_of, num_nodes })
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of qubits covered by the assignment.
    pub fn num_qubits(&self) -> usize {
        self.node_of.len()
    }

    /// The node hosting qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside the assignment.
    pub fn node_of(&self, q: QubitId) -> NodeId {
        self.node_of[q.index()]
    }

    /// The full qubit → node map.
    pub fn assignment(&self) -> &[NodeId] {
        &self.node_of
    }

    /// All qubits hosted on `node`, in ascending id order.
    pub fn qubits_on(&self, node: NodeId) -> Vec<QubitId> {
        self.node_of
            .iter()
            .enumerate()
            .filter(|(_, n)| **n == node)
            .map(|(i, _)| QubitId::new(i))
            .collect()
    }

    /// Number of qubits hosted on `node`.
    pub fn load_of(&self, node: NodeId) -> usize {
        self.node_of.iter().filter(|n| **n == node).count()
    }

    /// Whether a gate spans two different nodes (and therefore needs remote
    /// communication). Single-qubit gates are never remote; a multi-qubit
    /// gate is remote when its operands do not all share one node.
    pub fn is_remote(&self, gate: &Gate) -> bool {
        let mut nodes = gate.qubits().iter().map(|&q| self.node_of(q));
        match nodes.next() {
            None => false,
            Some(first) => nodes.any(|n| n != first),
        }
    }

    /// Reassigns qubit `q` to `node` (used by the GP-TP baseline's dynamic
    /// relocation).
    ///
    /// # Panics
    ///
    /// Panics if `q` or `node` is out of range.
    pub fn reassign(&mut self, q: QubitId, node: NodeId) {
        assert!(node.index() < self.num_nodes, "node {node} out of range");
        self.node_of[q.index()] = node;
    }

    /// Swaps the node assignments of two qubits (the primitive move of the
    /// OEE partitioner and of exchange-based relocation).
    pub fn swap_qubits(&mut self, a: QubitId, b: QubitId) {
        self.node_of.swap(a.index(), b.index());
    }

    /// Maximum node load minus minimum node load; 0 or 1 for balanced
    /// partitions.
    pub fn imbalance(&self) -> usize {
        let loads: Vec<usize> = (0..self.num_nodes).map(|n| self.load_of(NodeId::new(n))).collect();
        let max = loads.iter().copied().max().unwrap_or(0);
        let min = loads.iter().copied().min().unwrap_or(0);
        max - min
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "partition({} qubits over {} nodes)", self.node_of.len(), self.num_nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn block_partition_is_balanced() {
        let p = Partition::block(10, 3).unwrap();
        assert_eq!(p.num_nodes(), 3);
        assert!(p.imbalance() <= 2); // 4,4,2
        assert_eq!(p.node_of(q(0)).index(), 0);
        assert_eq!(p.node_of(q(9)).index(), 2);
    }

    #[test]
    fn block_partition_exact_division() {
        let p = Partition::block(9, 3).unwrap();
        assert_eq!(p.imbalance(), 0);
        for n in 0..3 {
            assert_eq!(p.load_of(NodeId::new(n)), 3);
        }
    }

    #[test]
    fn round_robin_spreads_neighbors() {
        let p = Partition::round_robin(6, 2).unwrap();
        assert_eq!(p.node_of(q(0)).index(), 0);
        assert_eq!(p.node_of(q(1)).index(), 1);
        assert!(p.is_remote(&Gate::cx(q(0), q(1))));
    }

    #[test]
    fn invalid_partitions_rejected() {
        assert!(Partition::block(4, 0).is_err());
        assert!(Partition::block(4, 5).is_err());
        assert!(Partition::from_assignment(vec![NodeId::new(3)], 2).is_err());
        assert!(Partition::round_robin(4, 0).is_err());
    }

    #[test]
    fn remote_detection() {
        let p = Partition::block(4, 2).unwrap();
        assert!(!p.is_remote(&Gate::h(q(0))));
        assert!(!p.is_remote(&Gate::cx(q(0), q(1))));
        assert!(p.is_remote(&Gate::cx(q(1), q(2))));
        assert!(p.is_remote(&Gate::ccx(q(0), q(1), q(2))));
        let p3 = Partition::block(6, 2).unwrap();
        assert!(!p3.is_remote(&Gate::ccx(q(0), q(1), q(2))));
    }

    #[test]
    fn qubits_on_and_reassign() {
        let mut p = Partition::block(4, 2).unwrap();
        assert_eq!(p.qubits_on(NodeId::new(0)), vec![q(0), q(1)]);
        p.reassign(q(1), NodeId::new(1));
        assert_eq!(p.qubits_on(NodeId::new(1)), vec![q(1), q(2), q(3)]);
        p.swap_qubits(q(0), q(2));
        assert_eq!(p.node_of(q(0)).index(), 1);
        assert_eq!(p.node_of(q(2)).index(), 0);
    }
}
