//! Strongly typed identifiers for qubits, classical bits, and nodes.

use std::fmt;

/// Identifier of a (logical) qubit inside a [`crate::Circuit`].
///
/// Qubit ids are dense indices starting at zero; a circuit with `n` qubits
/// uses ids `0..n`.
///
/// ```
/// use dqc_circuit::QubitId;
/// let q = QubitId::new(3);
/// assert_eq!(q.index(), 3);
/// assert_eq!(q.to_string(), "q3");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct QubitId(u32);

impl QubitId {
    /// Creates a qubit id from a dense index.
    pub fn new(index: usize) -> Self {
        QubitId(index as u32)
    }

    /// Returns the dense index of this qubit.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for QubitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<usize> for QubitId {
    fn from(index: usize) -> Self {
        QubitId::new(index)
    }
}

/// Identifier of a classical bit (measurement target or condition source).
///
/// ```
/// use dqc_circuit::CBitId;
/// assert_eq!(CBitId::new(1).to_string(), "c1");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CBitId(u32);

impl CBitId {
    /// Creates a classical bit id from a dense index.
    pub fn new(index: usize) -> Self {
        CBitId(index as u32)
    }

    /// Returns the dense index of this classical bit.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CBitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<usize> for CBitId {
    fn from(index: usize) -> Self {
        CBitId::new(index)
    }
}

/// Identifier of a quantum computing node (module) in a distributed system.
///
/// ```
/// use dqc_circuit::NodeId;
/// assert_eq!(NodeId::new(0).to_string(), "N0");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    pub fn new(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// Returns the dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId::new(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn qubit_id_roundtrip() {
        for i in [0usize, 1, 7, 4096] {
            assert_eq!(QubitId::new(i).index(), i);
            assert_eq!(QubitId::from(i), QubitId::new(i));
        }
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(QubitId::new(1));
        set.insert(QubitId::new(1));
        set.insert(QubitId::new(2));
        assert_eq!(set.len(), 2);
        assert!(QubitId::new(1) < QubitId::new(2));
        assert!(NodeId::new(0) < NodeId::new(3));
        assert!(CBitId::new(2) > CBitId::new(0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(QubitId::new(12).to_string(), "q12");
        assert_eq!(CBitId::new(0).to_string(), "c0");
        assert_eq!(NodeId::new(5).to_string(), "N5");
    }
}
