//! Symbolic gate commutation.

use crate::{AxisBehavior, Gate, GateKind};

/// Whether the supports (operand qubit sets) of two gates are disjoint.
///
/// ```
/// use dqc_circuit::{disjoint_supports, Gate, QubitId};
/// let a = Gate::cx(QubitId::new(0), QubitId::new(1));
/// let b = Gate::h(QubitId::new(2));
/// assert!(disjoint_supports(&a, &b));
/// ```
pub fn disjoint_supports(a: &Gate, b: &Gate) -> bool {
    a.qubits().iter().all(|q| !b.acts_on(*q))
}

/// Sound symbolic commutation test.
///
/// Returns `true` only when reordering `a` and `b` provably leaves the
/// circuit semantics unchanged:
///
/// * disjoint supports always commute;
/// * barriers and resets never commute with overlapping gates;
/// * identical unitaries commute with themselves;
/// * otherwise, on every *shared* qubit both gates must be diagonal in the
///   same basis (see [`AxisBehavior`]); the gates then decompose over one
///   common projector family with coefficient operators acting on disjoint
///   qubits.
///
/// Classical bits: two operations touching the same classical bit (a
/// measurement writing it, or a conditioned gate reading it) are never
/// reordered.
///
/// This single rule covers all order-preserving instances of the paper's
/// Figure-7 rules, e.g. two CX sharing a control, two CX sharing a target,
/// RZ through a CX control, RX through a CX target, and the mutual
/// commutation of all diagonal gates (CRZ/CP/CZ/RZZ) that the QFT and QAOA
/// aggregation analyses in §3.2 rely on.
///
/// ```
/// use dqc_circuit::{commutes, Gate, QubitId};
/// let q = |i| QubitId::new(i);
/// // Shared control.
/// assert!(commutes(&Gate::cx(q(0), q(1)), &Gate::cx(q(0), q(2))));
/// // Shared target.
/// assert!(commutes(&Gate::cx(q(0), q(2)), &Gate::cx(q(1), q(2))));
/// // Control of one feeding target of the other: not commutable.
/// assert!(!commutes(&Gate::cx(q(0), q(1)), &Gate::cx(q(1), q(2))));
/// ```
pub fn commutes(a: &Gate, b: &Gate) -> bool {
    if disjoint_supports(a, b) {
        return classical_bits_disjoint(a, b);
    }
    if !classical_bits_disjoint(a, b) {
        return false;
    }
    if matches!(a.kind(), GateKind::Barrier | GateKind::Reset)
        || matches!(b.kind(), GateKind::Barrier | GateKind::Reset)
    {
        return false;
    }
    if a == b && a.kind().is_unitary() {
        return true;
    }
    a.qubits().iter().filter(|q| b.acts_on(**q)).all(|&q| {
        let ba = AxisBehavior::of(a, q);
        let bb = AxisBehavior::of(b, q);
        ba != AxisBehavior::Opaque && ba == bb
    })
}

/// Whether `gate` commutes with every gate in `others`.
pub fn commutes_with_all<'a>(gate: &Gate, others: impl IntoIterator<Item = &'a Gate>) -> bool {
    others.into_iter().all(|g| commutes(gate, g))
}

fn classical_bits_disjoint(a: &Gate, b: &Gate) -> bool {
    let a_bits = [a.cbit(), a.condition()];
    let b_bits = [b.cbit(), b.condition()];
    for x in a_bits.into_iter().flatten() {
        for y in b_bits.into_iter().flatten() {
            if x == y {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CBitId, QubitId};

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn disjoint_gates_commute() {
        assert!(commutes(&Gate::h(q(0)), &Gate::h(q(1))));
        assert!(commutes(&Gate::cx(q(0), q(1)), &Gate::cx(q(2), q(3))));
    }

    #[test]
    fn shared_control_cx_commute() {
        assert!(commutes(&Gate::cx(q(0), q(1)), &Gate::cx(q(0), q(2))));
    }

    #[test]
    fn shared_target_cx_commute() {
        assert!(commutes(&Gate::cx(q(0), q(2)), &Gate::cx(q(1), q(2))));
    }

    #[test]
    fn chained_cx_do_not_commute() {
        assert!(!commutes(&Gate::cx(q(0), q(1)), &Gate::cx(q(1), q(2))));
        assert!(!commutes(&Gate::cx(q(1), q(2)), &Gate::cx(q(0), q(1))));
    }

    #[test]
    fn rz_commutes_through_control_rx_through_target() {
        let cx = Gate::cx(q(0), q(1));
        assert!(commutes(&Gate::rz(0.4, q(0)), &cx));
        assert!(commutes(&Gate::t(q(0)), &cx));
        assert!(commutes(&Gate::rx(0.4, q(1)), &cx));
        assert!(commutes(&Gate::x(q(1)), &cx));
        // And the blocked directions:
        assert!(!commutes(&Gate::rz(0.4, q(1)), &cx));
        assert!(!commutes(&Gate::rx(0.4, q(0)), &cx));
        assert!(!commutes(&Gate::h(q(0)), &cx));
        assert!(!commutes(&Gate::h(q(1)), &cx));
    }

    #[test]
    fn diagonal_two_qubit_gates_all_commute() {
        let gates = [
            Gate::crz(0.1, q(0), q(1)),
            Gate::cp(0.2, q(1), q(2)),
            Gate::cz(q(0), q(2)),
            Gate::rzz(0.3, q(1), q(0)),
        ];
        for a in &gates {
            for b in &gates {
                assert!(commutes(a, b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn identical_gates_commute() {
        let g = Gate::h(q(0));
        assert!(commutes(&g, &g));
        let sw = Gate::swap(q(0), q(1));
        assert!(commutes(&sw, &sw));
    }

    #[test]
    fn different_opaque_gates_do_not_commute() {
        assert!(!commutes(&Gate::h(q(0)), &Gate::y(q(0))));
        assert!(!commutes(&Gate::swap(q(0), q(1)), &Gate::cx(q(0), q(1))));
    }

    #[test]
    fn barrier_and_reset_block_everything_overlapping() {
        let b = Gate::barrier(&[q(0), q(1)]);
        assert!(!commutes(&b, &Gate::z(q(0))));
        assert!(commutes(&b, &Gate::z(q(2))));
        let r = Gate::reset(q(0));
        assert!(!commutes(&r, &Gate::z(q(0))));
        assert!(!commutes(&r, &r));
    }

    #[test]
    fn measure_commutes_with_zdiag_only() {
        let m = Gate::measure(q(0), CBitId::new(0));
        assert!(commutes(&m, &Gate::rz(0.5, q(0))));
        assert!(commutes(&m, &Gate::cx(q(0), q(1)))); // q0 is the control
        assert!(!commutes(&m, &Gate::cx(q(1), q(0))));
        assert!(!commutes(&m, &Gate::h(q(0))));
        assert!(!commutes(&m, &Gate::x(q(0))));
    }

    #[test]
    fn classical_bit_hazards_block_reordering() {
        let m = Gate::measure(q(0), CBitId::new(3));
        let fixup = Gate::x(q(1)).with_condition(CBitId::new(3));
        // Disjoint qubits but the same classical bit: must stay ordered.
        assert!(!commutes(&m, &fixup));
        // Different classical bits: free to move.
        let other = Gate::x(q(1)).with_condition(CBitId::new(4));
        assert!(commutes(&m, &other));
    }

    #[test]
    fn toffoli_shares_rules_with_cx() {
        let ccx = Gate::ccx(q(0), q(1), q(2));
        assert!(commutes(&ccx, &Gate::t(q(0))));
        assert!(commutes(&ccx, &Gate::x(q(2))));
        assert!(commutes(&ccx, &Gate::cx(q(0), q(3))));
        assert!(!commutes(&ccx, &Gate::x(q(0))));
        assert!(!commutes(&ccx, &Gate::cx(q(2), q(3))));
        // Two Toffolis sharing a control and a target.
        assert!(commutes(&ccx, &Gate::ccx(q(0), q(3), q(2))));
    }

    #[test]
    fn commutes_with_all_helper() {
        let gates = vec![Gate::cx(q(0), q(1)), Gate::cx(q(0), q(2))];
        assert!(commutes_with_all(&Gate::rz(0.1, q(0)), &gates));
        assert!(!commutes_with_all(&Gate::x(q(0)), &gates));
    }
}
