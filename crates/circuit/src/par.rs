//! Deterministic fork-join map for the embarrassingly-parallel compile
//! stages (chunked QASM parsing, per-gate unrolling, per-block assignment,
//! per-item lower planning).
//!
//! Same std-thread idiom as the CLI batch runner: scoped threads, no
//! external thread-pool crates. Unlike the batch runner's work-stealing
//! queue, items are split into **contiguous chunks** joined in spawn
//! order, so the output is exactly `items.iter().map(f).collect()` — the
//! deterministic-merge rail the incremental-recompile goldens rely on.
//!
//! This module lives in `dqc-circuit` (the bottom of the crate graph) so
//! the front end (parse/unroll) and the core passes share one threshold
//! and one fork-join implementation; `autocomm` re-exports both.

use std::num::NonZeroUsize;

/// Minimum number of items before forking threads pays for itself; below
/// this every `par_map` call site runs sequentially (typical suite
/// programs stay well under it, so small compiles never touch the thread
/// machinery). Single-sourced here and re-exported as
/// `autocomm::PAR_THRESHOLD` — call sites must not repeat the literal.
pub const PAR_THRESHOLD: usize = 4096;

/// Number of worker threads `par_map` forks: the machine's available
/// parallelism, capped at 8 (the fan-out stops paying past that on the
/// memory-bound compile stages).
pub fn worker_count() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1).min(8)
}

/// Maps `f` over `items`, forking onto scoped threads when the slice is
/// large enough. Output order always matches input order; panics in `f`
/// propagate to the caller.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = worker_count();
    if items.len() < PAR_THRESHOLD || threads < 2 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for handle in handles {
            out.extend(handle.join().unwrap_or_else(|p| std::panic::resume_unwind(p)));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_inputs_stay_sequential_and_ordered() {
        let items: Vec<usize> = (0..100).collect();
        assert_eq!(par_map(&items, |&x| x * 2), items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn large_inputs_preserve_order() {
        let items: Vec<usize> = (0..3 * PAR_THRESHOLD + 17).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x.wrapping_mul(31) ^ 7).collect();
        assert_eq!(par_map(&items, |&x| x.wrapping_mul(31) ^ 7), expected);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u8> = Vec::new();
        assert!(par_map(&items, |&x| x).is_empty());
    }
}
