//! Minimal OpenQASM-2 style export, for debugging and the example binaries.

use std::fmt::Write as _;

use crate::{Circuit, GateKind};

/// Renders `circuit` as OpenQASM-2-flavoured text.
///
/// The output targets human inspection and interoperability smoke tests; it
/// uses the `qelib1` gate names and renders classically conditioned gates
/// with the `if (c[i] == 1)` form.
///
/// ```
/// use dqc_circuit::{to_qasm, Circuit, Gate, QubitId};
/// # fn main() -> Result<(), dqc_circuit::CircuitError> {
/// let mut c = Circuit::new(2);
/// c.push(Gate::h(QubitId::new(0)))?;
/// c.push(Gate::cx(QubitId::new(0), QubitId::new(1)))?;
/// let qasm = to_qasm(&c);
/// assert!(qasm.contains("h q[0];"));
/// assert!(qasm.contains("cx q[0], q[1];"));
/// # Ok(())
/// # }
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    if circuit.num_cbits() > 0 {
        let _ = writeln!(out, "creg c[{}];", circuit.num_cbits());
    }
    for g in circuit.gates() {
        if let Some(cond) = g.condition() {
            let _ = write!(out, "if (c[{}] == 1) ", cond.index());
        }
        match g.kind() {
            GateKind::Measure => {
                let c = g.cbit().expect("measure carries a cbit");
                let _ = writeln!(out, "measure q[{}] -> c[{}];", g.qubits()[0].index(), c.index());
                continue;
            }
            GateKind::Barrier => {
                let qs: Vec<String> =
                    g.qubits().iter().map(|q| format!("q[{}]", q.index())).collect();
                let _ = writeln!(out, "barrier {};", qs.join(", "));
                continue;
            }
            _ => {}
        }
        out.push_str(g.kind().name());
        if !g.params().is_empty() {
            let ps: Vec<String> = g.params().iter().map(|p| format!("{p}")).collect();
            let _ = write!(out, "({})", ps.join(", "));
        }
        let qs: Vec<String> = g.qubits().iter().map(|q| format!("q[{}]", q.index())).collect();
        let _ = writeln!(out, " {};", qs.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CBitId, Gate, QubitId};

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn header_and_registers() {
        let c = Circuit::with_cbits(3, 2);
        let s = to_qasm(&c);
        assert!(s.starts_with("OPENQASM 2.0;"));
        assert!(s.contains("qreg q[3];"));
        assert!(s.contains("creg c[2];"));
    }

    #[test]
    fn parameterized_and_conditioned_gates() {
        let mut c = Circuit::with_cbits(2, 1);
        c.push(Gate::rz(0.5, q(0))).unwrap();
        c.push(Gate::measure(q(0), CBitId::new(0))).unwrap();
        c.push(Gate::x(q(1)).with_condition(CBitId::new(0))).unwrap();
        let s = to_qasm(&c);
        assert!(s.contains("rz(0.5) q[0];"));
        assert!(s.contains("measure q[0] -> c[0];"));
        assert!(s.contains("if (c[0] == 1) x q[1];"));
    }

    #[test]
    fn barrier_rendering() {
        let mut c = Circuit::new(2);
        c.push(Gate::barrier(&[q(0), q(1)])).unwrap();
        assert!(to_qasm(&c).contains("barrier q[0], q[1];"));
    }
}
