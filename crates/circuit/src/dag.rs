//! Dependency DAG over a circuit's gates.
//!
//! Two views are provided:
//!
//! * the **strict** dependency graph, where any two gates sharing a qubit
//!   (or classical bit) in program order are ordered, giving the usual
//!   ASAP layering and critical path;
//! * the **commutation-aware** graph, where an edge exists only when the
//!   gates do *not* commute ([`crate::commutes`]) — the structure the
//!   AutoComm aggregation pass navigates, exposed both for analysis and as
//!   the per-compile conflict index of the indexed IR.
//!
//! Adjacency is stored in flat CSR arrays (`u32` indices), so building a
//! graph over tens of thousands of gates costs a handful of allocations
//! instead of two `Vec`s per gate.

#[cfg(test)]
use crate::QubitId;
use crate::{commutes, Circuit, Gate, GateId, GateTable};

/// A directed acyclic dependency graph over gate indices of a circuit.
#[derive(Clone, Debug, PartialEq)]
pub struct DependencyDag {
    /// CSR offsets into `pred_adj`, one entry per gate plus a tail.
    pred_off: Vec<u32>,
    /// Flat predecessor lists: `pred_adj[pred_off[i]..pred_off[i+1]]`.
    pred_adj: Vec<u32>,
    /// CSR offsets into `succ_adj`.
    succ_off: Vec<u32>,
    /// Flat successor lists, ascending within each gate.
    succ_adj: Vec<u32>,
    num_gates: usize,
}

/// Bounded per-wire history for the streaming DAG builds: at most `cap`
/// most-recent stream positions are retained per wire, in ring buffers, so
/// the build's working set is O(wires × window) no matter how long the
/// stream is. The windowed scans only ever look `window` entries back, so
/// evicting older positions changes nothing — the graphs are bit-identical
/// to the unbounded-history build (the property tests below assert it).
///
/// With `cap == usize::MAX` (the exact, unwindowed builds) the rings never
/// fill and degenerate to plain grow-on-push vectors.
struct HistoryRings {
    rings: Vec<Vec<u32>>,
    /// Index of the *oldest* entry once a ring is full (rings rotate in
    /// place instead of shifting).
    head: Vec<u32>,
    cap: usize,
    /// Total retained entries across all rings (each ring saturates at
    /// `cap`, so this saturates at `wires × cap`).
    live: usize,
}

impl HistoryRings {
    fn new(wires: usize, cap: usize) -> Self {
        HistoryRings {
            rings: vec![Vec::new(); wires],
            head: vec![0; wires],
            cap: cap.max(1),
            live: 0,
        }
    }

    /// Records `pos` as wire `w`'s most recent entry, evicting the oldest
    /// once `cap` entries are held.
    fn push(&mut self, w: usize, pos: u32) {
        let ring = &mut self.rings[w];
        if ring.len() < self.cap {
            ring.push(pos);
            self.live += 1;
        } else {
            let h = self.head[w] as usize;
            ring[h] = pos;
            self.head[w] = ((h + 1) % self.cap) as u32;
        }
    }

    /// The retained entries of wire `w`, newest first.
    fn newest_first(&self, w: usize) -> impl Iterator<Item = u32> + '_ {
        let ring = &self.rings[w];
        let len = ring.len();
        let head = self.head[w] as usize;
        (0..len).map(move |k| ring[(head + len - 1 - k) % len])
    }
}

/// Streaming commutation-aware conflict scan over an interned gate stream:
/// the gate-at-a-time core of [`DependencyDag::commutation_aware_indexed`],
/// exposed so consumers that only need each gate's predecessor set *once*
/// (the default aggregation path) can consume it directly and never
/// materialize the CSR edge arrays.
///
/// Each [`ConflictScan::advance`] call yields the next stream position's
/// direct-conflict predecessors — the same nearest-blocker-per-wire sets
/// the materialized build records, in the same order — while retaining only
/// the bounded [`HistoryRings`] state: at most `window` positions per wire,
/// so the whole scan runs in `O(wires × window)` working set regardless of
/// stream length ([`ConflictScan::peak_live_slots`] reports the observed
/// peak, [`ConflictScan::slot_bound`] the bound).
pub struct ConflictScan<'a> {
    table: &'a GateTable,
    stream: &'a [GateId],
    wire_history: HistoryRings,
    cbit_history: HistoryRings,
    window: usize,
    next: usize,
    peak_live: usize,
    /// Scratch predecessor list, reused across `advance` calls.
    preds: Vec<u32>,
}

impl<'a> ConflictScan<'a> {
    /// Starts a scan over `stream` with the backward wire scan bounded to
    /// `window` gates per wire (see
    /// [`DependencyDag::commutation_aware_windowed`] for the windowing
    /// semantics).
    pub fn new(
        table: &'a GateTable,
        stream: &'a [GateId],
        num_qubits: usize,
        num_cbits: usize,
        window: usize,
    ) -> Self {
        ConflictScan {
            table,
            stream,
            wire_history: HistoryRings::new(num_qubits, window),
            cbit_history: HistoryRings::new(num_cbits.max(1), window),
            window,
            next: 0,
            peak_live: 0,
            preds: Vec::new(),
        }
    }

    /// Scans the next stream position and returns its direct-conflict
    /// predecessor set (deduplicated, nearest blocker per wire, qubit wires
    /// before classical bits — exactly the order the materialized CSR build
    /// stores). Returns `None` once the stream is exhausted. The slice is
    /// only valid until the next `advance` call.
    pub fn advance(&mut self) -> Option<&[u32]> {
        let i = self.next;
        let &id = self.stream.get(i)?;
        self.preds.clear();
        for q in self.table.qubit_indices(id) {
            for j in self.wire_history.newest_first(q).take(self.window) {
                if !self.table.commutes_ids(self.stream[j as usize], id) {
                    if !self.preds.contains(&j) {
                        self.preds.push(j);
                    }
                    break; // nearest blocker dominates older ones
                }
            }
            self.wire_history.push(q, i as u32);
        }
        for bit in self.table.classical_bits(id) {
            for j in self.cbit_history.newest_first(bit).take(self.window) {
                if !self.table.commutes_ids(self.stream[j as usize], id) {
                    if !self.preds.contains(&j) {
                        self.preds.push(j);
                    }
                    break;
                }
            }
            self.cbit_history.push(bit, i as u32);
        }
        self.peak_live = self.peak_live.max(self.live_slots());
        self.next = i + 1;
        Some(&self.preds)
    }

    /// Ring-buffer entries currently retained across all wires.
    pub fn live_slots(&self) -> usize {
        self.wire_history.live + self.cbit_history.live
    }

    /// Peak [`Self::live_slots`] observed so far.
    pub fn peak_live_slots(&self) -> usize {
        self.peak_live
    }

    /// Upper bound on [`Self::live_slots`]: `(qubit wires + cbit wires) ×
    /// window` — the `O(wires × window)` working-set guarantee.
    pub fn slot_bound(&self) -> usize {
        (self.wire_history.rings.len() + self.cbit_history.rings.len())
            .saturating_mul(self.window.max(1))
    }
}

/// Incremental CSR builder for predecessors: gates are processed in
/// ascending order, so each gate's list is appended contiguously.
struct PredBuilder {
    off: Vec<u32>,
    adj: Vec<u32>,
}

impl PredBuilder {
    fn new(n: usize) -> Self {
        PredBuilder { off: Vec::with_capacity(n + 1), adj: Vec::new() }
    }

    /// Opens gate `i`'s list (must be called in ascending `i` order).
    fn open(&mut self) {
        self.off.push(self.adj.len() as u32);
    }

    /// Adds `from` to the currently open list unless already present.
    fn add(&mut self, from: usize) -> bool {
        let start = *self.off.last().expect("open() called") as usize;
        if self.adj[start..].contains(&(from as u32)) {
            return false;
        }
        self.adj.push(from as u32);
        true
    }

    fn finish(mut self, num_gates: usize) -> DependencyDag {
        self.off.push(self.adj.len() as u32);
        // Successors by counting sort over the predecessor edges; pushing
        // in ascending `i` order keeps every successor list sorted.
        let mut succ_off = vec![0u32; num_gates + 2];
        for &from in &self.adj {
            succ_off[from as usize + 2] += 1;
        }
        for k in 2..succ_off.len() {
            succ_off[k] += succ_off[k - 1];
        }
        let mut succ_adj = vec![0u32; self.adj.len()];
        for i in 0..num_gates {
            let (s, e) = (self.off[i] as usize, self.off[i + 1] as usize);
            for &from in &self.adj[s..e] {
                let slot = &mut succ_off[from as usize + 1];
                succ_adj[*slot as usize] = i as u32;
                *slot += 1;
            }
        }
        succ_off.pop();
        DependencyDag { pred_off: self.off, pred_adj: self.adj, succ_off, succ_adj, num_gates }
    }
}

impl DependencyDag {
    /// Strict dependencies: gates sharing any qubit or classical bit are
    /// ordered as written. Only the *last* writer per resource is recorded,
    /// so edge counts stay linear in practice.
    pub fn strict(circuit: &Circuit) -> Self {
        Self::build(circuit, |_, _| true)
    }

    /// Commutation-aware dependencies: overlapping gates are ordered only
    /// when the symbolic oracle cannot prove they commute.
    pub fn commutation_aware(circuit: &Circuit) -> Self {
        Self::build(circuit, |a, b| !commutes(a, b))
    }

    /// Commutation-aware dependencies with the backward wire scan bounded
    /// to `window` gates per wire.
    ///
    /// On long runs of mutually commuting gates (QAOA's diagonal layers)
    /// the exact build degenerates to a quadratic scan; the windowed build
    /// stays linear by giving up on blockers more than `window` commuting
    /// gates back. Every recorded edge still connects a provably
    /// non-commuting pair — only edges may be *missing* — so the result is
    /// exact for "these two gates conflict" queries ([`Self::has_edge`])
    /// and an *optimistic* bound for layering.
    pub fn commutation_aware_windowed(circuit: &Circuit, window: usize) -> Self {
        Self::build_windowed(circuit, |a, b| !commutes(a, b), window)
    }

    /// [`Self::commutation_aware_windowed`] over an interned gate stream:
    /// the dependence oracle is [`GateTable::commutes_ids`], which walks the
    /// table's precomputed wire records instead of re-deriving axis
    /// behavior per call. Produces the same graph as the circuit-based
    /// build; this is the constructor the indexed IR uses.
    pub fn commutation_aware_indexed(
        table: &GateTable,
        stream: &[GateId],
        num_qubits: usize,
        num_cbits: usize,
        window: usize,
    ) -> Self {
        let n = stream.len();
        let mut preds = PredBuilder::new(n);
        // Materialization is just the streaming scan with every predecessor
        // set frozen into CSR arrays — one code path for both rails, so the
        // streaming consumers see bit-identical sets by construction.
        let mut scan = ConflictScan::new(table, stream, num_qubits, num_cbits, window);
        while let Some(set) = scan.advance() {
            preds.open();
            for &p in set {
                preds.add(p as usize);
            }
        }
        preds.finish(n)
    }

    fn build(circuit: &Circuit, depends: impl Fn(&Gate, &Gate) -> bool) -> Self {
        Self::build_windowed(circuit, depends, usize::MAX)
    }

    fn build_windowed(
        circuit: &Circuit,
        depends: impl Fn(&Gate, &Gate) -> bool,
        window: usize,
    ) -> Self {
        let n = circuit.len();
        let mut preds = PredBuilder::new(n);
        // Track, per qubit/cbit, the recent gates that may conflict. For the
        // strict build only the last toucher matters; for the
        // commutation-aware build we keep the chain of gates on the wire and
        // link against the nearest non-commuting one. The windowed builds
        // retain at most `window` positions per wire (ring buffers), so a
        // million-gate stream never holds more than O(wires × window)
        // history.
        let mut wire_history = HistoryRings::new(circuit.num_qubits(), window);
        let mut cbit_history = HistoryRings::new(circuit.num_cbits().max(1), window);
        let gates = circuit.gates();
        for (i, gate) in gates.iter().enumerate() {
            preds.open();
            for &q in gate.qubits() {
                for j in wire_history.newest_first(q.index()).take(window) {
                    if depends(&gates[j as usize], gate) {
                        preds.add(j as usize);
                        break; // nearest blocker dominates older ones
                    }
                }
                wire_history.push(q.index(), i as u32);
            }
            for bit in [gate.cbit(), gate.condition()].into_iter().flatten() {
                for j in cbit_history.newest_first(bit.index()).take(window) {
                    if depends(&gates[j as usize], gate) {
                        preds.add(j as usize);
                        break;
                    }
                }
                cbit_history.push(bit.index(), i as u32);
            }
        }
        preds.finish(n)
    }

    /// Number of gates (nodes).
    pub fn len(&self) -> usize {
        self.num_gates
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.num_gates == 0
    }

    /// Predecessors of gate `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn predecessors(&self, i: usize) -> &[u32] {
        &self.pred_adj[self.pred_off[i] as usize..self.pred_off[i + 1] as usize]
    }

    /// Successors of gate `i`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn successors(&self, i: usize) -> &[u32] {
        &self.succ_adj[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// ASAP layer of every gate (layer 0 = no predecessors); the maximum
    /// plus one is the circuit depth under this dependence relation.
    pub fn asap_layers(&self) -> Vec<usize> {
        let mut layer = vec![0usize; self.num_gates];
        for i in 0..self.num_gates {
            // preds always have smaller indices (edges respect program order).
            let l = self.predecessors(i).iter().map(|&p| layer[p as usize] + 1).max().unwrap_or(0);
            layer[i] = l;
        }
        layer
    }

    /// Depth (longest chain length) under this dependence relation.
    pub fn depth(&self) -> usize {
        self.asap_layers().iter().map(|l| l + 1).max().unwrap_or(0)
    }

    /// Latency-weighted critical path: the minimum possible makespan with
    /// unlimited parallelism, where `weight(i)` is gate `i`'s duration.
    pub fn critical_path(&self, weight: impl Fn(usize) -> f64) -> f64 {
        let mut finish = vec![0.0f64; self.num_gates];
        let mut best = 0.0f64;
        for i in 0..self.num_gates {
            let start =
                self.predecessors(i).iter().map(|&p| finish[p as usize]).fold(0.0, f64::max);
            finish[i] = start + weight(i);
            best = best.max(finish[i]);
        }
        best
    }

    /// Gates with no predecessors (schedulable immediately).
    pub fn front(&self) -> Vec<usize> {
        (0..self.num_gates).filter(|&i| self.predecessors(i).is_empty()).collect()
    }

    /// Whether the dependence edge `from → to` is present.
    ///
    /// For the commutation-aware builds an edge is a proof that the two
    /// gates do **not** commute; absence proves nothing (the blocker may be
    /// transitive). Successor lists are ascending, so this is a binary
    /// search.
    pub fn has_edge(&self, from: usize, to: usize) -> bool {
        self.successors(from).binary_search(&(to as u32)).is_ok()
    }

    /// Total number of dependence edges.
    pub fn edge_count(&self) -> usize {
        self.pred_adj.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gate;

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    fn chain_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::h(q(0))).unwrap();
        c.push(Gate::cx(q(0), q(1))).unwrap();
        c.push(Gate::cx(q(1), q(2))).unwrap();
        c
    }

    /// Interns a circuit and builds the indexed commutation-aware DAG.
    fn indexed(circuit: &Circuit, window: usize) -> DependencyDag {
        let mut table = GateTable::new();
        let stream: Vec<GateId> = circuit.gates().iter().map(|g| table.intern(g)).collect();
        DependencyDag::commutation_aware_indexed(
            &table,
            &stream,
            circuit.num_qubits(),
            circuit.num_cbits(),
            window,
        )
    }

    #[test]
    fn strict_dag_orders_shared_wires() {
        let dag = DependencyDag::strict(&chain_circuit());
        assert_eq!(dag.predecessors(0), &[] as &[u32]);
        assert_eq!(dag.predecessors(1), &[0]);
        assert_eq!(dag.predecessors(2), &[1]);
        assert_eq!(dag.successors(0), &[1]);
        assert_eq!(dag.depth(), 3);
        assert_eq!(dag.front(), vec![0]);
        assert!(dag.has_edge(0, 1));
        assert!(!dag.has_edge(0, 2));
        assert_eq!(dag.edge_count(), 2);
    }

    #[test]
    fn commutation_aware_dag_skips_commuting_pairs() {
        // Two CX sharing a control commute: depth collapses to 1.
        let mut c = Circuit::new(3);
        c.push(Gate::cx(q(0), q(1))).unwrap();
        c.push(Gate::cx(q(0), q(2))).unwrap();
        let strict = DependencyDag::strict(&c);
        let aware = DependencyDag::commutation_aware(&c);
        assert_eq!(strict.depth(), 2);
        assert_eq!(aware.depth(), 1);
        assert_eq!(aware.front().len(), 2);
    }

    #[test]
    fn nearest_blocker_is_linked_past_commuting_gates() {
        // H q0 ; RZ q0 ; ... the RZ commutes with a following CX control but
        // the H does not — the CX must still depend on the H transitively.
        let mut c = Circuit::new(2);
        c.push(Gate::h(q(0))).unwrap();
        c.push(Gate::rz(0.5, q(0))).unwrap();
        c.push(Gate::cx(q(0), q(1))).unwrap();
        let aware = DependencyDag::commutation_aware(&c);
        // CX's blocker through q0 is H (index 0): rz commutes with cx.
        assert!(aware.predecessors(2).contains(&0));
        assert_eq!(aware.depth(), 2);
    }

    #[test]
    fn classical_bits_create_dependencies() {
        use crate::CBitId;
        let mut c = Circuit::with_cbits(2, 1);
        c.push(Gate::measure(q(0), CBitId::new(0))).unwrap();
        c.push(Gate::x(q(1)).with_condition(CBitId::new(0))).unwrap();
        let dag = DependencyDag::strict(&c);
        assert_eq!(dag.predecessors(1), &[0]);
        let idx = indexed(&c, 64);
        assert_eq!(idx.predecessors(1), &[0]);
    }

    #[test]
    fn critical_path_uses_weights() {
        let dag = DependencyDag::strict(&chain_circuit());
        // h = 0.1, cx = 1.0 each → 2.1 total on the chain.
        let weights = [0.1, 1.0, 1.0];
        let cp = dag.critical_path(|i| weights[i]);
        assert!((cp - 2.1).abs() < 1e-12);
    }

    #[test]
    fn empty_circuit() {
        let dag = DependencyDag::strict(&Circuit::new(2));
        assert!(dag.is_empty());
        assert_eq!(dag.depth(), 0);
        assert_eq!(dag.critical_path(|_| 1.0), 0.0);
    }

    fn pseudo_random_circuit(seed: u64, num_qubits: usize, len: usize) -> Circuit {
        // Hand-rolled deterministic pseudo-random circuit (avoid a dev
        // dependency cycle with dqc-workloads).
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut c = Circuit::new(num_qubits);
        for _ in 0..len {
            let a = (next() % num_qubits as u64) as usize;
            let b = (a + 1 + (next() % (num_qubits as u64 - 1)) as usize) % num_qubits;
            match next() % 4 {
                0 => c.push(Gate::h(q(a))).unwrap(),
                1 => c.push(Gate::t(q(a))).unwrap(),
                2 => c.push(Gate::cx(q(a), q(b))).unwrap(),
                _ => c.push(Gate::cz(q(a), q(b))).unwrap(),
            }
        }
        c
    }

    #[test]
    fn commutation_aware_depth_never_exceeds_strict() {
        for seed in 0..5u64 {
            let c = pseudo_random_circuit(seed, 4, 30);
            let strict = DependencyDag::strict(&c).depth();
            let aware = DependencyDag::commutation_aware(&c).depth();
            assert!(aware <= strict, "seed {seed}: {aware} > {strict}");
        }
    }

    #[test]
    fn indexed_build_matches_gate_build() {
        for seed in 0..5u64 {
            let c = pseudo_random_circuit(seed, 5, 60);
            let by_gate = DependencyDag::commutation_aware_windowed(&c, 16);
            let by_id = indexed(&c, 16);
            assert_eq!(by_gate, by_id, "seed {seed}");
        }
    }

    /// Reference windowed build with *unbounded* per-wire history vectors
    /// (the pre-ring-buffer implementation): the streaming build must
    /// reproduce it bit for bit, including when rings wrap many times.
    fn reference_windowed(circuit: &Circuit, window: usize) -> DependencyDag {
        let gates = circuit.gates();
        let mut preds = PredBuilder::new(gates.len());
        let mut wire_history: Vec<Vec<u32>> = vec![Vec::new(); circuit.num_qubits()];
        let mut cbit_history: Vec<Vec<u32>> = vec![Vec::new(); circuit.num_cbits().max(1)];
        for (i, gate) in gates.iter().enumerate() {
            preds.open();
            for &q in gate.qubits() {
                for &j in wire_history[q.index()].iter().rev().take(window) {
                    if !commutes(&gates[j as usize], gate) {
                        preds.add(j as usize);
                        break;
                    }
                }
                wire_history[q.index()].push(i as u32);
            }
            for bit in [gate.cbit(), gate.condition()].into_iter().flatten() {
                for &j in cbit_history[bit.index()].iter().rev().take(window) {
                    if !commutes(&gates[j as usize], gate) {
                        preds.add(j as usize);
                        break;
                    }
                }
                cbit_history[bit.index()].push(i as u32);
            }
        }
        preds.finish(gates.len())
    }

    #[test]
    fn ring_history_build_matches_unbounded_history_reference() {
        // Streams far longer than the window per wire, so every ring wraps
        // around many times; tiny windows stress the eviction path.
        for window in [1usize, 2, 3, 7, 16] {
            for seed in 0..4u64 {
                let c = pseudo_random_circuit(seed * 31 + 5, 3, 200);
                let streamed = DependencyDag::commutation_aware_windowed(&c, window);
                let reference = reference_windowed(&c, window);
                assert_eq!(streamed, reference, "window {window}, seed {seed}");
                let by_id = indexed(&c, window);
                assert_eq!(by_id, reference, "indexed: window {window}, seed {seed}");
            }
        }
    }

    #[test]
    fn conflict_scan_matches_materialized_build_and_stays_bounded() {
        for window in [2usize, 8, 16] {
            for seed in 0..3u64 {
                let c = pseudo_random_circuit(seed * 17 + 3, 4, 300);
                let mut table = GateTable::new();
                let stream: Vec<GateId> = c.gates().iter().map(|g| table.intern(g)).collect();
                let dag = DependencyDag::commutation_aware_indexed(
                    &table,
                    &stream,
                    c.num_qubits(),
                    c.num_cbits(),
                    window,
                );
                let mut scan =
                    ConflictScan::new(&table, &stream, c.num_qubits(), c.num_cbits(), window);
                let mut pos = 0usize;
                while let Some(set) = scan.advance() {
                    assert_eq!(set, dag.predecessors(pos), "window {window}, pos {pos}");
                    pos += 1;
                }
                assert_eq!(pos, c.len());
                // The working set is O(wires × window), never O(gates): the
                // stream is 300 gates long but at most `window` positions
                // per wire are ever retained.
                assert!(scan.peak_live_slots() <= scan.slot_bound());
                assert_eq!(scan.slot_bound(), (c.num_qubits() + 1) * window);
            }
        }
    }

    #[test]
    fn windowed_build_only_drops_edges() {
        let c = pseudo_random_circuit(9, 4, 80);
        let full = DependencyDag::commutation_aware(&c);
        let windowed = DependencyDag::commutation_aware_windowed(&c, 4);
        assert!(windowed.edge_count() <= full.edge_count());
        for i in 0..c.len() {
            for &p in windowed.predecessors(i) {
                assert!(
                    full.has_edge(p as usize, i),
                    "windowed edge {p}->{i} missing from the exact build"
                );
            }
        }
    }
}
