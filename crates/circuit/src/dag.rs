//! Dependency DAG over a circuit's gates.
//!
//! Two views are provided:
//!
//! * the **strict** dependency graph, where any two gates sharing a qubit
//!   (or classical bit) in program order are ordered, giving the usual
//!   ASAP layering and critical path;
//! * the **commutation-aware** graph, where an edge exists only when the
//!   gates do *not* commute ([`crate::commutes`]) — the structure the
//!   AutoComm aggregation pass navigates implicitly, exposed here for
//!   analysis and for latency-weighted lower bounds.

#[cfg(test)]
use crate::QubitId;
use crate::{commutes, Circuit, Gate};

/// A directed acyclic dependency graph over gate indices of a circuit.
#[derive(Clone, Debug, PartialEq)]
pub struct DependencyDag {
    /// `preds[i]` lists the gate indices that must precede gate `i`.
    preds: Vec<Vec<usize>>,
    /// `succs[i]` lists the gate indices that must follow gate `i`.
    succs: Vec<Vec<usize>>,
    num_gates: usize,
}

impl DependencyDag {
    /// Strict dependencies: gates sharing any qubit or classical bit are
    /// ordered as written. Only the *last* writer per resource is recorded,
    /// so edge counts stay linear in practice.
    pub fn strict(circuit: &Circuit) -> Self {
        Self::build(circuit, |_, _| true)
    }

    /// Commutation-aware dependencies: overlapping gates are ordered only
    /// when the symbolic oracle cannot prove they commute.
    pub fn commutation_aware(circuit: &Circuit) -> Self {
        Self::build(circuit, |a, b| !commutes(a, b))
    }

    fn build(circuit: &Circuit, depends: impl Fn(&Gate, &Gate) -> bool) -> Self {
        let n = circuit.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        // Track, per qubit/cbit, the recent gates that may conflict. For the
        // strict build only the last toucher matters; for the
        // commutation-aware build we keep the chain of gates on the wire and
        // link against the nearest non-commuting one.
        let mut wire_history: Vec<Vec<usize>> = vec![Vec::new(); circuit.num_qubits()];
        let mut cbit_history: Vec<Vec<usize>> = vec![Vec::new(); circuit.num_cbits().max(1)];
        let gates = circuit.gates();
        for (i, gate) in gates.iter().enumerate() {
            let add_edge =
                |from: usize, preds: &mut Vec<Vec<usize>>, succs: &mut Vec<Vec<usize>>| {
                    if !preds[i].contains(&from) {
                        preds[i].push(from);
                        succs[from].push(i);
                    }
                };
            for &q in gate.qubits() {
                for &j in wire_history[q.index()].iter().rev() {
                    if depends(&gates[j], gate) {
                        add_edge(j, &mut preds, &mut succs);
                        break; // nearest blocker dominates older ones
                    }
                }
                wire_history[q.index()].push(i);
            }
            for bit in [gate.cbit(), gate.condition()].into_iter().flatten() {
                for &j in cbit_history[bit.index()].iter().rev() {
                    if depends(&gates[j], gate) {
                        add_edge(j, &mut preds, &mut succs);
                        break;
                    }
                }
                cbit_history[bit.index()].push(i);
            }
        }
        DependencyDag { preds, succs, num_gates: n }
    }

    /// Number of gates (nodes).
    pub fn len(&self) -> usize {
        self.num_gates
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.num_gates == 0
    }

    /// Predecessors of gate `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn predecessors(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Successors of gate `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// ASAP layer of every gate (layer 0 = no predecessors); the maximum
    /// plus one is the circuit depth under this dependence relation.
    pub fn asap_layers(&self) -> Vec<usize> {
        let mut layer = vec![0usize; self.num_gates];
        for i in 0..self.num_gates {
            // preds always have smaller indices (edges respect program order).
            let l = self.preds[i].iter().map(|&p| layer[p] + 1).max().unwrap_or(0);
            layer[i] = l;
        }
        layer
    }

    /// Depth (longest chain length) under this dependence relation.
    pub fn depth(&self) -> usize {
        self.asap_layers().iter().map(|l| l + 1).max().unwrap_or(0)
    }

    /// Latency-weighted critical path: the minimum possible makespan with
    /// unlimited parallelism, where `weight(i)` is gate `i`'s duration.
    pub fn critical_path(&self, weight: impl Fn(usize) -> f64) -> f64 {
        let mut finish = vec![0.0f64; self.num_gates];
        let mut best = 0.0f64;
        for i in 0..self.num_gates {
            let start = self.preds[i].iter().map(|&p| finish[p]).fold(0.0, f64::max);
            finish[i] = start + weight(i);
            best = best.max(finish[i]);
        }
        best
    }

    /// Gates with no predecessors (schedulable immediately).
    pub fn front(&self) -> Vec<usize> {
        (0..self.num_gates).filter(|&i| self.preds[i].is_empty()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gate;

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    fn chain_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::h(q(0))).unwrap();
        c.push(Gate::cx(q(0), q(1))).unwrap();
        c.push(Gate::cx(q(1), q(2))).unwrap();
        c
    }

    #[test]
    fn strict_dag_orders_shared_wires() {
        let dag = DependencyDag::strict(&chain_circuit());
        assert_eq!(dag.predecessors(0), &[] as &[usize]);
        assert_eq!(dag.predecessors(1), &[0]);
        assert_eq!(dag.predecessors(2), &[1]);
        assert_eq!(dag.depth(), 3);
        assert_eq!(dag.front(), vec![0]);
    }

    #[test]
    fn commutation_aware_dag_skips_commuting_pairs() {
        // Two CX sharing a control commute: depth collapses to 1.
        let mut c = Circuit::new(3);
        c.push(Gate::cx(q(0), q(1))).unwrap();
        c.push(Gate::cx(q(0), q(2))).unwrap();
        let strict = DependencyDag::strict(&c);
        let aware = DependencyDag::commutation_aware(&c);
        assert_eq!(strict.depth(), 2);
        assert_eq!(aware.depth(), 1);
        assert_eq!(aware.front().len(), 2);
    }

    #[test]
    fn nearest_blocker_is_linked_past_commuting_gates() {
        // H q0 ; RZ q0 ; ... the RZ commutes with a following CX control but
        // the H does not — the CX must still depend on the H transitively.
        let mut c = Circuit::new(2);
        c.push(Gate::h(q(0))).unwrap();
        c.push(Gate::rz(0.5, q(0))).unwrap();
        c.push(Gate::cx(q(0), q(1))).unwrap();
        let aware = DependencyDag::commutation_aware(&c);
        // CX's blocker through q0 is H (index 0): rz commutes with cx.
        assert!(aware.predecessors(2).contains(&0));
        assert_eq!(aware.depth(), 2);
    }

    #[test]
    fn classical_bits_create_dependencies() {
        use crate::CBitId;
        let mut c = Circuit::with_cbits(2, 1);
        c.push(Gate::measure(q(0), CBitId::new(0))).unwrap();
        c.push(Gate::x(q(1)).with_condition(CBitId::new(0))).unwrap();
        let dag = DependencyDag::strict(&c);
        assert_eq!(dag.predecessors(1), &[0]);
    }

    #[test]
    fn critical_path_uses_weights() {
        let dag = DependencyDag::strict(&chain_circuit());
        // h = 0.1, cx = 1.0 each → 2.1 total on the chain.
        let weights = [0.1, 1.0, 1.0];
        let cp = dag.critical_path(|i| weights[i]);
        assert!((cp - 2.1).abs() < 1e-12);
    }

    #[test]
    fn empty_circuit() {
        let dag = DependencyDag::strict(&Circuit::new(2));
        assert!(dag.is_empty());
        assert_eq!(dag.depth(), 0);
        assert_eq!(dag.critical_path(|_| 1.0), 0.0);
    }

    #[test]
    fn commutation_aware_depth_never_exceeds_strict() {
        for seed in 0..5u64 {
            // Hand-rolled deterministic pseudo-random circuit (avoid a dev
            // dependency cycle with dqc-workloads).
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut c = Circuit::new(4);
            for _ in 0..30 {
                let a = (next() % 4) as usize;
                let b = (a + 1 + (next() % 3) as usize) % 4;
                match next() % 4 {
                    0 => c.push(Gate::h(q(a))).unwrap(),
                    1 => c.push(Gate::t(q(a))).unwrap(),
                    2 => c.push(Gate::cx(q(a), q(b))).unwrap(),
                    _ => c.push(Gate::cz(q(a), q(b))).unwrap(),
                }
            }
            let strict = DependencyDag::strict(&c).depth();
            let aware = DependencyDag::commutation_aware(&c).depth();
            assert!(aware <= strict, "seed {seed}: {aware} > {strict}");
        }
    }
}
