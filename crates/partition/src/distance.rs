//! Node-to-node distance abstraction.
//!
//! The OEE partitioner historically minimized an *unweighted* cut: every
//! cross-node edge costs the same, which is exact on the paper's all-to-all
//! interconnect where every communication consumes one EPR pair. Since the
//! topology re-platforming the hardware charges `comms × hops`, so the same
//! cut costs different amounts of EPR traffic depending on which physical
//! nodes the blocks land on. [`NodeDistance`] abstracts that cost surface:
//! the uniform metric reproduces the historical objective bit for bit, and
//! [`dqc_hardware::NetworkTopology`] plugs in routed hop counts.

use dqc_circuit::NodeId;
use dqc_hardware::NetworkTopology;

/// A distance (EPR-pairs-per-communication multiplier) between physical
/// nodes. `distance(a, a)` must be 0 and the metric symmetric; both are
/// relied on by the weighted OEE gain formula.
pub trait NodeDistance {
    /// EPR pairs one end-to-end communication between `a` and `b` costs.
    fn node_distance(&self, a: NodeId, b: NodeId) -> u64;
}

/// The paper's implicit all-to-all metric: every distinct pair is one hop.
/// [`crate::oee_refine`] under this metric is exactly the historical
/// unweighted OEE.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UniformDistance;

impl NodeDistance for UniformDistance {
    fn node_distance(&self, a: NodeId, b: NodeId) -> u64 {
        u64::from(a != b)
    }
}

/// Routed hop counts. [`dqc_hardware::HardwareSpec::with_topology`] rejects
/// disconnected machines, so pipeline-facing callers never hit the panic.
///
/// # Panics
///
/// Panics when `a` and `b` are disconnected (only possible for hand-built
/// [`NetworkTopology::from_links`] graphs).
impl NodeDistance for NetworkTopology {
    fn node_distance(&self, a: NodeId, b: NodeId) -> u64 {
        self.hop_distance(a, b).unwrap_or_else(|| {
            panic!("topology has no route between {a} and {b} (pass a connected topology)")
        }) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn uniform_distance_is_the_historical_metric() {
        assert_eq!(UniformDistance.node_distance(n(0), n(0)), 0);
        assert_eq!(UniformDistance.node_distance(n(0), n(5)), 1);
        assert_eq!(UniformDistance.node_distance(n(5), n(0)), 1);
    }

    #[test]
    fn topology_distance_counts_hops() {
        let t = NetworkTopology::linear(4).unwrap();
        assert_eq!(t.node_distance(n(0), n(3)), 3);
        assert_eq!(t.node_distance(n(1), n(1)), 0);
        let full = NetworkTopology::all_to_all(4);
        assert_eq!(full.node_distance(n(0), n(3)), 1);
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn disconnected_distance_panics() {
        use dqc_hardware::Link;
        let t = NetworkTopology::from_links("x", 3, vec![Link::new(n(0), n(1))]).unwrap();
        t.node_distance(n(0), n(2));
    }
}
