//! The qubit interaction graph.

use dqc_circuit::{Circuit, NodeId, Partition, QubitId};

use crate::NodeDistance;

/// Weighted undirected graph over qubits; edge weight = number of
/// multi-qubit gates coupling the pair.
///
/// Stored as a dense upper-triangular matrix — benchmark registers reach a
/// few hundred qubits, where the dense form is both fastest and simplest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InteractionGraph {
    num_qubits: usize,
    // weights[i][j] valid for j > i.
    weights: Vec<Vec<u64>>,
}

impl InteractionGraph {
    /// An edgeless graph over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        let weights = (0..num_qubits).map(|i| vec![0; num_qubits - i]).collect();
        InteractionGraph { num_qubits, weights }
    }

    /// Builds the graph of `circuit`: every multi-qubit gate adds one unit
    /// of weight to each pair of its operands.
    ///
    /// This is the *raw-gate* weighting — the documented fallback when no
    /// compiled program is available (e.g. the very first partitioning of a
    /// fresh circuit). It overweights pairs whose gates aggregate into few
    /// burst communications; once a program has been aggregated, prefer the
    /// communication-weighted graph (`autocomm::comm_weighted_graph`),
    /// which counts burst blocks instead of gates.
    ///
    /// ```
    /// use dqc_circuit::{Circuit, Gate, QubitId};
    /// use dqc_partition::InteractionGraph;
    /// let q = |i| QubitId::new(i);
    /// let mut c = Circuit::new(3);
    /// c.push(Gate::cx(q(0), q(1))).unwrap();
    /// c.push(Gate::cx(q(0), q(1))).unwrap();
    /// c.push(Gate::ccx(q(0), q(1), q(2))).unwrap();
    /// let g = InteractionGraph::from_circuit(&c);
    /// assert_eq!(g.weight(q(0), q(1)), 3);
    /// assert_eq!(g.weight(q(1), q(2)), 1);
    /// ```
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut g = InteractionGraph::new(circuit.num_qubits());
        for gate in circuit.gates() {
            if !gate.kind().is_unitary() || gate.num_qubits() < 2 {
                continue;
            }
            let qs = gate.qubits();
            for i in 0..qs.len() {
                for j in i + 1..qs.len() {
                    g.add_weight(qs[i], qs[j], 1);
                }
            }
        }
        g
    }

    /// Number of qubits (vertices).
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Weight of the edge `{a, b}` (0 when absent or `a == b`).
    ///
    /// # Panics
    ///
    /// Panics when a vertex is out of range.
    pub fn weight(&self, a: QubitId, b: QubitId) -> u64 {
        let (i, j) = order(a.index(), b.index());
        if i == j {
            return 0;
        }
        self.weights[i][j - i]
    }

    /// Adds `w` to the edge `{a, b}`.
    ///
    /// # Panics
    ///
    /// Panics when a vertex is out of range or `a == b`.
    pub fn add_weight(&mut self, a: QubitId, b: QubitId, w: u64) {
        assert_ne!(a, b, "self-loops are not meaningful");
        let (i, j) = order(a.index(), b.index());
        self.weights[i][j - i] += w;
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().flatten().sum()
    }

    /// Sum of weights of edges whose endpoints live on different nodes —
    /// the quantity OEE minimizes; equal to the number of remote multi-qubit
    /// gates when the graph came from a circuit.
    pub fn cut_weight(&self, partition: &Partition) -> u64 {
        let mut cut = 0;
        for i in 0..self.num_qubits {
            for j in i + 1..self.num_qubits {
                let w = self.weights[i][j - i];
                if w > 0 && partition.node_of(QubitId::new(i)) != partition.node_of(QubitId::new(j))
                {
                    cut += w;
                }
            }
        }
        cut
    }

    /// The hop-weighted generalization of [`InteractionGraph::cut_weight`]:
    /// `Σ w(a, b) × distance(node_map[block(a)], node_map[block(b)])` — the
    /// EPR traffic the hardware charges when partition block `i` lands on
    /// physical node `node_map[i]`. With the identity map and
    /// [`crate::UniformDistance`] this is exactly `cut_weight`.
    ///
    /// # Panics
    ///
    /// Panics when `node_map` does not cover every partition block.
    pub fn placed_cut_weight(
        &self,
        partition: &Partition,
        node_map: &[NodeId],
        dist: &impl NodeDistance,
    ) -> u64 {
        assert!(node_map.len() >= partition.num_nodes(), "node map must cover every block");
        let mut cut = 0;
        for i in 0..self.num_qubits {
            for j in i + 1..self.num_qubits {
                let w = self.weights[i][j - i];
                if w == 0 {
                    continue;
                }
                let a = partition.node_of(QubitId::new(i));
                let b = partition.node_of(QubitId::new(j));
                if a != b {
                    cut += w * dist.node_distance(node_map[a.index()], node_map[b.index()]);
                }
            }
        }
        cut
    }

    /// The block-level traffic matrix under `partition`:
    /// `traffic[i][j] = Σ w(a, b)` over edges with `a` in block `i` and `b`
    /// in block `j` (symmetric, zero diagonal). This is the input the
    /// node-placement stage ([`crate::place_blocks`]) optimizes over.
    pub fn block_traffic(&self, partition: &Partition) -> Vec<Vec<u64>> {
        let k = partition.num_nodes();
        let mut traffic = vec![vec![0u64; k]; k];
        for (a, b, w) in self.edges() {
            let na = partition.node_of(a).index();
            let nb = partition.node_of(b).index();
            if na != nb {
                traffic[na][nb] += w;
                traffic[nb][na] += w;
            }
        }
        traffic
    }

    /// Iterates over `(a, b, weight)` for every positive-weight edge.
    pub fn edges(&self) -> impl Iterator<Item = (QubitId, QubitId, u64)> + '_ {
        (0..self.num_qubits).flat_map(move |i| {
            (i + 1..self.num_qubits).filter_map(move |j| {
                let w = self.weights[i][j - i];
                (w > 0).then(|| (QubitId::new(i), QubitId::new(j), w))
            })
        })
    }

    /// Total weight between `q` and all qubits of each node, as a dense
    /// per-node vector (scratch structure for the OEE inner loop).
    pub fn node_weights(&self, q: QubitId, partition: &Partition) -> Vec<u64> {
        let mut out = vec![0; partition.num_nodes()];
        for other in 0..self.num_qubits {
            if other == q.index() {
                continue;
            }
            let w = self.weight(q, QubitId::new(other));
            if w > 0 {
                out[partition.node_of(QubitId::new(other)).index()] += w;
            }
        }
        out
    }
}

fn order(a: usize, b: usize) -> (usize, usize) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_circuit::Gate;

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn weights_are_symmetric() {
        let mut g = InteractionGraph::new(3);
        g.add_weight(q(0), q(2), 5);
        assert_eq!(g.weight(q(0), q(2)), 5);
        assert_eq!(g.weight(q(2), q(0)), 5);
        assert_eq!(g.weight(q(0), q(1)), 0);
        assert_eq!(g.weight(q(1), q(1)), 0);
    }

    #[test]
    fn from_circuit_counts_pairs() {
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(1))).unwrap();
        c.push(Gate::crz(0.5, q(0), q(1))).unwrap();
        c.push(Gate::h(q(2))).unwrap();
        let g = InteractionGraph::from_circuit(&c);
        assert_eq!(g.weight(q(0), q(1)), 2);
        assert_eq!(g.total_weight(), 2);
    }

    #[test]
    fn cut_weight_counts_cross_node_edges() {
        let mut g = InteractionGraph::new(4);
        g.add_weight(q(0), q(1), 3); // same node under block(4,2)
        g.add_weight(q(1), q(2), 7); // cross
        let p = Partition::block(4, 2).unwrap();
        assert_eq!(g.cut_weight(&p), 7);
    }

    #[test]
    fn edges_iterator_lists_positive_edges() {
        let mut g = InteractionGraph::new(3);
        g.add_weight(q(0), q(2), 2);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(q(0), q(2), 2)]);
    }

    #[test]
    fn node_weights_accumulate_per_node() {
        let mut g = InteractionGraph::new(4);
        g.add_weight(q(0), q(1), 1);
        g.add_weight(q(0), q(2), 2);
        g.add_weight(q(0), q(3), 3);
        let p = Partition::block(4, 2).unwrap();
        assert_eq!(g.node_weights(q(0), &p), vec![1, 5]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        InteractionGraph::new(2).add_weight(q(1), q(1), 1);
    }

    #[test]
    fn placed_cut_weight_reduces_to_cut_weight_under_uniform_identity() {
        use crate::UniformDistance;
        let mut g = InteractionGraph::new(6);
        g.add_weight(q(0), q(3), 4);
        g.add_weight(q(2), q(5), 2);
        g.add_weight(q(0), q(1), 9); // same block: never cut
        let p = Partition::block(6, 3).unwrap();
        let identity: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        assert_eq!(g.placed_cut_weight(&p, &identity, &UniformDistance), g.cut_weight(&p));
    }

    #[test]
    fn placed_cut_weight_charges_hops() {
        use dqc_hardware::NetworkTopology;
        let mut g = InteractionGraph::new(6);
        g.add_weight(q(0), q(4), 3); // block 0 ↔ block 2
        let p = Partition::block(6, 3).unwrap();
        let chain = NetworkTopology::linear(3).unwrap();
        let identity: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        assert_eq!(g.placed_cut_weight(&p, &identity, &chain), 6, "3 comms × 2 hops");
        // Swapping blocks 1 and 2 makes the pair adjacent.
        let swapped = vec![NodeId::new(0), NodeId::new(2), NodeId::new(1)];
        assert_eq!(g.placed_cut_weight(&p, &swapped, &chain), 3);
    }

    #[test]
    fn block_traffic_is_symmetric_with_zero_diagonal() {
        let mut g = InteractionGraph::new(6);
        g.add_weight(q(0), q(2), 5);
        g.add_weight(q(1), q(4), 2);
        g.add_weight(q(0), q(1), 7); // intra-block: not traffic
        let p = Partition::block(6, 3).unwrap();
        let t = g.block_traffic(&p);
        assert_eq!(t[0][1], 5);
        assert_eq!(t[1][0], 5);
        assert_eq!(t[0][2], 2);
        assert_eq!(t[0][0], 0);
        let cut: u64 =
            (0..3).flat_map(|i| (i + 1..3).map(move |j| (i, j))).map(|(i, j)| t[i][j]).sum();
        assert_eq!(cut, g.cut_weight(&p), "traffic totals the cut");
    }
}
