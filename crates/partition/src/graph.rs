//! The qubit interaction graph.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use dqc_circuit::{Circuit, NodeId, Partition, QubitId};

use crate::NodeDistance;

/// Compressed-sparse-row neighbor index over the (symmetric) adjacency,
/// plus the sorted upper-triangular edge list. Rebuilt lazily after
/// mutations; every traversal helper reads from here so scans cost
/// O(degree) / O(edges), never O(n) / O(n²).
#[derive(Clone, Debug)]
struct CsrIndex {
    /// `starts[q] .. starts[q + 1]` indexes `cols` / `weights` — the
    /// neighbors of `q`, ascending.
    starts: Vec<usize>,
    cols: Vec<u32>,
    weights: Vec<u64>,
    /// Positive-weight edges `(i, j, w)` with `i < j`, ascending `(i, j)`.
    edge_list: Vec<(u32, u32, u64)>,
    total: u64,
}

/// Weighted undirected graph over qubits; edge weight = number of
/// multi-qubit gates coupling the pair.
///
/// Circuit-derived interaction graphs are sparse — each gate couples at
/// most three qubits — so edges live in an upper-triangular hash map
/// (O(edges) memory) fronted by a lazily built CSR neighbor index
/// ([`InteractionGraph::neighbors`]) that every traversal helper reads.
/// This keeps the 1k–4k-qubit tier linear in edges where the former dense
/// matrix paid O(n²) in both memory and scan time.
#[derive(Clone, Debug)]
pub struct InteractionGraph {
    num_qubits: usize,
    /// Upper-triangular edge store: key packs `(i, j)` with `i < j`;
    /// values are always positive (zero-weight adds are dropped), so
    /// map equality is exactly edge-set equality.
    edges: HashMap<u64, u64>,
    /// Lazy CSR index; cleared by every mutation.
    index: OnceLock<CsrIndex>,
    /// Process-unique content stamp: every mutation takes a fresh value, so
    /// equal stamps imply equal edge content (clones share the stamp until
    /// one of them mutates). Lets the OEE warm-start cache validate its
    /// graph in O(1) instead of re-hashing the edge set.
    version: u64,
}

/// Monotone source for [`InteractionGraph::version`] stamps.
static NEXT_VERSION: AtomicU64 = AtomicU64::new(1);

fn fresh_version() -> u64 {
    NEXT_VERSION.fetch_add(1, Ordering::Relaxed)
}

impl PartialEq for InteractionGraph {
    fn eq(&self, other: &Self) -> bool {
        // The index is a cache of `edges`; only content participates.
        self.num_qubits == other.num_qubits && self.edges == other.edges
    }
}

impl Eq for InteractionGraph {}

#[inline]
fn pack(i: usize, j: usize) -> u64 {
    debug_assert!(i < j);
    ((i as u64) << 32) | j as u64
}

impl InteractionGraph {
    /// An edgeless graph over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        assert!(num_qubits <= u32::MAX as usize, "qubit index must fit in 32 bits");
        InteractionGraph {
            num_qubits,
            edges: HashMap::new(),
            index: OnceLock::new(),
            version: fresh_version(),
        }
    }

    /// Builds the graph of `circuit`: every multi-qubit gate adds one unit
    /// of weight to each pair of its operands.
    ///
    /// This is the *raw-gate* weighting — the documented fallback when no
    /// compiled program is available (e.g. the very first partitioning of a
    /// fresh circuit). It overweights pairs whose gates aggregate into few
    /// burst communications; once a program has been aggregated, prefer the
    /// communication-weighted graph (`autocomm::comm_weighted_graph`),
    /// which counts burst blocks instead of gates.
    ///
    /// ```
    /// use dqc_circuit::{Circuit, Gate, QubitId};
    /// use dqc_partition::InteractionGraph;
    /// let q = |i| QubitId::new(i);
    /// let mut c = Circuit::new(3);
    /// c.push(Gate::cx(q(0), q(1))).unwrap();
    /// c.push(Gate::cx(q(0), q(1))).unwrap();
    /// c.push(Gate::ccx(q(0), q(1), q(2))).unwrap();
    /// let g = InteractionGraph::from_circuit(&c);
    /// assert_eq!(g.weight(q(0), q(1)), 3);
    /// assert_eq!(g.weight(q(1), q(2)), 1);
    /// ```
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut g = InteractionGraph::new(circuit.num_qubits());
        for gate in circuit.gates() {
            if !gate.kind().is_unitary() || gate.num_qubits() < 2 {
                continue;
            }
            let qs = gate.qubits();
            for i in 0..qs.len() {
                for j in i + 1..qs.len() {
                    g.add_weight(qs[i], qs[j], 1);
                }
            }
        }
        g
    }

    /// Number of qubits (vertices).
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of positive-weight edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Weight of the edge `{a, b}` (0 when absent or `a == b`).
    ///
    /// # Panics
    ///
    /// Panics when a vertex is out of range.
    pub fn weight(&self, a: QubitId, b: QubitId) -> u64 {
        let (i, j) = order(a.index(), b.index());
        assert!(j < self.num_qubits, "qubit {j} out of range (graph has {})", self.num_qubits);
        if i == j {
            return 0;
        }
        self.edges.get(&pack(i, j)).copied().unwrap_or(0)
    }

    /// Adds `w` to the edge `{a, b}`.
    ///
    /// # Panics
    ///
    /// Panics when a vertex is out of range or `a == b`.
    pub fn add_weight(&mut self, a: QubitId, b: QubitId, w: u64) {
        assert_ne!(a, b, "self-loops are not meaningful");
        let (i, j) = order(a.index(), b.index());
        assert!(j < self.num_qubits, "qubit {j} out of range (graph has {})", self.num_qubits);
        if w == 0 {
            // Entries stay strictly positive so map equality is edge-set
            // equality and `edges()` needs no filtering.
            return;
        }
        *self.edges.entry(pack(i, j)).or_insert(0) += w;
        self.index = OnceLock::new();
        self.version = fresh_version();
    }

    /// The content stamp: equal stamps imply identical edge content (the
    /// converse does not hold — rebuilding the same graph yields a fresh
    /// stamp). O(1) cache-validity check for the OEE warm start.
    pub(crate) fn version(&self) -> u64 {
        self.version
    }

    /// The CSR neighbor index, built on first use after a mutation.
    fn csr(&self) -> &CsrIndex {
        self.index.get_or_init(|| {
            let n = self.num_qubits;
            let mut edge_list: Vec<(u32, u32, u64)> =
                self.edges.iter().map(|(&key, &w)| ((key >> 32) as u32, key as u32, w)).collect();
            edge_list.sort_unstable_by_key(|&(i, j, _)| (i, j));
            let mut starts = vec![0usize; n + 1];
            for &(i, j, _) in &edge_list {
                starts[i as usize + 1] += 1;
                starts[j as usize + 1] += 1;
            }
            for q in 0..n {
                starts[q + 1] += starts[q];
            }
            let mut cursor = starts.clone();
            let mut cols = vec![0u32; edge_list.len() * 2];
            let mut weights = vec![0u64; edge_list.len() * 2];
            let mut total = 0u64;
            // Two passes keep every CSR row ascending: row q's neighbors
            // are its `< q` half (edges (i, q), appended first from the
            // (j, i)-sorted list ⇒ ascending i per row) followed by its
            // `> q` half (edges (q, j), appended from the (i, j)-sorted
            // list ⇒ ascending j per row).
            let mut by_j = edge_list.clone();
            by_j.sort_unstable_by_key(|&(i, j, _)| (j, i));
            for &(i, j, w) in &by_j {
                // Row j gains neighbor i (< j), ascending in i.
                let slot = cursor[j as usize];
                cols[slot] = i;
                weights[slot] = w;
                cursor[j as usize] += 1;
            }
            for &(i, j, w) in &edge_list {
                // Row i gains neighbor j (> i), ascending in j — all after
                // the `< i` half appended above.
                let slot = cursor[i as usize];
                cols[slot] = j;
                weights[slot] = w;
                cursor[i as usize] += 1;
                total += w;
            }
            CsrIndex { starts, cols, weights, edge_list, total }
        })
    }

    /// Iterates over `(neighbor, weight)` for every positive-weight edge at
    /// `q`, in ascending neighbor order. O(degree) via the CSR index.
    ///
    /// # Panics
    ///
    /// Panics when `q` is out of range.
    pub fn neighbors(&self, q: QubitId) -> impl Iterator<Item = (QubitId, u64)> + '_ {
        let csr = self.csr();
        let lo = csr.starts[q.index()];
        let hi = csr.starts[q.index() + 1];
        csr.cols[lo..hi]
            .iter()
            .zip(csr.weights[lo..hi].iter())
            .map(|(&c, &w)| (QubitId::new(c as usize), w))
    }

    /// The raw CSR neighbor row of `q` — `(columns, weights)` slices in
    /// ascending column order — for hot loops that walk a row in lockstep
    /// with another ascending sweep.
    pub(crate) fn neighbor_row(&self, q: QubitId) -> (&[u32], &[u64]) {
        let csr = self.csr();
        let lo = csr.starts[q.index()];
        let hi = csr.starts[q.index() + 1];
        (&csr.cols[lo..hi], &csr.weights[lo..hi])
    }

    /// Degree of `q`: the number of distinct positive-weight neighbors.
    pub fn degree(&self, q: QubitId) -> usize {
        let csr = self.csr();
        csr.starts[q.index() + 1] - csr.starts[q.index()]
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> u64 {
        self.csr().total
    }

    /// Sum of weights of edges whose endpoints live on different nodes —
    /// the quantity OEE minimizes; equal to the number of remote multi-qubit
    /// gates when the graph came from a circuit.
    pub fn cut_weight(&self, partition: &Partition) -> u64 {
        let mut cut = 0;
        for &(i, j, w) in &self.csr().edge_list {
            if partition.node_of(QubitId::new(i as usize))
                != partition.node_of(QubitId::new(j as usize))
            {
                cut += w;
            }
        }
        cut
    }

    /// The hop-weighted generalization of [`InteractionGraph::cut_weight`]:
    /// `Σ w(a, b) × distance(node_map[block(a)], node_map[block(b)])` — the
    /// EPR traffic the hardware charges when partition block `i` lands on
    /// physical node `node_map[i]`. With the identity map and
    /// [`crate::UniformDistance`] this is exactly `cut_weight`.
    ///
    /// # Panics
    ///
    /// Panics when `node_map` does not cover every partition block.
    pub fn placed_cut_weight(
        &self,
        partition: &Partition,
        node_map: &[NodeId],
        dist: &impl NodeDistance,
    ) -> u64 {
        assert!(node_map.len() >= partition.num_nodes(), "node map must cover every block");
        let mut cut = 0;
        for &(i, j, w) in &self.csr().edge_list {
            let a = partition.node_of(QubitId::new(i as usize));
            let b = partition.node_of(QubitId::new(j as usize));
            if a != b {
                cut += w * dist.node_distance(node_map[a.index()], node_map[b.index()]);
            }
        }
        cut
    }

    /// The block-level traffic matrix under `partition`:
    /// `traffic[i][j] = Σ w(a, b)` over edges with `a` in block `i` and `b`
    /// in block `j` (symmetric, zero diagonal). This is the input the
    /// node-placement stage ([`crate::place_blocks`]) optimizes over.
    pub fn block_traffic(&self, partition: &Partition) -> Vec<Vec<u64>> {
        let k = partition.num_nodes();
        let mut traffic = vec![vec![0u64; k]; k];
        for (a, b, w) in self.edges() {
            let na = partition.node_of(a).index();
            let nb = partition.node_of(b).index();
            if na != nb {
                traffic[na][nb] += w;
                traffic[nb][na] += w;
            }
        }
        traffic
    }

    /// Iterates over `(a, b, weight)` for every positive-weight edge, in
    /// ascending `(a, b)` order.
    pub fn edges(&self) -> impl Iterator<Item = (QubitId, QubitId, u64)> + '_ {
        self.csr()
            .edge_list
            .iter()
            .map(|&(i, j, w)| (QubitId::new(i as usize), QubitId::new(j as usize), w))
    }

    /// Total weight between `q` and all qubits of each node, as a dense
    /// per-node vector (scratch structure for the OEE inner loop).
    /// O(degree) via the CSR index.
    pub fn node_weights(&self, q: QubitId, partition: &Partition) -> Vec<u64> {
        let mut out = vec![0; partition.num_nodes()];
        for (other, w) in self.neighbors(q) {
            out[partition.node_of(other).index()] += w;
        }
        out
    }
}

fn order(a: usize, b: usize) -> (usize, usize) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_circuit::Gate;

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn weights_are_symmetric() {
        let mut g = InteractionGraph::new(3);
        g.add_weight(q(0), q(2), 5);
        assert_eq!(g.weight(q(0), q(2)), 5);
        assert_eq!(g.weight(q(2), q(0)), 5);
        assert_eq!(g.weight(q(0), q(1)), 0);
        assert_eq!(g.weight(q(1), q(1)), 0);
    }

    #[test]
    fn from_circuit_counts_pairs() {
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(1))).unwrap();
        c.push(Gate::crz(0.5, q(0), q(1))).unwrap();
        c.push(Gate::h(q(2))).unwrap();
        let g = InteractionGraph::from_circuit(&c);
        assert_eq!(g.weight(q(0), q(1)), 2);
        assert_eq!(g.total_weight(), 2);
    }

    #[test]
    fn cut_weight_counts_cross_node_edges() {
        let mut g = InteractionGraph::new(4);
        g.add_weight(q(0), q(1), 3); // same node under block(4,2)
        g.add_weight(q(1), q(2), 7); // cross
        let p = Partition::block(4, 2).unwrap();
        assert_eq!(g.cut_weight(&p), 7);
    }

    #[test]
    fn edges_iterator_lists_positive_edges() {
        let mut g = InteractionGraph::new(3);
        g.add_weight(q(0), q(2), 2);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(q(0), q(2), 2)]);
    }

    #[test]
    fn edges_iterate_in_ascending_pair_order() {
        let mut g = InteractionGraph::new(5);
        // Inserted out of order; iteration must still be ascending (a, b).
        g.add_weight(q(3), q(4), 1);
        g.add_weight(q(0), q(4), 2);
        g.add_weight(q(2), q(1), 3);
        g.add_weight(q(0), q(1), 4);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(q(0), q(1), 4), (q(0), q(4), 2), (q(1), q(2), 3), (q(3), q(4), 1)]);
    }

    #[test]
    fn neighbors_are_ascending_and_symmetric() {
        let mut g = InteractionGraph::new(6);
        g.add_weight(q(2), q(5), 7);
        g.add_weight(q(2), q(0), 3);
        g.add_weight(q(2), q(4), 1);
        g.add_weight(q(1), q(3), 9);
        let n2: Vec<_> = g.neighbors(q(2)).collect();
        assert_eq!(n2, vec![(q(0), 3), (q(4), 1), (q(5), 7)]);
        let n5: Vec<_> = g.neighbors(q(5)).collect();
        assert_eq!(n5, vec![(q(2), 7)]);
        assert_eq!(g.degree(q(2)), 3);
        assert_eq!(g.degree(q(3)), 1);
        assert_eq!(g.degree(q(0)), 1);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn mutation_invalidates_the_neighbor_index() {
        let mut g = InteractionGraph::new(3);
        g.add_weight(q(0), q(1), 1);
        assert_eq!(g.neighbors(q(0)).count(), 1); // forces the CSR build
        g.add_weight(q(0), q(2), 2);
        let n0: Vec<_> = g.neighbors(q(0)).collect();
        assert_eq!(n0, vec![(q(1), 1), (q(2), 2)]);
        assert_eq!(g.total_weight(), 3);
    }

    #[test]
    fn zero_weight_add_is_a_no_op() {
        let mut g = InteractionGraph::new(3);
        g.add_weight(q(0), q(1), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g, InteractionGraph::new(3), "no phantom zero-weight edge");
    }

    #[test]
    fn equality_ignores_the_lazy_index() {
        let mut a = InteractionGraph::new(4);
        a.add_weight(q(0), q(1), 2);
        let mut b = InteractionGraph::new(4);
        b.add_weight(q(1), q(0), 2);
        assert_eq!(a.neighbors(q(0)).count(), 1); // a has a built index
        assert_eq!(a, b, "index state must not affect equality");
    }

    #[test]
    fn node_weights_accumulate_per_node() {
        let mut g = InteractionGraph::new(4);
        g.add_weight(q(0), q(1), 1);
        g.add_weight(q(0), q(2), 2);
        g.add_weight(q(0), q(3), 3);
        let p = Partition::block(4, 2).unwrap();
        assert_eq!(g.node_weights(q(0), &p), vec![1, 5]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        InteractionGraph::new(2).add_weight(q(1), q(1), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_weight_rejected() {
        InteractionGraph::new(2).weight(q(0), q(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_add_rejected() {
        InteractionGraph::new(2).add_weight(q(0), q(5), 1);
    }

    #[test]
    fn placed_cut_weight_reduces_to_cut_weight_under_uniform_identity() {
        use crate::UniformDistance;
        let mut g = InteractionGraph::new(6);
        g.add_weight(q(0), q(3), 4);
        g.add_weight(q(2), q(5), 2);
        g.add_weight(q(0), q(1), 9); // same block: never cut
        let p = Partition::block(6, 3).unwrap();
        let identity: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        assert_eq!(g.placed_cut_weight(&p, &identity, &UniformDistance), g.cut_weight(&p));
    }

    #[test]
    fn placed_cut_weight_charges_hops() {
        use dqc_hardware::NetworkTopology;
        let mut g = InteractionGraph::new(6);
        g.add_weight(q(0), q(4), 3); // block 0 ↔ block 2
        let p = Partition::block(6, 3).unwrap();
        let chain = NetworkTopology::linear(3).unwrap();
        let identity: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        assert_eq!(g.placed_cut_weight(&p, &identity, &chain), 6, "3 comms × 2 hops");
        // Swapping blocks 1 and 2 makes the pair adjacent.
        let swapped = vec![NodeId::new(0), NodeId::new(2), NodeId::new(1)];
        assert_eq!(g.placed_cut_weight(&p, &swapped, &chain), 3);
    }

    #[test]
    fn block_traffic_is_symmetric_with_zero_diagonal() {
        let mut g = InteractionGraph::new(6);
        g.add_weight(q(0), q(2), 5);
        g.add_weight(q(1), q(4), 2);
        g.add_weight(q(0), q(1), 7); // intra-block: not traffic
        let p = Partition::block(6, 3).unwrap();
        let t = g.block_traffic(&p);
        assert_eq!(t[0][1], 5);
        assert_eq!(t[1][0], 5);
        assert_eq!(t[0][2], 2);
        assert_eq!(t[0][0], 0);
        let cut: u64 =
            (0..3).flat_map(|i| (i + 1..3).map(move |j| (i, j))).map(|(i, j)| t[i][j]).sum();
        assert_eq!(cut, g.cut_weight(&p), "traffic totals the cut");
    }
}
