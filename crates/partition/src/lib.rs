//! Qubit partitioning and topology-aware node placement.
//!
//! Two stacked optimization stages live here:
//!
//! 1. **OEE partitioning** ([`oee_partition`]) decides which qubits share a
//!    block, minimizing the (optionally hop-distance-weighted, see
//!    [`oee_refine_on`] and [`NodeDistance`]) edge cut of the interaction
//!    graph.
//! 2. **Node placement** ([`place_blocks`]) decides which physical
//!    interconnect node each block lands on, minimizing
//!    `Σ traffic × hops` — the EPR traffic a sparse topology actually
//!    charges.
//!
//! Both loops are greedy-exchange with deterministic, lexicographically
//! first tie-breaking, so recorded baselines reproduce bit for bit.
//!
//! Both AutoComm and every baseline in the paper map logical qubits onto
//! nodes with the *Static Overall Extreme Exchange* (OEE) strategy studied by
//! Baker et al. (“Time-sliced quantum circuit partitioning for modular
//! architectures”): starting from a balanced assignment, repeatedly apply
//! the cross-node qubit *swap* with the largest reduction in weighted edge
//! cut of the qubit interaction graph until no improving exchange exists.
//! Swapping (rather than moving) qubits keeps the partition balanced at all
//! times, matching the paper's “qubits are evenly distributed across all
//! nodes” setup (Table 2).
//!
//! ```
//! use dqc_circuit::{Circuit, Gate, QubitId};
//! use dqc_partition::{oee_partition, InteractionGraph};
//!
//! # fn main() -> Result<(), dqc_circuit::CircuitError> {
//! let q = |i| QubitId::new(i);
//! let mut c = Circuit::new(4);
//! // Qubits 0,2 talk a lot; 1,3 talk a lot.
//! for _ in 0..10 {
//!     c.push(Gate::cx(q(0), q(2)))?;
//!     c.push(Gate::cx(q(1), q(3)))?;
//! }
//! let graph = InteractionGraph::from_circuit(&c);
//! let p = oee_partition(&graph, 2)?;
//! // OEE finds the zero-cut layout {0,2} | {1,3}.
//! assert_eq!(graph.cut_weight(&p), 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod distance;
mod graph;
mod oee;
mod place;

pub use distance::{NodeDistance, UniformDistance};
pub use graph::InteractionGraph;
pub use oee::{
    oee_partition, oee_refine, oee_refine_cached, oee_refine_on, oee_refine_on_stats, OeeCache,
    OeeOptions, OeeStats,
};
pub use place::{place_blocks, place_blocks_stats, placement_cost, PlaceOptions, PlaceStats};
