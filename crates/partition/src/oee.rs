//! Overall Extreme Exchange (OEE) partitioning.

use dqc_circuit::{CircuitError, NodeId, Partition, QubitId};

use crate::InteractionGraph;

/// Tuning knobs for the OEE loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OeeOptions {
    /// Upper bound on applied exchanges (safety valve; the loop normally
    /// terminates on its own when no improving swap exists).
    pub max_exchanges: usize,
}

impl Default for OeeOptions {
    fn default() -> Self {
        OeeOptions { max_exchanges: 100_000 }
    }
}

/// Partitions the graph over `num_nodes` nodes: balanced block assignment
/// refined by [`oee_refine`].
///
/// # Errors
///
/// Returns [`CircuitError::InvalidPartition`] for impossible node counts.
pub fn oee_partition(
    graph: &InteractionGraph,
    num_nodes: usize,
) -> Result<Partition, CircuitError> {
    let initial = Partition::block(graph.num_qubits(), num_nodes)?;
    Ok(oee_refine(graph, initial, OeeOptions::default()))
}

/// Refines `partition` by repeatedly applying the cross-node qubit exchange
/// with the largest positive cut reduction (“extreme exchange”), until no
/// improving exchange exists.
///
/// Exchanges preserve per-node loads exactly, so the output is balanced iff
/// the input was. The returned partition's cut weight is never larger than
/// the input's (asserted in debug builds and property-tested).
pub fn oee_refine(
    graph: &InteractionGraph,
    mut partition: Partition,
    options: OeeOptions,
) -> Partition {
    let n = graph.num_qubits();
    if n == 0 || partition.num_nodes() < 2 {
        return partition;
    }
    debug_assert_eq!(partition.num_qubits(), n, "partition must cover the graph");

    // node_w[q][node] = total edge weight between q and the qubits of node.
    let mut node_w: Vec<Vec<u64>> =
        (0..n).map(|q| graph.node_weights(QubitId::new(q), &partition)).collect();

    let initial_cut = graph.cut_weight(&partition);
    let mut applied = 0usize;
    while applied < options.max_exchanges {
        let mut best_gain: i64 = 0;
        let mut best_pair: Option<(usize, usize)> = None;
        for a in 0..n {
            let na = partition.node_of(QubitId::new(a));
            for b in a + 1..n {
                let nb = partition.node_of(QubitId::new(b));
                if na == nb {
                    continue;
                }
                let w_ab = graph.weight(QubitId::new(a), QubitId::new(b)) as i64;
                let gain = node_w[a][nb.index()] as i64 - node_w[a][na.index()] as i64
                    + node_w[b][na.index()] as i64
                    - node_w[b][nb.index()] as i64
                    - 2 * w_ab;
                if gain > best_gain {
                    best_gain = gain;
                    best_pair = Some((a, b));
                }
            }
        }
        let Some((a, b)) = best_pair else { break };
        let qa = QubitId::new(a);
        let qb = QubitId::new(b);
        let na = partition.node_of(qa);
        let nb = partition.node_of(qb);
        partition.swap_qubits(qa, qb);
        // Update cached node weights: every neighbor of a sees a move na→nb,
        // every neighbor of b sees nb→na.
        update_after_move(graph, &mut node_w, qa, na, nb);
        update_after_move(graph, &mut node_w, qb, nb, na);
        applied += 1;
    }

    debug_assert!(graph.cut_weight(&partition) <= initial_cut, "OEE must never increase the cut");
    partition
}

fn update_after_move(
    graph: &InteractionGraph,
    node_w: &mut [Vec<u64>],
    moved: QubitId,
    from: NodeId,
    to: NodeId,
) {
    for (other, weights) in node_w.iter_mut().enumerate() {
        if other == moved.index() {
            continue;
        }
        let w = graph.weight(moved, QubitId::new(other));
        if w > 0 {
            weights[from.index()] -= w;
            weights[to.index()] += w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_circuit::{Circuit, Gate};

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn finds_zero_cut_for_separable_clusters() {
        // Clusters {0,3} and {1,2}: block partition starts with cut > 0.
        let mut g = InteractionGraph::new(4);
        g.add_weight(q(0), q(3), 10);
        g.add_weight(q(1), q(2), 10);
        let p = oee_partition(&g, 2).unwrap();
        assert_eq!(g.cut_weight(&p), 0);
        assert_eq!(p.imbalance(), 0);
    }

    #[test]
    fn never_increases_cut() {
        let mut c = Circuit::new(8);
        // A ladder: neighbors interact.
        for i in 0..7 {
            c.push(Gate::cx(q(i), q(i + 1))).unwrap();
        }
        let g = InteractionGraph::from_circuit(&c);
        let initial = Partition::round_robin(8, 2).unwrap();
        let before = g.cut_weight(&initial);
        let refined = oee_refine(&g, initial, OeeOptions::default());
        assert!(g.cut_weight(&refined) <= before);
        assert_eq!(refined.imbalance(), 0);
    }

    #[test]
    fn ladder_gets_contiguous_blocks() {
        let mut c = Circuit::new(8);
        for i in 0..7 {
            for _ in 0..3 {
                c.push(Gate::cx(q(i), q(i + 1))).unwrap();
            }
        }
        let g = InteractionGraph::from_circuit(&c);
        // Start from the worst layout.
        let refined = oee_refine(&g, Partition::round_robin(8, 2).unwrap(), OeeOptions::default());
        // Optimal cut for a ladder over two nodes is one edge = 3.
        assert_eq!(g.cut_weight(&refined), 3);
    }

    #[test]
    fn respects_exchange_cap() {
        let mut g = InteractionGraph::new(4);
        g.add_weight(q(0), q(3), 10);
        g.add_weight(q(1), q(2), 10);
        let initial = Partition::block(4, 2).unwrap();
        let before = g.cut_weight(&initial);
        let refined = oee_refine(&g, initial, OeeOptions { max_exchanges: 0 });
        assert_eq!(g.cut_weight(&refined), before);
    }

    #[test]
    fn single_node_is_identity() {
        let g = InteractionGraph::new(4);
        let p = oee_partition(&g, 1).unwrap();
        assert_eq!(p.num_nodes(), 1);
        assert_eq!(g.cut_weight(&p), 0);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = InteractionGraph::new(0);
        let p = oee_partition(&g, 1).unwrap();
        assert_eq!(p.num_qubits(), 0);
    }

    #[test]
    fn uniform_graph_keeps_balance() {
        // Complete graph: any balanced partition is optimal; OEE must not churn.
        let mut g = InteractionGraph::new(6);
        for i in 0..6 {
            for j in i + 1..6 {
                g.add_weight(q(i), q(j), 1);
            }
        }
        let p = oee_partition(&g, 3).unwrap();
        assert_eq!(p.imbalance(), 0);
        // K6 over 3 nodes of 2: internal edges = 3, cut = 15 - 3 = 12.
        assert_eq!(g.cut_weight(&p), 12);
    }
}
