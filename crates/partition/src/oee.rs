//! Overall Extreme Exchange (OEE) partitioning.

use dqc_circuit::{CircuitError, NodeId, Partition, QubitId};

use crate::{InteractionGraph, NodeDistance, UniformDistance};

/// Tuning knobs for the OEE loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OeeOptions {
    /// Upper bound on applied exchanges (safety valve; the loop normally
    /// terminates on its own when no improving swap exists).
    pub max_exchanges: usize,
}

impl Default for OeeOptions {
    fn default() -> Self {
        OeeOptions { max_exchanges: 100_000 }
    }
}

/// Partitions the graph over `num_nodes` nodes: balanced block assignment
/// refined by [`oee_refine`].
///
/// # Determinism
///
/// The result is fully deterministic across runs and platforms: the
/// exchange loop scans candidate pairs in ascending `(a, b)` qubit order
/// and only a *strictly larger* gain displaces the running best, so equal
/// gains always resolve to the lexicographically-first exchange. Placement
/// baselines recorded from this partitioner are reproducible bit for bit.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidPartition`] for impossible node counts.
pub fn oee_partition(
    graph: &InteractionGraph,
    num_nodes: usize,
) -> Result<Partition, CircuitError> {
    let initial = Partition::block(graph.num_qubits(), num_nodes)?;
    Ok(oee_refine(graph, initial, OeeOptions::default()))
}

/// Refines `partition` by repeatedly applying the cross-node qubit exchange
/// with the largest positive cut reduction (“extreme exchange”), until no
/// improving exchange exists.
///
/// Exchanges preserve per-node loads exactly, so the output is balanced iff
/// the input was. The returned partition's cut weight is never larger than
/// the input's (asserted in debug builds and property-tested). Tie-breaks
/// are deterministic — see [`oee_partition`].
pub fn oee_refine(
    graph: &InteractionGraph,
    partition: Partition,
    options: OeeOptions,
) -> Partition {
    // The uniform metric with the identity block→node map reproduces the
    // historical unweighted objective exactly (same gains, same scan order,
    // same tie-breaks), so this delegation is bit-identical to the
    // pre-placement OEE.
    let identity: Vec<NodeId> = (0..partition.num_nodes()).map(NodeId::new).collect();
    oee_refine_on(graph, partition, &identity, &UniformDistance, options)
}

/// The hop-distance-weighted generalization of [`oee_refine`]: minimizes
/// [`InteractionGraph::placed_cut_weight`] — `Σ w × distance(π(block(a)),
/// π(block(b)))` — for a fixed block→node map `node_map` and a
/// [`NodeDistance`] metric (routed hop counts when backed by a
/// `NetworkTopology`).
///
/// With [`UniformDistance`] and the identity map this is exactly the
/// historical unweighted OEE. The same determinism guarantee applies:
/// candidates scan in ascending `(a, b)` order and only strict gain
/// improvements displace the running best.
///
/// # Panics
///
/// Panics when `node_map` does not cover every partition block.
pub fn oee_refine_on(
    graph: &InteractionGraph,
    mut partition: Partition,
    node_map: &[NodeId],
    dist: &impl NodeDistance,
    options: OeeOptions,
) -> Partition {
    let n = graph.num_qubits();
    if n == 0 || partition.num_nodes() < 2 {
        return partition;
    }
    debug_assert_eq!(partition.num_qubits(), n, "partition must cover the graph");
    let k = partition.num_nodes();
    assert!(node_map.len() >= k, "node map must cover every block");

    // Block-to-block distances under the map, flattened (k is small).
    let d = |a: usize, b: usize| dist.node_distance(node_map[a], node_map[b]) as i64;

    // node_w[q][node] = total edge weight between q and the qubits of node.
    let mut node_w: Vec<Vec<u64>> =
        (0..n).map(|q| graph.node_weights(QubitId::new(q), &partition)).collect();

    let initial_cut = graph.placed_cut_weight(&partition, node_map, dist);
    let mut applied = 0usize;
    while applied < options.max_exchanges {
        let mut best_gain: i64 = 0;
        let mut best_pair: Option<(usize, usize)> = None;
        for a in 0..n {
            let na = partition.node_of(QubitId::new(a)).index();
            for b in a + 1..n {
                let nb = partition.node_of(QubitId::new(b)).index();
                if na == nb {
                    continue;
                }
                let w_ab = graph.weight(QubitId::new(a), QubitId::new(b)) as i64;
                // Swapping a (block A) and b (block B) changes the weighted
                // cut by -gain where, summing over every block C:
                //   gain = Σ_C node_w[a][C]·(d(A,C) − d(B,C))
                //        + Σ_C node_w[b][C]·(d(B,C) − d(A,C))
                //        − 2·w_ab·d(A,B)
                // (the correction removes the double-counted (a, b) edge,
                // whose own contribution is unchanged by the swap). Under
                // the uniform metric this reduces to the classic
                // node_w[a][B] − node_w[a][A] + node_w[b][A] − node_w[b][B]
                // − 2·w_ab.
                let mut gain: i64 = -2 * w_ab * d(na, nb);
                for (c, (&wa, &wb)) in node_w[a].iter().zip(node_w[b].iter()).enumerate() {
                    let delta = d(na, c) - d(nb, c);
                    if delta != 0 {
                        gain += wa as i64 * delta;
                        gain -= wb as i64 * delta;
                    }
                }
                if gain > best_gain {
                    best_gain = gain;
                    best_pair = Some((a, b));
                }
            }
        }
        let Some((a, b)) = best_pair else { break };
        let qa = QubitId::new(a);
        let qb = QubitId::new(b);
        let na = partition.node_of(qa);
        let nb = partition.node_of(qb);
        partition.swap_qubits(qa, qb);
        // Update cached node weights: every neighbor of a sees a move na→nb,
        // every neighbor of b sees nb→na.
        update_after_move(graph, &mut node_w, qa, na, nb);
        update_after_move(graph, &mut node_w, qb, nb, na);
        applied += 1;
    }

    debug_assert!(
        graph.placed_cut_weight(&partition, node_map, dist) <= initial_cut,
        "OEE must never increase the (weighted) cut"
    );
    partition
}

fn update_after_move(
    graph: &InteractionGraph,
    node_w: &mut [Vec<u64>],
    moved: QubitId,
    from: NodeId,
    to: NodeId,
) {
    for (other, weights) in node_w.iter_mut().enumerate() {
        if other == moved.index() {
            continue;
        }
        let w = graph.weight(moved, QubitId::new(other));
        if w > 0 {
            weights[from.index()] -= w;
            weights[to.index()] += w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_circuit::{Circuit, Gate};

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn finds_zero_cut_for_separable_clusters() {
        // Clusters {0,3} and {1,2}: block partition starts with cut > 0.
        let mut g = InteractionGraph::new(4);
        g.add_weight(q(0), q(3), 10);
        g.add_weight(q(1), q(2), 10);
        let p = oee_partition(&g, 2).unwrap();
        assert_eq!(g.cut_weight(&p), 0);
        assert_eq!(p.imbalance(), 0);
    }

    #[test]
    fn never_increases_cut() {
        let mut c = Circuit::new(8);
        // A ladder: neighbors interact.
        for i in 0..7 {
            c.push(Gate::cx(q(i), q(i + 1))).unwrap();
        }
        let g = InteractionGraph::from_circuit(&c);
        let initial = Partition::round_robin(8, 2).unwrap();
        let before = g.cut_weight(&initial);
        let refined = oee_refine(&g, initial, OeeOptions::default());
        assert!(g.cut_weight(&refined) <= before);
        assert_eq!(refined.imbalance(), 0);
    }

    #[test]
    fn ladder_gets_contiguous_blocks() {
        let mut c = Circuit::new(8);
        for i in 0..7 {
            for _ in 0..3 {
                c.push(Gate::cx(q(i), q(i + 1))).unwrap();
            }
        }
        let g = InteractionGraph::from_circuit(&c);
        // Start from the worst layout.
        let refined = oee_refine(&g, Partition::round_robin(8, 2).unwrap(), OeeOptions::default());
        // Optimal cut for a ladder over two nodes is one edge = 3.
        assert_eq!(g.cut_weight(&refined), 3);
    }

    #[test]
    fn respects_exchange_cap() {
        let mut g = InteractionGraph::new(4);
        g.add_weight(q(0), q(3), 10);
        g.add_weight(q(1), q(2), 10);
        let initial = Partition::block(4, 2).unwrap();
        let before = g.cut_weight(&initial);
        let refined = oee_refine(&g, initial, OeeOptions { max_exchanges: 0 });
        assert_eq!(g.cut_weight(&refined), before);
    }

    #[test]
    fn single_node_is_identity() {
        let g = InteractionGraph::new(4);
        let p = oee_partition(&g, 1).unwrap();
        assert_eq!(p.num_nodes(), 1);
        assert_eq!(g.cut_weight(&p), 0);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = InteractionGraph::new(0);
        let p = oee_partition(&g, 1).unwrap();
        assert_eq!(p.num_qubits(), 0);
    }

    #[test]
    fn uniform_graph_keeps_balance() {
        // Complete graph: any balanced partition is optimal; OEE must not churn.
        let mut g = InteractionGraph::new(6);
        for i in 0..6 {
            for j in i + 1..6 {
                g.add_weight(q(i), q(j), 1);
            }
        }
        let p = oee_partition(&g, 3).unwrap();
        assert_eq!(p.imbalance(), 0);
        // K6 over 3 nodes of 2: internal edges = 3, cut = 15 - 3 = 12.
        assert_eq!(g.cut_weight(&p), 12);
    }

    #[test]
    fn tie_breaks_are_deterministic_and_lexicographically_first() {
        // Two disjoint, perfectly symmetric improving exchanges: (0,2)↔ and
        // (1,3)↔ both gain the same. The documented guarantee picks (0, 2)
        // first on every run and platform.
        let mut g = InteractionGraph::new(4);
        g.add_weight(q(0), q(3), 5); // wants 0 with 3
        g.add_weight(q(1), q(2), 5); // wants 1 with 2
        let initial = Partition::block(4, 2).unwrap(); // {0,1} | {2,3}
        let a = oee_refine(&g, initial.clone(), OeeOptions { max_exchanges: 1 });
        let b = oee_refine(&g, initial, OeeOptions { max_exchanges: 1 });
        assert_eq!(a.assignment(), b.assignment(), "identical across runs");
        // First applied exchange is the lexicographically-first candidate:
        // swapping qubits 0 and 2 (not 1 and 3).
        assert_eq!(a.node_of(q(0)).index(), 1);
        assert_eq!(a.node_of(q(2)).index(), 0);
        assert_eq!(a.node_of(q(1)).index(), 0, "qubit 1 untouched after one exchange");
    }

    #[test]
    fn weighted_refinement_reduces_to_unweighted_under_uniform_identity() {
        for seed in 0..4u64 {
            let (c, _) = dqc_workloads::random_distributed_circuit(9, 3, 50, seed);
            let g = InteractionGraph::from_circuit(&c);
            let initial = Partition::round_robin(9, 3).unwrap();
            let identity: Vec<NodeId> = (0..3).map(NodeId::new).collect();
            let classic = oee_refine(&g, initial.clone(), OeeOptions::default());
            let weighted =
                oee_refine_on(&g, initial, &identity, &UniformDistance, OeeOptions::default());
            assert_eq!(classic.assignment(), weighted.assignment(), "seed {seed}");
        }
    }

    #[test]
    fn hop_weighted_refinement_helps_on_a_chain() {
        use dqc_hardware::NetworkTopology;
        // Qubit 0 (block 0) talks to blocks 1 and 2; qubit 5 (block 2)
        // talks only locally-ish. Under a chain, the weighted objective
        // prefers moving far-talking qubits toward the middle.
        let mut g = InteractionGraph::new(6);
        g.add_weight(q(0), q(4), 6); // block 0 ↔ block 2: 2 hops on a chain
        g.add_weight(q(2), q(4), 1);
        let chain = NetworkTopology::linear(3).unwrap();
        let identity: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        let initial = Partition::block(6, 3).unwrap();
        let before = g.placed_cut_weight(&initial, &identity, &chain);
        let refined = oee_refine_on(&g, initial.clone(), &identity, &chain, OeeOptions::default());
        let after = g.placed_cut_weight(&refined, &identity, &chain);
        assert!(after <= before, "weighted OEE must not increase the weighted cut");
        assert!(after < before, "the 2-hop pair should be pulled adjacent ({after} vs {before})");
        // The unweighted cut may differ — the objective really changed.
        assert_eq!(refined.imbalance(), initial.imbalance(), "exchanges preserve balance");
    }
}
