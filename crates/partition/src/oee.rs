//! Overall Extreme Exchange (OEE) partitioning.
//!
//! # Scaling
//!
//! The exchange loop runs in one of two modes, asserted bit-identical to
//! each other by the `placement_scale` property tests and gate bench:
//!
//! - **Gain-cached** (default): every positive-gain candidate pair is held
//!   in a deterministic best-tracking set keyed `(gain, a, b)`; after an
//!   exchange of `(a, b)` only pairs touching `a`, `b`, or one of their
//!   neighbors can change gain, so the loop delta-updates that affected
//!   set (FM-style) instead of rescanning all O(n²) pairs per applied
//!   exchange.
//! - **Full rescan** (`OeeOptions { full_rescan: true }`): the historical
//!   O(n²·k)-per-exchange reference rail, kept selectable the way the
//!   `sequential_rails` / `linear_scan_timeline` / `materialized_dag`
//!   knobs anchored earlier scaling PRs.
//!
//! The cold first-round scan (and every full-rescan round) fans row chunks
//! of the candidate space through [`dqc_circuit::par_map`], merging per-row
//! results in input order — bit-identical to the sequential scan, which
//! stays selectable via `OeeOptions { sequential_scan: true }`.

use std::cmp::Reverse;
use std::collections::{BTreeSet, HashMap};
use std::sync::Once;

use dqc_circuit::{par_map, CircuitError, NodeId, Partition, QubitId};

use crate::{InteractionGraph, NodeDistance, UniformDistance};

/// Tuning knobs for the OEE loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OeeOptions {
    /// Upper bound on applied exchanges (safety valve; the loop normally
    /// terminates on its own when no improving swap exists). When the valve
    /// trips, the returned [`OeeStats::saturated`] flag is set and a
    /// one-time process warning is printed.
    pub max_exchanges: usize,
    /// Run the historical full O(n²·k) gain rescan per applied exchange
    /// instead of the gain-cached delta updates — the reference rail the
    /// fast path is property-tested against. Assignment-identical to the
    /// default mode, only slower.
    pub full_rescan: bool,
    /// Force the cold-scan / full-rescan candidate sweeps to run
    /// sequentially even above the parallel threshold — the reference rail
    /// for the parallel row scan. Bit-identical to the parallel merge.
    pub sequential_scan: bool,
}

impl Default for OeeOptions {
    fn default() -> Self {
        OeeOptions { max_exchanges: 100_000, full_rescan: false, sequential_scan: false }
    }
}

/// Work counters from one refinement run — an execution trace, not part of
/// the optimization result (both modes produce identical partitions while
/// reporting different counter values).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OeeStats {
    /// Exchanges actually applied.
    pub exchanges: usize,
    /// Candidate gains computed (cold scans, rescans, and delta updates).
    pub scanned: u64,
    /// Candidate gains reused from the cache instead of recomputed — the
    /// work the gain cache saved relative to a full rescan. Always 0 on the
    /// `full_rescan` rail.
    pub cache_hits: u64,
    /// True when the loop stopped at [`OeeOptions::max_exchanges`] while an
    /// improving exchange still existed — the result is under-refined.
    pub saturated: bool,
}

impl OeeStats {
    /// Accumulates `other` into `self` (counters add, saturation ORs).
    pub fn merge(&mut self, other: &OeeStats) {
        self.exchanges += other.exchanges;
        self.scanned += other.scanned;
        self.cache_hits += other.cache_hits;
        self.saturated |= other.saturated;
    }
}

/// Reusable warm-start state for [`oee_refine_cached`]: the per-qubit node
/// weights and the positive-gain candidate set from the end of the previous
/// refinement. When the next call presents the same graph, assignment, and
/// block→node distances, the cold O(n²) scan is skipped entirely — the
/// refinement loop resumes exactly where it left off (trivially so when the
/// previous run terminated with no improving exchange left).
#[derive(Debug, Default)]
pub struct OeeCache {
    valid: bool,
    graph_version: u64,
    assignment: Vec<NodeId>,
    dmat: Vec<i64>,
    k: usize,
    node_w: Vec<i64>,
    mdist: Vec<i64>,
    gains: HashMap<u64, i64>,
    best: BTreeSet<(i64, Reverse<(u32, u32)>)>,
    in_gains: PairBits,
}

impl OeeCache {
    /// An empty (cold) cache.
    pub fn new() -> Self {
        OeeCache::default()
    }

    /// True when the cached state matches `(graph, partition, dmat)` and
    /// the refinement can resume without a cold scan.
    fn matches(&self, graph: &InteractionGraph, partition: &Partition, dmat: &[i64]) -> bool {
        self.valid
            && self.graph_version == graph.version()
            && self.k == partition.num_nodes()
            && self.dmat == dmat
            && self.assignment.as_slice() == partition.assignment()
    }
}

/// Partitions the graph over `num_nodes` nodes: balanced block assignment
/// refined by [`oee_refine`].
///
/// # Determinism
///
/// The result is fully deterministic across runs and platforms: the
/// exchange loop scans candidate pairs in ascending `(a, b)` qubit order
/// and only a *strictly larger* gain displaces the running best, so equal
/// gains always resolve to the lexicographically-first exchange. The
/// gain-cached mode preserves this exactly — its best-tracking set is
/// ordered by `(gain, Reverse((a, b)))`, so the maximal element is the
/// highest gain and, among equal gains, the smallest `(a, b)` pair — and
/// the parallel cold scan merges per-row winners in ascending row order.
/// Placement baselines recorded from this partitioner are reproducible bit
/// for bit.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidPartition`] for impossible node counts.
pub fn oee_partition(
    graph: &InteractionGraph,
    num_nodes: usize,
) -> Result<Partition, CircuitError> {
    let initial = Partition::block(graph.num_qubits(), num_nodes)?;
    Ok(oee_refine(graph, initial, OeeOptions::default()))
}

/// Refines `partition` by repeatedly applying the cross-node qubit exchange
/// with the largest positive cut reduction (“extreme exchange”), until no
/// improving exchange exists.
///
/// Exchanges preserve per-node loads exactly, so the output is balanced iff
/// the input was. The returned partition's cut weight is never larger than
/// the input's (asserted in debug builds and property-tested). Tie-breaks
/// are deterministic — see [`oee_partition`].
pub fn oee_refine(
    graph: &InteractionGraph,
    partition: Partition,
    options: OeeOptions,
) -> Partition {
    // The uniform metric with the identity block→node map reproduces the
    // historical unweighted objective exactly (same gains, same scan order,
    // same tie-breaks), so this delegation is bit-identical to the
    // pre-placement OEE.
    let identity: Vec<NodeId> = (0..partition.num_nodes()).map(NodeId::new).collect();
    oee_refine_on(graph, partition, &identity, &UniformDistance, options)
}

/// The hop-distance-weighted generalization of [`oee_refine`]: minimizes
/// [`InteractionGraph::placed_cut_weight`] — `Σ w × distance(π(block(a)),
/// π(block(b)))` — for a fixed block→node map `node_map` and a
/// [`NodeDistance`] metric (routed hop counts when backed by a
/// `NetworkTopology`).
///
/// With [`UniformDistance`] and the identity map this is exactly the
/// historical unweighted OEE. The same determinism guarantee applies:
/// candidates scan in ascending `(a, b)` order and only strict gain
/// improvements displace the running best.
///
/// # Panics
///
/// Panics when `node_map` does not cover every partition block.
pub fn oee_refine_on(
    graph: &InteractionGraph,
    partition: Partition,
    node_map: &[NodeId],
    dist: &impl NodeDistance,
    options: OeeOptions,
) -> Partition {
    refine_impl(graph, partition, node_map, dist, options, None).0
}

/// [`oee_refine_on`] plus the [`OeeStats`] work counters.
pub fn oee_refine_on_stats(
    graph: &InteractionGraph,
    partition: Partition,
    node_map: &[NodeId],
    dist: &impl NodeDistance,
    options: OeeOptions,
) -> (Partition, OeeStats) {
    refine_impl(graph, partition, node_map, dist, options, None)
}

/// [`oee_refine_on_stats`] with a warm-start cache: when `cache` still
/// matches `(graph, partition, node_map, dist)` — the normal case for the
/// iterative placement driver re-refining an unchanged partition — the
/// cold candidate scan is skipped and every skipped gain counts as a cache
/// hit. The refined partition is always identical to the uncached call;
/// only the work counters differ.
pub fn oee_refine_cached(
    graph: &InteractionGraph,
    partition: Partition,
    node_map: &[NodeId],
    dist: &impl NodeDistance,
    options: OeeOptions,
    cache: &mut OeeCache,
) -> (Partition, OeeStats) {
    refine_impl(graph, partition, node_map, dist, options, Some(cache))
}

#[inline]
fn pack(a: u32, b: u32) -> u64 {
    debug_assert!(a < b);
    (u64::from(a) << 32) | u64::from(b)
}

/// Membership bitset over upper-triangular qubit pairs (n²/8 bytes), kept
/// in lockstep with the `gains` map so the delta-update sweep can rule out
/// the overwhelmingly common case — a pair that is neither cached nor
/// positive — with one bit test instead of a hash probe per pair.
#[derive(Clone, Debug, Default)]
struct PairBits {
    words: Vec<u64>,
    n: usize,
}

impl PairBits {
    fn new(n: usize) -> Self {
        PairBits { words: vec![0u64; (n * n).div_ceil(64)], n }
    }

    /// Membership is stored under both orders so the delta loop's probe is
    /// always the row-major `x·n + y` bit — a sequential walk for a fixed
    /// `x` — never the cache-line-per-probe column walk.
    #[inline]
    fn contains(&self, x: u32, y: u32) -> bool {
        let bit = x as usize * self.n + y as usize;
        self.words[bit >> 6] & (1 << (bit & 63)) != 0
    }

    #[inline]
    fn insert(&mut self, lo: u32, hi: u32) {
        let bit = lo as usize * self.n + hi as usize;
        self.words[bit >> 6] |= 1 << (bit & 63);
        let mirror = hi as usize * self.n + lo as usize;
        self.words[mirror >> 6] |= 1 << (mirror & 63);
    }

    #[inline]
    fn remove(&mut self, lo: u32, hi: u32) {
        let bit = lo as usize * self.n + hi as usize;
        self.words[bit >> 6] &= !(1 << (bit & 63));
        let mirror = hi as usize * self.n + lo as usize;
        self.words[mirror >> 6] &= !(1 << (mirror & 63));
    }
}

/// Walks a qubit's ascending CSR neighbor row in lockstep with an ascending
/// sweep of partner indices, so each `weight(x, y)` is an O(1) amortized
/// pointer advance instead of a hash probe per candidate pair.
struct WeightWalker<'a> {
    cols: &'a [u32],
    weights: &'a [u64],
    idx: usize,
}

impl<'a> WeightWalker<'a> {
    fn new(graph: &'a InteractionGraph, q: QubitId) -> Self {
        let (cols, weights) = graph.neighbor_row(q);
        WeightWalker { cols, weights, idx: 0 }
    }

    /// The weight of the edge to `y`, or 0. `y` must be strictly increasing
    /// across calls on the same walker.
    #[inline]
    fn weight_to(&mut self, y: u32) -> i64 {
        while self.idx < self.cols.len() && self.cols[self.idx] < y {
            self.idx += 1;
        }
        if self.idx < self.cols.len() && self.cols[self.idx] == y {
            let w = self.weights[self.idx] as i64;
            self.idx += 1;
            return w;
        }
        0
    }
}

/// Block-to-block distances under the map, flattened (k is small).
fn build_dmat(node_map: &[NodeId], dist: &impl NodeDistance, k: usize) -> Vec<i64> {
    let mut dmat = vec![0i64; k * k];
    for a in 0..k {
        for b in 0..k {
            dmat[a * k + b] = dist.node_distance(node_map[a], node_map[b]) as i64;
        }
    }
    dmat
}

/// `node_w[q*k + node]` = total edge weight between `q` and the qubits of
/// `node`. Built in O(edges) from the CSR edge list.
fn build_node_w(graph: &InteractionGraph, partition: &Partition, k: usize) -> Vec<i64> {
    let mut node_w = vec![0i64; graph.num_qubits() * k];
    for (a, b, w) in graph.edges() {
        node_w[a.index() * k + partition.node_of(b).index()] += w as i64;
        node_w[b.index() * k + partition.node_of(a).index()] += w as i64;
    }
    node_w
}

/// The gain of exchanging `a` (block `na`) with `b` (block `nb`): the
/// weighted cut decreases by `gain` when they swap. Summing over blocks C:
///
/// ```text
/// gain = Σ_C node_w[a][C]·(d(A,C) − d(B,C))
///      + Σ_C node_w[b][C]·(d(B,C) − d(A,C))
///      − 2·w_ab·d(A,B)
/// ```
///
/// (the correction removes the double-counted `(a, b)` edge, whose own
/// contribution is unchanged by the swap). Under the uniform metric this
/// reduces to the classic `node_w[a][B] − node_w[a][A] + node_w[b][A] −
/// node_w[b][B] − 2·w_ab`. Exact i64 arithmetic — identical on every rail.
#[inline]
#[allow(clippy::too_many_arguments)]
fn pair_gain(
    node_w: &[i64],
    dmat: &[i64],
    k: usize,
    a: usize,
    b: usize,
    na: usize,
    nb: usize,
    w_ab: i64,
) -> i64 {
    let mut gain: i64 = -2 * w_ab * dmat[na * k + nb];
    let ra = &node_w[a * k..(a + 1) * k];
    let rb = &node_w[b * k..(b + 1) * k];
    let da = &dmat[na * k..(na + 1) * k];
    let db = &dmat[nb * k..(nb + 1) * k];
    for c in 0..k {
        let delta = da[c] - db[c];
        if delta != 0 {
            gain += (ra[c] - rb[c]) * delta;
        }
    }
    gain
}

/// Swaps `(a, b)` in the partition and delta-updates the node-weight rows:
/// every neighbor of `a` sees a move `na→nb`, every neighbor of `b` sees
/// `nb→na`. O(degree(a) + degree(b)).
fn apply_exchange(
    graph: &InteractionGraph,
    partition: &mut Partition,
    node_w: &mut [i64],
    k: usize,
    a: u32,
    b: u32,
) {
    let qa = QubitId::new(a as usize);
    let qb = QubitId::new(b as usize);
    let na = partition.node_of(qa).index();
    let nb = partition.node_of(qb).index();
    partition.swap_qubits(qa, qb);
    for (u, w) in graph.neighbors(qa) {
        let row = u.index() * k;
        node_w[row + na] -= w as i64;
        node_w[row + nb] += w as i64;
    }
    for (u, w) in graph.neighbors(qb) {
        let row = u.index() * k;
        node_w[row + nb] -= w as i64;
        node_w[row + na] += w as i64;
    }
}

/// `mdist[q*k + B]` = `Σ_C node_w[q][C] · d(B, C)` — the distance-weighted
/// neighbor mass `q` would see from node `B`. Turns every cached-rail gain
/// into four table loads:
///
/// ```text
/// gain(a, b) = mdist[a][A] − mdist[a][B] + mdist[b][B] − mdist[b][A]
///            − 2·w_ab·d(A, B)
/// ```
///
/// (the same exact integer sum [`pair_gain`] computes, reassociated).
fn build_mdist(node_w: &[i64], dmat: &[i64], k: usize) -> Vec<i64> {
    let n = node_w.len() / k.max(1);
    let mut mdist = vec![0i64; node_w.len()];
    for q in 0..n {
        let row = &node_w[q * k..(q + 1) * k];
        let out = &mut mdist[q * k..(q + 1) * k];
        for (b, slot) in out.iter_mut().enumerate() {
            let d = &dmat[b * k..(b + 1) * k];
            *slot = row.iter().zip(d).map(|(&w, &dist)| w * dist).sum();
        }
    }
    mdist
}

/// The gain of exchanging `lo` (node `nlo`) with `hi` (node `nhi`) read
/// from the [`build_mdist`] table — bit-identical to [`pair_gain`].
#[inline]
#[allow(clippy::too_many_arguments)]
fn mdist_gain(
    mdist: &[i64],
    dmat: &[i64],
    k: usize,
    lo: usize,
    hi: usize,
    nlo: usize,
    nhi: usize,
    w: i64,
) -> i64 {
    let ml = &mdist[lo * k..(lo + 1) * k];
    let mh = &mdist[hi * k..(hi + 1) * k];
    ml[nlo] - ml[nhi] + mh[nhi] - mh[nlo] - 2 * w * dmat[nlo * k + nhi]
}

/// [`apply_exchange`] plus the matching `mdist` delta: a neighbor whose
/// node-weight row moved mass `na→nb` sees `mdist[u][B] += w·(d(B,nb) −
/// d(B,na))` for every B. O((degree(a) + degree(b))·k).
#[allow(clippy::too_many_arguments)]
fn apply_exchange_mdist(
    graph: &InteractionGraph,
    partition: &mut Partition,
    node_w: &mut [i64],
    mdist: &mut [i64],
    dmat: &[i64],
    k: usize,
    a: u32,
    b: u32,
) {
    let qa = QubitId::new(a as usize);
    let qb = QubitId::new(b as usize);
    let na = partition.node_of(qa).index();
    let nb = partition.node_of(qb).index();
    // d(B, nb) − d(B, na) per B, hoisted out of the neighbor loops.
    let delta: Vec<i64> = (0..k).map(|bb| dmat[bb * k + nb] - dmat[bb * k + na]).collect();
    for (u, w) in graph.neighbors(qa) {
        let row = &mut mdist[u.index() * k..(u.index() + 1) * k];
        for (slot, &d) in row.iter_mut().zip(&delta) {
            *slot += w as i64 * d;
        }
    }
    for (u, w) in graph.neighbors(qb) {
        let row = &mut mdist[u.index() * k..(u.index() + 1) * k];
        for (slot, &d) in row.iter_mut().zip(&delta) {
            *slot -= w as i64 * d;
        }
    }
    apply_exchange(graph, partition, node_w, k, a, b);
}

/// Number of cross-node candidate pairs under the current node sizes
/// (invariant under exchanges, which preserve per-node loads).
fn cross_pair_count(partition: &Partition) -> u64 {
    let n = partition.num_qubits() as u64;
    let mut sizes = vec![0u64; partition.num_nodes()];
    for &node in partition.assignment() {
        sizes[node.index()] += 1;
    }
    n * (n - 1) / 2 - sizes.iter().map(|&s| s * (s - 1) / 2).sum::<u64>()
}

/// One-time process warning when an exchange loop hits its safety valve.
fn warn_saturated(what: &str, cap: usize) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        eprintln!(
            "warning: {what} stopped at its exchange safety valve \
             (max_exchanges = {cap}) with improving exchanges left; the \
             result is under-refined — raise the cap or check the \
             `saturated` work stat"
        );
    });
}

/// Scans rows of the upper-triangular candidate space: row `a` covers pairs
/// `(a, b)` for `b > a`. Fans through `par_map` (threshold-gated) unless
/// `sequential` is set; per-row results merge in ascending row order either
/// way, so output is bit-identical across both paths.
fn scan_rows<R: Send>(n: usize, sequential: bool, f: impl Fn(&u32) -> R + Sync) -> Vec<R> {
    let rows: Vec<u32> = (0..n as u32).collect();
    if sequential {
        rows.iter().map(f).collect()
    } else {
        par_map(&rows, f)
    }
}

fn refine_impl(
    graph: &InteractionGraph,
    mut partition: Partition,
    node_map: &[NodeId],
    dist: &impl NodeDistance,
    options: OeeOptions,
    cache: Option<&mut OeeCache>,
) -> (Partition, OeeStats) {
    let n = graph.num_qubits();
    let mut stats = OeeStats::default();
    if n == 0 || partition.num_nodes() < 2 {
        return (partition, stats);
    }
    debug_assert_eq!(partition.num_qubits(), n, "partition must cover the graph");
    let k = partition.num_nodes();
    assert!(node_map.len() >= k, "node map must cover every block");

    let dmat = build_dmat(node_map, dist, k);
    let initial_cut = graph.placed_cut_weight(&partition, node_map, dist);

    if options.full_rescan {
        refine_full_rescan(graph, &mut partition, &dmat, k, options, &mut stats);
        // The reference rail does not maintain the candidate set; a stale
        // cache must not outlive it.
        if let Some(cache) = cache {
            cache.valid = false;
        }
    } else {
        refine_gain_cached(graph, &mut partition, &dmat, k, options, &mut stats, cache);
    }

    if stats.saturated {
        warn_saturated("OEE refinement", options.max_exchanges);
    }
    debug_assert!(
        graph.placed_cut_weight(&partition, node_map, dist) <= initial_cut,
        "OEE must never increase the (weighted) cut"
    );
    (partition, stats)
}

/// The historical reference rail: recompute every cross-node candidate gain
/// after each applied exchange, keeping the strictly-greater / first-
/// lexicographic winner.
fn refine_full_rescan(
    graph: &InteractionGraph,
    partition: &mut Partition,
    dmat: &[i64],
    k: usize,
    options: OeeOptions,
    stats: &mut OeeStats,
) {
    let n = graph.num_qubits();
    let mut node_w = build_node_w(graph, partition, k);
    loop {
        // Per-row best: within a row, only a strictly larger gain displaces
        // the running best (ascending b ⇒ first-lexicographic); merging
        // rows in ascending order with the same strict rule reproduces the
        // historical row-major scan winner exactly.
        let assignment = partition.assignment();
        let per_row = scan_rows(n, options.sequential_scan, |&row| {
            let a = row as usize;
            let na = assignment[a].index();
            let mut walker = WeightWalker::new(graph, QubitId::new(a));
            let mut best: Option<(i64, u32)> = None;
            let mut scanned = 0u64;
            for (b, node) in assignment.iter().enumerate().skip(a + 1) {
                let w_ab = walker.weight_to(b as u32);
                let nb = node.index();
                if na == nb {
                    continue;
                }
                let gain = pair_gain(&node_w, dmat, k, a, b, na, nb, w_ab);
                scanned += 1;
                if gain > best.map_or(0, |(g, _)| g) {
                    best = Some((gain, b as u32));
                }
            }
            (best, scanned)
        });
        let mut best_gain = 0i64;
        let mut best_pair: Option<(u32, u32)> = None;
        for (a, (row_best, scanned)) in per_row.into_iter().enumerate() {
            stats.scanned += scanned;
            if let Some((gain, b)) = row_best {
                if gain > best_gain {
                    best_gain = gain;
                    best_pair = Some((a as u32, b));
                }
            }
        }
        let Some((a, b)) = best_pair else { break };
        if stats.exchanges == options.max_exchanges {
            stats.saturated = true;
            break;
        }
        apply_exchange(graph, partition, &mut node_w, k, a, b);
        stats.exchanges += 1;
    }
}

/// The gain-cached fast path: one cold scan fills the positive-candidate
/// set; each applied exchange then delta-updates only the pairs whose gain
/// can have changed — those touching the swapped qubits or one of their
/// neighbors.
#[allow(clippy::too_many_arguments)]
fn refine_gain_cached(
    graph: &InteractionGraph,
    partition: &mut Partition,
    dmat: &[i64],
    k: usize,
    options: OeeOptions,
    stats: &mut OeeStats,
    cache: Option<&mut OeeCache>,
) {
    let n = graph.num_qubits();
    let cross_pairs = cross_pair_count(partition);

    // `gains` mirrors `best`: every positive-gain cross pair, keyed by the
    // packed pair for O(1) stale-entry removal. `best.last()` is the
    // highest gain and, among equal gains, the smallest (a, b) pair —
    // exactly the sequential scan's strictly-greater / first-lexicographic
    // winner.
    let mut cache = cache;
    let warm_state = cache.as_deref_mut().and_then(|c| {
        c.matches(graph, partition, dmat).then(|| {
            (
                std::mem::take(&mut c.node_w),
                std::mem::take(&mut c.mdist),
                std::mem::take(&mut c.gains),
                std::mem::take(&mut c.best),
                std::mem::take(&mut c.in_gains),
            )
        })
    });
    let (mut node_w, mut mdist, mut gains, mut best, mut in_gains) = if let Some(state) = warm_state
    {
        // Every candidate gain was reused instead of re-derived.
        stats.cache_hits += cross_pairs;
        state
    } else {
        let node_w = build_node_w(graph, partition, k);
        let mdist = build_mdist(&node_w, dmat, k);
        let mut gains = HashMap::new();
        let mut best = BTreeSet::new();
        let mut in_gains = PairBits::new(n);
        let assignment = partition.assignment();
        let per_row = scan_rows(n, options.sequential_scan, |&row| {
            let a = row as usize;
            let na = assignment[a].index();
            let mut walker = WeightWalker::new(graph, QubitId::new(a));
            let mut positives: Vec<(u32, i64)> = Vec::new();
            let mut scanned = 0u64;
            for (b, node) in assignment.iter().enumerate().skip(a + 1) {
                let w_ab = walker.weight_to(b as u32);
                let nb = node.index();
                if na == nb {
                    continue;
                }
                let gain = mdist_gain(&mdist, dmat, k, a, b, na, nb, w_ab);
                scanned += 1;
                if gain > 0 {
                    positives.push((b as u32, gain));
                }
            }
            (positives, scanned)
        });
        for (a, (positives, scanned)) in per_row.into_iter().enumerate() {
            stats.scanned += scanned;
            for (b, gain) in positives {
                gains.insert(pack(a as u32, b), gain);
                best.insert((gain, Reverse((a as u32, b))));
                in_gains.insert(a as u32, b);
            }
        }
        (node_w, mdist, gains, best, in_gains)
    };

    // Per-exchange scratch (reset after each exchange): affected-set
    // membership marks, the net edge weight of each qubit toward the
    // swapped pair (`cx[u] = w(u, a) − w(u, b)`), and the per-node gain
    // shift table.
    let mut in_affected = vec![false; n];
    let mut cx = vec![0i64; n];
    let mut shift = vec![0i64; k];

    while let Some(&(_, Reverse((a, b)))) = best.last() {
        if stats.exchanges == options.max_exchanges {
            stats.saturated = true;
            break;
        }
        let qa = QubitId::new(a as usize);
        let qb = QubitId::new(b as usize);
        // Pre-swap homes of the exchanged pair, and the per-node distance
        // delta their neighbors' mdist rows move by.
        let na = partition.node_of(qa).index();
        let nb = partition.node_of(qb).index();
        let delta: Vec<i64> = (0..k).map(|bb| dmat[bb * k + nb] - dmat[bb * k + na]).collect();
        apply_exchange_mdist(graph, partition, &mut node_w, &mut mdist, dmat, k, a, b);
        stats.exchanges += 1;

        // Gains can only have changed for pairs with an endpoint in
        // S = {a, b} ∪ N(a) ∪ N(b): the swap changes node_of for a and b
        // and the node-weight rows of their neighbors; every other pair's
        // gain inputs are untouched.
        let mut affected: Vec<u32> = Vec::with_capacity(2 + graph.degree(qa) + graph.degree(qb));
        affected.push(a);
        affected.push(b);
        for (u, w) in graph.neighbors(qa) {
            affected.push(u.index() as u32);
            cx[u.index()] += w as i64;
        }
        for (u, w) in graph.neighbors(qb) {
            affected.push(u.index() as u32);
            cx[u.index()] -= w as i64;
        }
        affected.sort_unstable();
        affected.dedup();
        for &x in &affected {
            in_affected[x as usize] = true;
        }

        let assignment = partition.assignment();
        let mut recomputed = 0u64;

        // Pass 1: pairs inside the affected set — both endpoints' gain
        // inputs moved, so recompute fully, once per pair from the smaller
        // endpoint (`affected` is sorted, so a per-x walker sees ascending
        // partners).
        for (i, &x) in affected.iter().enumerate() {
            let xi = x as usize;
            let nx = assignment[xi].index();
            let mx = &mdist[xi * k..(xi + 1) * k];
            let mx_nx = mx[nx];
            let dx = &dmat[nx * k..(nx + 1) * k];
            let mut walker = WeightWalker::new(graph, QubitId::new(xi));
            for &y in &affected[i + 1..] {
                let w = walker.weight_to(y);
                if in_gains.contains(x, y) {
                    in_gains.remove(x, y);
                    let old = gains.remove(&pack(x, y)).expect("bitset mirrors gains");
                    best.remove(&(old, Reverse((x, y))));
                }
                let yi = y as usize;
                let ny = assignment[yi].index();
                if nx == ny {
                    continue;
                }
                // The endpoint-symmetric [`mdist_gain`] sum (NodeDistance
                // guarantees d(A, B) = d(B, A)), so no lo/hi reorder here
                // or below.
                let my = &mdist[yi * k..(yi + 1) * k];
                let gain = mx_nx - mx[ny] + my[ny] - my[nx] - 2 * w * dx[ny];
                recomputed += 1;
                if gain > 0 {
                    gains.insert(pack(x, y), gain);
                    best.insert((gain, Reverse((x, y))));
                    in_gains.insert(x, y);
                }
            }
        }

        // Pass 2: pairs (x, y) with x affected, y outside the set. For the
        // swapped qubits themselves the home node changed — recompute the
        // whole row. For a pure neighbor `x`, only its mdist row moved, by
        // exactly `cx[x]·delta[B]` per node B, so the gain of (x, y)
        // shifts by the per-node constant `cx[x]·(delta[nx] − delta[ny])`:
        // cached candidates update by addition, non-candidates can only
        // become positive where the shift is positive, and nodes with a
        // zero shift (most of them under near-uniform metrics) are skipped
        // outright — all bit-identical to a full recompute, since gains
        // are linear in the mdist row.
        for &x in &affected {
            let xi = x as usize;
            let nx = assignment[xi].index();
            let mx = &mdist[xi * k..(xi + 1) * k];
            let mx_nx = mx[nx];
            let dx = &dmat[nx * k..(nx + 1) * k];
            let mut walker = WeightWalker::new(graph, QubitId::new(xi));
            if x == a || x == b {
                for y in 0..n as u32 {
                    let w = walker.weight_to(y);
                    if in_affected[y as usize] {
                        continue;
                    }
                    if in_gains.contains(x, y) {
                        let (lo, hi) = if x < y { (x, y) } else { (y, x) };
                        in_gains.remove(lo, hi);
                        let old = gains.remove(&pack(lo, hi)).expect("bitset mirrors gains");
                        best.remove(&(old, Reverse((lo, hi))));
                    }
                    let yi = y as usize;
                    let ny = assignment[yi].index();
                    if nx == ny {
                        continue;
                    }
                    let my = &mdist[yi * k..(yi + 1) * k];
                    let gain = mx_nx - mx[ny] + my[ny] - my[nx] - 2 * w * dx[ny];
                    recomputed += 1;
                    if gain > 0 {
                        let (lo, hi) = if x < y { (x, y) } else { (y, x) };
                        gains.insert(pack(lo, hi), gain);
                        best.insert((gain, Reverse((lo, hi))));
                        in_gains.insert(lo, hi);
                    }
                }
                continue;
            }
            // `shift[nx] = 0` by construction, which is also correct: a
            // same-node pair can never be (or have been) a candidate.
            let c = cx[xi];
            for (bb, s) in shift.iter_mut().enumerate() {
                *s = c * (delta[nx] - delta[bb]);
            }
            if shift.iter().all(|&s| s == 0) {
                continue;
            }
            for y in 0..n as u32 {
                let yi = y as usize;
                if in_affected[yi] {
                    continue;
                }
                let ny = assignment[yi].index();
                let s = shift[ny];
                if s == 0 {
                    continue;
                }
                recomputed += 1;
                if in_gains.contains(x, y) {
                    let (lo, hi) = if x < y { (x, y) } else { (y, x) };
                    let old = gains.remove(&pack(lo, hi)).expect("bitset mirrors gains");
                    best.remove(&(old, Reverse((lo, hi))));
                    let gain = old + s;
                    if gain > 0 {
                        gains.insert(pack(lo, hi), gain);
                        best.insert((gain, Reverse((lo, hi))));
                    } else {
                        in_gains.remove(lo, hi);
                    }
                } else if s > 0 {
                    // Previously non-positive; only a positive shift can
                    // push it across zero.
                    let w = walker.weight_to(y);
                    let my = &mdist[yi * k..(yi + 1) * k];
                    let gain = mx_nx - mx[ny] + my[ny] - my[nx] - 2 * w * dx[ny];
                    if gain > 0 {
                        let (lo, hi) = if x < y { (x, y) } else { (y, x) };
                        gains.insert(pack(lo, hi), gain);
                        best.insert((gain, Reverse((lo, hi))));
                        in_gains.insert(lo, hi);
                    }
                }
            }
        }
        stats.scanned += recomputed;
        // Every cross pair outside the affected sweep kept its cached gain.
        stats.cache_hits += cross_pairs.saturating_sub(recomputed);
        for &x in &affected {
            in_affected[x as usize] = false;
            cx[x as usize] = 0;
        }
    }

    if let Some(cache) = cache {
        cache.valid = true;
        cache.graph_version = graph.version();
        cache.assignment = partition.assignment().to_vec();
        cache.dmat = dmat.to_vec();
        cache.k = k;
        cache.node_w = node_w;
        cache.mdist = mdist;
        cache.gains = gains;
        cache.best = best;
        cache.in_gains = in_gains;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_circuit::{Circuit, Gate};

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    /// Every option combination the equivalence tests sweep.
    fn all_modes() -> Vec<OeeOptions> {
        let mut modes = Vec::new();
        for full_rescan in [false, true] {
            for sequential_scan in [false, true] {
                modes.push(OeeOptions { full_rescan, sequential_scan, ..Default::default() });
            }
        }
        modes
    }

    #[test]
    fn finds_zero_cut_for_separable_clusters() {
        // Clusters {0,3} and {1,2}: block partition starts with cut > 0.
        let mut g = InteractionGraph::new(4);
        g.add_weight(q(0), q(3), 10);
        g.add_weight(q(1), q(2), 10);
        let p = oee_partition(&g, 2).unwrap();
        assert_eq!(g.cut_weight(&p), 0);
        assert_eq!(p.imbalance(), 0);
    }

    #[test]
    fn never_increases_cut() {
        let mut c = Circuit::new(8);
        // A ladder: neighbors interact.
        for i in 0..7 {
            c.push(Gate::cx(q(i), q(i + 1))).unwrap();
        }
        let g = InteractionGraph::from_circuit(&c);
        let initial = Partition::round_robin(8, 2).unwrap();
        let before = g.cut_weight(&initial);
        let refined = oee_refine(&g, initial, OeeOptions::default());
        assert!(g.cut_weight(&refined) <= before);
        assert_eq!(refined.imbalance(), 0);
    }

    #[test]
    fn ladder_gets_contiguous_blocks() {
        let mut c = Circuit::new(8);
        for i in 0..7 {
            for _ in 0..3 {
                c.push(Gate::cx(q(i), q(i + 1))).unwrap();
            }
        }
        let g = InteractionGraph::from_circuit(&c);
        // Start from the worst layout.
        let refined = oee_refine(&g, Partition::round_robin(8, 2).unwrap(), OeeOptions::default());
        // Optimal cut for a ladder over two nodes is one edge = 3.
        assert_eq!(g.cut_weight(&refined), 3);
    }

    #[test]
    fn respects_exchange_cap() {
        let mut g = InteractionGraph::new(4);
        g.add_weight(q(0), q(3), 10);
        g.add_weight(q(1), q(2), 10);
        let initial = Partition::block(4, 2).unwrap();
        let before = g.cut_weight(&initial);
        let refined =
            oee_refine(&g, initial, OeeOptions { max_exchanges: 0, ..Default::default() });
        assert_eq!(g.cut_weight(&refined), before);
    }

    #[test]
    fn saturation_is_reported_on_both_rails() {
        let mut g = InteractionGraph::new(4);
        g.add_weight(q(0), q(3), 10);
        g.add_weight(q(1), q(2), 10);
        let identity: Vec<NodeId> = (0..2).map(NodeId::new).collect();
        for full_rescan in [false, true] {
            let capped = OeeOptions { max_exchanges: 0, full_rescan, ..Default::default() };
            let (_, stats) = oee_refine_on_stats(
                &g,
                Partition::block(4, 2).unwrap(),
                &identity,
                &UniformDistance,
                capped,
            );
            assert!(
                stats.saturated,
                "cap 0 with an improving swap left (full_rescan={full_rescan})"
            );
            assert_eq!(stats.exchanges, 0);
            let (_, stats) = oee_refine_on_stats(
                &g,
                Partition::block(4, 2).unwrap(),
                &identity,
                &UniformDistance,
                OeeOptions { full_rescan, ..Default::default() },
            );
            assert!(!stats.saturated, "natural termination is not saturation");
            assert!(stats.exchanges > 0);
        }
    }

    #[test]
    fn single_node_is_identity() {
        let g = InteractionGraph::new(4);
        let p = oee_partition(&g, 1).unwrap();
        assert_eq!(p.num_nodes(), 1);
        assert_eq!(g.cut_weight(&p), 0);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = InteractionGraph::new(0);
        let p = oee_partition(&g, 1).unwrap();
        assert_eq!(p.num_qubits(), 0);
    }

    #[test]
    fn uniform_graph_keeps_balance() {
        // Complete graph: any balanced partition is optimal; OEE must not churn.
        let mut g = InteractionGraph::new(6);
        for i in 0..6 {
            for j in i + 1..6 {
                g.add_weight(q(i), q(j), 1);
            }
        }
        let p = oee_partition(&g, 3).unwrap();
        assert_eq!(p.imbalance(), 0);
        // K6 over 3 nodes of 2: internal edges = 3, cut = 15 - 3 = 12.
        assert_eq!(g.cut_weight(&p), 12);
    }

    #[test]
    fn tie_breaks_are_deterministic_and_lexicographically_first() {
        // Two disjoint, perfectly symmetric improving exchanges: (0,2)↔ and
        // (1,3)↔ both gain the same. The documented guarantee picks (0, 2)
        // first on every run and platform — on every rail.
        let mut g = InteractionGraph::new(4);
        g.add_weight(q(0), q(3), 5); // wants 0 with 3
        g.add_weight(q(1), q(2), 5); // wants 1 with 2
        let initial = Partition::block(4, 2).unwrap(); // {0,1} | {2,3}
        for mut options in all_modes() {
            options.max_exchanges = 1;
            let a = oee_refine(&g, initial.clone(), options);
            let b = oee_refine(&g, initial.clone(), options);
            assert_eq!(a.assignment(), b.assignment(), "identical across runs ({options:?})");
            // First applied exchange is the lexicographically-first
            // candidate: swapping qubits 0 and 2 (not 1 and 3).
            assert_eq!(a.node_of(q(0)).index(), 1, "{options:?}");
            assert_eq!(a.node_of(q(2)).index(), 0, "{options:?}");
            assert_eq!(
                a.node_of(q(1)).index(),
                0,
                "qubit 1 untouched after one exchange ({options:?})"
            );
        }
    }

    #[test]
    fn weighted_refinement_reduces_to_unweighted_under_uniform_identity() {
        for seed in 0..4u64 {
            let (c, _) = dqc_workloads::random_distributed_circuit(9, 3, 50, seed);
            let g = InteractionGraph::from_circuit(&c);
            let initial = Partition::round_robin(9, 3).unwrap();
            let identity: Vec<NodeId> = (0..3).map(NodeId::new).collect();
            let classic = oee_refine(&g, initial.clone(), OeeOptions::default());
            let weighted =
                oee_refine_on(&g, initial, &identity, &UniformDistance, OeeOptions::default());
            assert_eq!(classic.assignment(), weighted.assignment(), "seed {seed}");
        }
    }

    #[test]
    fn gain_cached_matches_full_rescan_exchange_for_exchange() {
        // Same assignment AND same exchange count at every cap value: the
        // two rails must walk the identical exchange sequence.
        for seed in 0..6u64 {
            let (c, _) = dqc_workloads::random_distributed_circuit(12, 3, 80, seed);
            let g = InteractionGraph::from_circuit(&c);
            let identity: Vec<NodeId> = (0..3).map(NodeId::new).collect();
            for cap in [0, 1, 2, 5, usize::MAX] {
                let initial = Partition::round_robin(12, 3).unwrap();
                let (fast, fast_stats) = oee_refine_on_stats(
                    &g,
                    initial.clone(),
                    &identity,
                    &UniformDistance,
                    OeeOptions { max_exchanges: cap, ..Default::default() },
                );
                let (slow, slow_stats) = oee_refine_on_stats(
                    &g,
                    initial,
                    &identity,
                    &UniformDistance,
                    OeeOptions { max_exchanges: cap, full_rescan: true, ..Default::default() },
                );
                assert_eq!(fast.assignment(), slow.assignment(), "seed {seed} cap {cap}");
                assert_eq!(fast_stats.exchanges, slow_stats.exchanges, "seed {seed} cap {cap}");
                assert_eq!(fast_stats.saturated, slow_stats.saturated, "seed {seed} cap {cap}");
                assert_eq!(slow_stats.cache_hits, 0, "reference rail never caches");
            }
        }
    }

    #[test]
    fn warm_cache_resumes_without_rescanning() {
        let (c, _) = dqc_workloads::random_distributed_circuit(12, 3, 80, 7);
        let g = InteractionGraph::from_circuit(&c);
        let identity: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        let initial = Partition::round_robin(12, 3).unwrap();
        let mut cache = OeeCache::new();
        let (first, first_stats) = oee_refine_cached(
            &g,
            initial.clone(),
            &identity,
            &UniformDistance,
            OeeOptions::default(),
            &mut cache,
        );
        assert!(first_stats.scanned > 0, "cold call scans");
        // Re-refining the refined partition: the cache matches, no
        // improving exchange exists, so zero scans and all hits.
        let (second, second_stats) = oee_refine_cached(
            &g,
            first.clone(),
            &identity,
            &UniformDistance,
            OeeOptions::default(),
            &mut cache,
        );
        assert_eq!(second.assignment(), first.assignment());
        assert_eq!(second_stats.scanned, 0, "warm resume skips the cold scan");
        assert_eq!(second_stats.exchanges, 0);
        assert!(second_stats.cache_hits > 0);
        // And the warm result is identical to an uncached run.
        let uncached =
            oee_refine_on(&g, first.clone(), &identity, &UniformDistance, OeeOptions::default());
        assert_eq!(second.assignment(), uncached.assignment());
    }

    #[test]
    fn stale_cache_is_detected_and_rebuilt() {
        let (c, _) = dqc_workloads::random_distributed_circuit(12, 3, 80, 3);
        let g = InteractionGraph::from_circuit(&c);
        let identity: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        let mut cache = OeeCache::new();
        let (refined, _) = oee_refine_cached(
            &g,
            Partition::round_robin(12, 3).unwrap(),
            &identity,
            &UniformDistance,
            OeeOptions::default(),
            &mut cache,
        );
        // A different starting partition invalidates the cached assignment;
        // the result must match the uncached call exactly.
        let other = Partition::block(12, 3).unwrap();
        let (from_stale, stats) = oee_refine_cached(
            &g,
            other.clone(),
            &identity,
            &UniformDistance,
            OeeOptions::default(),
            &mut cache,
        );
        let fresh = oee_refine_on(&g, other, &identity, &UniformDistance, OeeOptions::default());
        assert_eq!(from_stale.assignment(), fresh.assignment());
        assert!(stats.scanned > 0, "stale cache forces a cold scan");
        let _ = refined;
    }

    #[test]
    fn hop_weighted_refinement_helps_on_a_chain() {
        use dqc_hardware::NetworkTopology;
        // Qubit 0 (block 0) talks to blocks 1 and 2; qubit 5 (block 2)
        // talks only locally-ish. Under a chain, the weighted objective
        // prefers moving far-talking qubits toward the middle.
        let mut g = InteractionGraph::new(6);
        g.add_weight(q(0), q(4), 6); // block 0 ↔ block 2: 2 hops on a chain
        g.add_weight(q(2), q(4), 1);
        let chain = NetworkTopology::linear(3).unwrap();
        let identity: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        let initial = Partition::block(6, 3).unwrap();
        let before = g.placed_cut_weight(&initial, &identity, &chain);
        let refined = oee_refine_on(&g, initial.clone(), &identity, &chain, OeeOptions::default());
        let after = g.placed_cut_weight(&refined, &identity, &chain);
        assert!(after <= before, "weighted OEE must not increase the weighted cut");
        assert!(after < before, "the 2-hop pair should be pulled adjacent ({after} vs {before})");
        // The unweighted cut may differ — the objective really changed.
        assert_eq!(refined.imbalance(), initial.imbalance(), "exchanges preserve balance");
    }
}
