//! Node placement: mapping partition blocks onto physical topology nodes.
//!
//! OEE decides *which qubits share a block*; on a sparse interconnect the
//! compiler must also decide *which physical node each block lands on*,
//! because the hardware charges `comms × hops` and the same cut costs
//! different amounts of EPR traffic under different block→node maps. This
//! module optimizes that map: given a block-level traffic matrix and a
//! [`NodeDistance`], it minimizes `Σ traffic[i][j] × distance(π(i), π(j))`
//! with a greedy seed followed by pairwise-exchange refinement — the same
//! shape as OEE itself, one level up.
//!
//! # Determinism
//!
//! Like [`crate::oee_refine`], every loop scans candidates in a fixed
//! ascending order and accepts only *strict* improvements, so ties resolve
//! to the lexicographically-first candidate and the result is identical
//! across runs and platforms.

use dqc_circuit::NodeId;

use crate::NodeDistance;

/// Tuning knobs for the placement exchange loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlaceOptions {
    /// Upper bound on applied exchanges (safety valve; the loop normally
    /// terminates when no improving swap exists). When the valve trips,
    /// [`PlaceStats::saturated`] is set and a one-time process warning is
    /// printed.
    pub max_exchanges: usize,
}

impl Default for PlaceOptions {
    fn default() -> Self {
        PlaceOptions { max_exchanges: 10_000 }
    }
}

/// Work counters from one placement run — an execution trace, not part of
/// the optimization result.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlaceStats {
    /// Block swaps actually applied during refinement.
    pub exchanges: usize,
    /// True when refinement stopped at [`PlaceOptions::max_exchanges`]
    /// while an improving swap still existed — the map is under-refined.
    pub saturated: bool,
}

impl PlaceStats {
    /// Accumulates `other` into `self` (counters add, saturation ORs).
    pub fn merge(&mut self, other: &PlaceStats) {
        self.exchanges += other.exchanges;
        self.saturated |= other.saturated;
    }
}

/// `Σ traffic[i][j] × distance(node_map[i], node_map[j])` over `i < j` —
/// the hop-weighted EPR cost of a block→node map. Only nonzero traffic
/// entries reach the distance metric, so the cost of a sparse matrix is
/// proportional to its populated pairs.
///
/// # Panics
///
/// Panics when `node_map` is shorter than the traffic matrix.
pub fn placement_cost(traffic: &[Vec<u64>], node_map: &[NodeId], dist: &impl NodeDistance) -> u64 {
    let mut cost = 0u64;
    for (i, row) in traffic.iter().enumerate() {
        for (j, &w) in row.iter().enumerate().skip(i + 1).filter(|&(_, &w)| w > 0) {
            cost += w * dist.node_distance(node_map[i], node_map[j]);
        }
    }
    cost
}

/// One-time process warning when the placement loop hits its safety valve.
fn warn_saturated(cap: usize) {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!(
            "warning: block placement stopped at its exchange safety valve \
             (max_exchanges = {cap}) with improving swaps left; the map is \
             under-refined — raise the cap or check the `saturated` work stat"
        );
    });
}

/// Maps `k` partition blocks onto `num_nodes ≥ k` physical nodes,
/// minimizing `Σ traffic × distance`.
///
/// Greedy seed: blocks are placed in descending-total-traffic order (ties:
/// lower block index first); each takes the free node minimizing the
/// traffic-weighted distance to the already-placed blocks (ties: the node
/// with the smallest total distance to all nodes — most central — then the
/// lowest index). Pairwise-exchange refinement then repeatedly applies the
/// strictly-improving block swap with the largest cost reduction until none
/// exists.
///
/// The identity map is always *evaluated* implicitly: the exchange loop
/// never accepts a non-improving swap, so on metrics where placement cannot
/// help (all-to-all: every distinct pair is 1 hop) the greedy seed's cost
/// already equals the optimum and the refinement is a no-op.
///
/// # Panics
///
/// Panics when `traffic` is not square or `num_nodes < traffic.len()`.
pub fn place_blocks(
    traffic: &[Vec<u64>],
    num_nodes: usize,
    dist: &impl NodeDistance,
    options: PlaceOptions,
) -> Vec<NodeId> {
    place_blocks_stats(traffic, num_nodes, dist, options).0
}

/// [`place_blocks`] plus the [`PlaceStats`] work counters.
pub fn place_blocks_stats(
    traffic: &[Vec<u64>],
    num_nodes: usize,
    dist: &impl NodeDistance,
    options: PlaceOptions,
) -> (Vec<NodeId>, PlaceStats) {
    let k = traffic.len();
    let mut stats = PlaceStats::default();
    assert!(traffic.iter().all(|row| row.len() == k), "traffic matrix must be square");
    assert!(num_nodes >= k, "need at least {k} physical nodes, have {num_nodes}");
    if k == 0 {
        return (Vec::new(), stats);
    }

    // Sparse per-block adjacency: block-level traffic matrices are mostly
    // zeros on sparse interconnect workloads, and both the greedy seed and
    // the swap-delta loop only ever need the populated pairs. Ascending
    // neighbor order keeps every sum in the historical evaluation order.
    let adj: Vec<Vec<(usize, u64)>> = traffic
        .iter()
        .enumerate()
        .map(|(i, row)| {
            row.iter()
                .enumerate()
                .filter(|&(m, &w)| m != i && w > 0)
                .map(|(m, &w)| (m, w))
                .collect()
        })
        .collect();

    // Node centrality: total distance to every other node (ascending =
    // more central). Used to seed the first block and to break ties.
    let centrality: Vec<u64> = (0..num_nodes)
        .map(|a| (0..num_nodes).map(|b| dist.node_distance(NodeId::new(a), NodeId::new(b))).sum())
        .collect();

    // Blocks in descending total-traffic order, ties to the lower index.
    let mut order: Vec<usize> = (0..k).collect();
    let totals: Vec<u64> = traffic.iter().map(|row| row.iter().sum()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(totals[i]), i));

    const UNPLACED: usize = usize::MAX;
    let mut node_of: Vec<usize> = vec![UNPLACED; k];
    let mut free: Vec<bool> = vec![true; num_nodes];
    for &blk in &order {
        let mut best: Option<(u64, u64, usize)> = None; // (attraction cost, centrality, node)
        for node in 0..num_nodes {
            if !free[node] {
                continue;
            }
            let cost: u64 = adj[blk]
                .iter()
                .filter(|&&(other, _)| node_of[other] != UNPLACED)
                .map(|&(other, w)| {
                    w * dist.node_distance(NodeId::new(node), NodeId::new(node_of[other]))
                })
                .sum();
            let key = (cost, centrality[node], node);
            if best.map(|b| key < b).unwrap_or(true) {
                best = Some(key);
            }
        }
        let (_, _, node) = best.expect("num_nodes >= k leaves a free node");
        node_of[blk] = node;
        free[node] = false;
    }

    let mut node_map: Vec<NodeId> = node_of.into_iter().map(NodeId::new).collect();

    // Pairwise-exchange refinement (strict improvement only). Each
    // candidate swap is scored by its cost *delta* over the populated
    // neighbor lists of the two swapped blocks — only pairs involving them
    // change, and the (i, j) pair itself is invariant under a symmetric
    // metric — so a candidate costs O(degree(i) + degree(j)), not O(k),
    // and a round O(k·edges), not the O(k⁴) of re-evaluating the full
    // matrix per candidate. Summing i's neighbors then j's is the same
    // exact i64 arithmetic as the historical interleaved m-scan.
    let swap_delta = |node_map: &[NodeId], i: usize, j: usize| -> i64 {
        let (ni, nj) = (node_map[i], node_map[j]);
        let mut delta = 0i64;
        for &(m, w) in &adj[i] {
            if m == j {
                continue;
            }
            let nm = node_map[m];
            delta +=
                w as i64 * (dist.node_distance(nj, nm) as i64 - dist.node_distance(ni, nm) as i64);
        }
        for &(m, w) in &adj[j] {
            if m == i {
                continue;
            }
            let nm = node_map[m];
            delta +=
                w as i64 * (dist.node_distance(ni, nm) as i64 - dist.node_distance(nj, nm) as i64);
        }
        delta
    };
    loop {
        let mut best: Option<(i64, usize, usize)> = None;
        for i in 0..k {
            for j in (i + 1)..k {
                let delta = swap_delta(&node_map, i, j);
                if delta < 0 && best.map(|(b, _, _)| delta < b).unwrap_or(true) {
                    best = Some((delta, i, j));
                }
            }
        }
        let Some((_, i, j)) = best else { break };
        if stats.exchanges == options.max_exchanges {
            stats.saturated = true;
            break;
        }
        node_map.swap(i, j);
        stats.exchanges += 1;
    }
    if stats.saturated {
        warn_saturated(options.max_exchanges);
    }
    (node_map, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniformDistance;
    use dqc_hardware::NetworkTopology;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// A traffic matrix from an upper-triangular edge list.
    fn traffic(k: usize, edges: &[(usize, usize, u64)]) -> Vec<Vec<u64>> {
        let mut t = vec![vec![0; k]; k];
        for &(a, b, w) in edges {
            t[a][b] += w;
            t[b][a] += w;
        }
        t
    }

    #[test]
    fn heavy_pairs_land_on_adjacent_nodes() {
        // Blocks 0 and 3 talk a lot; 1 and 2 talk a lot. On a 4-chain the
        // identity map pays 3 + 1 hops; the optimum pairs them up adjacent.
        let t = traffic(4, &[(0, 3, 10), (1, 2, 10), (0, 1, 1)]);
        let chain = NetworkTopology::linear(4).unwrap();
        let map = place_blocks(&t, 4, &chain, PlaceOptions::default());
        let identity: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        let placed = placement_cost(&t, &map, &chain);
        assert!(placed < placement_cost(&t, &identity, &chain));
        assert_eq!(chain.node_distance(map[0], map[3]), 1, "heavy pair 0-3 adjacent");
        assert_eq!(chain.node_distance(map[1], map[2]), 1, "heavy pair 1-2 adjacent");
    }

    #[test]
    fn all_to_all_placement_is_cost_invariant() {
        let t = traffic(4, &[(0, 1, 5), (2, 3, 7), (0, 3, 2)]);
        let full = NetworkTopology::all_to_all(4);
        let map = place_blocks(&t, 4, &full, PlaceOptions::default());
        let identity: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        assert_eq!(
            placement_cost(&t, &map, &full),
            placement_cost(&t, &identity, &full),
            "every permutation costs the same at one hop"
        );
    }

    #[test]
    fn uniform_distance_cost_equals_cut() {
        let t = traffic(3, &[(0, 1, 4), (1, 2, 6)]);
        let identity: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        assert_eq!(placement_cost(&t, &identity, &UniformDistance), 10);
    }

    #[test]
    fn star_placement_centers_the_hub_block() {
        // Block 2 talks to everyone; on a star it must take the hub (node 0).
        let t = traffic(4, &[(2, 0, 5), (2, 1, 5), (2, 3, 5)]);
        let star = NetworkTopology::star(4).unwrap();
        let map = place_blocks(&t, 4, &star, PlaceOptions::default());
        assert_eq!(map[2], n(0), "the all-talking block takes the hub");
        let cost = placement_cost(&t, &map, &star);
        assert_eq!(cost, 15, "every spoke pair is one hop from the hub");
    }

    #[test]
    fn placement_is_a_permutation_and_deterministic() {
        let t = traffic(5, &[(0, 4, 3), (1, 3, 3), (2, 4, 1), (0, 1, 2)]);
        let grid = NetworkTopology::parse_spec("grid", 6).unwrap();
        let a = place_blocks(&t, 6, &grid, PlaceOptions::default());
        let b = place_blocks(&t, 6, &grid, PlaceOptions::default());
        assert_eq!(a, b, "placement must be reproducible");
        let mut seen = a.iter().map(|n| n.index()).collect::<Vec<_>>();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 5, "5 blocks land on 5 distinct nodes of 6");
    }

    #[test]
    fn empty_and_single_block_cases() {
        assert!(place_blocks(&[], 0, &UniformDistance, PlaceOptions::default()).is_empty());
        let t = traffic(1, &[]);
        let map =
            place_blocks(&t, 3, &NetworkTopology::linear(3).unwrap(), PlaceOptions::default());
        assert_eq!(map.len(), 1);
        assert_eq!(map[0], n(1), "a lone block takes the most central node");
    }

    #[test]
    fn exchange_cap_is_respected() {
        let t = traffic(4, &[(0, 3, 10), (1, 2, 10)]);
        let chain = NetworkTopology::linear(4).unwrap();
        // Zero exchanges: the greedy seed stands as-is.
        let capped = place_blocks(&t, 4, &chain, PlaceOptions { max_exchanges: 0 });
        let refined = place_blocks(&t, 4, &chain, PlaceOptions::default());
        assert!(
            placement_cost(&t, &refined, &chain) <= placement_cost(&t, &capped, &chain),
            "refinement can only improve on the seed"
        );
    }

    #[test]
    fn saturation_is_reported_when_the_cap_trips() {
        // The identity-seeded chain below needs at least one swap; capping
        // at zero leaves an improving swap on the table.
        let t = traffic(4, &[(0, 3, 10), (1, 2, 10), (0, 1, 1)]);
        let chain = NetworkTopology::linear(4).unwrap();
        let (capped_map, capped) =
            place_blocks_stats(&t, 4, &chain, PlaceOptions { max_exchanges: 0 });
        let (refined_map, refined) = place_blocks_stats(&t, 4, &chain, PlaceOptions::default());
        if refined.exchanges > 0 {
            assert!(capped.saturated, "cap 0 with improving swaps left must saturate");
        }
        assert!(!refined.saturated, "natural termination is not saturation");
        assert_eq!(capped.exchanges, 0);
        // The capped map is exactly the greedy seed the uncapped run refines.
        assert_eq!(capped_map.len(), refined_map.len());
    }
}
