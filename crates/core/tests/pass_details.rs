//! Focused tests of pass internals observable through the public API:
//! group closing in the scheduler, on-state chain steps, segment-prefix
//! lowering, and metric bookkeeping.

use autocomm::{
    aggregate, assign, lower_assigned, schedule, AggregateOptions, AssignedItem, CommMetrics,
    Placement, ScheduleOptions, Scheme,
};
use dqc_circuit::{Circuit, Gate, Partition, QubitId};
use dqc_hardware::{validate_events, HardwareSpec};

fn q(i: usize) -> QubitId {
    QubitId::new(i)
}

fn compile(c: &Circuit, p: &Partition) -> autocomm::AssignedProgram {
    assign(&aggregate(c, p, AggregateOptions::default()))
}

#[test]
fn local_gate_on_burst_qubit_closes_the_parallel_group() {
    // Two commutable cat blocks on q0, separated by an H on q0: the H must
    // serialize (group closed), so the second block starts after the first
    // ends plus the H.
    let p = Partition::block(6, 3).unwrap();
    let mut with_h = Circuit::new(6);
    with_h.push(Gate::cx(q(0), q(2))).unwrap();
    with_h.push(Gate::h(q(0))).unwrap();
    with_h.push(Gate::cx(q(0), q(4))).unwrap();
    let mut without_h = Circuit::new(6);
    without_h.push(Gate::cx(q(0), q(2))).unwrap();
    without_h.push(Gate::cx(q(0), q(4))).unwrap();

    let hw = HardwareSpec::for_partition(&p);
    let opts = ScheduleOptions { record_events: true, ..ScheduleOptions::default() };
    let serial = schedule(&compile(&with_h, &p), &Placement::identity(&p), &hw, opts);
    let parallel = schedule(&compile(&without_h, &p), &Placement::identity(&p), &hw, opts);
    assert!(
        serial.makespan > parallel.makespan + 10.0,
        "H must break the group: {} vs {}",
        serial.makespan,
        parallel.makespan
    );
    validate_events(serial.events.as_ref().unwrap(), &hw).unwrap();
    validate_events(parallel.events.as_ref().unwrap(), &hw).unwrap();
}

#[test]
fn on_state_gates_ride_tp_chains() {
    // Bidirectional bursts to two nodes with an interleaved S gate on the
    // burst qubit: the chain must still fuse (3 EPR pairs, not 4).
    let p = Partition::block(6, 3).unwrap();
    let mut c = Circuit::new(6);
    c.push(Gate::cx(q(0), q(2))).unwrap();
    c.push(Gate::h(q(0))).unwrap();
    c.push(Gate::cx(q(2), q(0))).unwrap();
    c.push(Gate::s(q(0))).unwrap(); // rides the chain on the teleported state
    c.push(Gate::cx(q(0), q(4))).unwrap();
    c.push(Gate::h(q(0))).unwrap();
    c.push(Gate::cx(q(4), q(0))).unwrap();
    let program = compile(&c, &p);
    let tp_blocks = program.blocks().filter(|b| b.scheme == Scheme::Tp).count();
    assert_eq!(tp_blocks, 2, "both bursts must be TP");

    let hw = HardwareSpec::for_partition(&p);
    let s = schedule(&program, &Placement::identity(&p), &hw, ScheduleOptions::default());
    assert_eq!(s.fusion_savings, 1, "chain must fuse across the S gate");
    assert_eq!(s.epr_pairs, 3);
}

#[test]
fn segment_prefix_gates_are_preserved_by_lowering() {
    // An H on the burst qubit between opposite-direction remote gates lands
    // at a segment boundary; cat-only lowering must keep it (verified by
    // gate counts: nothing dropped).
    let p = Partition::block(4, 2).unwrap();
    let mut c = Circuit::new(4);
    c.push(Gate::cx(q(0), q(2))).unwrap();
    c.push(Gate::h(q(0))).unwrap();
    c.push(Gate::cx(q(0), q(3))).unwrap();
    let aggregated = aggregate(&c, &p, AggregateOptions::default());
    let cat_only = autocomm::assign_cat_only(&aggregated);
    let physical = lower_assigned(&cat_only, &p).unwrap();
    // Two segments → two EPR pairs; the H survives somewhere in the
    // physical circuit (on the logical wire).
    assert_eq!(physical.epr_pairs, 2);
    let h_on_q0 = physical
        .circuit
        .gates()
        .iter()
        .filter(|g| g.kind() == dqc_circuit::GateKind::H && g.qubits() == [q(0)])
        .count();
    assert!(h_on_q0 >= 1, "the obstruction H must survive lowering");
}

#[test]
fn metrics_per_comm_payloads_sum_to_rem_cx() {
    for seed in 0..6 {
        let (c, p) = dqc_workloads::random_distributed_circuit(6, 3, 60, seed);
        let c = dqc_circuit::unroll_circuit(&c).unwrap();
        let m = CommMetrics::of(&compile(&c, &p));
        let sum: f64 = m.per_comm_rem_cx.iter().sum();
        assert!(
            (sum - m.total_rem_cx as f64).abs() < 1e-9,
            "seed {seed}: payloads sum {sum} != {}",
            m.total_rem_cx
        );
        assert_eq!(m.per_comm_rem_cx.len(), m.total_comms);
    }
}

#[test]
fn assigned_items_preserve_program_order_of_locals() {
    // Local gates flow through assignment in order.
    let p = Partition::block(4, 2).unwrap();
    let mut c = Circuit::new(4);
    c.push(Gate::h(q(0))).unwrap();
    c.push(Gate::cx(q(0), q(2))).unwrap();
    c.push(Gate::t(q(1))).unwrap();
    let program = compile(&c, &p);
    let kinds: Vec<String> = program
        .items()
        .iter()
        .map(|i| match i {
            AssignedItem::Local(id) => program.gate(*id).kind().name().to_string(),
            AssignedItem::Block(_) => "block".to_string(),
        })
        .collect();
    // The t on q1 commutes with everything and may be hoisted before the
    // block, but h-before-block order must hold.
    let h_pos = kinds.iter().position(|k| k == "h").unwrap();
    let b_pos = kinds.iter().position(|k| k == "block").unwrap();
    assert!(h_pos < b_pos);
}

#[test]
fn schedules_are_deterministic() {
    let (c, p) = dqc_workloads::random_distributed_circuit(8, 2, 80, 42);
    let c = dqc_circuit::unroll_circuit(&c).unwrap();
    let hw = HardwareSpec::for_partition(&p);
    let a = schedule(&compile(&c, &p), &Placement::identity(&p), &hw, ScheduleOptions::default());
    let b = schedule(&compile(&c, &p), &Placement::identity(&p), &hw, ScheduleOptions::default());
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.epr_pairs, b.epr_pairs);
    assert_eq!(a.fusion_savings, b.fusion_savings);
}
