//! Compilation errors.

use std::error::Error;
use std::fmt;

use dqc_circuit::CircuitError;
use dqc_protocols::ProtocolError;

/// Errors surfaced by the AutoComm pipeline.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CompileError {
    /// The input circuit or partition is malformed.
    Circuit(CircuitError),
    /// Lowering onto physical protocols failed (a pass produced a block the
    /// assigned scheme cannot implement — always a compiler bug surfaced
    /// loudly rather than silently miscompiled).
    Protocol(ProtocolError),
    /// The circuit and partition disagree on the number of qubits.
    RegisterMismatch {
        /// Qubits in the circuit.
        circuit_qubits: usize,
        /// Qubits covered by the partition.
        partition_qubits: usize,
    },
    /// A pipeline stage needed an artifact no earlier stage produced (the
    /// pipeline was composed wrongly, e.g. `assign` without `aggregate`).
    MissingArtifact {
        /// The pass (or consumer) that needed the artifact.
        pass: &'static str,
        /// What was missing.
        missing: &'static str,
    },
    /// A block→node map is not a valid placement (wrong length, or two
    /// blocks landing on the same physical node).
    InvalidPlacement {
        /// What was wrong with the map.
        reason: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Circuit(e) => write!(f, "invalid input circuit: {e}"),
            CompileError::Protocol(e) => write!(f, "protocol lowering failed: {e}"),
            CompileError::RegisterMismatch { circuit_qubits, partition_qubits } => write!(
                f,
                "circuit has {circuit_qubits} qubits but the partition covers {partition_qubits}"
            ),
            CompileError::MissingArtifact { pass, missing } => {
                write!(
                    f,
                    "pipeline stage '{pass}' needs a {missing}, but no earlier stage produced one"
                )
            }
            CompileError::InvalidPlacement { reason } => {
                write!(f, "invalid block-to-node placement: {reason}")
            }
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Circuit(e) => Some(e),
            CompileError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for CompileError {
    fn from(e: CircuitError) -> Self {
        CompileError::Circuit(e)
    }
}

impl From<ProtocolError> for CompileError {
    fn from(e: ProtocolError) -> Self {
        CompileError::Protocol(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_circuit::QubitId;

    #[test]
    fn conversions_and_display() {
        let e: CompileError = CircuitError::DuplicateOperand { qubit: QubitId::new(1) }.into();
        assert!(e.to_string().contains("q1"));
        let e = CompileError::RegisterMismatch { circuit_qubits: 4, partition_qubits: 6 };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains('6'));
    }
}
