//! Inverse-burst distribution analysis (paper §3.2, Figs. 5–6).

use dqc_circuit::{Circuit, Partition};

use crate::{aggregate, AggregateOptions};

/// The paper's inverse-burst distribution
/// `P(x) = |{g : len(ε(g)) < x}| / #remote gates`,
/// where `ε(g)` is the burst block containing remote gate `g` and `len` is
/// its remote-CX payload. The paper defines `ε` over the best commutation
/// order; this uses the aggregation pass as a constructive lower bound on
/// block sizes (so the reported `P(x)` upper-bounds the paper's).
///
/// Returns `P(x)` for `x = 1..=max`, indexed by `x - 1`. A *lower* value
/// means *more* burst communication.
///
/// ```
/// use autocomm::inverse_burst_distribution;
/// use dqc_circuit::{unroll_circuit, Partition};
/// let c = unroll_circuit(&dqc_workloads::qft(8)).unwrap();
/// let p = Partition::block(8, 2).unwrap();
/// let dist = inverse_burst_distribution(&c, &p, 4);
/// // No remote gate sits in a block of < 2 remote CX: P(2) = 0 (paper §3.2).
/// assert_eq!(dist[1], 0.0);
/// ```
pub fn inverse_burst_distribution(
    circuit: &Circuit,
    partition: &Partition,
    max: usize,
) -> Vec<f64> {
    let program = aggregate(circuit, partition, AggregateOptions::default());
    let mut lens: Vec<usize> = Vec::new();
    for block in program.blocks() {
        let len = block.remote_gate_count();
        for _ in 0..len {
            lens.push(len);
        }
    }
    let total = lens.len();
    (1..=max)
        .map(|x| {
            if total == 0 {
                0.0
            } else {
                lens.iter().filter(|&&l| l < x).count() as f64 / total as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_circuit::unroll_circuit;

    #[test]
    fn qft_has_rich_bursts() {
        // Paper §3.2: for QFT with t qubits per node, P(4) ≤ 1/t.
        let c = unroll_circuit(&dqc_workloads::qft(12)).unwrap();
        let p = Partition::block(12, 2).unwrap(); // t = 6
        let dist = inverse_burst_distribution(&c, &p, 4);
        assert_eq!(dist[0], 0.0, "P(1) must be 0");
        assert_eq!(dist[1], 0.0, "each CP contributes 2 CXs: P(2) = 0");
        assert!(dist[3] <= 1.0 / 6.0 + 0.05, "P(4) = {} exceeds paper bound", dist[3]);
    }

    #[test]
    fn qaoa_has_bursts() {
        let c = unroll_circuit(&dqc_workloads::qaoa_maxcut(12, 40, 3)).unwrap();
        let p = Partition::block(12, 2).unwrap();
        let dist = inverse_burst_distribution(&c, &p, 4);
        assert_eq!(dist[1], 0.0, "P(2) = 0 for ZZ interactions");
        assert!(dist[3] < 0.9);
    }

    #[test]
    fn distribution_is_monotone_nondecreasing() {
        let c = unroll_circuit(&dqc_workloads::qft(8)).unwrap();
        let p = Partition::block(8, 4).unwrap();
        let dist = inverse_burst_distribution(&c, &p, 8);
        for w in dist.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn local_only_circuit_yields_zeros() {
        let mut c = Circuit::new(4);
        c.push(dqc_circuit::Gate::cx(dqc_circuit::QubitId::new(0), dqc_circuit::QubitId::new(1)))
            .unwrap();
        let p = Partition::block(4, 2).unwrap();
        let dist = inverse_burst_distribution(&c, &p, 3);
        assert_eq!(dist, vec![0.0, 0.0, 0.0]);
    }
}
