//! The end-to-end AutoComm compiler.

use dqc_circuit::{unroll_circuit, Circuit, Partition};
use dqc_hardware::HardwareSpec;

use crate::{
    aggregate, aggregate_no_commute, assign, assign_cat_only, schedule, AggregateOptions,
    AggregatedProgram, AssignedProgram, CommMetrics, CompileError, ScheduleOptions,
    ScheduleSummary,
};

/// Pipeline configuration; the defaults reproduce full AutoComm, and each
/// toggle corresponds to one ablation of paper Fig. 17.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AutoCommOptions {
    /// Use commutation rules during aggregation (off = Fig. 17a's
    /// “No Commute”).
    pub commutation_aggregation: bool,
    /// Orient symmetric diagonal gates (CZ/CP/RZZ) so the heavier burst
    /// pair gets the Cat-friendly control side before unrolling.
    pub orient_symmetric: bool,
    /// Use the hybrid Cat/TP assignment (off = Fig. 17b's “Cat-Comm only”).
    pub hybrid_assignment: bool,
    /// Aggregation tuning.
    pub aggregate: AggregateOptions,
    /// Scheduler tuning ([`ScheduleOptions::plain_greedy`] = Fig. 17c's
    /// “Greedy”).
    pub schedule: ScheduleOptions,
}

impl Default for AutoCommOptions {
    fn default() -> Self {
        AutoCommOptions {
            commutation_aggregation: true,
            orient_symmetric: true,
            hybrid_assignment: true,
            aggregate: AggregateOptions::default(),
            schedule: ScheduleOptions::default(),
        }
    }
}

/// The AutoComm compiler: unroll → aggregate → assign → schedule.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Clone, Debug, Default)]
pub struct AutoComm {
    options: AutoCommOptions,
}

/// Everything the pipeline produces for one program.
#[derive(Clone, Debug)]
pub struct CompileResult {
    /// The input circuit in the CX+U3 basis.
    pub unrolled: Circuit,
    /// Burst blocks after aggregation.
    pub aggregated: AggregatedProgram,
    /// Blocks with assigned communication schemes.
    pub assigned: AssignedProgram,
    /// Paper Table-3 style communication metrics.
    pub metrics: CommMetrics,
    /// Latency schedule on the two-comm-qubit hardware model.
    pub schedule: ScheduleSummary,
}

impl AutoComm {
    /// A compiler with the paper's full optimization set.
    pub fn new() -> Self {
        AutoComm { options: AutoCommOptions::default() }
    }

    /// A compiler with explicit options (used by the ablation benches).
    pub fn with_options(options: AutoCommOptions) -> Self {
        AutoComm { options }
    }

    /// The active options.
    pub fn options(&self) -> &AutoCommOptions {
        &self.options
    }

    /// Compiles `circuit` for the machine implied by `partition` (one node
    /// per partition class, two communication qubits each).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::RegisterMismatch`] when the partition does
    /// not cover the circuit, and propagates unrolling failures (e.g. a
    /// multi-controlled gate without ancillas).
    pub fn compile(
        &self,
        circuit: &Circuit,
        partition: &Partition,
    ) -> Result<CompileResult, CompileError> {
        self.compile_on(circuit, partition, &HardwareSpec::for_partition(partition))
    }

    /// Compiles for an explicit hardware model (more communication qubits,
    /// different latency constants, …).
    ///
    /// # Errors
    ///
    /// See [`AutoComm::compile`].
    pub fn compile_on(
        &self,
        circuit: &Circuit,
        partition: &Partition,
        hw: &HardwareSpec,
    ) -> Result<CompileResult, CompileError> {
        if circuit.num_qubits() != partition.num_qubits() {
            return Err(CompileError::RegisterMismatch {
                circuit_qubits: circuit.num_qubits(),
                partition_qubits: partition.num_qubits(),
            });
        }
        let oriented = if self.options.orient_symmetric {
            crate::orient_symmetric_gates(circuit, partition)
        } else {
            circuit.clone()
        };
        let unrolled = unroll_circuit(&oriented)?;
        let aggregated = if self.options.commutation_aggregation {
            aggregate(&unrolled, partition, self.options.aggregate)
        } else {
            aggregate_no_commute(&unrolled, partition)
        };
        let assigned = if self.options.hybrid_assignment {
            assign(&aggregated)
        } else {
            assign_cat_only(&aggregated)
        };
        let metrics = CommMetrics::of(&assigned);
        let schedule = schedule(&assigned, partition, hw, self.options.schedule);
        Ok(CompileResult { unrolled, aggregated, assigned, metrics, schedule })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_circuit::{Gate, QubitId};

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn register_mismatch_is_reported() {
        let c = Circuit::new(4);
        let p = Partition::block(6, 2).unwrap();
        let err = AutoComm::new().compile(&c, &p).unwrap_err();
        assert!(matches!(err, CompileError::RegisterMismatch { .. }));
    }

    #[test]
    fn pipeline_produces_consistent_artifacts() {
        let c = dqc_workloads::qft(8);
        let p = Partition::block(8, 2).unwrap();
        let r = AutoComm::new().compile(&c, &p).unwrap();
        // Remote CX conservation across passes.
        let remote = r.unrolled.gates().iter().filter(|g| p.is_remote(g)).count();
        assert_eq!(remote, r.metrics.total_rem_cx);
        assert!(r.metrics.total_comms <= remote, "aggregation never hurts");
        assert!(r.schedule.makespan > 0.0);
        assert!(r.metrics.improvement_factor() >= 1.0);
    }

    #[test]
    fn ablations_are_ordered_sensibly() {
        let c = dqc_workloads::qft(10);
        let p = Partition::block(10, 2).unwrap();
        let full = AutoComm::new().compile(&c, &p).unwrap();
        let no_commute = AutoComm::with_options(AutoCommOptions {
            commutation_aggregation: false,
            ..AutoCommOptions::default()
        })
        .compile(&c, &p)
        .unwrap();
        let cat_only = AutoComm::with_options(AutoCommOptions {
            hybrid_assignment: false,
            ..AutoCommOptions::default()
        })
        .compile(&c, &p)
        .unwrap();
        let plain_sched = AutoComm::with_options(AutoCommOptions {
            schedule: ScheduleOptions::plain_greedy(),
            ..AutoCommOptions::default()
        })
        .compile(&c, &p)
        .unwrap();

        assert!(no_commute.metrics.total_comms >= full.metrics.total_comms);
        assert!(cat_only.metrics.total_comms >= full.metrics.total_comms);
        assert!(plain_sched.schedule.makespan >= full.schedule.makespan);
        // QFT is TP-heavy under the hybrid assignment (paper Table 3).
        assert!(full.metrics.tp_comms > 0);
    }

    #[test]
    fn cheap_local_program_costs_nothing() {
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(1))).unwrap();
        c.push(Gate::cx(q(2), q(3))).unwrap();
        let p = Partition::block(4, 2).unwrap();
        let r = AutoComm::new().compile(&c, &p).unwrap();
        assert_eq!(r.metrics.total_comms, 0);
        assert_eq!(r.schedule.epr_pairs, 0);
    }

    #[test]
    fn bv_compiles_to_all_cat(){
        let c = dqc_workloads::bv(16);
        let p = Partition::block(16, 4).unwrap();
        let r = AutoComm::new().compile(&c, &p).unwrap();
        assert_eq!(r.metrics.tp_comms, 0, "BV is all target-form Cat (paper Table 3)");
        assert_eq!(r.metrics.total_comms, 3, "one comm per remote node");
    }
}
