//! The end-to-end AutoComm compiler, expressed as a pass pipeline.
//!
//! [`Pipeline`] composes [`Pass`] stages over a shared [`PassContext`];
//! [`AutoComm`] is the convenience wrapper that maps an
//! [`AutoCommOptions`] configuration onto the canonical
//! orient → unroll → aggregate → assign → metrics → schedule pipeline.
//! Every paper ablation (Fig. 17) is an [`Ablation`] applied to the
//! options — one code path, many configurations.

use std::sync::Arc;

use dqc_circuit::{Circuit, NodeId, Partition};
use dqc_hardware::HardwareSpec;
use dqc_partition::{
    oee_refine_cached, oee_refine_on_stats, place_blocks_stats, OeeCache, OeeOptions, PlaceOptions,
};
use dqc_protocols::PhysicalProgram;

use crate::pass::{
    run_timed, schedule_metric, AggregatePass, AssignPass, IrPass, LowerPass, MetricsPass,
    OrientPass, Pass, PassContext, PassReport, PlacementPass, SchedulePass, UnrollPass,
};
use crate::{
    comm_weighted_graph, AggregateOptions, AggregatedProgram, AssignedProgram, CommIr, CommMetrics,
    CompileError, Placement, ScheduleOptions, ScheduleSummary,
};

/// How the pipeline maps partition blocks onto physical topology nodes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PlacementStrategy {
    /// Block `i` lands on node `i` — the historical implicit map, and the
    /// bit-identity safety rail.
    #[default]
    Identity,
    /// Insert a [`PlacementPass`] after aggregation: one traffic-aware
    /// block→node optimization per compile (the iterative driver
    /// [`AutoComm::compile_placed`] goes further and feeds *measured*
    /// communication counts back in).
    Topology,
}

/// Pipeline configuration; the defaults reproduce full AutoComm, and each
/// toggle corresponds to one ablation of paper Fig. 17.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AutoCommOptions {
    /// Use commutation rules during aggregation (off = Fig. 17a's
    /// “No Commute”).
    pub commutation_aggregation: bool,
    /// Orient symmetric diagonal gates (CZ/CP/RZZ) so the heavier burst
    /// pair gets the Cat-friendly control side before unrolling.
    pub orient_symmetric: bool,
    /// Use the hybrid Cat/TP assignment (off = Fig. 17b's “Cat-Comm only”).
    pub hybrid_assignment: bool,
    /// Block→node placement (identity reproduces the historical pipeline).
    pub placement: PlacementStrategy,
    /// Aggregation tuning.
    pub aggregate: AggregateOptions,
    /// Scheduler tuning ([`ScheduleOptions::plain_greedy`] = Fig. 17c's
    /// “Greedy”).
    pub schedule: ScheduleOptions,
}

impl Default for AutoCommOptions {
    fn default() -> Self {
        AutoCommOptions {
            commutation_aggregation: true,
            orient_symmetric: true,
            hybrid_assignment: true,
            placement: PlacementStrategy::Identity,
            aggregate: AggregateOptions::default(),
            schedule: ScheduleOptions::default(),
        }
    }
}

impl AutoCommOptions {
    /// These options with one ablation applied.
    pub fn with_ablation(self, ablation: Ablation) -> Self {
        ablation.apply(self)
    }

    /// These options with `policy` selecting the scheduler's EPR-buffering
    /// engine (threads into [`ScheduleOptions::buffer`];
    /// [`crate::BufferPolicy::OnDemand`] is the bit-identical default).
    #[must_use]
    pub fn with_buffer(mut self, policy: crate::BufferPolicy) -> Self {
        self.schedule.buffer = policy;
        self
    }
}

/// The single-knob pipeline ablations of paper Fig. 17, each disabling
/// exactly one optimization of the full compiler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Ablation {
    /// Fig. 17(a): aggregation without commutation rules — every remote
    /// gate becomes a singleton block.
    NoCommute,
    /// Fig. 17(b): Cat-Comm-only assignment (no TP fallback).
    CatOnly,
    /// Fig. 17(c): plain as-soon-as-possible scheduling — no prefetching,
    /// no parallel commutable blocks, no TP fusion.
    PlainGreedy,
    /// Skip the symmetric-gate orientation pre-pass.
    NoOrient,
}

impl Ablation {
    /// Every ablation, in paper order.
    pub fn all() -> [Ablation; 4] {
        [Ablation::NoCommute, Ablation::CatOnly, Ablation::PlainGreedy, Ablation::NoOrient]
    }

    /// The kebab-case name used by the CLI (`--ablation <name>`).
    pub fn name(self) -> &'static str {
        match self {
            Ablation::NoCommute => "no-commute",
            Ablation::CatOnly => "cat-only",
            Ablation::PlainGreedy => "plain-greedy",
            Ablation::NoOrient => "no-orient",
        }
    }

    /// Parses the kebab-case [`Ablation::name`] form.
    pub fn parse(name: &str) -> Option<Ablation> {
        Ablation::all().into_iter().find(|a| a.name() == name)
    }

    /// Applies this ablation to a configuration.
    pub fn apply(self, mut options: AutoCommOptions) -> AutoCommOptions {
        match self {
            Ablation::NoCommute => options.commutation_aggregation = false,
            Ablation::CatOnly => options.hybrid_assignment = false,
            Ablation::PlainGreedy => options.schedule = ScheduleOptions::plain_greedy(),
            Ablation::NoOrient => options.orient_symmetric = false,
        }
        options
    }
}

/// A composed sequence of passes.
///
/// Build one by hand with [`Pipeline::builder`], or derive the canonical
/// AutoComm sequence from options with [`Pipeline::autocomm`]:
///
/// ```
/// use autocomm::{AggregateOptions, Pipeline, ScheduleOptions};
/// use dqc_circuit::{Circuit, Gate, Partition, QubitId};
/// use dqc_hardware::HardwareSpec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let q = |i| QubitId::new(i);
/// let mut circuit = Circuit::new(4);
/// circuit.push(Gate::cx(q(0), q(2)))?;
/// circuit.push(Gate::cx(q(0), q(3)))?;
/// let partition = Partition::block(4, 2)?;
/// let hw = HardwareSpec::for_partition(&partition);
///
/// let pipeline = Pipeline::builder()
///     .unroll()
///     .aggregate(AggregateOptions::default())
///     .assign()
///     .metrics()
///     .schedule(ScheduleOptions::default())
///     .build();
/// let out = pipeline.run(&circuit, &partition, &hw)?;
/// assert_eq!(out.metrics.unwrap().total_comms, 1);
/// assert_eq!(out.reports.len(), 5);
/// # Ok(())
/// # }
/// ```
pub struct Pipeline {
    passes: Vec<Box<dyn Pass>>,
}

impl Pipeline {
    /// An empty pipeline builder.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder { passes: Vec::new() }
    }

    /// The canonical AutoComm pipeline for `options`:
    /// orient → unroll → comm-ir → aggregate → [place →] assign → metrics →
    /// schedule (the orient stage drops when `options.orient_symmetric` is
    /// off; the place stage appears only under
    /// [`PlacementStrategy::Topology`]).
    pub fn autocomm(options: &AutoCommOptions) -> Pipeline {
        Pipeline::autocomm_prefix(options).schedule(options.schedule).build()
    }

    /// The canonical pipeline *without* the scheduling stage — everything
    /// needed to evaluate a candidate placement's EPR cost. The placement
    /// driver uses this for rounds that re-partition (scheduling the
    /// discarded candidates would be pure waste; the winning placement
    /// gets one full compile at the end).
    pub(crate) fn autocomm_analysis(options: &AutoCommOptions) -> Pipeline {
        Pipeline::autocomm_prefix(options).build()
    }

    /// Shared prefix of [`Pipeline::autocomm`] and
    /// [`Pipeline::autocomm_analysis`]: everything through metrics.
    fn autocomm_prefix(options: &AutoCommOptions) -> PipelineBuilder {
        let mut builder = Pipeline::builder();
        if options.orient_symmetric {
            builder = builder.orient();
        }
        builder = builder.unroll().comm_ir();
        builder = if options.commutation_aggregation {
            builder.aggregate(options.aggregate)
        } else {
            builder.aggregate_no_commute()
        };
        if options.placement == PlacementStrategy::Topology {
            builder = builder.place();
        }
        builder =
            if options.hybrid_assignment { builder.assign() } else { builder.assign_cat_only() };
        builder.metrics()
    }

    /// The pass names, in execution order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass in order over `circuit` under the identity
    /// placement (block `i` on node `i` — the historical behavior).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::RegisterMismatch`] when the partition does
    /// not cover the circuit, and propagates the first failing pass's
    /// error.
    pub fn run(
        &self,
        circuit: &Circuit,
        partition: &Partition,
        hardware: &HardwareSpec,
    ) -> Result<PipelineOutput, CompileError> {
        self.run_placed(circuit, &Placement::identity(partition), hardware)
    }

    /// Runs every pass in order over `circuit` against an explicit
    /// placement (the iterative driver's entry point; a [`PlacementPass`]
    /// in the pipeline overrides the provided map with its own optimized
    /// one).
    ///
    /// # Errors
    ///
    /// See [`Pipeline::run`].
    pub fn run_placed(
        &self,
        circuit: &Circuit,
        placement: &Placement,
        hardware: &HardwareSpec,
    ) -> Result<PipelineOutput, CompileError> {
        if circuit.num_qubits() != placement.num_qubits() {
            return Err(CompileError::RegisterMismatch {
                circuit_qubits: circuit.num_qubits(),
                partition_qubits: placement.num_qubits(),
            });
        }
        let mut ctx = PassContext::new_placed(circuit, placement, hardware);
        let mut reports = Vec::with_capacity(self.passes.len());
        for pass in &self.passes {
            reports.push(run_timed(pass.as_ref(), &mut ctx)?);
        }
        Ok(PipelineOutput {
            circuit: ctx.circuit.into_owned(),
            placement: ctx.placement,
            ir: ctx.ir,
            aggregated: ctx.aggregated,
            assigned: ctx.assigned,
            metrics: ctx.metrics,
            schedule: ctx.schedule,
            lowered: ctx.lowered,
            reports,
        })
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline").field("passes", &self.pass_names()).finish()
    }
}

/// Fluent construction of a [`Pipeline`].
pub struct PipelineBuilder {
    passes: Vec<Box<dyn Pass>>,
}

impl std::fmt::Debug for PipelineBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.passes.iter().map(|p| p.name()).collect();
        f.debug_struct("PipelineBuilder").field("passes", &names).finish()
    }
}

impl PipelineBuilder {
    /// Appends an arbitrary pass (the extension point for new protocols and
    /// experiments).
    pub fn pass(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Appends the symmetric-gate orientation stage.
    pub fn orient(self) -> Self {
        self.pass(OrientPass)
    }

    /// Appends the CX+U3 unrolling stage.
    pub fn unroll(self) -> Self {
        self.pass(UnrollPass)
    }

    /// Appends the indexed-IR construction stage (must follow unrolling;
    /// aggregation builds the IR on demand when this stage is omitted).
    pub fn comm_ir(self) -> Self {
        self.pass(IrPass)
    }

    /// Appends commutation-aware burst aggregation.
    pub fn aggregate(self, options: AggregateOptions) -> Self {
        self.pass(AggregatePass { options, no_commute: false })
    }

    /// Appends commutation-free aggregation (Fig. 17a's “No Commute”).
    pub fn aggregate_no_commute(self) -> Self {
        self.pass(AggregatePass { options: AggregateOptions::default(), no_commute: true })
    }

    /// Appends the topology-aware block→node placement stage (must follow
    /// aggregation — it optimizes over the discovered burst blocks).
    pub fn place(self) -> Self {
        self.pass(PlacementPass::default())
    }

    /// Appends a placement stage optimizing an explicit (typically
    /// *measured*) block-level traffic matrix instead of the aggregated
    /// program's predicted one.
    pub fn place_with_traffic(self, traffic: Vec<Vec<u64>>) -> Self {
        self.pass(PlacementPass { traffic: Some(traffic) })
    }

    /// Appends hybrid Cat/TP scheme assignment.
    pub fn assign(self) -> Self {
        self.pass(AssignPass { hybrid: true })
    }

    /// Appends Cat-Comm-only scheme assignment (Fig. 17b).
    pub fn assign_cat_only(self) -> Self {
        self.pass(AssignPass { hybrid: false })
    }

    /// Appends the Table-3 metrics stage.
    pub fn metrics(self) -> Self {
        self.pass(MetricsPass)
    }

    /// Appends the latency scheduling stage.
    pub fn schedule(self, options: ScheduleOptions) -> Self {
        self.pass(SchedulePass { options })
    }

    /// Appends physical protocol lowering (the verification back-end).
    pub fn lower(self) -> Self {
        self.pass(LowerPass)
    }

    /// Finishes the pipeline.
    pub fn build(self) -> Pipeline {
        Pipeline { passes: self.passes }
    }
}

/// Everything a pipeline run produced: the final logical circuit, each
/// stage's artifact (present iff the stage was in the pipeline), and the
/// per-pass reports.
#[derive(Clone, Debug)]
pub struct PipelineOutput {
    /// The logical circuit after all circuit-rewriting stages.
    pub circuit: Circuit,
    /// The placement the run compiled against (identity unless a
    /// [`PlacementPass`] ran or [`Pipeline::run_placed`] provided one).
    pub placement: Placement,
    /// The indexed IR, if the comm-ir (or an aggregation) stage ran.
    pub ir: Option<Arc<CommIr>>,
    /// Burst blocks, if an aggregation stage ran.
    pub aggregated: Option<AggregatedProgram>,
    /// Scheme-assigned blocks, if an assignment stage ran.
    pub assigned: Option<AssignedProgram>,
    /// Table-3 metrics, if the metrics stage ran.
    pub metrics: Option<CommMetrics>,
    /// Latency schedule, if the scheduling stage ran.
    pub schedule: Option<ScheduleSummary>,
    /// Physical expansion, if the lowering stage ran.
    pub lowered: Option<PhysicalProgram>,
    /// Per-pass timing and headline metrics, in execution order.
    pub reports: Vec<PassReport>,
}

/// The AutoComm compiler: the canonical pipeline derived from
/// [`AutoCommOptions`].
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Clone, Debug, Default)]
pub struct AutoComm {
    options: AutoCommOptions,
}

/// Everything the compiler produces for one program.
#[derive(Clone, Debug)]
pub struct CompileResult {
    /// The input circuit in the CX+U3 basis.
    pub unrolled: Circuit,
    /// The placement (partition + block→node map) the program was compiled
    /// against. Identity for the plain [`AutoComm::compile`] path.
    pub placement: Placement,
    /// The shared indexed IR every artifact resolves against.
    pub ir: Arc<CommIr>,
    /// Burst blocks after aggregation.
    pub aggregated: AggregatedProgram,
    /// Blocks with assigned communication schemes.
    pub assigned: AssignedProgram,
    /// Paper Table-3 style communication metrics.
    pub metrics: CommMetrics,
    /// Latency schedule on the two-comm-qubit hardware model.
    pub schedule: ScheduleSummary,
    /// Per-pass timing and headline metrics.
    pub passes: Vec<PassReport>,
}

impl AutoComm {
    /// A compiler with the paper's full optimization set.
    pub fn new() -> Self {
        AutoComm { options: AutoCommOptions::default() }
    }

    /// A compiler with explicit options (used by the ablation benches).
    pub fn with_options(options: AutoCommOptions) -> Self {
        AutoComm { options }
    }

    /// A compiler with `ablations` applied to the full optimization set.
    pub fn with_ablations(ablations: &[Ablation]) -> Self {
        let options =
            ablations.iter().fold(AutoCommOptions::default(), |opts, &a| opts.with_ablation(a));
        AutoComm { options }
    }

    /// The active options.
    pub fn options(&self) -> &AutoCommOptions {
        &self.options
    }

    /// The pipeline this compiler runs.
    pub fn pipeline(&self) -> Pipeline {
        Pipeline::autocomm(&self.options)
    }

    /// Compiles `circuit` for the machine implied by `partition` (one node
    /// per partition class, two communication qubits each).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::RegisterMismatch`] when the partition does
    /// not cover the circuit, and propagates unrolling failures (e.g. a
    /// multi-controlled gate without ancillas).
    pub fn compile(
        &self,
        circuit: &Circuit,
        partition: &Partition,
    ) -> Result<CompileResult, CompileError> {
        self.compile_on(circuit, partition, &HardwareSpec::for_partition(partition))
    }

    /// Compiles for an explicit hardware model (more communication qubits,
    /// different latency constants, …).
    ///
    /// # Errors
    ///
    /// See [`AutoComm::compile`].
    pub fn compile_on(
        &self,
        circuit: &Circuit,
        partition: &Partition,
        hw: &HardwareSpec,
    ) -> Result<CompileResult, CompileError> {
        let out = self.pipeline().run(circuit, partition, hw)?;
        CompileResult::from_output(out)
    }

    /// Compiles against an explicit placement through this compiler's
    /// pipeline, with any in-pipeline placement stage removed — the caller
    /// owns the block→node map.
    ///
    /// # Errors
    ///
    /// See [`AutoComm::compile`].
    pub fn compile_with_placement(
        &self,
        circuit: &Circuit,
        placement: &Placement,
        hw: &HardwareSpec,
    ) -> Result<CompileResult, CompileError> {
        let mut options = self.options;
        options.placement = PlacementStrategy::Identity;
        let out = Pipeline::autocomm(&options).run_placed(circuit, placement, hw)?;
        CompileResult::from_output(out)
    }

    /// The topology- and traffic-aware iterative placement driver: compile,
    /// read the *measured* per-pair communication traffic out of
    /// [`CommMetrics::pair_comms`], re-weight the interaction graph with
    /// post-aggregation comm counts, re-place (block→node map via
    /// `dqc_partition::place_blocks`, qubit partition via hop-weighted
    /// `oee_refine_on`), and recompile — until the assignment-level EPR
    /// cost ([`CommMetrics::total_epr_cost`]) stops improving, bounded by
    /// `config.refine_iters` recompiles.
    ///
    /// Rounds that do not strictly improve are discarded, so the returned
    /// result never costs more EPR pairs than the identity placement of
    /// `partition` — and on all-to-all machines (where every map costs the
    /// same) the identity compile is returned untouched.
    ///
    /// # Errors
    ///
    /// See [`AutoComm::compile`].
    pub fn compile_placed(
        &self,
        circuit: &Circuit,
        partition: &Partition,
        hw: &HardwareSpec,
        config: &PlacementConfig,
    ) -> Result<(CompileResult, PlacementReport), CompileError> {
        if config.force_full {
            return self.compile_placed_full(circuit, partition, hw, config);
        }
        let topology = hw.topology();
        let mut placement = Placement::identity(partition);
        let identity = self.compile_with_placement(circuit, &placement, hw)?;
        let initial_epr_cost = identity.metrics.total_epr_cost;
        // Round state: evaluating a candidate placement needs only the
        // aggregated program, the assignment, and its metrics — never the
        // schedule. The interaction graph is hoisted out of the loop and
        // recomputed only when an accepted round changed the logical
        // partition: it depends on the aggregated program alone, not on
        // the block→node map.
        let mut aggregated = identity.aggregated.clone();
        let mut assigned = identity.assigned.clone();
        let mut metrics = identity.metrics.clone();
        // Circuit-level artifacts (unrolled circuit, indexed IR) and the
        // pass reports of the run that produced the current artifacts.
        // Partition-preserving rounds keep them valid (orientation and
        // unrolling depend only on the circuit and the logical partition);
        // partition-changing accepted rounds replace them from their
        // analysis-pipeline run.
        let mut unrolled = identity.unrolled.clone();
        let mut ir = Arc::clone(&identity.ir);
        let mut passes = identity.passes.clone();
        let mut graph = comm_weighted_graph(&aggregated);
        let mut iterations = 0usize;
        let mut work = PlacementWork::default();
        // Warm-start state for the hop-weighted OEE: carried across rounds
        // so a round re-refining an unchanged (graph, partition, map) state
        // resumes from the cached candidate set instead of a cold O(n²)
        // scan. The sparse traffic fingerprint of the round that produced
        // the current placement lets an unchanged-traffic round skip
        // re-refinement entirely (see below).
        let mut oee_cache = OeeCache::new();
        let mut prev_pair_comms: Option<Vec<(NodeId, NodeId, usize)>> = None;
        for _ in 0..config.refine_iters {
            // Unchanged traffic graph ⇒ guaranteed fixed point: the round
            // that produced the current placement saw these exact pair
            // comms, so the deterministic place_blocks returns the same
            // map, and re-refining the already-converged partition under
            // the same metric finds no improving exchange — the round
            // would compute `candidate == placement` and break. Skip the
            // whole round. (Only armed by a partition-preserving accepted
            // round whose refinement terminated naturally: a changed
            // partition rebuilds the graph, and a saturated refinement is
            // not a fixed point.)
            if prev_pair_comms.as_ref() == Some(&metrics.pair_comms) {
                work.rounds_skipped += 1;
                break;
            }
            // Measured communication traffic over logical blocks — what the
            // compiled program actually pays per pair, post-aggregation
            // (dense form of the sparse `CommMetrics::pair_comms`).
            let traffic = metrics.traffic_matrix(placement.num_nodes());
            let (node_map, place_stats) = place_blocks_stats(
                &traffic,
                topology.num_nodes(),
                topology,
                PlaceOptions::default(),
            );
            work.place_exchanges += place_stats.exchanges;
            work.saturated |= place_stats.saturated;
            // Refine the partition under the candidate map's hop metric.
            let (refined, oee_stats) = oee_refine_cached(
                &graph,
                placement.partition().clone(),
                &node_map,
                topology,
                OeeOptions::default(),
                &mut oee_cache,
            );
            work.oee_exchanges += oee_stats.exchanges;
            work.oee_scanned += oee_stats.scanned;
            work.oee_cache_hits += oee_stats.cache_hits;
            work.saturated |= oee_stats.saturated;
            let refine_converged = !oee_stats.saturated;
            let candidate = Placement::new(refined, node_map)?;
            if candidate == placement {
                break; // fixed point
            }
            // Refinement rounds usually permute the block→node map and
            // leave the logical partition alone; then only blocks whose
            // physical endpoints moved are re-assigned (incremental
            // recompilation). A changed partition invalidates aggregation
            // and falls back to the analysis pipeline (no scheduling — the
            // winning placement gets one full compile after the loop).
            let (cand_rebuilt, cand_assigned, cand_metrics) =
                if candidate.partition() == placement.partition() {
                    let inc = crate::assign_incremental(
                        &assigned,
                        &placement,
                        &candidate,
                        topology,
                        self.options.hybrid_assignment,
                    );
                    let m = CommMetrics::of(&inc);
                    (None, inc, m)
                } else {
                    let mut options = self.options;
                    options.placement = PlacementStrategy::Identity;
                    let out = Pipeline::autocomm_analysis(&options)
                        .run_placed(circuit, &candidate, hw)?;
                    let missing = |stage| CompileError::MissingArtifact {
                        pass: "compile-placed",
                        missing: stage,
                    };
                    (
                        Some((
                            out.circuit,
                            out.ir.ok_or(missing("comm ir"))?,
                            out.aggregated.ok_or(missing("aggregated program"))?,
                            out.reports,
                        )),
                        out.assigned.ok_or(missing("assigned program"))?,
                        out.metrics.ok_or(missing("metrics"))?,
                    )
                };
            if cand_metrics.total_epr_cost < metrics.total_epr_cost {
                // Arm the unchanged-traffic skip only when its fixed-point
                // argument holds for the next round: the interaction graph
                // survives (partition-preserving round) and the refinement
                // above converged rather than hitting its safety valve.
                prev_pair_comms = (cand_rebuilt.is_none() && refine_converged)
                    .then(|| metrics.pair_comms.clone());
                if let Some((circ, cand_ir, agg, reports)) = cand_rebuilt {
                    unrolled = circ;
                    ir = cand_ir;
                    passes = reports;
                    aggregated = agg;
                    graph = comm_weighted_graph(&aggregated);
                }
                assigned = cand_assigned;
                metrics = cand_metrics;
                placement = candidate;
                iterations += 1;
            } else {
                break; // no improvement: keep the best-so-far placement
            }
        }
        // Schedule reuse: the loop already holds every pre-schedule
        // artifact of the winning placement (`assigned` shares the same
        // `Arc<CommIr>` the scheduler resolves against), so instead of the
        // historical full recompile only the never-computed schedule runs
        // here. `force_full` keeps the full driver as the verification
        // rail, the property suite pins both drivers artifact-for-artifact,
        // and debug builds cross-check against a full recompile below.
        let best = if iterations == 0 {
            identity
        } else {
            // The identity run's stale schedule report is replaced by the
            // fresh one (`--timings` keys on unique pass names).
            passes.retain(|r| r.pass != "schedule");
            let started = std::time::Instant::now();
            let schedule = crate::schedule(&assigned, &placement, hw, self.options.schedule);
            passes.push(PassReport {
                pass: "schedule",
                duration: started.elapsed(),
                metric: Some(schedule_metric(&schedule)),
            });
            CompileResult {
                unrolled,
                placement: placement.clone(),
                ir,
                aggregated,
                assigned,
                metrics,
                schedule,
                passes,
            }
        };
        #[cfg(debug_assertions)]
        if iterations > 0 {
            let full = self.compile_with_placement(circuit, &placement, hw)?;
            assert_eq!(
                full.metrics, best.metrics,
                "incremental round metrics drifted from the full recompile"
            );
            assert_eq!(
                full.schedule, best.schedule,
                "reused schedule drifted from the full recompile"
            );
        }
        let report = PlacementReport {
            iterations,
            cut_weight: graph.cut_weight(placement.partition()),
            weighted_cost: graph.placed_cut_weight(
                placement.partition(),
                placement.node_map(),
                topology,
            ),
            node_map: placement.node_map().to_vec(),
            initial_epr_cost,
            final_epr_cost: best.metrics.total_epr_cost,
            work,
        };
        Ok((best, report))
    }

    /// The historical full-recompile placement driver, kept verbatim as the
    /// strict bit-identity rail behind [`PlacementConfig::force_full`]: the
    /// property suite asserts the incremental [`AutoComm::compile_placed`]
    /// matches it artifact-for-artifact on every topology. (Work counters
    /// are the one exception — they trace execution, not results, and the
    /// full driver never skips a round or warms a cache — which is why
    /// [`PlacementReport`] equality excludes them.)
    fn compile_placed_full(
        &self,
        circuit: &Circuit,
        partition: &Partition,
        hw: &HardwareSpec,
        config: &PlacementConfig,
    ) -> Result<(CompileResult, PlacementReport), CompileError> {
        let topology = hw.topology();
        let mut placement = Placement::identity(partition);
        let mut best = self.compile_with_placement(circuit, &placement, hw)?;
        let initial_epr_cost = best.metrics.total_epr_cost;
        let mut iterations = 0usize;
        let mut work = PlacementWork::default();
        for _ in 0..config.refine_iters {
            // Measured communication traffic over logical blocks — what the
            // compiled program actually pays per pair, post-aggregation.
            let traffic = best.metrics.traffic_matrix(placement.num_nodes());
            let (node_map, place_stats) = place_blocks_stats(
                &traffic,
                topology.num_nodes(),
                topology,
                PlaceOptions::default(),
            );
            work.place_exchanges += place_stats.exchanges;
            work.saturated |= place_stats.saturated;
            // Re-weight the qubit interaction graph by burst blocks and
            // refine the partition under the candidate map's hop metric.
            let graph = comm_weighted_graph(&best.aggregated);
            let (refined, oee_stats) = oee_refine_on_stats(
                &graph,
                placement.partition().clone(),
                &node_map,
                topology,
                OeeOptions::default(),
            );
            work.oee_exchanges += oee_stats.exchanges;
            work.oee_scanned += oee_stats.scanned;
            work.oee_cache_hits += oee_stats.cache_hits;
            work.saturated |= oee_stats.saturated;
            let candidate = Placement::new(refined, node_map)?;
            if candidate == placement {
                break; // fixed point
            }
            let result = self.compile_with_placement(circuit, &candidate, hw)?;
            if result.metrics.total_epr_cost < best.metrics.total_epr_cost {
                best = result;
                placement = candidate;
                iterations += 1;
            } else {
                break; // no improvement: keep the best-so-far compile
            }
        }
        let graph = comm_weighted_graph(&best.aggregated);
        let report = PlacementReport {
            iterations,
            cut_weight: graph.cut_weight(placement.partition()),
            weighted_cost: graph.placed_cut_weight(
                placement.partition(),
                placement.node_map(),
                topology,
            ),
            node_map: placement.node_map().to_vec(),
            initial_epr_cost,
            final_epr_cost: best.metrics.total_epr_cost,
            work,
        };
        Ok((best, report))
    }
}

/// Bounds for the iterative placement driver
/// ([`AutoComm::compile_placed`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlacementConfig {
    /// Maximum re-place + recompile rounds (the loop also stops at a fixed
    /// point or on the first non-improving round, so this is a ceiling,
    /// not a target).
    pub refine_iters: usize,
    /// Run the historical full-recompile driver instead of the incremental
    /// one. The two produce bit-identical results (the property suite
    /// asserts it across every topology); this flag exists as the strict
    /// reference rail and for measuring the incremental speedup.
    pub force_full: bool,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        PlacementConfig { refine_iters: 3, force_full: false }
    }
}

/// Work counters from the placement stage — how much the optimizer did,
/// not what it decided. Summed across every round the driver ran (accepted
/// or rejected).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlacementWork {
    /// Qubit exchanges the hop-weighted OEE applied.
    pub oee_exchanges: usize,
    /// Candidate gains OEE computed (cold scans plus delta updates).
    pub oee_scanned: u64,
    /// Candidate gains OEE reused from its cache instead of recomputing —
    /// the work the gain cache and warm start saved over a full rescan.
    pub oee_cache_hits: u64,
    /// Block swaps the map-placement refinement applied.
    pub place_exchanges: usize,
    /// Rounds skipped outright because the traffic graph was unchanged
    /// from the round that produced the current placement (a guaranteed
    /// fixed point). Always 0 on the `force_full` driver.
    pub rounds_skipped: usize,
    /// True when any exchange loop hit its `max_exchanges` safety valve —
    /// the result may be under-refined.
    pub saturated: bool,
}

/// What the iterative placement driver did and achieved.
///
/// Equality deliberately *excludes* [`PlacementReport::work`]: the work
/// counters trace execution (cache hits, skipped rounds), and the
/// incremental and `force_full` drivers legitimately differ there while
/// producing identical placements — the property suite pins every other
/// field across both drivers.
#[derive(Clone, Debug)]
pub struct PlacementReport {
    /// Accepted re-place + recompile rounds (0 = the identity placement
    /// was already optimal, or the topology made placement irrelevant).
    pub iterations: usize,
    /// Unweighted cut of the final partition over the communication
    /// weighted interaction graph (cross-block burst communications).
    pub cut_weight: u64,
    /// Hop-weighted cut of the final placement — `Σ comm-weight × hops`
    /// between the physical nodes the blocks landed on.
    pub weighted_cost: u64,
    /// The final block→node map.
    pub node_map: Vec<NodeId>,
    /// Assignment-level EPR cost of the identity-placement compile the
    /// driver started from.
    pub initial_epr_cost: usize,
    /// Assignment-level EPR cost of the returned compile (≤ initial).
    pub final_epr_cost: usize,
    /// Optimizer work counters (excluded from equality — see the type
    /// docs).
    pub work: PlacementWork,
}

impl PartialEq for PlacementReport {
    fn eq(&self, other: &Self) -> bool {
        self.iterations == other.iterations
            && self.cut_weight == other.cut_weight
            && self.weighted_cost == other.weighted_cost
            && self.node_map == other.node_map
            && self.initial_epr_cost == other.initial_epr_cost
            && self.final_epr_cost == other.final_epr_cost
    }
}

impl CompileResult {
    /// Extracts the canonical artifacts from a pipeline run, surfacing a
    /// hand-built pipeline that omitted a stage as a loud error instead of
    /// silently producing half a result.
    fn from_output(out: PipelineOutput) -> Result<CompileResult, CompileError> {
        let missing = |stage| CompileError::MissingArtifact { pass: "compile", missing: stage };
        Ok(CompileResult {
            unrolled: out.circuit,
            placement: out.placement,
            ir: out.ir.ok_or(missing("comm ir"))?,
            aggregated: out.aggregated.ok_or(missing("aggregated program"))?,
            assigned: out.assigned.ok_or(missing("assigned program"))?,
            metrics: out.metrics.ok_or(missing("metrics"))?,
            schedule: out.schedule.ok_or(missing("schedule"))?,
            passes: out.reports,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_circuit::{Gate, QubitId};

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn register_mismatch_is_reported() {
        let c = Circuit::new(4);
        let p = Partition::block(6, 2).unwrap();
        let err = AutoComm::new().compile(&c, &p).unwrap_err();
        assert!(matches!(err, CompileError::RegisterMismatch { .. }));
    }

    #[test]
    fn pipeline_produces_consistent_artifacts() {
        let c = dqc_workloads::qft(8);
        let p = Partition::block(8, 2).unwrap();
        let r = AutoComm::new().compile(&c, &p).unwrap();
        // Remote CX conservation across passes.
        let remote = r.unrolled.gates().iter().filter(|g| p.is_remote(g)).count();
        assert_eq!(remote, r.metrics.total_rem_cx);
        assert!(r.metrics.total_comms <= remote, "aggregation never hurts");
        assert!(r.schedule.makespan > 0.0);
        assert!(r.metrics.improvement_factor() >= 1.0);
    }

    #[test]
    fn ablations_are_ordered_sensibly() {
        let c = dqc_workloads::qft(10);
        let p = Partition::block(10, 2).unwrap();
        let full = AutoComm::new().compile(&c, &p).unwrap();
        let no_commute = AutoComm::with_ablations(&[Ablation::NoCommute]).compile(&c, &p).unwrap();
        let cat_only = AutoComm::with_ablations(&[Ablation::CatOnly]).compile(&c, &p).unwrap();
        let plain_sched =
            AutoComm::with_ablations(&[Ablation::PlainGreedy]).compile(&c, &p).unwrap();

        assert!(no_commute.metrics.total_comms >= full.metrics.total_comms);
        assert!(cat_only.metrics.total_comms >= full.metrics.total_comms);
        assert!(plain_sched.schedule.makespan >= full.schedule.makespan);
        // QFT is TP-heavy under the hybrid assignment (paper Table 3).
        assert!(full.metrics.tp_comms > 0);
    }

    #[test]
    fn cheap_local_program_costs_nothing() {
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(1))).unwrap();
        c.push(Gate::cx(q(2), q(3))).unwrap();
        let p = Partition::block(4, 2).unwrap();
        let r = AutoComm::new().compile(&c, &p).unwrap();
        assert_eq!(r.metrics.total_comms, 0);
        assert_eq!(r.schedule.epr_pairs, 0);
    }

    #[test]
    fn bv_compiles_to_all_cat() {
        let c = dqc_workloads::bv(16);
        let p = Partition::block(16, 4).unwrap();
        let r = AutoComm::new().compile(&c, &p).unwrap();
        assert_eq!(r.metrics.tp_comms, 0, "BV is all target-form Cat (paper Table 3)");
        assert_eq!(r.metrics.total_comms, 3, "one comm per remote node");
    }

    #[test]
    fn compile_reports_every_pass_in_order() {
        let c = dqc_workloads::qft(6);
        let p = Partition::block(6, 2).unwrap();
        let r = AutoComm::new().compile(&c, &p).unwrap();
        let names: Vec<&str> = r.passes.iter().map(|p| p.pass).collect();
        assert_eq!(
            names,
            ["orient", "unroll", "comm-ir", "aggregate", "assign", "metrics", "schedule"]
        );
        let no_orient = AutoComm::with_ablations(&[Ablation::NoOrient]).compile(&c, &p).unwrap();
        let names: Vec<&str> = no_orient.passes.iter().map(|p| p.pass).collect();
        assert_eq!(names, ["unroll", "comm-ir", "aggregate", "assign", "metrics", "schedule"]);
    }

    #[test]
    fn builder_pipeline_matches_options_pipeline() {
        let c = dqc_workloads::qft(10);
        let p = Partition::block(10, 2).unwrap();
        let hw = HardwareSpec::for_partition(&p);
        let from_options = AutoComm::new().compile(&c, &p).unwrap();
        let by_hand = Pipeline::builder()
            .orient()
            .unroll()
            .aggregate(AggregateOptions::default())
            .assign()
            .metrics()
            .schedule(ScheduleOptions::default())
            .build()
            .run(&c, &p, &hw)
            .unwrap();
        assert_eq!(by_hand.metrics.as_ref(), Some(&from_options.metrics));
        assert_eq!(by_hand.schedule.as_ref(), Some(&from_options.schedule));
        assert_eq!(by_hand.assigned.as_ref(), Some(&from_options.assigned));
    }

    #[test]
    fn lower_stage_composes() {
        let c = dqc_workloads::bv(8);
        let p = Partition::block(8, 2).unwrap();
        let hw = HardwareSpec::for_partition(&p);
        let out = Pipeline::builder()
            .orient()
            .unroll()
            .aggregate(AggregateOptions::default())
            .assign()
            .metrics()
            .schedule(ScheduleOptions::default())
            .lower()
            .build()
            .run(&c, &p, &hw)
            .unwrap();
        let lowered = out.lowered.expect("lower stage ran");
        assert_eq!(lowered.epr_pairs, out.schedule.unwrap().epr_pairs);
    }

    #[test]
    fn placement_pass_appears_under_the_topology_strategy() {
        let c = dqc_workloads::qft(6);
        let p = Partition::block(6, 2).unwrap();
        let options =
            AutoCommOptions { placement: PlacementStrategy::Topology, ..Default::default() };
        let r = AutoComm::with_options(options).compile(&c, &p).unwrap();
        let names: Vec<&str> = r.passes.iter().map(|p| p.pass).collect();
        assert_eq!(
            names,
            ["orient", "unroll", "comm-ir", "aggregate", "place", "assign", "metrics", "schedule"]
        );
        // On the implicit all-to-all machine every map costs the same, so
        // the optimizer keeps the identity and the results match exactly.
        let base = AutoComm::new().compile(&c, &p).unwrap();
        assert!(r.placement.is_identity());
        assert_eq!(r.metrics, base.metrics);
        assert_eq!(r.schedule, base.schedule);
    }

    #[test]
    fn compile_placed_never_loses_to_identity_and_improves_on_a_chain() {
        // Heavy traffic between blocks 0 and 2 of a 3-chain: the identity
        // map pays 2 hops per comm; placement pulls the pair adjacent.
        let mut c = Circuit::new(6);
        for _ in 0..4 {
            c.push(Gate::cx(q(0), q(4))).unwrap();
            c.push(Gate::h(q(4))).unwrap();
        }
        c.push(Gate::cx(q(2), q(3))).unwrap();
        let p = Partition::block(6, 3).unwrap();
        let hw = HardwareSpec::for_partition(&p)
            .with_topology(dqc_hardware::NetworkTopology::linear(3).unwrap())
            .unwrap();
        let identity = AutoComm::new().compile_on(&c, &p, &hw).unwrap();
        let (placed, report) =
            AutoComm::new().compile_placed(&c, &p, &hw, &PlacementConfig::default()).unwrap();
        assert_eq!(report.initial_epr_cost, identity.metrics.total_epr_cost);
        assert!(
            placed.metrics.total_epr_cost < identity.metrics.total_epr_cost,
            "placement must help here: {} vs {}",
            placed.metrics.total_epr_cost,
            identity.metrics.total_epr_cost
        );
        assert_eq!(report.final_epr_cost, placed.metrics.total_epr_cost);
        assert!(report.iterations >= 1);
        assert!(!placed.placement.is_identity());
        // The map is a permutation of the three nodes.
        let mut nodes: Vec<usize> = report.node_map.iter().map(|n| n.index()).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 1, 2]);
    }

    #[test]
    fn place_with_traffic_overrides_the_derived_matrix() {
        // The circuit's own traffic is negligible; an explicit measured
        // matrix demanding blocks 0 and 2 be adjacent must drive the map.
        let mut c = Circuit::new(6);
        c.push(Gate::cx(q(0), q(4))).unwrap();
        let p = Partition::block(6, 3).unwrap();
        let linear = dqc_hardware::NetworkTopology::linear(3).unwrap();
        let hw = HardwareSpec::for_partition(&p).with_topology(linear.clone()).unwrap();
        let traffic = vec![vec![0, 0, 50], vec![0, 0, 0], vec![50, 0, 0]];
        let out = Pipeline::builder()
            .unroll()
            .comm_ir()
            .aggregate(AggregateOptions::default())
            .place_with_traffic(traffic)
            .assign()
            .metrics()
            .build()
            .run(&c, &p, &hw)
            .unwrap();
        let map = out.placement.node_map();
        assert_eq!(
            linear.hop_distance(map[0], map[2]),
            Some(1),
            "the override's heavy pair must land adjacent, got {map:?}"
        );
        // The single 2-hop-under-identity comm is now charged one hop.
        assert_eq!(out.metrics.unwrap().total_epr_cost, 1);
        // Dropping the override falls back to the aggregated program's own
        // (here: identical-preference) traffic.
        let derived = Pipeline::builder()
            .unroll()
            .comm_ir()
            .aggregate(AggregateOptions::default())
            .place()
            .assign()
            .metrics()
            .build()
            .run(&c, &p, &hw)
            .unwrap();
        let dmap = derived.placement.node_map();
        assert_eq!(linear.hop_distance(dmap[0], dmap[2]), Some(1));
    }

    #[test]
    fn compile_placed_is_bit_identical_on_all_to_all() {
        let c = dqc_workloads::qft(12);
        let p = Partition::block(12, 4).unwrap();
        let hw = HardwareSpec::for_partition(&p);
        let plain = AutoComm::new().compile_on(&c, &p, &hw).unwrap();
        let (placed, report) =
            AutoComm::new().compile_placed(&c, &p, &hw, &PlacementConfig::default()).unwrap();
        assert_eq!(placed.metrics, plain.metrics);
        assert_eq!(placed.schedule, plain.schedule);
        assert_eq!(placed.assigned, plain.assigned);
        assert_eq!(report.initial_epr_cost, report.final_epr_cost);
    }

    #[test]
    fn zero_refine_iters_is_the_identity_compile() {
        let c = dqc_workloads::bv(12);
        let p = Partition::block(12, 3).unwrap();
        let hw = HardwareSpec::for_partition(&p)
            .with_topology(dqc_hardware::NetworkTopology::linear(3).unwrap())
            .unwrap();
        let plain = AutoComm::new().compile_on(&c, &p, &hw).unwrap();
        let (placed, report) = AutoComm::new()
            .compile_placed(&c, &p, &hw, &PlacementConfig { refine_iters: 0, force_full: false })
            .unwrap();
        assert_eq!(report.iterations, 0);
        assert_eq!(placed.metrics, plain.metrics);
        assert_eq!(placed.schedule, plain.schedule);
    }

    /// The incremental placement driver is bit-identical to the historical
    /// full-recompile driver on all five topology families, across suite
    /// and random workloads — the acceptance rail for incremental
    /// recompilation.
    #[test]
    fn incremental_compile_placed_matches_full_on_all_topologies() {
        use dqc_hardware::NetworkTopology;
        let nodes = 4;
        let mut programs: Vec<Circuit> = vec![dqc_workloads::qft(8), dqc_workloads::bv(8)];
        for seed in 0..3 {
            let (c, _) = dqc_workloads::random_distributed_circuit(8, nodes, 40, seed);
            programs.push(c);
        }
        let p = Partition::block(8, nodes).unwrap();
        let topologies = [
            ("all-to-all", NetworkTopology::all_to_all(nodes)),
            ("linear", NetworkTopology::linear(nodes).unwrap()),
            ("ring", NetworkTopology::ring(nodes).unwrap()),
            ("grid", NetworkTopology::grid(2, 2).unwrap()),
            ("star", NetworkTopology::star(nodes).unwrap()),
        ];
        for c in &programs {
            for (name, topology) in &topologies {
                let hw = HardwareSpec::for_partition(&p).with_topology(topology.clone()).unwrap();
                let incremental = AutoComm::new()
                    .compile_placed(c, &p, &hw, &PlacementConfig::default())
                    .unwrap();
                let full = AutoComm::new()
                    .compile_placed(
                        c,
                        &p,
                        &hw,
                        &PlacementConfig { force_full: true, ..Default::default() },
                    )
                    .unwrap();
                assert_eq!(incremental.1, full.1, "report differs on {name}");
                assert_eq!(incremental.0.metrics, full.0.metrics, "metrics differ on {name}");
                assert_eq!(incremental.0.schedule, full.0.schedule, "schedule differs on {name}");
                assert_eq!(incremental.0.assigned, full.0.assigned, "assignment differs on {name}");
                assert_eq!(
                    incremental.0.placement, full.0.placement,
                    "placement differs on {name}"
                );
            }
        }
    }

    /// Cat-only configurations ride the same incremental path (the
    /// incremental re-assignment must respect `hybrid_assignment`).
    #[test]
    fn incremental_compile_placed_matches_full_under_cat_only() {
        use dqc_hardware::NetworkTopology;
        let c = dqc_workloads::qft(8);
        let p = Partition::block(8, 4).unwrap();
        let hw = HardwareSpec::for_partition(&p)
            .with_topology(NetworkTopology::ring(4).unwrap())
            .unwrap();
        let compiler = AutoComm::with_ablations(&[Ablation::CatOnly]);
        let incremental =
            compiler.compile_placed(&c, &p, &hw, &PlacementConfig::default()).unwrap();
        let full = compiler
            .compile_placed(
                &c,
                &p,
                &hw,
                &PlacementConfig { force_full: true, ..Default::default() },
            )
            .unwrap();
        assert_eq!(incremental.1, full.1);
        assert_eq!(incremental.0.metrics, full.0.metrics);
        assert_eq!(incremental.0.assigned, full.0.assigned);
    }

    #[test]
    fn ablation_names_round_trip() {
        for a in Ablation::all() {
            assert_eq!(Ablation::parse(a.name()), Some(a));
        }
        assert_eq!(Ablation::parse("bogus"), None);
    }
}
