//! The trait-based pass manager.
//!
//! Every stage of the AutoComm compiler is a [`Pass`] over a shared
//! [`PassContext`]: orientation and unrolling rewrite the logical circuit
//! in place, aggregation/assignment/scheduling/lowering attach their
//! artifacts to the context. A [`Pipeline`](crate::Pipeline) composes
//! passes, times each one, and records a [`PassReport`] per stage, so
//! ablations and baselines are *configurations* of one code path instead
//! of parallel pipelines.

use std::borrow::Cow;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dqc_circuit::{unroll_circuit, Circuit, Partition};
use dqc_hardware::HardwareSpec;
use dqc_protocols::PhysicalProgram;

use crate::{
    aggregate_ir, aggregate_no_commute_ir, assign_cat_only_on, assign_on, comm_weighted_graph,
    lower_assigned_on, orient_symmetric_gates, schedule, AggregateOptions, AggregatedProgram,
    AssignedProgram, CommIr, CommMetrics, CompileError, Placement, ScheduleOptions,
    ScheduleSummary, Scheme,
};

/// Mutable state threaded through a pipeline: the evolving logical circuit
/// plus every artifact produced so far.
#[derive(Clone, Debug)]
pub struct PassContext<'a> {
    /// The static qubit → block assignment the program is compiled against.
    pub partition: &'a Partition,
    /// The hardware model used by scheduling.
    pub hardware: &'a HardwareSpec,
    /// The block→physical-node placement downstream passes (assign,
    /// schedule, lower) consume. Starts as the identity map; a
    /// [`PlacementPass`] (or [`crate::Pipeline::run_placed`]) installs an
    /// optimized one.
    pub placement: Placement,
    /// The current logical circuit (input → oriented → unrolled); borrowed
    /// until the first rewriting pass replaces it, so pipelines never clone
    /// an untouched input.
    pub circuit: Cow<'a, Circuit>,
    /// The indexed IR, once [`IrPass`] has run. Shared by every downstream
    /// artifact.
    pub ir: Option<Arc<CommIr>>,
    /// Burst blocks, once aggregation has run.
    pub aggregated: Option<AggregatedProgram>,
    /// Scheme-assigned blocks, once assignment has run.
    pub assigned: Option<AssignedProgram>,
    /// Table-3 style metrics, once the metrics pass has run.
    pub metrics: Option<CommMetrics>,
    /// Latency schedule, once scheduling has run.
    pub schedule: Option<ScheduleSummary>,
    /// Physical expansion, once lowering has run.
    pub lowered: Option<PhysicalProgram>,
}

impl<'a> PassContext<'a> {
    /// A fresh context holding the input circuit and no artifacts.
    pub fn new(circuit: Circuit, partition: &'a Partition, hardware: &'a HardwareSpec) -> Self {
        Self::with_cow(Cow::Owned(circuit), partition, hardware)
    }

    /// [`PassContext::new`] borrowing the input circuit (the pipeline entry
    /// point; the first rewriting pass takes ownership).
    pub fn new_borrowed(
        circuit: &'a Circuit,
        partition: &'a Partition,
        hardware: &'a HardwareSpec,
    ) -> Self {
        Self::with_cow(Cow::Borrowed(circuit), partition, hardware)
    }

    /// A context compiled against an explicit placement (the iterative
    /// placement driver's entry point).
    pub fn new_placed(
        circuit: &'a Circuit,
        placement: &'a Placement,
        hardware: &'a HardwareSpec,
    ) -> Self {
        let mut ctx = Self::with_cow(Cow::Borrowed(circuit), placement.partition(), hardware);
        ctx.placement = placement.clone();
        ctx
    }

    fn with_cow(
        circuit: Cow<'a, Circuit>,
        partition: &'a Partition,
        hardware: &'a HardwareSpec,
    ) -> Self {
        PassContext {
            partition,
            hardware,
            placement: Placement::identity(partition),
            circuit,
            ir: None,
            aggregated: None,
            assigned: None,
            metrics: None,
            schedule: None,
            lowered: None,
        }
    }

    /// The indexed IR, building it on demand when no [`IrPass`] ran (hand
    /// built pipelines that jump straight to aggregation stay valid).
    pub fn ir_or_build(&mut self) -> Arc<CommIr> {
        if self.ir.is_none() {
            self.ir = Some(CommIr::build_shared(self.circuit.as_ref(), self.partition));
        }
        Arc::clone(self.ir.as_ref().expect("just built"))
    }

    /// The aggregated program, or a [`CompileError::MissingArtifact`] naming
    /// the pass that needed it.
    pub fn require_aggregated(
        &self,
        pass: &'static str,
    ) -> Result<&AggregatedProgram, CompileError> {
        self.aggregated
            .as_ref()
            .ok_or(CompileError::MissingArtifact { pass, missing: "aggregated program" })
    }

    /// The assigned program, or a [`CompileError::MissingArtifact`] naming
    /// the pass that needed it.
    pub fn require_assigned(&self, pass: &'static str) -> Result<&AssignedProgram, CompileError> {
        self.assigned
            .as_ref()
            .ok_or(CompileError::MissingArtifact { pass, missing: "assigned program" })
    }
}

/// One stage of the compiler.
pub trait Pass {
    /// Stable, human-readable pass name (used in reports and errors).
    fn name(&self) -> &'static str;

    /// Runs the stage, reading and writing `ctx`.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] when the stage's input is invalid or a
    /// required upstream artifact is missing.
    fn run(&self, ctx: &mut PassContext<'_>) -> Result<(), CompileError>;

    /// A one-line metric describing what the stage produced (queried after
    /// a successful [`Pass::run`]).
    fn metric(&self, _ctx: &PassContext<'_>) -> Option<String> {
        None
    }
}

/// Timing and headline metric of one executed pass.
#[derive(Clone, Debug)]
pub struct PassReport {
    /// The pass name.
    pub pass: &'static str,
    /// Wall-clock time the pass took.
    pub duration: Duration,
    /// The pass's headline metric, if it reports one.
    pub metric: Option<String>,
}

pub(crate) fn run_timed(
    pass: &dyn Pass,
    ctx: &mut PassContext<'_>,
) -> Result<PassReport, CompileError> {
    let start = Instant::now();
    pass.run(ctx)?;
    Ok(PassReport { pass: pass.name(), duration: start.elapsed(), metric: pass.metric(ctx) })
}

/// Orients symmetric diagonal gates (CZ/CP/RZZ) so the heavier burst pair
/// gets the Cat-friendly control side (must run before [`UnrollPass`],
/// which lowers those gates away).
#[derive(Clone, Copy, Debug, Default)]
pub struct OrientPass;

impl Pass for OrientPass {
    fn name(&self) -> &'static str {
        "orient"
    }

    fn run(&self, ctx: &mut PassContext<'_>) -> Result<(), CompileError> {
        ctx.circuit = Cow::Owned(orient_symmetric_gates(ctx.circuit.as_ref(), ctx.partition));
        Ok(())
    }
}

/// Unrolls the circuit into the CX + U3 basis.
#[derive(Clone, Copy, Debug, Default)]
pub struct UnrollPass;

impl Pass for UnrollPass {
    fn name(&self) -> &'static str {
        "unroll"
    }

    fn run(&self, ctx: &mut PassContext<'_>) -> Result<(), CompileError> {
        ctx.circuit = Cow::Owned(unroll_circuit(ctx.circuit.as_ref())?);
        Ok(())
    }

    fn metric(&self, ctx: &PassContext<'_>) -> Option<String> {
        Some(format!("{} gates", ctx.circuit.len()))
    }
}

/// Builds the indexed [`CommIr`] — interned gate table, bounded-window
/// conflict DAG, and ranked pair statistics — that every later pass
/// resolves against. Must run after [`UnrollPass`] (the IR snapshots the
/// final logical circuit).
#[derive(Clone, Copy, Debug, Default)]
pub struct IrPass;

impl Pass for IrPass {
    fn name(&self) -> &'static str {
        "comm-ir"
    }

    fn run(&self, ctx: &mut PassContext<'_>) -> Result<(), CompileError> {
        ctx.ir = Some(CommIr::build_shared(ctx.circuit.as_ref(), ctx.partition));
        Ok(())
    }

    fn metric(&self, ctx: &PassContext<'_>) -> Option<String> {
        ctx.ir.as_ref().map(|ir| {
            // The conflict DAG is lazy: the default compile streams
            // predecessor sets during aggregation, so forcing the CSR build
            // here just to count edges would defeat the point. Report the
            // count only if some pass already materialized it.
            match ir.dag_edges_if_built() {
                Some(edges) => {
                    format!(
                        "{} gates ({} unique), {} dag edges",
                        ir.len(),
                        ir.unique_gates(),
                        edges
                    )
                }
                None => format!("{} gates ({} unique), lazy dag", ir.len(), ir.unique_gates()),
            }
        })
    }
}

/// Discovers burst-communication blocks (paper Algorithm 1), optionally
/// merging across intervening gates with commutation rules.
#[derive(Clone, Copy, Debug, Default)]
pub struct AggregatePass {
    /// Aggregation tuning.
    pub options: AggregateOptions,
    /// Disable commutation-based merging (Fig. 17a's “No Commute”).
    pub no_commute: bool,
}

impl Pass for AggregatePass {
    fn name(&self) -> &'static str {
        "aggregate"
    }

    fn run(&self, ctx: &mut PassContext<'_>) -> Result<(), CompileError> {
        let ir = ctx.ir_or_build();
        ctx.aggregated = Some(if self.no_commute {
            aggregate_no_commute_ir(ir)
        } else {
            aggregate_ir(ir, self.options)
        });
        Ok(())
    }

    fn metric(&self, ctx: &PassContext<'_>) -> Option<String> {
        ctx.aggregated.as_ref().map(|a| format!("{} blocks", a.block_count()))
    }
}

/// Optimizes the block→physical-node map inside the pipeline: builds the
/// communication-weighted interaction graph of the aggregated program
/// (burst blocks, not raw gate counts), derives the block-level traffic
/// matrix, and runs the greedy-seed + pairwise-exchange placement of
/// `dqc_partition::place_blocks` against the hardware topology's routed
/// hop distances. Must run after aggregation and before assignment.
///
/// The qubit→block partition is **not** touched here — blocks were
/// discovered under it and must stay coherent; re-partitioning belongs to
/// the iterative driver ([`crate::AutoComm::compile_placed`]), which
/// recompiles from scratch each round.
#[derive(Clone, Debug, Default)]
pub struct PlacementPass {
    /// Explicit block-level traffic to optimize against — e.g. a matrix
    /// measured from a previous compile's [`CommMetrics::pair_comms`],
    /// installed via `Pipeline::builder().place_with_traffic(..)`. `None`
    /// derives the matrix from the aggregated program. (The iterative
    /// driver `AutoComm::compile_placed` does its feedback loop outside
    /// the pipeline — it must re-partition between rounds, which a
    /// mid-pipeline pass cannot do.)
    pub traffic: Option<Vec<Vec<u64>>>,
}

impl Pass for PlacementPass {
    fn name(&self) -> &'static str {
        "place"
    }

    fn run(&self, ctx: &mut PassContext<'_>) -> Result<(), CompileError> {
        let aggregated = ctx.require_aggregated(self.name())?;
        let topology = ctx.hardware.topology();
        let traffic = match &self.traffic {
            Some(t) => t.clone(),
            None => comm_weighted_graph(aggregated).block_traffic(ctx.partition),
        };
        let node_map = dqc_partition::place_blocks(
            &traffic,
            topology.num_nodes(),
            topology,
            dqc_partition::PlaceOptions::default(),
        );
        ctx.placement = Placement::new(ctx.partition.clone(), node_map)?;
        Ok(())
    }

    fn metric(&self, ctx: &PassContext<'_>) -> Option<String> {
        let map: Vec<String> =
            ctx.placement.node_map().iter().map(|n| n.index().to_string()).collect();
        Some(format!("block→node [{}]", map.join(" ")))
    }
}

/// Assigns each burst block a communication scheme: hybrid Cat/TP (the
/// paper's analysis) or Cat-Comm only (Fig. 17b's ablation).
#[derive(Clone, Copy, Debug)]
pub struct AssignPass {
    /// Use the hybrid Cat/TP pattern analysis (off = Cat-Comm only).
    pub hybrid: bool,
}

impl Default for AssignPass {
    fn default() -> Self {
        AssignPass { hybrid: true }
    }
}

impl Pass for AssignPass {
    fn name(&self) -> &'static str {
        "assign"
    }

    fn run(&self, ctx: &mut PassContext<'_>) -> Result<(), CompileError> {
        let aggregated = ctx.require_aggregated(self.name())?;
        let topology = ctx.hardware.topology();
        let assigned = if self.hybrid {
            assign_on(aggregated, &ctx.placement, topology)
        } else {
            assign_cat_only_on(aggregated, &ctx.placement, topology)
        };
        ctx.assigned = Some(assigned);
        Ok(())
    }

    fn metric(&self, ctx: &PassContext<'_>) -> Option<String> {
        ctx.assigned.as_ref().map(|a| {
            let tp = a.blocks().filter(|b| b.scheme == Scheme::Tp).count();
            let cat = a.blocks().count() - tp;
            format!("{cat} cat / {tp} tp blocks")
        })
    }
}

/// Computes the paper's Table-3 communication metrics from the assigned
/// program.
#[derive(Clone, Copy, Debug, Default)]
pub struct MetricsPass;

impl Pass for MetricsPass {
    fn name(&self) -> &'static str {
        "metrics"
    }

    fn run(&self, ctx: &mut PassContext<'_>) -> Result<(), CompileError> {
        ctx.metrics = Some(CommMetrics::of(ctx.require_assigned(self.name())?));
        Ok(())
    }

    fn metric(&self, ctx: &PassContext<'_>) -> Option<String> {
        ctx.metrics.as_ref().map(|m| format!("{} comms ({} tp)", m.total_comms, m.tp_comms))
    }
}

/// Schedules the assigned program onto the hardware model (burst-greedy
/// with prefetching by default; plain greedy reproduces Fig. 17c).
#[derive(Clone, Copy, Debug, Default)]
pub struct SchedulePass {
    /// Scheduler tuning.
    pub options: ScheduleOptions,
}

impl Pass for SchedulePass {
    fn name(&self) -> &'static str {
        "schedule"
    }

    fn run(&self, ctx: &mut PassContext<'_>) -> Result<(), CompileError> {
        let assigned = ctx.require_assigned(self.name())?;
        let summary = schedule(assigned, &ctx.placement, ctx.hardware, self.options);
        ctx.schedule = Some(summary);
        Ok(())
    }

    fn metric(&self, ctx: &PassContext<'_>) -> Option<String> {
        ctx.schedule.as_ref().map(schedule_metric)
    }
}

/// The schedule stage's headline metric line, shared by [`SchedulePass`]
/// and the placement driver's schedule-reuse path (which reports the same
/// pass without re-running the pipeline).
pub(crate) fn schedule_metric(s: &crate::ScheduleSummary) -> String {
    if s.buffering.policy.is_buffered() {
        format!(
            "makespan {:.1}, {} epr, {} buffering ({}/{} hits{})",
            s.makespan,
            s.epr_pairs,
            s.buffering.policy.name(),
            s.buffering.prefetch_hits,
            s.buffering.requests,
            if s.buffering.fell_back { ", fell back" } else { "" }
        )
    } else {
        format!("makespan {:.1}, {} epr", s.makespan, s.epr_pairs)
    }
}

/// Lowers the assigned program through physical Cat-Comm / TP-Comm
/// protocol expansions (the verification back-end).
#[derive(Clone, Copy, Debug, Default)]
pub struct LowerPass;

impl Pass for LowerPass {
    fn name(&self) -> &'static str {
        "lower"
    }

    fn run(&self, ctx: &mut PassContext<'_>) -> Result<(), CompileError> {
        let assigned = ctx.require_assigned(self.name())?;
        let lowered = lower_assigned_on(assigned, &ctx.placement, ctx.hardware.topology())?;
        ctx.lowered = Some(lowered);
        Ok(())
    }

    fn metric(&self, ctx: &PassContext<'_>) -> Option<String> {
        ctx.lowered
            .as_ref()
            .map(|p| format!("{} physical gates, {} epr", p.circuit.len(), p.epr_pairs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_circuit::{Gate, QubitId};

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn passes_require_their_upstream_artifacts() {
        let p = Partition::block(4, 2).unwrap();
        let hw = HardwareSpec::for_partition(&p);
        let mut ctx = PassContext::new(Circuit::new(4), &p, &hw);
        for (err, pass) in [
            (AssignPass::default().run(&mut ctx), "assign"),
            (MetricsPass.run(&mut ctx), "metrics"),
            (SchedulePass::default().run(&mut ctx), "schedule"),
            (LowerPass.run(&mut ctx), "lower"),
        ] {
            match err {
                Err(CompileError::MissingArtifact { pass: reported, .. }) => {
                    assert_eq!(reported, pass);
                }
                other => panic!("{pass} should miss its artifact, got {other:?}"),
            }
        }
    }

    #[test]
    fn run_timed_reports_name_and_metric() {
        let p = Partition::block(4, 2).unwrap();
        let hw = HardwareSpec::for_partition(&p);
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        let mut ctx = PassContext::new(c, &p, &hw);
        let report = run_timed(&UnrollPass, &mut ctx).unwrap();
        assert_eq!(report.pass, "unroll");
        assert_eq!(report.metric.as_deref(), Some("1 gates"));
    }
}
