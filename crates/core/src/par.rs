//! Re-export shim over the shared fork-join helper in `dqc-circuit`.
//!
//! The implementation (and the single-sourced [`PAR_THRESHOLD`] constant)
//! moved to the bottom of the crate graph so the QASM front end and the
//! compile passes fork through one code path; this module keeps the
//! historical `crate::par::*` paths inside `autocomm` working.

pub(crate) use dqc_circuit::{par_map, PAR_THRESHOLD};

#[cfg(test)]
mod tests {
    #[test]
    fn threshold_is_single_sourced() {
        // The public re-export, the crate-internal path, and the origin in
        // dqc-circuit must all be the same constant (satellite: no repeated
        // 4096 literals at call sites).
        assert_eq!(crate::PAR_THRESHOLD, dqc_circuit::PAR_THRESHOLD);
        assert_eq!(super::PAR_THRESHOLD, dqc_circuit::PAR_THRESHOLD);
        assert_eq!(crate::PAR_THRESHOLD, 4096);
    }
}
