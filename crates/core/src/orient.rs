//! Partition-aware orientation of symmetric diagonal gates.
//!
//! `CZ`, `CP`, and `RZZ` are symmetric: either operand can serve as the
//! control of the CXs they unroll into. The choice decides which of the two
//! burst pairs of a remote gate sees a *control-form* (Cat-friendly) block:
//! the unrolled interior rotation lands on the target side, so the control
//! side stays clean. This pre-pass orients every symmetric remote gate so
//! its control is the operand whose burst pair carries more remote gates —
//! that pair is processed first by aggregation and claims the gate into its
//! block. The paper's discussion of co-designing gate decomposition with
//! communication (§6) motivates exactly this choice; without it, QAOA's
//! randomly-oriented ZZ interactions fragment into bidirectional TP blocks.

use dqc_circuit::{Circuit, Gate, GateKind, Partition};

use crate::pair_stats;

/// Orients one gate against the precomputed pair statistics (pure per
/// gate, which is what lets the parallel rail fan gates across threads).
fn orient_gate(
    gate: &Gate,
    stats: &std::collections::HashMap<(dqc_circuit::QubitId, dqc_circuit::NodeId), usize>,
    partition: &Partition,
) -> Gate {
    match gate.kind() {
        GateKind::Cz | GateKind::Cp | GateKind::Rzz
            if partition.is_remote(gate) && gate.condition().is_none() =>
        {
            let a = gate.qubits()[0];
            let b = gate.qubits()[1];
            let weight_a = stats.get(&(a, partition.node_of(b))).copied().unwrap_or(0);
            let weight_b = stats.get(&(b, partition.node_of(a))).copied().unwrap_or(0);
            if weight_b > weight_a {
                // Swap operands: `b` becomes the control side.
                match gate.kind() {
                    GateKind::Cz => Gate::cz(b, a),
                    GateKind::Cp => Gate::cp(gate.theta().expect("cp parameter"), b, a),
                    GateKind::Rzz => Gate::rzz(gate.theta().expect("rzz parameter"), b, a),
                    _ => unreachable!(),
                }
            } else {
                gate.clone()
            }
        }
        _ => gate.clone(),
    }
}

/// Reorders the operands of symmetric diagonal two-qubit gates (`Cz`, `Cp`,
/// `Rzz`) so the heavier burst pair gets the control side. Asymmetric gates
/// and local gates pass through untouched; the result is gate-for-gate
/// equivalent to the input (the gates are symmetric).
///
/// After the sequential statistics sweep the per-gate decisions are
/// independent, so large circuits fan across `par_map` worker threads and
/// splice in input order — bit-identical to
/// [`orient_symmetric_gates_sequential`] by construction.
pub fn orient_symmetric_gates(circuit: &Circuit, partition: &Partition) -> Circuit {
    if circuit.len() < crate::PAR_THRESHOLD {
        return orient_symmetric_gates_sequential(circuit, partition);
    }
    let stats = pair_stats(circuit, partition);
    let oriented =
        crate::par::par_map(circuit.gates(), |gate| orient_gate(gate, &stats, partition));
    let mut out = Circuit::with_cbits(circuit.num_qubits(), circuit.num_cbits());
    out.reserve(circuit.len());
    for gate in oriented {
        out.push(gate).expect("registers preserved");
    }
    out
}

/// The sequential reference rail of [`orient_symmetric_gates`] (one gate at
/// a time on the calling thread), kept runtime-selectable as the
/// bit-identity baseline for property tests and the scale gate.
pub fn orient_symmetric_gates_sequential(circuit: &Circuit, partition: &Partition) -> Circuit {
    let stats = pair_stats(circuit, partition);
    let mut out = Circuit::with_cbits(circuit.num_qubits(), circuit.num_cbits());
    out.reserve(circuit.len());
    for gate in circuit.gates() {
        out.push(orient_gate(gate, &stats, partition)).expect("registers preserved");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_circuit::QubitId;

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn heavier_side_takes_control() {
        // q0 talks to node 1 three times; q2/q3 talk to node 0 once each →
        // every symmetric gate should get q0 as its first operand.
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::rzz(0.1, q(2), q(0))).unwrap();
        c.push(Gate::rzz(0.2, q(0), q(3))).unwrap();
        c.push(Gate::cp(0.3, q(3), q(0))).unwrap();
        let oriented = orient_symmetric_gates(&c, &p);
        for g in oriented.gates() {
            assert_eq!(g.qubits()[0], q(0), "{g}");
        }
    }

    #[test]
    fn local_and_asymmetric_gates_untouched() {
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::rzz(0.1, q(0), q(1))).unwrap(); // local
        c.push(Gate::cx(q(2), q(0))).unwrap(); // asymmetric
        c.push(Gate::h(q(0))).unwrap();
        let oriented = orient_symmetric_gates(&c, &p);
        assert_eq!(oriented, c);
    }

    #[test]
    fn orientation_preserves_semantics() {
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::h(q(0))).unwrap();
        c.push(Gate::rzz(0.4, q(2), q(0))).unwrap();
        c.push(Gate::cp(0.5, q(3), q(0))).unwrap();
        c.push(Gate::cz(q(2), q(0))).unwrap();
        let oriented = orient_symmetric_gates(&c, &p);
        assert!(dqc_sim::circuits_equivalent(&c, &oriented, 1e-10).unwrap());
    }
}
