//! Lowering assigned programs onto physical protocols.
//!
//! This is the functional back-end used for *verification*: every compiled
//! program can be expanded into a physical circuit (EPR preparations,
//! measurements, conditioned corrections) and simulated against the input
//! circuit. Target-form Cat blocks are H-conjugated into control form here
//! (paper Fig. 10a).

use dqc_circuit::{Gate, GateTable, NodeId, QubitId};
use dqc_hardware::NetworkTopology;
use dqc_protocols::{PhysicalProgram, ProtocolExpander};

use crate::assign::split_into_segments;
use crate::par::par_map;
use crate::{
    AssignedItem, AssignedProgram, CatOrientation, CommBlock, CompileError, Placement, Scheme,
};

/// One planned call into the stateful [`ProtocolExpander`] — the
/// communication-primitive form of a compiled program. Planning an item is
/// pure (conjugation, segmentation, body materialization — all the
/// per-item work), so it fans out across threads; the apply loop then
/// drives the expander sequentially with exactly the calls the historical
/// single-pass lowering made, in the same order.
///
/// The op list is also the unit the compile service serializes: a
/// [`crate::CompiledArtifact`] stores the [`lower_plan`] of a program so a
/// cache hit can replay the lowered form without recompiling.
#[derive(Clone, Debug, PartialEq)]
pub enum CommOp {
    /// A gate executed locally (`ProtocolExpander::push_local`).
    Local(Gate),
    /// A Cat-Comm burst: qubit `q` is cat-entangled to `node` and `body`
    /// executes under the shared entanglement
    /// (`ProtocolExpander::cat_comm_block`).
    Cat {
        /// The burst qubit.
        q: QubitId,
        /// The physical node the block is placed on.
        node: NodeId,
        /// The block body, already conjugated into control form.
        body: Vec<Gate>,
    },
    /// A TP-Comm burst: qubit `q` teleports to `node`, `body` executes,
    /// and the qubit teleports back (`ProtocolExpander::tp_comm_block`).
    Tp {
        /// The teleported qubit.
        q: QubitId,
        /// The physical node the block is placed on.
        node: NodeId,
        /// The block body.
        body: Vec<Gate>,
    },
}

/// Lowers an assigned program into a physical circuit over the extended
/// register (logical qubits + two communication qubits per node), assuming
/// the paper's all-to-all interconnect and the identity block→node map.
///
/// # Errors
///
/// See [`lower_assigned_on`].
pub fn lower_assigned(
    program: &AssignedProgram,
    partition: &dqc_circuit::Partition,
) -> Result<PhysicalProgram, CompileError> {
    lower_assigned_on(
        program,
        &Placement::identity(partition),
        &NetworkTopology::all_to_all(partition.num_nodes()),
    )
}

/// Lowers an assigned program into a physical circuit over the extended
/// register against an explicit interconnect `topology`; communications
/// between non-adjacent nodes expand into real entanglement-swap chains
/// (per-hop EPR generations plus relay Bell measurements), so lowered
/// circuits stay simulator-checkable on sparse machines. The expansion
/// runs over the *physical* qubit→node assignment of `placement`, so swap
/// chains follow the links the placed program actually routes over.
///
/// This is the cold verification path, so block bodies are materialized
/// from the shared gate table into the slices the protocol expander wants.
///
/// # Errors
///
/// Returns [`CompileError::Protocol`] if the topology cannot serve the
/// placement, or if a block violates its assigned scheme's requirements —
/// the latter would be a compiler bug, surfaced loudly.
pub fn lower_assigned_on(
    program: &AssignedProgram,
    placement: &Placement,
    topology: &NetworkTopology,
) -> Result<PhysicalProgram, CompileError> {
    let plan = lower_plan(program, placement);
    // Apply: drive the single stateful expander sequentially.
    let mut exp =
        ProtocolExpander::with_topology(placement.physical_partition(), topology.clone())?;
    for step in &plan {
        match step {
            CommOp::Local(g) => exp.push_local(g)?,
            CommOp::Cat { q, node, body } => exp.cat_comm_block(*q, *node, body)?,
            CommOp::Tp { q, node, body } => exp.tp_comm_block(*q, *node, body)?,
        }
    }
    Ok(exp.finish())
}

/// The pure half of lowering: the flat [`CommOp`] sequence an assigned
/// program expands into under `placement` — local gates plus Cat/TP bursts
/// with fully materialized (and, for target-form Cat blocks, H-conjugated)
/// bodies, in program order. Per-item planning is independent, so it fans
/// out across threads on large programs with a deterministic in-order
/// merge.
pub fn lower_plan(program: &AssignedProgram, placement: &Placement) -> Vec<CommOp> {
    let table = program.ir().table();
    let plans: Vec<Vec<CommOp>> =
        par_map(program.items(), |item| plan_item(table, placement, item));
    plans.into_iter().flatten().collect()
}

/// Plans the expander calls for one assigned item (the pure half of
/// lowering).
fn plan_item(table: &GateTable, placement: &Placement, item: &AssignedItem) -> Vec<CommOp> {
    let mut steps = Vec::new();
    match item {
        AssignedItem::Local(id) => steps.push(CommOp::Local(table.gate(*id).clone())),
        AssignedItem::Block(b) => {
            let node = placement.physical_of(b.block.node());
            match b.scheme {
                Scheme::Tp => {
                    let body: Vec<Gate> = b.block.gates(table).cloned().collect();
                    steps.push(CommOp::Tp { q: b.block.qubit(), node, body });
                }
                Scheme::Cat(_) if b.comms == 1 => {
                    plan_cat_segment(&mut steps, table, &b.block, node);
                }
                Scheme::Cat(_) => {
                    for seg in split_into_segments(table, &b.block) {
                        if seg.remote_gate_count() == 0 {
                            for g in seg.gates(table) {
                                steps.push(CommOp::Local(g.clone()));
                            }
                        } else {
                            plan_cat_segment(&mut steps, table, &seg, node);
                        }
                    }
                }
            }
        }
    }
    steps
}

/// Plans one single-call Cat segment, conjugating target-form bodies into
/// control form first. `node` is the physical node the remote block is
/// placed on.
fn plan_cat_segment(steps: &mut Vec<CommOp>, table: &GateTable, block: &CommBlock, node: NodeId) {
    let q = block.qubit();
    // A segment may start with single-qubit gates on the burst qubit left
    // over from a split (they precede every remote gate); they execute
    // locally on q before the communication.
    let prefix_len = block.gates(table).take_while(|g| g.num_qubits() == 1 && g.acts_on(q)).count();
    for g in block.gates(table).take(prefix_len) {
        steps.push(CommOp::Local(g.clone()));
    }
    let mut trimmed = CommBlock::new(q, block.node());
    for &id in &block.ids()[prefix_len..] {
        trimmed.push(id, table.gate(id));
    }
    if trimmed.remote_gate_count() == 0 {
        for g in trimmed.gates(table) {
            steps.push(CommOp::Local(g.clone()));
        }
        return;
    }

    let (_, orientation) = crate::assign::cat_segments(table, &trimmed);
    match orientation {
        CatOrientation::Control => {
            let body: Vec<Gate> = trimmed.gates(table).cloned().collect();
            steps.push(CommOp::Cat { q, node, body });
        }
        CatOrientation::Target => {
            // Conjugation set: the burst qubit plus every partner of a
            // remote CX in this segment.
            let mut set: Vec<QubitId> = vec![q];
            for g in trimmed.remote_gates(table) {
                for &x in g.qubits() {
                    if x != q && !set.contains(&x) {
                        set.push(x);
                    }
                }
            }
            // Boundary Hadamards (local gates).
            for &s in &set {
                steps.push(CommOp::Local(Gate::h(s)));
            }
            // Per-gate conjugated body.
            let mut body = Vec::with_capacity(trimmed.len() * 3);
            for g in trimmed.gates(table) {
                if g.is_two_qubit_unitary() && g.acts_on(q) {
                    // CX(x → q) ≡ (H x ⊗ H q) CX(q → x) (H x ⊗ H q).
                    let x = g
                        .qubits()
                        .iter()
                        .copied()
                        .find(|&p| p != q)
                        .expect("two-qubit gate has a partner");
                    body.push(Gate::cx(q, x));
                } else if g.acts_on(q) {
                    // Interior X-diagonal gate on the burst qubit: conjugate
                    // algebraically so the body stays Z-diagonal on q.
                    body.extend(h_conjugate_single(g));
                } else {
                    // Interior partner gate: wrap its operands in the set.
                    let wrapped: Vec<QubitId> =
                        g.qubits().iter().copied().filter(|x| set.contains(x)).collect();
                    for &w in &wrapped {
                        body.push(Gate::h(w));
                    }
                    body.push(g.clone());
                    for &w in &wrapped {
                        body.push(Gate::h(w));
                    }
                }
            }
            steps.push(CommOp::Cat { q, node, body });
            for &s in &set {
                steps.push(CommOp::Local(Gate::h(s)));
            }
        }
    }
}

/// `H · g · H` for the X-diagonal single-qubit gates that can appear inside
/// a target-form segment; other kinds are wrapped explicitly (the protocol
/// layer then rejects them loudly if they reach a cat body).
fn h_conjugate_single(g: &Gate) -> Vec<Gate> {
    use dqc_circuit::GateKind;
    let q = g.qubits()[0];
    match g.kind() {
        GateKind::X => vec![Gate::z(q)],
        GateKind::Sx => vec![Gate::s(q)],
        GateKind::Rx => vec![Gate::rz(g.theta().expect("rx has a parameter"), q)],
        GateKind::I => vec![Gate::i(q)],
        _ => vec![Gate::h(q), g.clone(), Gate::h(q)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{aggregate, assign, assign_cat_only, AggregateOptions};
    use dqc_circuit::{Circuit, Partition};
    use dqc_sim::{SplitMix64, StateVector};

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    /// Compiles, lowers, and checks fidelity against the logical circuit.
    fn verify(c: &Circuit, p: &Partition, seed: u64, cat_only: bool) {
        let agg = aggregate(c, p, AggregateOptions::default());
        let assigned = if cat_only { assign_cat_only(&agg) } else { assign(&agg) };
        let physical = lower_assigned(&assigned, p).expect("lowering succeeds");

        let mut rng = SplitMix64::new(seed);
        let input = StateVector::random_state(c.num_qubits(), &mut rng).unwrap();
        let mut expected = input.clone();
        expected.run(c, &mut rng.fork()).unwrap();

        let total = physical.circuit.num_qubits();
        let mut amps = vec![dqc_sim::Complex::ZERO; 1 << total];
        amps[..input.amplitudes().len()].copy_from_slice(input.amplitudes());
        let mut state = StateVector::from_amplitudes(amps).unwrap();
        state.run(&physical.circuit, &mut rng).unwrap();
        let f = state.subset_fidelity(&expected, &physical.logical_qubits()).unwrap();
        assert!(
            (f - 1.0).abs() < 1e-8,
            "end-to-end fidelity {f} (seed {seed}, cat_only {cat_only})"
        );
    }

    #[test]
    fn control_form_cat_lowering_is_exact() {
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::rz(0.3, q(0))).unwrap();
        c.push(Gate::cx(q(0), q(3))).unwrap();
        verify(&c, &p, 1, false);
    }

    #[test]
    fn target_form_cat_lowering_is_exact() {
        // BV-style oracle: two CXs targeting the burst qubit.
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(2), q(0))).unwrap();
        c.push(Gate::cx(q(3), q(0))).unwrap();
        verify(&c, &p, 2, false);
    }

    #[test]
    fn target_form_with_interior_partner_gates() {
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(2), q(0))).unwrap();
        c.push(Gate::t(q(2))).unwrap(); // interior gate on a conjugated partner
        c.push(Gate::cx(q(2), q(0))).unwrap();
        c.push(Gate::ry(0.4, q(3))).unwrap();
        c.push(Gate::cx(q(3), q(0))).unwrap();
        verify(&c, &p, 3, false);
    }

    #[test]
    fn tp_lowering_is_exact() {
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::h(q(0))).unwrap();
        c.push(Gate::cx(q(3), q(0))).unwrap();
        verify(&c, &p, 4, false);
    }

    #[test]
    fn cat_only_split_lowering_is_exact() {
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::cx(q(2), q(0))).unwrap();
        c.push(Gate::cx(q(0), q(3))).unwrap();
        verify(&c, &p, 5, true);
    }

    #[test]
    fn random_programs_survive_the_full_pipeline() {
        for seed in 0..6 {
            let (c, p) = dqc_workloads::random_distributed_circuit(5, 2, 30, seed + 100);
            let c = dqc_circuit::unroll_circuit(&c).unwrap();
            verify(&c, &p, seed, false);
            verify(&c, &p, seed, true);
        }
    }

    #[test]
    fn mixed_three_node_program() {
        let p = Partition::block(6, 3).unwrap();
        let mut c = Circuit::new(6);
        c.push(Gate::h(q(0))).unwrap();
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::cx(q(0), q(4))).unwrap();
        c.push(Gate::cx(q(3), q(0))).unwrap();
        c.push(Gate::cx(q(0), q(3))).unwrap();
        c.push(Gate::cx(q(4), q(5))).unwrap();
        verify(&c, &p, 6, false);
    }

    /// Compiles with the hop-aware assignment, lowers through swap chains,
    /// and checks fidelity against the logical circuit on a sparse machine.
    fn verify_sparse(c: &Circuit, p: &Partition, topology: &NetworkTopology, seed: u64) {
        let agg = aggregate(c, p, AggregateOptions::default());
        let placement = Placement::identity(p);
        let assigned = crate::assign_on(&agg, &placement, topology);
        let physical =
            lower_assigned_on(&assigned, &placement, topology).expect("lowering succeeds");
        assert!(physical.swaps > 0, "sparse program must swap");

        let mut rng = SplitMix64::new(seed);
        let input = StateVector::random_state(c.num_qubits(), &mut rng).unwrap();
        let mut expected = input.clone();
        expected.run(c, &mut rng.fork()).unwrap();

        let total = physical.circuit.num_qubits();
        let mut amps = vec![dqc_sim::Complex::ZERO; 1 << total];
        amps[..input.amplitudes().len()].copy_from_slice(input.amplitudes());
        let mut state = StateVector::from_amplitudes(amps).unwrap();
        state.run(&physical.circuit, &mut rng).unwrap();
        let f = state.subset_fidelity(&expected, &physical.logical_qubits()).unwrap();
        assert!((f - 1.0).abs() < 1e-8, "sparse end-to-end fidelity {f} (seed {seed})");
    }

    #[test]
    fn linear_topology_lowering_is_exact() {
        let topology = NetworkTopology::linear(3).unwrap();
        let p = Partition::block(6, 3).unwrap();
        // Control-form cat to the far node (2 hops) plus a bidirectional
        // block that the hop-aware tie sends through the split-Cat path.
        let mut c = Circuit::new(6);
        c.push(Gate::h(q(0))).unwrap();
        c.push(Gate::cx(q(0), q(4))).unwrap();
        c.push(Gate::cx(q(4), q(0))).unwrap();
        c.push(Gate::cx(q(0), q(5))).unwrap();
        verify_sparse(&c, &p, &topology, 31);
    }

    #[test]
    fn permuted_placement_lowering_is_exact() {
        use dqc_circuit::NodeId;
        // The same program under a non-identity block→node map must still
        // reproduce the logical state: the swap chains just follow
        // different links.
        let topology = NetworkTopology::linear(3).unwrap();
        let p = Partition::block(6, 3).unwrap();
        let placement =
            Placement::new(p.clone(), vec![NodeId::new(1), NodeId::new(0), NodeId::new(2)])
                .unwrap();
        let mut c = Circuit::new(6);
        c.push(Gate::h(q(0))).unwrap();
        c.push(Gate::cx(q(0), q(4))).unwrap();
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::cx(q(3), q(0))).unwrap();
        let agg = aggregate(&c, &p, AggregateOptions::default());
        let assigned = crate::assign_on(&agg, &placement, &topology);
        let physical = lower_assigned_on(&assigned, &placement, &topology).unwrap();

        let mut rng = SplitMix64::new(77);
        let input = StateVector::random_state(c.num_qubits(), &mut rng).unwrap();
        let mut expected = input.clone();
        expected.run(&c, &mut rng.fork()).unwrap();
        let total = physical.circuit.num_qubits();
        let mut amps = vec![dqc_sim::Complex::ZERO; 1 << total];
        amps[..input.amplitudes().len()].copy_from_slice(input.amplitudes());
        let mut state = StateVector::from_amplitudes(amps).unwrap();
        state.run(&physical.circuit, &mut rng).unwrap();
        let f = state.subset_fidelity(&expected, &physical.logical_qubits()).unwrap();
        assert!((f - 1.0).abs() < 1e-8, "placed fidelity {f}");
    }

    #[test]
    fn star_topology_lowering_is_exact() {
        let topology = NetworkTopology::star(3).unwrap();
        let p = Partition::block(6, 3).unwrap();
        // Leaf-to-leaf traffic (q2 on node 1 → node 2) relays via the hub.
        let mut c = Circuit::new(6);
        c.push(Gate::h(q(2))).unwrap();
        c.push(Gate::cx(q(2), q(4))).unwrap();
        c.push(Gate::h(q(2))).unwrap();
        c.push(Gate::cx(q(5), q(2))).unwrap();
        verify_sparse(&c, &p, &topology, 32);
    }
}
