//! `CommIr`: the indexed, DAG-backed program representation every pass
//! compiles against.
//!
//! Built once per compile (after unrolling), a [`CommIr`] bundles
//!
//! * an interned [`GateTable`] — each distinct gate stored once, everything
//!   downstream holds [`GateId`]s instead of cloned [`Gate`]s;
//! * the program `stream` — the unrolled circuit as gate ids in order;
//! * a commutation-aware [`DependencyDag`] over stream positions, built
//!   with a bounded wire window so construction stays linear even on long
//!   mutually-commuting runs — every edge is a proof that two gates
//!   conflict, which aggregation uses as an O(preds) negative filter
//!   before any commutation algebra runs;
//! * the per-(qubit, node) remote-gate statistics and occurrence lists the
//!   aggregation preprocessing ranks pairs by (paper §4.2), computed in a
//!   single sweep.
//!
//! [`AggregatedProgram`](crate::AggregatedProgram) and
//! [`AssignedProgram`](crate::AssignedProgram) share the `CommIr` by
//! [`Arc`], so the whole pipeline resolves gates through one table and
//! never re-derives commutation structure from raw gate pairs.

use std::sync::{Arc, OnceLock};

use dqc_circuit::{Circuit, DependencyDag, Gate, GateId, GateTable, NodeId, Partition, QubitId};

/// Default backward wire window for the conflict DAG (see
/// [`DependencyDag::commutation_aware_windowed`]).
pub const DAG_WINDOW: usize = 64;

/// The indexed IR one compile runs on. See the module docs.
#[derive(Clone, Debug)]
pub struct CommIr {
    table: GateTable,
    stream: Vec<GateId>,
    /// Lazily materialized conflict DAG: the default compile path streams
    /// predecessor sets through [`dqc_circuit::ConflictScan`] during
    /// aggregation and never forces this; passes that genuinely need the
    /// CSR graph (assignment parallel-group checks, analyses, property
    /// tests) get it on first [`CommIr::dag`] call.
    dag: OnceLock<DependencyDag>,
    partition: Partition,
    num_qubits: usize,
    num_cbits: usize,
    /// (qubit, node) pairs ranked by remote-gate count, descending (ties by
    /// ids, matching the aggregation preprocessing order).
    ranked_pairs: Vec<((QubitId, NodeId), usize)>,
    /// Stream positions of each pair's remote gates, ascending, densely
    /// indexed by `qubit * num_nodes + node`.
    occurrences: Vec<Vec<u32>>,
    num_nodes: usize,
}

impl CommIr {
    /// Builds the IR for `circuit` compiled against `partition`.
    ///
    /// # Panics
    ///
    /// Panics if the partition does not cover the circuit's register.
    pub fn build(circuit: &Circuit, partition: &Partition) -> Self {
        assert_eq!(
            circuit.num_qubits(),
            partition.num_qubits(),
            "partition must cover the circuit register"
        );
        let mut table = GateTable::with_capacity(circuit.len() / 2);
        let mut stream = Vec::with_capacity(circuit.len());
        let num_nodes = partition.num_nodes();
        let mut occurrences: Vec<Vec<u32>> = vec![Vec::new(); circuit.num_qubits() * num_nodes];
        for (pos, gate) in circuit.gates().iter().enumerate() {
            stream.push(table.intern(gate));
            for (q, node) in crate::remote_pairs_of(gate, partition) {
                occurrences[q.index() * num_nodes + node.index()].push(pos as u32);
            }
        }
        let mut ranked_pairs: Vec<((QubitId, NodeId), usize)> = occurrences
            .iter()
            .enumerate()
            .filter(|(_, occ)| !occ.is_empty())
            .map(|(slot, occ)| {
                ((QubitId::new(slot / num_nodes), NodeId::new(slot % num_nodes)), occ.len())
            })
            .collect();
        ranked_pairs
            .sort_by(|a, b| b.1.cmp(&a.1).then_with(|| (a.0 .0, a.0 .1).cmp(&(b.0 .0, b.0 .1))));
        CommIr {
            table,
            stream,
            dag: OnceLock::new(),
            partition: partition.clone(),
            num_qubits: circuit.num_qubits(),
            num_cbits: circuit.num_cbits(),
            ranked_pairs,
            occurrences,
            num_nodes,
        }
    }

    /// Builds the IR and wraps it for sharing across pass artifacts.
    pub fn build_shared(circuit: &Circuit, partition: &Partition) -> Arc<Self> {
        Arc::new(Self::build(circuit, partition))
    }

    /// The interned gate table.
    pub fn table(&self) -> &GateTable {
        &self.table
    }

    /// The qubit → node assignment the IR was built against.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Resolves a gate id.
    pub fn gate(&self, id: GateId) -> &Gate {
        self.table.gate(id)
    }

    /// The program stream: the unrolled circuit as interned ids, in order.
    pub fn stream(&self) -> &[GateId] {
        &self.stream
    }

    /// The gate at stream position `pos`.
    pub fn gate_at(&self, pos: usize) -> &Gate {
        self.table.gate(self.stream[pos])
    }

    /// Number of gates in the stream.
    pub fn len(&self) -> usize {
        self.stream.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.stream.is_empty()
    }

    /// Quantum register width.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Classical register width.
    pub fn num_cbits(&self) -> usize {
        self.num_cbits
    }

    /// The windowed commutation-aware dependency DAG over stream positions,
    /// materialized on first use (see the `dag` field docs; the default
    /// compile path never calls this).
    pub fn dag(&self) -> &DependencyDag {
        self.dag.get_or_init(|| {
            DependencyDag::commutation_aware_indexed(
                &self.table,
                &self.stream,
                self.num_qubits,
                self.num_cbits,
                DAG_WINDOW,
            )
        })
    }

    /// The conflict DAG if some pass already forced materialization, else
    /// `None`. Reporting paths use this so printing a compile artifact
    /// never pays for a graph the compile itself did not need.
    pub fn dag_if_built(&self) -> Option<&DependencyDag> {
        self.dag.get()
    }

    /// Edge count of the materialized conflict DAG, or `None` while it is
    /// still lazy.
    pub fn dag_edges_if_built(&self) -> Option<usize> {
        self.dag.get().map(DependencyDag::edge_count)
    }

    /// Whether stream positions `a < b` are linked by a direct conflict
    /// edge — a proof the two gates do not commute. Absence proves nothing.
    /// Forces DAG materialization.
    pub fn conflicts_directly(&self, a: usize, b: usize) -> bool {
        self.dag().has_edge(a, b)
    }

    /// (qubit, node) pairs ranked by remote-gate count, descending.
    pub fn ranked_pairs(&self) -> &[((QubitId, NodeId), usize)] {
        &self.ranked_pairs
    }

    /// Stream positions of a pair's remote gates, ascending.
    pub fn occurrences(&self, (q, node): (QubitId, NodeId)) -> &[u32] {
        self.occurrences
            .get(q.index() * self.num_nodes + node.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of distinct gates interned (the stream length bounds it).
    pub fn unique_gates(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_circuit::commutes;

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    fn sample() -> (Circuit, Partition) {
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::rz(0.5, q(0))).unwrap();
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::cx(q(1), q(3))).unwrap();
        (c, p)
    }

    #[test]
    fn interns_repeated_gates_once() {
        let (c, p) = sample();
        let ir = CommIr::build(&c, &p);
        assert_eq!(ir.len(), 4);
        assert_eq!(ir.unique_gates(), 3);
        assert_eq!(ir.stream()[0], ir.stream()[2]);
        assert_eq!(ir.gate_at(1), &Gate::rz(0.5, q(0)));
    }

    #[test]
    fn ranks_pairs_by_remote_count() {
        let (c, p) = sample();
        let ir = CommIr::build(&c, &p);
        let top = ir.ranked_pairs()[0];
        assert_eq!(top.0, (q(0), NodeId::new(1)));
        assert_eq!(top.1, 2);
        assert_eq!(ir.occurrences((q(0), NodeId::new(1))), &[0, 2]);
        assert_eq!(ir.occurrences((q(1), NodeId::new(1))), &[3]);
        assert!(ir.occurrences((q(2), NodeId::new(1))).is_empty());
    }

    #[test]
    fn dag_edges_are_conflict_proofs() {
        let (c, p) = sample();
        let ir = CommIr::build(&c, &p);
        for a in 0..ir.len() {
            for b in (a + 1)..ir.len() {
                if ir.conflicts_directly(a, b) {
                    assert!(
                        !commutes(ir.gate_at(a), ir.gate_at(b)),
                        "edge {a}->{b} links commuting gates"
                    );
                }
            }
        }
        // rz on the control commutes with both CXs: no edge touches it.
        assert!(!ir.conflicts_directly(0, 1));
        assert!(!ir.conflicts_directly(1, 2));
    }

    #[test]
    fn register_mismatch_panics() {
        let c = Circuit::new(4);
        let p = Partition::block(6, 2).unwrap();
        assert!(std::panic::catch_unwind(|| CommIr::build(&c, &p)).is_err());
    }
}
