//! Qubit placement: partition blocks pinned onto physical topology nodes.
//!
//! The historical pipeline consumed a raw [`Partition`] and implicitly
//! mapped partition block *i* onto physical node *i*. On a sparse
//! interconnect that arbitrary map leaves hop-weighted EPR cost on the
//! table: the hardware charges `comms × hops`, and which node a block lands
//! on decides the hops. [`Placement`] makes the block→node map explicit —
//! it is what `assign_on`, `schedule`, and `lower_assigned_on` consume now
//! — and [`comm_weighted_graph`] provides the post-aggregation interaction
//! weights the placement optimizer feeds on (burst blocks, not raw gate
//! counts).

use dqc_circuit::{NodeId, Partition, QubitId};
use dqc_partition::InteractionGraph;

use crate::{AggregatedProgram, CompileError, Item};

/// A qubit placement: a logical [`Partition`] (qubit → block) composed
/// with a block→node map (block → physical interconnect node).
///
/// The identity placement reproduces the historical behavior bit for bit;
/// every block→node map must be injective (two blocks cannot share a
/// physical node).
#[derive(Clone, Debug, PartialEq)]
pub struct Placement {
    partition: Partition,
    node_map: Vec<NodeId>,
    /// The composition: qubit → physical node (cached because the
    /// scheduler and the protocol expander look it up per gate).
    physical: Partition,
}

impl Placement {
    /// The identity placement: block `i` on physical node `i` (the
    /// historical implicit map).
    pub fn identity(partition: &Partition) -> Self {
        let node_map = (0..partition.num_nodes()).map(NodeId::new).collect();
        Placement::new(partition.clone(), node_map).expect("identity is always valid")
    }

    /// A placement with an explicit block→node map.
    ///
    /// # Errors
    ///
    /// [`CompileError::InvalidPlacement`] when the map's length differs
    /// from the partition's block count or two blocks share a node.
    pub fn new(partition: Partition, node_map: Vec<NodeId>) -> Result<Self, CompileError> {
        if node_map.len() != partition.num_nodes() {
            return Err(CompileError::InvalidPlacement {
                reason: format!(
                    "map covers {} block(s) but the partition has {}",
                    node_map.len(),
                    partition.num_nodes()
                ),
            });
        }
        // Sort-based duplicate detection: a dense seen-vector sized by the
        // largest index would let one absurd NodeId attempt a huge
        // allocation before validation could reject it.
        let mut sorted = node_map.clone();
        sorted.sort_unstable_by_key(|n| n.index());
        if let Some(dup) = sorted.windows(2).find(|w| w[0] == w[1]) {
            return Err(CompileError::InvalidPlacement {
                reason: format!("two blocks are placed on node {}", dup[0]),
            });
        }
        let physical_nodes =
            node_map.iter().map(|n| n.index() + 1).max().unwrap_or(partition.num_nodes());
        let physical = Partition::from_assignment(
            partition.assignment().iter().map(|block| node_map[block.index()]).collect(),
            physical_nodes.max(partition.num_nodes()),
        )
        .map_err(|e| CompileError::InvalidPlacement { reason: e.to_string() })?;
        Ok(Placement { partition, node_map, physical })
    }

    /// The logical partition (qubit → block). Aggregation and burst-pair
    /// discovery operate on this level.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The block→node map, indexed by partition block.
    pub fn node_map(&self) -> &[NodeId] {
        &self.node_map
    }

    /// The composed qubit → physical-node assignment. This is what the
    /// hardware timeline and the protocol expander consume: it decides
    /// which interconnect links a communication routes over.
    pub fn physical_partition(&self) -> &Partition {
        &self.physical
    }

    /// The physical node hosting partition block `block`.
    ///
    /// # Panics
    ///
    /// Panics when `block` is outside the partition.
    pub fn physical_of(&self, block: NodeId) -> NodeId {
        self.node_map[block.index()]
    }

    /// The physical node hosting qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside the partition.
    pub fn physical_node_of(&self, q: QubitId) -> NodeId {
        self.physical.node_of(q)
    }

    /// Number of partition blocks.
    pub fn num_nodes(&self) -> usize {
        self.partition.num_nodes()
    }

    /// Number of qubits covered.
    pub fn num_qubits(&self) -> usize {
        self.partition.num_qubits()
    }

    /// Whether this is the identity map (block `i` → node `i`).
    pub fn is_identity(&self) -> bool {
        self.node_map.iter().enumerate().all(|(i, n)| n.index() == i)
    }
}

/// The communication-weighted interaction graph of an aggregated program:
/// each burst block adds **one** unit of weight between its burst qubit
/// and every partner qubit (the block rides one burst communication
/// regardless of how many remote gates it carries), while local multi-qubit
/// gates keep their raw per-gate counts (splitting a local pair *creates*
/// remote gates, so their full weight must keep them together).
///
/// This is the post-aggregation re-weighting the placement loop feeds OEE:
/// raw gate counts overweight pairs whose gates merge into few
/// communications. [`InteractionGraph::from_circuit`] remains the
/// documented raw-gate fallback for circuits that have not been aggregated
/// yet.
pub fn comm_weighted_graph(program: &AggregatedProgram) -> InteractionGraph {
    let table = program.ir().table();
    let mut g = InteractionGraph::new(program.ir().num_qubits());
    for item in program.items() {
        match item {
            Item::Local(id) => {
                let gate = program.ir().gate(*id);
                if !gate.kind().is_unitary() || gate.num_qubits() < 2 {
                    continue;
                }
                let qs = gate.qubits();
                for i in 0..qs.len() {
                    for j in i + 1..qs.len() {
                        g.add_weight(qs[i], qs[j], 1);
                    }
                }
            }
            Item::Block(block) => {
                let q = block.qubit();
                for partner in block.partner_qubits(table) {
                    if partner != q {
                        g.add_weight(q, partner, 1);
                    }
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{aggregate, AggregateOptions};
    use dqc_circuit::{Circuit, Gate};

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn identity_placement_is_transparent() {
        let p = Partition::block(6, 3).unwrap();
        let placement = Placement::identity(&p);
        assert!(placement.is_identity());
        assert_eq!(placement.partition(), &p);
        assert_eq!(placement.physical_partition(), &p);
        assert_eq!(placement.physical_of(n(2)), n(2));
        assert_eq!(placement.physical_node_of(q(5)), p.node_of(q(5)));
    }

    #[test]
    fn permuted_placement_composes() {
        let p = Partition::block(6, 3).unwrap();
        let placement = Placement::new(p.clone(), vec![n(2), n(0), n(1)]).unwrap();
        assert!(!placement.is_identity());
        // Qubit 0 is in block 0, which lands on physical node 2.
        assert_eq!(placement.physical_node_of(q(0)), n(2));
        assert_eq!(placement.physical_node_of(q(2)), n(0));
        assert_eq!(placement.physical_node_of(q(4)), n(1));
        // Remote-ness is invariant under the relabeling.
        let g = Gate::cx(q(0), q(2));
        assert_eq!(p.is_remote(&g), placement.physical_partition().is_remote(&g));
    }

    #[test]
    fn invalid_maps_are_rejected() {
        let p = Partition::block(4, 2).unwrap();
        let short = Placement::new(p.clone(), vec![n(0)]);
        assert!(matches!(short, Err(CompileError::InvalidPlacement { .. })));
        let dup = Placement::new(p.clone(), vec![n(1), n(1)]);
        assert!(matches!(dup, Err(CompileError::InvalidPlacement { .. })));
        // Validation must not allocate proportionally to the largest index
        // (an absurd NodeId is rejected or accepted cheaply, never OOMed).
        let huge = Placement::new(p, vec![n(1 << 40), n(1 << 40)]);
        assert!(matches!(huge, Err(CompileError::InvalidPlacement { .. })));
    }

    #[test]
    fn comm_weighted_graph_counts_blocks_not_gates() {
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        // Five remote CXs between q0 and node 1 → one burst block.
        for _ in 0..5 {
            c.push(Gate::cx(q(0), q(2))).unwrap();
        }
        // Three local CXs stay at raw weight.
        for _ in 0..3 {
            c.push(Gate::cx(q(2), q(3))).unwrap();
        }
        let agg = aggregate(&c, &p, AggregateOptions::default());
        let g = comm_weighted_graph(&agg);
        assert_eq!(g.weight(q(0), q(2)), 1, "one block, one unit");
        assert_eq!(g.weight(q(2), q(3)), 3, "local gates keep raw counts");
        let raw = InteractionGraph::from_circuit(&c);
        assert_eq!(raw.weight(q(0), q(2)), 5, "the raw fallback counts gates");
    }
}
