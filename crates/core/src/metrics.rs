//! Evaluation metrics (paper §5.1), plus the EPR-buffering report of the
//! event-driven scheduler.

use dqc_circuit::NodeId;
use dqc_hardware::{BufferMetrics, BufferPolicy};

use crate::{AssignedProgram, Scheme};

/// What the EPR-buffering engine did during one scheduling run: the policy
/// in force, prefetch effectiveness, pair wait/staleness, and the per-node
/// buffer occupancy distribution. Attached to every
/// [`crate::ScheduleSummary`].
#[derive(Clone, Debug, PartialEq)]
pub struct BufferingReport {
    /// The requested [`BufferPolicy`].
    pub policy: BufferPolicy,
    /// Comm requests served (generations consumed end-to-end; multi-hop
    /// routes still count once here — per-hop pairs are in `epr_pairs`).
    pub requests: usize,
    /// Requests served by a pair generated ahead of consumption.
    pub prefetch_hits: usize,
    /// Requests generated at consumption time.
    pub prefetch_misses: usize,
    /// `prefetch_hits / requests` (0 when nothing communicated).
    pub hit_rate: f64,
    /// Mean time a burst waited past its ready point for its EPR pair, in
    /// CX units — the latency the buffer failed to hide.
    pub mean_epr_wait: f64,
    /// Mean age of a buffered pair between herald and consumption, in CX
    /// units — the staleness the prefetch depth bounds (see
    /// [`dqc_hardware::FidelityModel::epr_pair_fidelity`]).
    pub mean_pair_age: f64,
    /// `occupancy_hist[k]` counts buffer transitions that left a node
    /// holding `k` heralded pairs.
    pub occupancy_hist: Vec<u64>,
    /// Whether the buffered schedule lost to the on-demand rail and the
    /// legacy schedule was kept (the reported latency numbers are then the
    /// on-demand ones; the buffer statistics describe the discarded
    /// attempt).
    pub fell_back: bool,
}

impl BufferingReport {
    /// Builds the report from a run's raw [`BufferMetrics`].
    pub fn new(policy: BufferPolicy, metrics: &BufferMetrics, fell_back: bool) -> Self {
        BufferingReport {
            policy,
            requests: metrics.requests,
            prefetch_hits: metrics.prefetch_hits,
            prefetch_misses: metrics.prefetch_misses,
            hit_rate: metrics.hit_rate(),
            mean_epr_wait: metrics.mean_epr_wait(),
            mean_pair_age: metrics.mean_pair_age(),
            occupancy_hist: metrics.occupancy_hist.clone(),
            fell_back,
        }
    }
}

/// Communication-cost metrics of a compiled program, matching the columns
/// of paper Table 3.
///
/// Following the paper's convention, a TP-Comm block is charged **two**
/// communications (one handles the dirty side-effect) and its carried
/// remote-CX count is averaged over those two communications when
/// computing peaks and distributions.
#[derive(Clone, Debug, PartialEq)]
pub struct CommMetrics {
    /// Total remote communications (“Tot Comm” — EPR pairs under the
    /// metric convention).
    pub total_comms: usize,
    /// Communications issued by TP-Comm blocks (“TP-Comm” column; always
    /// even).
    pub tp_comms: usize,
    /// Largest number of remote CXs carried by one communication
    /// (“Peak # REM CX”).
    pub peak_rem_cx: f64,
    /// Total remote CX gates in the program (the sparse baseline's
    /// communication count).
    pub total_rem_cx: usize,
    /// Remote CXs carried per communication, one entry per communication.
    pub per_comm_rem_cx: Vec<f64>,
    /// Number of burst blocks.
    pub num_blocks: usize,
    /// Link-level EPR pairs the assignment is charged for under the
    /// hardware's routed hop distances (Σ [`crate::AssignedBlock::epr_cost`]
    /// = Σ comms × hops). Equals `total_comms` on all-to-all machines; the
    /// scheduler's consumption is at most this (TP fusion saves pairs).
    pub total_epr_cost: usize,
    /// Measured communication traffic per unordered *logical block* pair:
    /// `(block a, block b, comms)` with `a < b`, sorted, one entry per pair
    /// that communicated. This is the post-aggregation traffic matrix the
    /// iterative placement driver re-weights the interaction graph with —
    /// it counts communications the compiled program actually issues, not
    /// raw remote gate counts.
    pub pair_comms: Vec<(NodeId, NodeId, usize)>,
}

impl CommMetrics {
    /// Computes the metrics of an assigned program.
    pub fn of(program: &AssignedProgram) -> Self {
        let partition = program.ir().partition();
        let nodes = partition.num_nodes();
        let mut pair_traffic = vec![0usize; nodes * nodes];
        let mut total_comms = 0usize;
        let mut tp_comms = 0usize;
        let mut total_rem_cx = 0usize;
        let mut per_comm = Vec::new();
        let mut num_blocks = 0usize;
        let mut total_epr_cost = 0usize;
        for blk in program.blocks() {
            let (a, b) = {
                let home = blk.block.home(partition).index();
                let node = blk.block.node().index();
                (home.min(node), home.max(node))
            };
            pair_traffic[a * nodes + b] += blk.comms;
            num_blocks += 1;
            let rem = blk.block.remote_gate_count();
            total_rem_cx += rem;
            total_comms += blk.comms;
            total_epr_cost += blk.epr_cost;
            match blk.scheme {
                Scheme::Tp => {
                    tp_comms += blk.comms;
                    // The paper averages a TP block's payload over its two
                    // communications.
                    let each = rem as f64 / blk.comms as f64;
                    for _ in 0..blk.comms {
                        per_comm.push(each);
                    }
                }
                Scheme::Cat(_) => {
                    // One communication per single-call segment; payload
                    // split by segment would need the split bodies, but for
                    // single-call blocks (`comms == 1`) the whole payload
                    // rides one communication. For Cat-only splits we
                    // average, mirroring the TP convention.
                    let each = rem as f64 / blk.comms as f64;
                    for _ in 0..blk.comms {
                        per_comm.push(each);
                    }
                }
            }
        }
        let peak = per_comm.iter().copied().fold(0.0, f64::max);
        let pair_comms = pair_traffic
            .into_iter()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .map(|(slot, c)| (NodeId::new(slot / nodes), NodeId::new(slot % nodes), c))
            .collect();
        CommMetrics {
            total_comms,
            tp_comms,
            peak_rem_cx: peak,
            total_rem_cx,
            per_comm_rem_cx: per_comm,
            num_blocks,
            total_epr_cost,
            pair_comms,
        }
    }

    /// The [`CommMetrics::pair_comms`] traffic as a dense symmetric
    /// `num_nodes × num_nodes` matrix over logical blocks — the input shape
    /// the node-placement stage (`dqc_partition::place_blocks`) wants.
    pub fn traffic_matrix(&self, num_nodes: usize) -> Vec<Vec<u64>> {
        let mut t = vec![vec![0u64; num_nodes]; num_nodes];
        for &(a, b, comms) in &self.pair_comms {
            t[a.index()][b.index()] += comms as u64;
            t[b.index()][a.index()] += comms as u64;
        }
        t
    }

    /// The paper's “improv. factor” against a sparse baseline that issues
    /// one communication per remote CX.
    pub fn improvement_factor(&self) -> f64 {
        if self.total_comms == 0 {
            1.0
        } else {
            self.total_rem_cx as f64 / self.total_comms as f64
        }
    }
}

/// The Fig. 15 distribution: `Pr[one communication carries ≥ x REM-CXs]`
/// for `x = 1..=max`, returned as a vector indexed by `x - 1`.
///
/// ```
/// use autocomm::{burst_distribution, CommMetrics};
/// # use autocomm::{aggregate, assign, AggregateOptions};
/// # use dqc_circuit::{Circuit, Gate, Partition, QubitId};
/// # let q = |i| QubitId::new(i);
/// # let mut c = Circuit::new(4);
/// # c.push(Gate::cx(q(0), q(2))).unwrap();
/// # c.push(Gate::cx(q(0), q(3))).unwrap();
/// # let p = Partition::block(4, 2).unwrap();
/// # let program = assign(&aggregate(&c, &p, AggregateOptions::default()));
/// let metrics = CommMetrics::of(&program);
/// let dist = burst_distribution(&metrics, 4);
/// assert_eq!(dist[0], 1.0); // every comm carries ≥ 1
/// assert_eq!(dist[1], 1.0); // the single comm carries 2
/// assert_eq!(dist[3], 0.0); // none carries ≥ 4
/// ```
pub fn burst_distribution(metrics: &CommMetrics, max: usize) -> Vec<f64> {
    let n = metrics.per_comm_rem_cx.len();
    (1..=max)
        .map(|x| {
            if n == 0 {
                0.0
            } else {
                metrics.per_comm_rem_cx.iter().filter(|&&c| c >= x as f64).count() as f64 / n as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{aggregate, assign, AggregateOptions};
    use dqc_circuit::{Circuit, Gate, Partition, QubitId};

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    fn compile(c: &Circuit, p: &Partition) -> AssignedProgram {
        assign(&aggregate(c, p, AggregateOptions::default()))
    }

    #[test]
    fn cat_block_counts_one_comm() {
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::cx(q(0), q(3))).unwrap();
        let m = CommMetrics::of(&compile(&c, &p));
        assert_eq!(m.total_comms, 1);
        assert_eq!(m.tp_comms, 0);
        assert_eq!(m.total_rem_cx, 2);
        assert_eq!(m.peak_rem_cx, 2.0);
        assert_eq!(m.improvement_factor(), 2.0);
        assert_eq!(m.total_epr_cost, 1, "all-to-all: epr cost equals comms");
    }

    #[test]
    fn epr_cost_scales_with_hop_distance() {
        use dqc_hardware::NetworkTopology;
        let p = Partition::block(6, 3).unwrap();
        let mut c = Circuit::new(6);
        c.push(Gate::cx(q(0), q(4))).unwrap(); // node 0 → node 2: 2 hops on a chain
        c.push(Gate::cx(q(0), q(2))).unwrap(); // node 0 → node 1: adjacent
        let agg = aggregate(&c, &p, AggregateOptions::default());
        let dense = CommMetrics::of(&crate::assign(&agg));
        let sparse = CommMetrics::of(&crate::assign_on(
            &agg,
            &crate::Placement::identity(&p),
            &NetworkTopology::linear(3).unwrap(),
        ));
        assert_eq!(dense.total_comms, sparse.total_comms, "paper metric is topology-invariant");
        assert_eq!(dense.total_epr_cost, 2);
        assert_eq!(sparse.total_epr_cost, 3, "the 2-hop cat pays per hop");
    }

    #[test]
    fn tp_block_counts_two_comms_with_averaged_payload() {
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::cx(q(2), q(0))).unwrap();
        c.push(Gate::cx(q(0), q(3))).unwrap();
        c.push(Gate::cx(q(3), q(0))).unwrap();
        let m = CommMetrics::of(&compile(&c, &p));
        assert_eq!(m.num_blocks, 1);
        assert_eq!(m.total_comms, 2);
        assert_eq!(m.tp_comms, 2);
        assert_eq!(m.peak_rem_cx, 2.0); // 4 remote CX over 2 comms
        assert_eq!(m.improvement_factor(), 2.0);
    }

    #[test]
    fn empty_program_is_degenerate_but_safe() {
        let p = Partition::block(2, 2).unwrap();
        let c = Circuit::new(2);
        let m = CommMetrics::of(&compile(&c, &p));
        assert_eq!(m.total_comms, 0);
        assert_eq!(m.improvement_factor(), 1.0);
        assert_eq!(burst_distribution(&m, 3), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn pair_comms_records_the_block_traffic_matrix() {
        let p = Partition::block(6, 3).unwrap();
        let mut c = Circuit::new(6);
        c.push(Gate::cx(q(0), q(2))).unwrap(); // block 0 ↔ 1
        c.push(Gate::cx(q(0), q(4))).unwrap(); // block 0 ↔ 2
        c.push(Gate::cx(q(2), q(4))).unwrap(); // block 1 ↔ 2
        let m = CommMetrics::of(&compile(&c, &p));
        let n = dqc_circuit::NodeId::new;
        let total: usize = m.pair_comms.iter().map(|&(_, _, c)| c).sum();
        assert_eq!(total, m.total_comms, "pair traffic partitions the comm total");
        assert!(m.pair_comms.iter().all(|&(a, b, _)| a < b), "unordered pairs, a < b");
        assert!(m.pair_comms.iter().any(|&(a, b, _)| (a, b) == (n(0), n(1))));
        let t = m.traffic_matrix(3);
        assert_eq!(t[0][1], t[1][0], "dense matrix is symmetric");
        let dense_total: u64 = (0..3).map(|i| t[i].iter().sum::<u64>()).sum();
        assert_eq!(dense_total as usize, 2 * total);
    }

    #[test]
    fn distribution_is_monotone_nonincreasing() {
        let p = Partition::block(6, 3).unwrap();
        let c = dqc_circuit::unroll_circuit(&dqc_workloads::qft(6)).unwrap();
        let m = CommMetrics::of(&compile(&c, &p));
        let dist = burst_distribution(&m, 10);
        for w in dist.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(dist[0], 1.0);
    }
}
