//! Communication aggregation (paper §4.2).
//!
//! The pass uncovers burst communication hidden in the gate stream. For
//! each qubit-node pair, in descending order of remote-gate count
//! (*preprocessing*), it grows blocks along the circuit: gates between two
//! remote gates of the pair are *hoisted* out when they commute with
//! everything they would cross (the merge direction of paper Algorithm 1),
//! *absorbed* into the block interior when they are legal body gates
//! (Algorithm 1's `non_commute_gates`), or *deferred* behind the block
//! otherwise; an unmovable conflict seals the block (*linear merge*).
//! Remaining pairs are processed against the already-built blocks
//! (*iterative refinement*).
//!
//! Every reordering decision is justified by pairwise commutation
//! ([`dqc_circuit::commutes`]), so the flattened output is provably
//! equivalent to the input — property-tested against dense unitaries in the
//! integration suite.

use std::collections::{HashMap, HashSet};

use dqc_circuit::{commutes, Circuit, Gate, NodeId, Partition, QubitId};

use crate::{pair_stats, CommBlock};

/// One element of an aggregated program: a local gate or a burst block.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    /// A gate executed locally on one node (or a hoisted single-qubit gate).
    Local(Gate),
    /// A burst-communication block.
    Block(CommBlock),
}

/// The output of the aggregation pass: an ordered item list whose
/// flattening is commutation-equivalent to the input circuit.
#[derive(Clone, Debug, PartialEq)]
pub struct AggregatedProgram {
    items: Vec<Item>,
    num_qubits: usize,
    num_cbits: usize,
}

impl AggregatedProgram {
    /// Assembles a program from parts (crate-internal; used by passes and
    /// tests that build programs directly).
    #[cfg(test)]
    pub(crate) fn from_items(items: Vec<Item>, num_qubits: usize, num_cbits: usize) -> Self {
        AggregatedProgram { items, num_qubits, num_cbits }
    }

    /// The items in execution order.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Iterates over the burst blocks in execution order.
    pub fn blocks(&self) -> impl Iterator<Item = &CommBlock> {
        self.items.iter().filter_map(|i| match i {
            Item::Block(b) => Some(b),
            Item::Local(_) => None,
        })
    }

    /// Number of burst blocks.
    pub fn block_count(&self) -> usize {
        self.blocks().count()
    }

    /// Register width of the underlying program.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Flattens back to a plain circuit (blocks inlined in body order) —
    /// the form used for equivalence checking against the input.
    pub fn to_circuit(&self) -> Circuit {
        let mut c = Circuit::with_cbits(self.num_qubits, self.num_cbits);
        for item in &self.items {
            match item {
                Item::Local(g) => c.push(g.clone()).expect("registers preserved"),
                Item::Block(b) => {
                    for g in b.gates() {
                        c.push(g.clone()).expect("registers preserved");
                    }
                }
            }
        }
        c
    }
}

/// Tuning knobs for aggregation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AggregateOptions {
    /// Cap on the deferred-item window behind an open block; exceeding it
    /// seals the block (bounds worst-case quadratic behaviour).
    pub defer_limit: usize,
}

impl Default for AggregateOptions {
    fn default() -> Self {
        AggregateOptions { defer_limit: 64 }
    }
}

/// Runs the aggregation pass. The circuit should already be unrolled to the
/// CX+U3 basis (remote multi-qubit gates other than two-qubit unitaries are
/// left as local items and never blocked).
///
/// # Panics
///
/// Panics if the partition does not cover the circuit's register (checked
/// by the pipeline before calling).
pub fn aggregate(
    circuit: &Circuit,
    partition: &Partition,
    options: AggregateOptions,
) -> AggregatedProgram {
    assert_eq!(
        circuit.num_qubits(),
        partition.num_qubits(),
        "partition must cover the circuit register"
    );

    // Rank pairs by remote-gate count (preprocessing order).
    let stats = pair_stats(circuit, partition);
    let mut pairs: Vec<((QubitId, NodeId), usize)> = stats.into_iter().collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| (a.0 .0, a.0 .1).cmp(&(b.0 .0, b.0 .1))));

    // Occurrence lists: pair → original gate indices (arena slot ids).
    let mut occurrences: HashMap<(QubitId, NodeId), Vec<usize>> = HashMap::new();
    for (idx, gate) in circuit.gates().iter().enumerate() {
        for pair in crate::remote_pairs_of(gate, partition) {
            occurrences.entry(pair).or_default().push(idx);
        }
    }

    let mut arena = Arena::from_circuit(circuit);
    for (pair, _) in pairs {
        let slots = occurrences.remove(&pair).unwrap_or_default();
        process_pair(&mut arena, partition, pair, &slots, options);
    }

    AggregatedProgram {
        items: arena.into_items(),
        num_qubits: circuit.num_qubits(),
        num_cbits: circuit.num_cbits(),
    }
}

/// The no-commutation ablation of paper Fig. 17(a): every remote gate
/// becomes its own singleton block — without commutation reasoning, no two
/// remote gates of a pair can be proven co-executable (they always share
/// the burst qubit).
pub fn aggregate_no_commute(circuit: &Circuit, partition: &Partition) -> AggregatedProgram {
    let items = circuit
        .gates()
        .iter()
        .map(|g| {
            if g.is_two_qubit_unitary() && partition.is_remote(g) {
                let (q, node) = crate::remote_pairs_of(g, partition)[0];
                let mut b = CommBlock::new(q, node);
                b.push(g.clone());
                Item::Block(b)
            } else {
                Item::Local(g.clone())
            }
        })
        .collect();
    AggregatedProgram { items, num_qubits: circuit.num_qubits(), num_cbits: circuit.num_cbits() }
}

// ---------------------------------------------------------------------------
// Linked-arena item list: O(1) hoist/absorb/remove while preserving slot ids.
// ---------------------------------------------------------------------------

struct Arena {
    slots: Vec<Option<Item>>,
    next: Vec<usize>,
    prev: Vec<usize>,
    head: usize, // sentinel index = slots.len()
}

impl Arena {
    fn from_circuit(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let sentinel = n; // the sentinel owns slot `n` (kept `None`)
        let mut next = vec![0; n + 1];
        let mut prev = vec![0; n + 1];
        for i in 0..=n {
            next[i] = if i == n { 0 } else { i + 1 };
            prev[i] = if i == 0 { sentinel } else { i - 1 };
        }
        next[n] = if n == 0 { sentinel } else { 0 };
        prev[0] = sentinel;
        let mut slots: Vec<Option<Item>> =
            circuit.gates().iter().cloned().map(Item::Local).map(Some).collect();
        slots.push(None); // sentinel slot, so new slots never collide with it
        Arena { slots, next, prev, head: sentinel }
    }

    fn sentinel(&self) -> usize {
        self.head
    }

    fn unlink(&mut self, i: usize) -> Item {
        let (p, n) = (self.prev[i], self.next[i]);
        self.next[p] = n;
        self.prev[n] = p;
        self.slots[i].take().expect("unlink of live slot")
    }

    /// Moves the live slot `i` to just before the live slot `before`.
    fn move_before(&mut self, i: usize, before: usize) {
        let item = self.unlink(i);
        self.slots[i] = Some(item);
        let p = self.prev[before];
        self.next[p] = i;
        self.prev[i] = p;
        self.next[i] = before;
        self.prev[before] = i;
    }

    fn into_items(self) -> Vec<Item> {
        let mut out = Vec::with_capacity(self.slots.len());
        let sentinel = self.sentinel();
        let mut cur = self.next[sentinel];
        let mut slots = self.slots;
        while cur != sentinel {
            if let Some(item) = slots[cur].take() {
                out.push(item);
            }
            cur = self.next[cur];
        }
        out
    }
}

fn item_gates(item: &Item) -> &[Gate] {
    match item {
        Item::Local(g) => std::slice::from_ref(g),
        Item::Block(b) => b.gates(),
    }
}

fn item_commutes_with_gates(item: &Item, gates: &[Gate]) -> bool {
    item_gates(item).iter().all(|a| gates.iter().all(|b| commutes(a, b)))
}

/// Builds blocks for one qubit-node pair along its occurrence list.
fn process_pair(
    arena: &mut Arena,
    partition: &Partition,
    (q, node): (QubitId, NodeId),
    slots: &[usize],
    options: AggregateOptions,
) {
    let is_pair_gate = |g: &Gate| -> bool {
        g.is_two_qubit_unitary()
            && g.condition().is_none()
            && g.acts_on(q)
            && g.qubits().iter().all(|&x| x == q || partition.node_of(x) == node)
    };

    // Remaining live occurrences of this pair.
    let live: Vec<usize> = slots
        .iter()
        .copied()
        .filter(|&s| matches!(&arena.slots[s], Some(Item::Local(g)) if is_pair_gate(g)))
        .collect();
    if live.is_empty() {
        return;
    }
    let live_set: HashSet<usize> = live.iter().copied().collect();
    let last_slot = *live.last().expect("non-empty");

    let mut idx = 0usize;
    while idx < live.len() {
        let start = live[idx];
        // The occurrence may have been absorbed by an earlier block of this
        // same pass (we only advance `idx` on seals, so re-check liveness).
        if !matches!(&arena.slots[start], Some(Item::Local(g)) if is_pair_gate(g)) {
            idx += 1;
            continue;
        }
        // Open a block in place of the first pair gate.
        let first_gate = match arena.slots[start].take() {
            Some(Item::Local(g)) => g,
            _ => unreachable!("liveness checked above"),
        };
        let mut block = CommBlock::new(q, node);
        block.push(first_gate);
        arena.slots[start] = Some(Item::Block(CommBlock::new(q, node))); // placeholder
        let mut block_qubits: HashSet<QubitId> = block.involved_qubits().into_iter().collect();

        // Deferred items: stay physically in place (after the block slot).
        let mut deferred: Vec<usize> = Vec::new();
        let mut deferred_qubits: HashSet<QubitId> = HashSet::new();

        let mut cur = arena.next[start];
        let sentinel = arena.sentinel();
        let mut remaining = live[idx + 1..].iter().filter(|s| live_set.contains(s)).count();

        while cur != sentinel && remaining > 0 && cur <= last_slot {
            let nxt = arena.next[cur];
            let is_occurrence = live_set.contains(&cur)
                && matches!(&arena.slots[cur], Some(Item::Local(g)) if is_pair_gate(g));

            if is_occurrence {
                remaining -= 1;
                // Joining crosses every deferred item (they end up after the
                // block); all of them must commute with this gate.
                let joins = {
                    let Some(Item::Local(g)) = &arena.slots[cur] else { unreachable!() };
                    deferred.iter().all(|&d| {
                        let item = arena.slots[d].as_ref().expect("deferred slot live");
                        item_commutes_with_gates(item, std::slice::from_ref(g))
                    })
                };
                if joins {
                    let Item::Local(g) = arena.unlink(cur) else { unreachable!() };
                    block_qubits.extend(g.qubits().iter().copied());
                    block.push(g);
                } else {
                    // Seal here and restart a fresh block at this occurrence.
                    break;
                }
            } else if arena.slots[cur].is_some() {
                let item = arena.slots[cur].as_ref().expect("live");
                let disjoint_fast = item_gates(item).iter().all(|g| {
                    g.qubits()
                        .iter()
                        .all(|x| !block_qubits.contains(x) && !deferred_qubits.contains(x))
                        && g.cbit().is_none()
                        && g.condition().is_none()
                });
                let can_hoist = disjoint_fast
                    || (item_commutes_with_gates(item, block.gates())
                        && deferred.iter().all(|&d| {
                            let dit = arena.slots[d].as_ref().expect("live");
                            item_gates(item)
                                .iter()
                                .all(|a| item_gates(dit).iter().all(|b| commutes(a, b)))
                        }));
                if can_hoist {
                    arena.move_before(cur, start);
                } else {
                    let absorbable = match item {
                        Item::Local(g) => {
                            g.kind().is_unitary()
                                && g.condition().is_none()
                                && g.qubits()
                                    .iter()
                                    .all(|&x| x == q || partition.node_of(x) == node)
                                && deferred.iter().all(|&d| {
                                    let dit = arena.slots[d].as_ref().expect("live");
                                    item_commutes_with_gates(dit, std::slice::from_ref(g))
                                })
                        }
                        Item::Block(_) => false,
                    };
                    if absorbable {
                        let Item::Local(g) = arena.unlink(cur) else { unreachable!() };
                        block_qubits.extend(g.qubits().iter().copied());
                        block.push(g);
                    } else {
                        if deferred.len() >= options.defer_limit {
                            break;
                        }
                        for g in item_gates(item) {
                            deferred_qubits.extend(g.qubits().iter().copied());
                        }
                        deferred.push(cur);
                    }
                }
            }
            cur = nxt;
        }

        // Seal: trim trailing interior gates back out as local items.
        let trimmed = block.trim_trailing_locals();
        arena.slots[start] = Some(Item::Block(block));
        let mut insert_after = start;
        for g in trimmed {
            // Re-insert each trimmed gate right after the block, preserving
            // order; allocate fresh slots at the end of the arena.
            let slot = arena.slots.len();
            arena.slots.push(Some(Item::Local(g)));
            let after_next = arena.next[insert_after];
            arena.next.push(after_next);
            arena.prev.push(insert_after);
            arena.next[insert_after] = slot;
            arena.prev[after_next] = slot;
            insert_after = slot;
        }
        idx += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    fn aggregate_default(c: &Circuit, p: &Partition) -> AggregatedProgram {
        aggregate(c, p, AggregateOptions::default())
    }

    #[test]
    fn two_shared_control_cx_form_one_block() {
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::cx(q(0), q(3))).unwrap();
        let agg = aggregate_default(&c, &p);
        assert_eq!(agg.block_count(), 1);
        let b = agg.blocks().next().unwrap();
        assert_eq!(b.remote_gate_count(), 2);
        assert_eq!(b.qubit(), q(0));
    }

    #[test]
    fn hoistable_gate_between_remote_gates() {
        // RZ on the control commutes and is hoisted out of the block.
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::rz(0.5, q(0))).unwrap();
        c.push(Gate::cx(q(0), q(3))).unwrap();
        let agg = aggregate_default(&c, &p);
        assert_eq!(agg.block_count(), 1);
        let b = agg.blocks().next().unwrap();
        assert_eq!(b.len(), 2, "rz must be hoisted, not absorbed");
        // The rz survives as a local item.
        assert!(agg
            .items()
            .iter()
            .any(|i| matches!(i, Item::Local(g) if g.kind() == dqc_circuit::GateKind::Rz)));
    }

    #[test]
    fn non_commuting_interior_gate_is_absorbed() {
        // H on a remote-node qubit between two CXs onto that qubit: interior.
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::h(q(2))).unwrap();
        c.push(Gate::cx(q(0), q(2))).unwrap();
        let agg = aggregate_default(&c, &p);
        assert_eq!(agg.block_count(), 1);
        let b = agg.blocks().next().unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b.remote_gate_count(), 2);
    }

    #[test]
    fn blocking_remote_gate_splits_blocks() {
        // A non-commuting remote gate of another pair interrupts the burst.
        let p = Partition::block(6, 3).unwrap();
        let mut c = Circuit::new(6);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::cx(q(4), q(0))).unwrap(); // touches q0 as target: blocks
        c.push(Gate::cx(q(0), q(3))).unwrap();
        let agg = aggregate_default(&c, &p);
        // Pair (q0, N1) has 2 gates but they cannot merge across CX(q4,q0).
        let blocks: Vec<_> = agg.blocks().collect();
        assert_eq!(blocks.len(), 3);
        assert!(blocks.iter().all(|b| b.remote_gate_count() == 1));
    }

    #[test]
    fn commuting_remote_gate_of_other_pair_is_deferred_or_hoisted() {
        // CX(q1,q4) shares no operands with the (q0,N1) block: hoisted.
        let p = Partition::block(6, 3).unwrap();
        let mut c = Circuit::new(6);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::cx(q(1), q(4))).unwrap();
        c.push(Gate::cx(q(0), q(3))).unwrap();
        let agg = aggregate_default(&c, &p);
        let pair0_blocks: Vec<_> = agg.blocks().filter(|b| b.qubit() == q(0)).collect();
        assert_eq!(pair0_blocks.len(), 1);
        assert_eq!(pair0_blocks[0].remote_gate_count(), 2);
    }

    #[test]
    fn flattening_preserves_gate_multiset() {
        let (c, p) = dqc_workloads::random_distributed_circuit(6, 3, 120, 5);
        let c = dqc_circuit::unroll_circuit(&c).unwrap();
        let agg = aggregate_default(&c, &p);
        let flat = agg.to_circuit();
        assert_eq!(flat.len(), c.len());
        // Same multiset of gates (order may differ).
        let mut a: Vec<String> = c.gates().iter().map(|g| g.to_string()).collect();
        let mut b: Vec<String> = flat.gates().iter().map(|g| g.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn aggregation_is_semantics_preserving_on_random_circuits() {
        for seed in 0..8 {
            let (c, p) = dqc_workloads::random_distributed_circuit(5, 2, 40, seed);
            let c = dqc_circuit::unroll_circuit(&c).unwrap();
            let agg = aggregate_default(&c, &p);
            let flat = agg.to_circuit();
            assert!(
                dqc_sim::circuits_equivalent(&c, &flat, 1e-8).unwrap(),
                "aggregation changed semantics at seed {seed}"
            );
        }
    }

    #[test]
    fn every_remote_gate_lands_in_exactly_one_block() {
        let (c, p) = dqc_workloads::random_distributed_circuit(6, 2, 200, 11);
        let c = dqc_circuit::unroll_circuit(&c).unwrap();
        let remote_in = c.gates().iter().filter(|g| p.is_remote(g)).count();
        let agg = aggregate_default(&c, &p);
        let remote_blocks: usize = agg.blocks().map(|b| b.remote_gate_count()).sum();
        assert_eq!(remote_in, remote_blocks);
        // And no remote gate remains as a local item.
        for item in agg.items() {
            if let Item::Local(g) = item {
                assert!(!p.is_remote(g), "remote gate {g} left outside blocks");
            }
        }
    }

    #[test]
    fn no_commute_ablation_builds_singletons() {
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::cx(q(0), q(3))).unwrap();
        let agg = aggregate_no_commute(&c, &p);
        assert_eq!(agg.block_count(), 2);
        assert!(agg.blocks().all(|b| b.remote_gate_count() == 1));
    }

    #[test]
    fn bv_oracle_aggregates_per_node() {
        // 9-qubit BV over 3 nodes: ancilla on node 0; inputs 1,2 local,
        // inputs 3..9 remote → one block per remote node.
        let c = dqc_workloads::bv_with_secret(&[true; 8]);
        let p = Partition::block(9, 3).unwrap();
        let agg = aggregate_default(&c, &p);
        assert_eq!(agg.block_count(), 2);
        for b in agg.blocks() {
            assert_eq!(b.qubit(), q(0));
            assert_eq!(b.remote_gate_count(), 3);
        }
    }

    #[test]
    fn qft_blocks_collect_full_node_interactions() {
        // Unrolled QFT: each (qubit, node) block carries 2·t remote CXs.
        let c = dqc_circuit::unroll_circuit(&dqc_workloads::qft(8)).unwrap();
        let p = Partition::block(8, 2).unwrap();
        let agg = aggregate_default(&c, &p);
        let max_block = agg.blocks().map(|b| b.remote_gate_count()).max().unwrap();
        assert!(max_block >= 6, "expected bursts of ≥ 6 remote CX, got {max_block}");
        let equivalent = dqc_sim::circuits_equivalent(&c, &agg.to_circuit(), 1e-8).unwrap();
        assert!(equivalent, "QFT aggregation must preserve semantics");
    }
}
