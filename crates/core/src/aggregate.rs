//! Communication aggregation (paper §4.2), over the indexed IR.
//!
//! The pass uncovers burst communication hidden in the gate stream. For
//! each qubit-node pair, in descending order of remote-gate count
//! (*preprocessing*, precomputed by [`CommIr`]), it grows blocks along the
//! circuit: gates between two remote gates of the pair are *hoisted* out
//! when they commute with everything they would cross (the merge direction
//! of paper Algorithm 1), *absorbed* into the block interior when they are
//! legal body gates (Algorithm 1's `non_commute_gates`), or *deferred*
//! behind the block otherwise; an unmovable conflict seals the block
//! (*linear merge*). Remaining pairs are processed against the
//! already-built blocks (*iterative refinement*).
//!
//! Since the `CommIr` refactor the merge loop never re-derives commutation
//! from raw gate pairs:
//!
//! * items are [`GateId`]s into the shared table — hoisting and absorbing
//!   move `u32` indices, not cloned gates;
//! * "does this item commute with the whole block (and the deferred
//!   window)?" is answered by two incremental [`CommSummary`]s in
//!   `O(operands)` instead of an `O(block · deferred)` rescan, with
//!   answers *identical* to the pairwise [`dqc_circuit::commutes`] oracle;
//! * the precomputed conflict DAG supplies an `O(preds)` negative filter:
//!   a direct edge from a block or deferred member proves the candidate
//!   cannot move before either summary is consulted.
//!
//! Every reordering decision is still justified by pairwise commutation,
//! so the flattened output is provably equivalent to the input —
//! property-tested against dense unitaries in the integration suite.

use std::sync::Arc;

use dqc_circuit::{Circuit, CommSummary, Gate, GateId, GateTable, NodeId, Partition, QubitId};

use crate::{CommBlock, CommIr};

/// One element of an aggregated program: a local gate or a burst block.
/// Local gates are ids into the program's [`CommIr`] table.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    /// A gate executed locally on one node (or a hoisted single-qubit gate).
    Local(GateId),
    /// A burst-communication block.
    Block(CommBlock),
}

/// The output of the aggregation pass: an ordered item list whose
/// flattening is commutation-equivalent to the input circuit, indexed into
/// the compile's shared [`CommIr`].
#[derive(Clone, Debug)]
pub struct AggregatedProgram {
    ir: Arc<CommIr>,
    items: Vec<Item>,
}

impl PartialEq for AggregatedProgram {
    fn eq(&self, other: &Self) -> bool {
        // Item lists are table-relative; compare through resolution.
        self.num_qubits() == other.num_qubits()
            && self.ir.num_cbits() == other.ir.num_cbits()
            && self.items.len() == other.items.len()
            && self.items.iter().zip(&other.items).all(|(a, b)| match (a, b) {
                (Item::Local(x), Item::Local(y)) => self.gate(*x) == other.gate(*y),
                (Item::Block(x), Item::Block(y)) => {
                    x.qubit() == y.qubit()
                        && x.node() == y.node()
                        && x.ids().len() == y.ids().len()
                        && x.gates(self.ir.table())
                            .zip(y.gates(other.ir.table()))
                            .all(|(g, h)| g == h)
                }
                _ => false,
            })
    }
}

impl AggregatedProgram {
    /// Assembles a program from parts (crate-internal; used by passes and
    /// tests that build programs directly).
    #[cfg(test)]
    pub(crate) fn from_parts(ir: Arc<CommIr>, items: Vec<Item>) -> Self {
        AggregatedProgram { ir, items }
    }

    /// The shared indexed IR this program resolves against.
    pub fn ir(&self) -> &Arc<CommIr> {
        &self.ir
    }

    /// Resolves a gate id through the program's table.
    pub fn gate(&self, id: GateId) -> &Gate {
        self.ir.gate(id)
    }

    /// The items in execution order.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Iterates over the burst blocks in execution order.
    pub fn blocks(&self) -> impl Iterator<Item = &CommBlock> {
        self.items.iter().filter_map(|i| match i {
            Item::Block(b) => Some(b),
            Item::Local(_) => None,
        })
    }

    /// Number of burst blocks.
    pub fn block_count(&self) -> usize {
        self.blocks().count()
    }

    /// Register width of the underlying program.
    pub fn num_qubits(&self) -> usize {
        self.ir.num_qubits()
    }

    /// Flattens back to a plain circuit (blocks inlined in body order) —
    /// the form used for equivalence checking against the input.
    pub fn to_circuit(&self) -> Circuit {
        let mut c = Circuit::with_cbits(self.num_qubits(), self.ir.num_cbits());
        for item in &self.items {
            match item {
                Item::Local(id) => c.push(self.gate(*id).clone()).expect("registers preserved"),
                Item::Block(b) => {
                    for g in b.gates(self.ir.table()) {
                        c.push(g.clone()).expect("registers preserved");
                    }
                }
            }
        }
        c
    }
}

/// Tuning knobs for aggregation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AggregateOptions {
    /// Cap on the deferred-item window behind an open block; exceeding it
    /// seals the block (bounds worst-case quadratic behaviour).
    pub defer_limit: usize,
    /// Reference rail: force-materialize the conflict DAG and use its edge
    /// lists as the negative filter (the historical path), instead of the
    /// default streaming per-wire member filter that never builds the CSR
    /// arrays. Both rails produce bit-identical programs (every decision is
    /// ultimately justified by the [`CommSummary`] oracles; the filters only
    /// short-circuit provably-failing checks) — property-tested in the
    /// integration suite and asserted by the `frontend_scale_gate` bench.
    pub materialized_dag: bool,
}

impl Default for AggregateOptions {
    fn default() -> Self {
        AggregateOptions { defer_limit: 64, materialized_dag: false }
    }
}

/// Deterministic working-set counters from one aggregation run (see
/// [`aggregate_ir_with_stats`]); the `frontend_scale_gate` bench records
/// them in its baseline and asserts the bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AggregateStats {
    /// Peak live entries in the streaming conflict filter (newest block /
    /// deferred member per wire, generation-stamped). Always 0 on the
    /// materialized-DAG rail.
    pub peak_tracked_entries: usize,
    /// Hard bound on `peak_tracked_entries`: two entries (block + deferred)
    /// per qubit wire and per classical bit — `O(wires)`, independent of
    /// stream length.
    pub tracked_entry_bound: usize,
    /// Whether the run used the materialized-DAG reference rail.
    pub used_materialized_dag: bool,
}

/// Runs the aggregation pass on a circuit, building the indexed IR first.
/// Pipelines that already built a [`CommIr`] should call [`aggregate_ir`]
/// to reuse it. The circuit should already be unrolled to the CX+U3 basis
/// (remote multi-qubit gates other than two-qubit unitaries are left as
/// local items and never blocked).
///
/// # Panics
///
/// Panics if the partition does not cover the circuit's register (checked
/// by the pipeline before calling).
pub fn aggregate(
    circuit: &Circuit,
    partition: &Partition,
    options: AggregateOptions,
) -> AggregatedProgram {
    aggregate_ir(CommIr::build_shared(circuit, partition), options)
}

/// Runs the aggregation pass over a prebuilt [`CommIr`].
pub fn aggregate_ir(ir: Arc<CommIr>, options: AggregateOptions) -> AggregatedProgram {
    aggregate_ir_with_stats(ir, options).0
}

/// [`aggregate_ir`] plus the run's working-set counters.
pub fn aggregate_ir_with_stats(
    ir: Arc<CommIr>,
    options: AggregateOptions,
) -> (AggregatedProgram, AggregateStats) {
    if options.materialized_dag {
        // Reference rail: force the CSR build up front so the filter below
        // sees a complete graph (and the rail's cost honestly includes it).
        ir.dag();
    }
    let mut arena = Arena::from_ir(&ir);
    let mut ws = Workspace::new(&ir, options.materialized_dag);
    for i in 0..ir.ranked_pairs().len() {
        let (pair, _) = ir.ranked_pairs()[i];
        process_pair(&mut arena, &ir, pair, &mut ws, options);
    }
    let stats = AggregateStats {
        peak_tracked_entries: ws.peak_tracked,
        tracked_entry_bound: 2 * (ir.num_qubits() + ir.num_cbits()),
        used_materialized_dag: options.materialized_dag,
    };
    (AggregatedProgram { items: arena.into_items(), ir }, stats)
}

/// The no-commutation ablation of paper Fig. 17(a): every remote gate
/// becomes its own singleton block — without commutation reasoning, no two
/// remote gates of a pair can be proven co-executable (they always share
/// the burst qubit).
pub fn aggregate_no_commute(circuit: &Circuit, partition: &Partition) -> AggregatedProgram {
    aggregate_no_commute_ir(CommIr::build_shared(circuit, partition))
}

/// [`aggregate_no_commute`] over a prebuilt [`CommIr`].
pub fn aggregate_no_commute_ir(ir: Arc<CommIr>) -> AggregatedProgram {
    let partition = ir.partition();
    let items = ir
        .stream()
        .iter()
        .map(|&id| {
            let g = ir.gate(id);
            if g.is_two_qubit_unitary() && partition.is_remote(g) {
                let (q, node) = crate::remote_pairs_of(g, partition)[0];
                let mut b = CommBlock::new(q, node);
                b.push(id, g);
                Item::Block(b)
            } else {
                Item::Local(id)
            }
        })
        .collect();
    AggregatedProgram { items, ir }
}

// ---------------------------------------------------------------------------
// Linked-arena item list: O(1) hoist/absorb/remove while preserving slot
// ids. Slots are packed to eight bytes (a tag plus a `u32` payload into the
// gate table or the side block store), so the hot hoist loop walks a cache-
// friendly array instead of a vector of full items.
// ---------------------------------------------------------------------------

/// One arena slot: dead, a local gate id, or an index into the block store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slot {
    Dead,
    Local(GateId),
    Block(u32),
}

struct Arena {
    slots: Vec<Slot>,
    /// Burst blocks, referenced by `Slot::Block` indices.
    blocks: Vec<CommBlock>,
    next: Vec<u32>,
    prev: Vec<u32>,
    head: u32, // sentinel index = slots.len() at build time
}

impl Arena {
    fn from_ir(ir: &CommIr) -> Self {
        let n = ir.len();
        let sentinel = n as u32; // the sentinel owns slot `n` (kept dead)
        let mut next = vec![0u32; n + 1];
        let mut prev = vec![0u32; n + 1];
        for i in 0..=n {
            next[i] = if i == n { 0 } else { i as u32 + 1 };
            prev[i] = if i == 0 { sentinel } else { i as u32 - 1 };
        }
        next[n] = if n == 0 { sentinel } else { 0 };
        prev[0] = sentinel;
        let mut slots: Vec<Slot> = ir.stream().iter().map(|&id| Slot::Local(id)).collect();
        slots.push(Slot::Dead); // sentinel slot, so new slots never collide
        Arena { slots, blocks: Vec::new(), next, prev, head: sentinel }
    }

    fn sentinel(&self) -> usize {
        self.head as usize
    }

    /// Unlinks slot `i` from the list and kills it, returning its payload.
    fn unlink(&mut self, i: usize) -> Slot {
        let (p, n) = (self.prev[i] as usize, self.next[i] as usize);
        self.next[p] = self.next[i];
        self.prev[n] = self.prev[i];
        std::mem::replace(&mut self.slots[i], Slot::Dead)
    }

    /// Moves the live slot `i` to just before the live slot `before`
    /// (pointer surgery only — the payload stays in its slot).
    fn move_before(&mut self, i: usize, before: usize) {
        let (p, n) = (self.prev[i] as usize, self.next[i] as usize);
        self.next[p] = self.next[i];
        self.prev[n] = self.prev[i];
        let b = self.prev[before];
        self.next[b as usize] = i as u32;
        self.prev[i] = b;
        self.next[i] = before as u32;
        self.prev[before] = i as u32;
    }

    /// Appends a fresh slot holding `slot` right after `after`, returning
    /// its index.
    fn insert_after(&mut self, after: usize, slot: Slot) -> usize {
        let idx = self.slots.len();
        self.slots.push(slot);
        let after_next = self.next[after];
        self.next.push(after_next);
        self.prev.push(after as u32);
        self.next[after] = idx as u32;
        self.prev[after_next as usize] = idx as u32;
        idx
    }

    /// The ids of the item in slot `i` (one for locals, the body for
    /// blocks).
    fn ids_at(&self, i: usize) -> &[GateId] {
        match &self.slots[i] {
            Slot::Local(id) => std::slice::from_ref(id),
            Slot::Block(bi) => self.blocks[*bi as usize].ids(),
            Slot::Dead => &[],
        }
    }

    fn into_items(self) -> Vec<Item> {
        let mut out = Vec::with_capacity(self.slots.len());
        let sentinel = self.sentinel();
        let mut blocks: Vec<Option<CommBlock>> = self.blocks.into_iter().map(Some).collect();
        let mut cur = self.next[sentinel] as usize;
        while cur != sentinel {
            match self.slots[cur] {
                Slot::Local(id) => out.push(Item::Local(id)),
                Slot::Block(bi) => {
                    out.push(Item::Block(blocks[bi as usize].take().expect("block used once")));
                }
                Slot::Dead => {}
            }
            cur = self.next[cur] as usize;
        }
        out
    }
}

/// Reused per-block scratch state: the two commutation summaries, the
/// folded qubit masks, and the stamped DAG membership marks.
struct Workspace {
    /// Summary of the open block's body.
    block: CommSummary,
    /// Summary of every gate in the deferred window.
    deferred: CommSummary,
    /// Folded wire mask of block-body and deferred gates (see
    /// [`GateTable::wire_mask`]; only ever conservative).
    touched_mask: u64,
    /// Generation-stamped block membership per original stream position.
    block_pos: Vec<u32>,
    /// Generation-stamped deferred membership per original stream position.
    defer_pos: Vec<u32>,
    /// Generation-stamped occurrence set of the pair being processed.
    occ_pos: Vec<u32>,
    /// Occurrence-set generation (bumped per pair, not per block).
    occ_gen: u32,
    gen: u32,
    /// Whether to filter through the materialized DAG's edge lists
    /// (reference rail) instead of the streaming per-wire member maps.
    use_dag: bool,
    /// Streaming filter state: newest block member touching each qubit wire
    /// (then each classical bit), generation-stamped. A candidate conflicts
    /// with the open block iff it fails to commute with *some* member on a
    /// shared wire — and the newest one is already a sound witness, because
    /// any hit short-circuits exactly what [`CommSummary::commutes_with`]
    /// would answer. Total live entries are bounded by two per wire,
    /// `O(wires)`, where the CSR edge arrays grow `O(gates)`.
    block_wire: Vec<(u32, Option<GateId>)>,
    /// Newest deferred member per qubit wire / classical bit.
    defer_wire: Vec<(u32, Option<GateId>)>,
    /// Live entries stamped with the current generation, and the peak
    /// across the whole run (deterministic; reported by
    /// [`aggregate_ir_with_stats`]).
    tracked: usize,
    peak_tracked: usize,
    /// Classical bits live at `cbit_base + bit` in the wire maps.
    cbit_base: usize,
}

impl Workspace {
    fn new(ir: &CommIr, use_dag: bool) -> Self {
        let wires = ir.num_qubits() + ir.num_cbits();
        Workspace {
            block: CommSummary::new(ir.num_qubits(), ir.num_cbits()),
            deferred: CommSummary::new(ir.num_qubits(), ir.num_cbits()),
            touched_mask: 0,
            block_pos: vec![0; ir.len()],
            defer_pos: vec![0; ir.len()],
            occ_pos: vec![0; ir.len()],
            occ_gen: 0,
            gen: 0,
            use_dag,
            block_wire: vec![(0, None); wires],
            defer_wire: vec![(0, None); wires],
            tracked: 0,
            peak_tracked: 0,
            cbit_base: ir.num_qubits(),
        }
    }

    /// Registers `positions` as the current pair's occurrence set.
    fn set_occurrences(&mut self, positions: &[usize]) {
        self.occ_gen += 1;
        for &s in positions {
            self.occ_pos[s] = self.occ_gen;
        }
    }

    fn is_occurrence_pos(&self, pos: usize) -> bool {
        self.occ_pos.get(pos).copied() == Some(self.occ_gen)
    }

    fn open_block(&mut self) {
        self.gen += 1;
        self.touched_mask = 0;
        self.block.clear();
        self.deferred.clear();
        // The wire maps invalidate by generation; only the live count
        // resets (stale entries are overwritten lazily on the next stamp).
        self.tracked = 0;
    }

    /// Stamps `id` as the newest member of the current generation on every
    /// wire it touches (streaming filter bookkeeping).
    fn stamp_wires(map: &mut [(u32, Option<GateId>)], gen: u32, w: usize, id: GateId) -> usize {
        let fresh = usize::from(map[w].0 != gen);
        map[w] = (gen, Some(id));
        fresh
    }

    fn add_to_block(&mut self, table: &GateTable, pos: usize, id: GateId) {
        self.block.add(table, id);
        self.touched_mask |= table.wire_mask(id);
        if let Some(m) = self.block_pos.get_mut(pos) {
            *m = self.gen;
        }
        if !self.use_dag {
            for w in table.qubit_indices(id) {
                self.tracked += Self::stamp_wires(&mut self.block_wire, self.gen, w, id);
            }
            for bit in table.classical_bits(id) {
                self.tracked +=
                    Self::stamp_wires(&mut self.block_wire, self.gen, self.cbit_base + bit, id);
            }
            self.peak_tracked = self.peak_tracked.max(self.tracked);
        }
    }

    fn add_to_deferred(&mut self, table: &GateTable, pos: usize, id: GateId) {
        self.deferred.add(table, id);
        self.touched_mask |= table.wire_mask(id);
        if let Some(m) = self.defer_pos.get_mut(pos) {
            *m = self.gen;
        }
        if !self.use_dag {
            for w in table.qubit_indices(id) {
                self.tracked += Self::stamp_wires(&mut self.defer_wire, self.gen, w, id);
            }
            for bit in table.classical_bits(id) {
                self.tracked +=
                    Self::stamp_wires(&mut self.defer_wire, self.gen, self.cbit_base + bit, id);
            }
            self.peak_tracked = self.peak_tracked.max(self.tracked);
        }
    }

    /// The negative conflict filter: whether a current block (resp.
    /// deferred) member provably does not commute with the candidate.
    ///
    /// Two interchangeable implementations, bit-identical in output because
    /// either way a `true` short-circuits exactly what the
    /// [`CommSummary::commutes_with`] checks downstream would answer:
    ///
    /// * **streaming** (default): probe the newest member on each wire the
    ///   candidate touches — `O(operands)` lookups against `O(wires)`
    ///   state, no CSR arrays anywhere;
    /// * **materialized** (reference rail): walk the candidate's DAG
    ///   predecessor list and test generation membership — the historical
    ///   path, kept for A/B benchmarking and the property tests.
    fn conflicts(&self, ir: &CommIr, pos: usize, ids: &[GateId]) -> (bool, bool) {
        if self.use_dag {
            let mut in_block = false;
            let mut in_defer = false;
            if pos < ir.len() {
                for &p in ir.dag().predecessors(pos) {
                    if self.block_pos[p as usize] == self.gen {
                        in_block = true;
                    }
                    if self.defer_pos[p as usize] == self.gen {
                        in_defer = true;
                    }
                }
            }
            return (in_block, in_defer);
        }
        let table = ir.table();
        let mut in_block = false;
        let mut in_defer = false;
        for &id in ids {
            for w in
                table.qubit_indices(id).chain(table.classical_bits(id).map(|b| self.cbit_base + b))
            {
                if !in_block {
                    if let (g, Some(member)) = self.block_wire[w] {
                        if g == self.gen && !table.commutes_ids(member, id) {
                            in_block = true;
                        }
                    }
                }
                if !in_defer {
                    if let (g, Some(member)) = self.defer_wire[w] {
                        if g == self.gen && !table.commutes_ids(member, id) {
                            in_defer = true;
                        }
                    }
                }
            }
            if in_block && in_defer {
                break;
            }
        }
        (in_block, in_defer)
    }
}

/// Builds blocks for one qubit-node pair along its occurrence list.
fn process_pair(
    arena: &mut Arena,
    ir: &CommIr,
    (q, node): (QubitId, NodeId),
    ws: &mut Workspace,
    options: AggregateOptions,
) {
    let table = ir.table();
    let partition = ir.partition();
    let is_pair_gate = |g: &Gate| -> bool {
        g.is_two_qubit_unitary()
            && g.condition().is_none()
            && g.acts_on(q)
            && g.qubits().iter().all(|&x| x == q || partition.node_of(x) == node)
    };
    let is_live_occurrence = |arena: &Arena, s: usize| -> bool {
        matches!(&arena.slots[s], Slot::Local(id) if is_pair_gate(table.gate(*id)))
    };

    // Remaining live occurrences of this pair (stream positions, ascending).
    let live: Vec<usize> = ir
        .occurrences((q, node))
        .iter()
        .map(|&s| s as usize)
        .filter(|&s| is_live_occurrence(arena, s))
        .collect();
    if live.is_empty() {
        return;
    }
    let last_slot = *live.last().expect("non-empty");
    // Occurrence membership by position (generation-stamped, reused across
    // pairs — the old per-pair hash set).
    ws.set_occurrences(&live);

    let mut idx = 0usize;
    while idx < live.len() {
        let start = live[idx];
        // The occurrence may have been absorbed by an earlier block of this
        // same pass (we only advance `idx` on seals, so re-check liveness).
        if !is_live_occurrence(arena, start) {
            idx += 1;
            continue;
        }
        // Open a block in place of the first pair gate.
        let Slot::Local(first_id) = arena.slots[start] else { unreachable!("liveness checked") };
        let bi = arena.blocks.len();
        let mut block = CommBlock::new(q, node);
        block.push(first_id, table.gate(first_id));
        arena.blocks.push(block);
        arena.slots[start] = Slot::Block(bi as u32);
        ws.open_block();
        ws.add_to_block(table, start, first_id);

        // Deferred items stay physically in place (after the block slot).
        let mut deferred_items = 0usize;

        let mut cur = arena.next[start] as usize;
        let sentinel = arena.sentinel();
        let mut remaining = live.len() - idx - 1;

        while cur != sentinel && remaining > 0 && cur <= last_slot {
            let nxt = arena.next[cur] as usize;
            let slot = arena.slots[cur];
            let is_occurrence = ws.is_occurrence_pos(cur)
                && matches!(slot, Slot::Local(id) if is_pair_gate(table.gate(id)));

            if is_occurrence {
                remaining -= 1;
                let Slot::Local(id) = slot else { unreachable!() };
                // Joining crosses every deferred item (they end up after the
                // block); all of them must commute with this gate.
                if ws.deferred.commutes_with(table, id) {
                    arena.unlink(cur);
                    ws.add_to_block(table, cur, id);
                    arena.blocks[bi].push(id, table.gate(id));
                } else {
                    // Seal here and restart a fresh block at this occurrence.
                    break;
                }
            } else if slot != Slot::Dead {
                let disjoint_fast = match slot {
                    Slot::Local(gid) => table.disjoint_mask(gid) & ws.touched_mask == 0,
                    _ => arena
                        .ids_at(cur)
                        .iter()
                        .all(|&gid| table.disjoint_mask(gid) & ws.touched_mask == 0),
                };
                // Negative conflict filter: a proven non-commuting block or
                // deferred member means the item cannot be hoisted (and,
                // for deferred conflicts, cannot be absorbed either).
                let (edge_block, edge_defer) = if disjoint_fast {
                    (false, false)
                } else {
                    ws.conflicts(ir, cur, arena.ids_at(cur))
                };
                let can_hoist = disjoint_fast
                    || (!edge_block
                        && !edge_defer
                        && arena.ids_at(cur).iter().all(|&gid| {
                            ws.block.commutes_with(table, gid)
                                && ws.deferred.commutes_with(table, gid)
                        }));
                if can_hoist {
                    arena.move_before(cur, start);
                } else {
                    let absorbable = match slot {
                        Slot::Local(id) => {
                            let g = table.gate(id);
                            !edge_defer
                                && g.kind().is_unitary()
                                && g.condition().is_none()
                                && g.qubits()
                                    .iter()
                                    .all(|&x| x == q || partition.node_of(x) == node)
                                && ws.deferred.commutes_with(table, id)
                        }
                        _ => false,
                    };
                    if absorbable {
                        let Slot::Local(id) = slot else { unreachable!() };
                        arena.unlink(cur);
                        ws.add_to_block(table, cur, id);
                        arena.blocks[bi].push(id, table.gate(id));
                    } else {
                        if deferred_items >= options.defer_limit {
                            break;
                        }
                        for k in 0..arena.ids_at(cur).len() {
                            let gid = arena.ids_at(cur)[k];
                            ws.add_to_deferred(table, cur, gid);
                        }
                        deferred_items += 1;
                    }
                }
            }
            cur = nxt;
        }

        // Seal: trim trailing interior gates back out as local items.
        let trimmed = arena.blocks[bi].trim_trailing_locals(table);
        let mut insert_after = start;
        for id in trimmed {
            // Re-insert each trimmed gate right after the block, preserving
            // order; allocate fresh slots at the end of the arena.
            insert_after = arena.insert_after(insert_after, Slot::Local(id));
        }
        idx += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_circuit::GateKind;

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    fn aggregate_default(c: &Circuit, p: &Partition) -> AggregatedProgram {
        aggregate(c, p, AggregateOptions::default())
    }

    #[test]
    fn two_shared_control_cx_form_one_block() {
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::cx(q(0), q(3))).unwrap();
        let agg = aggregate_default(&c, &p);
        assert_eq!(agg.block_count(), 1);
        let b = agg.blocks().next().unwrap();
        assert_eq!(b.remote_gate_count(), 2);
        assert_eq!(b.qubit(), q(0));
    }

    #[test]
    fn hoistable_gate_between_remote_gates() {
        // RZ on the control commutes and is hoisted out of the block.
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::rz(0.5, q(0))).unwrap();
        c.push(Gate::cx(q(0), q(3))).unwrap();
        let agg = aggregate_default(&c, &p);
        assert_eq!(agg.block_count(), 1);
        let b = agg.blocks().next().unwrap();
        assert_eq!(b.len(), 2, "rz must be hoisted, not absorbed");
        // The rz survives as a local item.
        assert!(agg
            .items()
            .iter()
            .any(|i| matches!(i, Item::Local(id) if agg.gate(*id).kind() == GateKind::Rz)));
    }

    #[test]
    fn non_commuting_interior_gate_is_absorbed() {
        // H on a remote-node qubit between two CXs onto that qubit: interior.
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::h(q(2))).unwrap();
        c.push(Gate::cx(q(0), q(2))).unwrap();
        let agg = aggregate_default(&c, &p);
        assert_eq!(agg.block_count(), 1);
        let b = agg.blocks().next().unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b.remote_gate_count(), 2);
    }

    #[test]
    fn blocking_remote_gate_splits_blocks() {
        // A non-commuting remote gate of another pair interrupts the burst.
        let p = Partition::block(6, 3).unwrap();
        let mut c = Circuit::new(6);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::cx(q(4), q(0))).unwrap(); // touches q0 as target: blocks
        c.push(Gate::cx(q(0), q(3))).unwrap();
        let agg = aggregate_default(&c, &p);
        // Pair (q0, N1) has 2 gates but they cannot merge across CX(q4,q0).
        let blocks: Vec<_> = agg.blocks().collect();
        assert_eq!(blocks.len(), 3);
        assert!(blocks.iter().all(|b| b.remote_gate_count() == 1));
    }

    #[test]
    fn commuting_remote_gate_of_other_pair_is_deferred_or_hoisted() {
        // CX(q1,q4) shares no operands with the (q0,N1) block: hoisted.
        let p = Partition::block(6, 3).unwrap();
        let mut c = Circuit::new(6);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::cx(q(1), q(4))).unwrap();
        c.push(Gate::cx(q(0), q(3))).unwrap();
        let agg = aggregate_default(&c, &p);
        let pair0_blocks: Vec<_> = agg.blocks().filter(|b| b.qubit() == q(0)).collect();
        assert_eq!(pair0_blocks.len(), 1);
        assert_eq!(pair0_blocks[0].remote_gate_count(), 2);
    }

    #[test]
    fn flattening_preserves_gate_multiset() {
        let (c, p) = dqc_workloads::random_distributed_circuit(6, 3, 120, 5);
        let c = dqc_circuit::unroll_circuit(&c).unwrap();
        let agg = aggregate_default(&c, &p);
        let flat = agg.to_circuit();
        assert_eq!(flat.len(), c.len());
        // Same multiset of gates (order may differ).
        let mut a: Vec<String> = c.gates().iter().map(|g| g.to_string()).collect();
        let mut b: Vec<String> = flat.gates().iter().map(|g| g.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn aggregation_is_semantics_preserving_on_random_circuits() {
        for seed in 0..8 {
            let (c, p) = dqc_workloads::random_distributed_circuit(5, 2, 40, seed);
            let c = dqc_circuit::unroll_circuit(&c).unwrap();
            let agg = aggregate_default(&c, &p);
            let flat = agg.to_circuit();
            assert!(
                dqc_sim::circuits_equivalent(&c, &flat, 1e-8).unwrap(),
                "aggregation changed semantics at seed {seed}"
            );
        }
    }

    #[test]
    fn every_remote_gate_lands_in_exactly_one_block() {
        let (c, p) = dqc_workloads::random_distributed_circuit(6, 2, 200, 11);
        let c = dqc_circuit::unroll_circuit(&c).unwrap();
        let remote_in = c.gates().iter().filter(|g| p.is_remote(g)).count();
        let agg = aggregate_default(&c, &p);
        let remote_blocks: usize = agg.blocks().map(|b| b.remote_gate_count()).sum();
        assert_eq!(remote_in, remote_blocks);
        // And no remote gate remains as a local item.
        for item in agg.items() {
            if let Item::Local(id) = item {
                let g = agg.gate(*id);
                assert!(!p.is_remote(g), "remote gate {g} left outside blocks");
            }
        }
    }

    #[test]
    fn no_commute_ablation_builds_singletons() {
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::cx(q(0), q(3))).unwrap();
        let agg = aggregate_no_commute(&c, &p);
        assert_eq!(agg.block_count(), 2);
        assert!(agg.blocks().all(|b| b.remote_gate_count() == 1));
    }

    #[test]
    fn bv_oracle_aggregates_per_node() {
        // 9-qubit BV over 3 nodes: ancilla on node 0; inputs 1,2 local,
        // inputs 3..9 remote → one block per remote node.
        let c = dqc_workloads::bv_with_secret(&[true; 8]);
        let p = Partition::block(9, 3).unwrap();
        let agg = aggregate_default(&c, &p);
        assert_eq!(agg.block_count(), 2);
        for b in agg.blocks() {
            assert_eq!(b.qubit(), q(0));
            assert_eq!(b.remote_gate_count(), 3);
        }
    }

    #[test]
    fn qft_blocks_collect_full_node_interactions() {
        // Unrolled QFT: each (qubit, node) block carries 2·t remote CXs.
        let c = dqc_circuit::unroll_circuit(&dqc_workloads::qft(8)).unwrap();
        let p = Partition::block(8, 2).unwrap();
        let agg = aggregate_default(&c, &p);
        let max_block = agg.blocks().map(|b| b.remote_gate_count()).max().unwrap();
        assert!(max_block >= 6, "expected bursts of ≥ 6 remote CX, got {max_block}");
        let equivalent = dqc_sim::circuits_equivalent(&c, &agg.to_circuit(), 1e-8).unwrap();
        assert!(equivalent, "QFT aggregation must preserve semantics");
    }

    #[test]
    fn streaming_filter_matches_materialized_dag_rail() {
        for seed in 0..6 {
            let (c, p) = dqc_workloads::random_distributed_circuit(6, 3, 200, seed);
            let c = dqc_circuit::unroll_circuit(&c).unwrap();
            for defer_limit in [0usize, 2, 64] {
                let streaming =
                    aggregate(&c, &p, AggregateOptions { defer_limit, materialized_dag: false });
                let materialized =
                    aggregate(&c, &p, AggregateOptions { defer_limit, materialized_dag: true });
                assert_eq!(
                    streaming, materialized,
                    "rails drifted at seed {seed}, defer_limit {defer_limit}"
                );
            }
        }
    }

    #[test]
    fn streaming_filter_working_set_is_wire_bounded() {
        let (c, p) = dqc_workloads::random_distributed_circuit(8, 2, 400, 3);
        let c = dqc_circuit::unroll_circuit(&c).unwrap();
        let ir = CommIr::build_shared(&c, &p);
        let (_, stats) = aggregate_ir_with_stats(ir.clone(), AggregateOptions::default());
        assert!(!stats.used_materialized_dag);
        assert_eq!(stats.tracked_entry_bound, 2 * (ir.num_qubits() + ir.num_cbits()));
        assert!(stats.peak_tracked_entries <= stats.tracked_entry_bound);
        // The default path never forced the lazy DAG.
        assert!(ir.dag_edges_if_built().is_none());
        let (_, dag_stats) = aggregate_ir_with_stats(
            ir.clone(),
            AggregateOptions { materialized_dag: true, ..AggregateOptions::default() },
        );
        assert!(dag_stats.used_materialized_dag);
        assert_eq!(dag_stats.peak_tracked_entries, 0);
        assert!(ir.dag_edges_if_built().is_some());
    }

    #[test]
    fn repeated_gates_share_table_slots() {
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        for _ in 0..10 {
            c.push(Gate::cx(q(0), q(2))).unwrap();
            c.push(Gate::h(q(2))).unwrap();
        }
        let agg = aggregate_default(&c, &p);
        assert_eq!(agg.ir().unique_gates(), 2);
        assert_eq!(agg.to_circuit().len(), 20);
    }
}
