//! Serializable compiled-program artifacts — the cache value of the
//! compile service.
//!
//! A [`CompiledArtifact`] captures everything a compile produced that is a
//! pure function of the input (circuit, placement flags, buffer policy):
//! the job configuration echo, circuit/IR statistics, the placement
//! report, the full [`CommMetrics`] and [`BufferingReport`], the schedule
//! scalars with per-link EPR traffic, and the lowered program itself as a
//! [`CommOp`] sequence (cat-entangle and TP bursts with materialized
//! bodies, in program order — the InQuIR-style program exchange format).
//! Wall-clock pass timings are deliberately excluded: an artifact is
//! deterministic per cache key, so a cache hit can be byte-identical to
//! the cold compile that produced it.
//!
//! The wire form ([`CompiledArtifact::to_text`] / `from_text`) is a
//! line-oriented text format with one canonical emission: floats use
//! Rust's shortest-round-trip `Display`, lists are comma-joined with `-`
//! for empty, so serialize → deserialize → re-serialize is byte-identical
//! (property-tested across the workload suite and every topology family).

use std::fmt;

use dqc_circuit::{CBitId, Gate, GateKind, NodeId, QubitId};
use dqc_hardware::{BufferPolicy, HardwareSpec};

use crate::metrics::{BufferingReport, CommMetrics};
use crate::pipeline::{Ablation, CompileResult, PlacementReport, PlacementWork};
use crate::{lower_plan, CommOp};

/// Version tag of the artifact text format. v2 added the `placement_work`
/// record (optimizer work counters).
pub const ARTIFACT_VERSION: u32 = 2;

/// The compile-job configuration an artifact echoes back — everything in
/// the cache key except the circuit content hash (which keys the circuit
/// text itself).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ArtifactConfig {
    /// The full content-addressed cache key the artifact was compiled
    /// under.
    pub key: String,
    /// Number of hardware nodes.
    pub nodes: usize,
    /// Communication qubits per node.
    pub comm_qubits: usize,
    /// Resolved topology name (`all-to-all`, `linear`, …).
    pub topology: String,
    /// Number of interconnect links.
    pub links: usize,
    /// Topology diameter in hops (`None` for a single node).
    pub diameter: Option<usize>,
    /// Placement strategy name (`block`, `oee`, `topo`).
    pub strategy: String,
    /// Refinement-round bound for topology-aware placement.
    pub refine_iters: usize,
    /// EPR buffering policy.
    pub buffer: BufferPolicy,
    /// Applied ablations, in flag order.
    pub ablations: Vec<Ablation>,
}

/// Unrolled-circuit statistics echoed by an artifact.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct ArtifactCircuitStats {
    /// Logical qubits.
    pub qubits: usize,
    /// Unrolled gates.
    pub gates: usize,
    /// Two-qubit gates after unrolling.
    pub two_qubit_gates: usize,
    /// Remote CX gates under the final partition.
    pub remote_cx: usize,
}

/// Indexed-IR statistics echoed by an artifact.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct ArtifactIrStats {
    /// Gates in the IR stream.
    pub gates: usize,
    /// Distinct interned gates.
    pub unique_gates: usize,
    /// Dependency-DAG edges.
    pub dag_edges: usize,
    /// Ranked (qubit, node) burst pairs.
    pub burst_pairs: usize,
}

/// Schedule scalars echoed by an artifact (the deterministic subset of
/// [`crate::ScheduleSummary`] — recorded event timelines are a debugging
/// aid, not artifact content).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ArtifactSchedule {
    /// Program latency in CX units.
    pub makespan: f64,
    /// EPR pairs consumed (per link-level generation).
    pub epr_pairs: usize,
    /// Entanglement swaps at relay nodes.
    pub swaps: usize,
    /// Teleports saved by TP fusion.
    pub fusion_savings: usize,
    /// Cat blocks scheduled.
    pub cat_blocks: usize,
    /// TP blocks scheduled.
    pub tp_blocks: usize,
    /// EPR pairs generated per interconnect link.
    pub link_traffic: Vec<(NodeId, NodeId, usize)>,
}

/// A serializable compiled program: configuration echo, metrics, schedule,
/// and the lowered [`CommOp`] sequence. See the module docs for the wire
/// format.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledArtifact {
    /// The job configuration this artifact answers.
    pub config: ArtifactConfig,
    /// Unrolled-circuit statistics.
    pub circuit: ArtifactCircuitStats,
    /// Indexed-IR statistics.
    pub ir: ArtifactIrStats,
    /// What the placement driver did.
    pub placement: PlacementReport,
    /// The paper's evaluation metrics.
    pub metrics: CommMetrics,
    /// What the EPR-buffering engine did.
    pub buffering: BufferingReport,
    /// Schedule scalars and per-link traffic.
    pub schedule: ArtifactSchedule,
    /// The lowered program, in program order.
    pub program: Vec<CommOp>,
}

/// A malformed artifact text.
#[derive(Clone, Debug, PartialEq)]
pub struct ArtifactError {
    /// 1-based line of the first offending record.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "artifact line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ArtifactError {}

impl CompiledArtifact {
    /// Captures the artifact of a finished compile: `result` and
    /// `placement` as returned by the pipeline, `hw` for the resolved
    /// topology, and the already-known configuration echo in `config`
    /// (whose topology fields are overwritten from `hw` so they cannot
    /// drift from the machine actually compiled against).
    pub fn capture(
        mut config: ArtifactConfig,
        circuit: ArtifactCircuitStats,
        hw: &HardwareSpec,
        placement: &PlacementReport,
        result: &CompileResult,
    ) -> CompiledArtifact {
        let topology = hw.topology();
        config.topology = topology.name().to_string();
        config.links = topology.links().len();
        config.diameter = topology.diameter();
        let s = &result.schedule;
        CompiledArtifact {
            config,
            circuit,
            ir: ArtifactIrStats {
                gates: result.ir.len(),
                unique_gates: result.ir.unique_gates(),
                // 0 when the compile never materialized the lazy conflict
                // DAG (the streaming-aggregation default).
                dag_edges: result.ir.dag_edges_if_built().unwrap_or(0),
                burst_pairs: result.ir.ranked_pairs().len(),
            },
            placement: placement.clone(),
            metrics: result.metrics.clone(),
            buffering: s.buffering.clone(),
            schedule: ArtifactSchedule {
                makespan: s.makespan,
                epr_pairs: s.epr_pairs,
                swaps: s.swaps,
                fusion_savings: s.fusion_savings,
                cat_blocks: s.cat_blocks,
                tp_blocks: s.tp_blocks,
                link_traffic: s.link_traffic.clone(),
            },
            program: lower_plan(&result.assigned, &result.placement),
        }
    }

    /// Serializes to the canonical line-oriented text form. Emission is
    /// deterministic, so equal artifacts serialize to equal bytes and
    /// `from_text` → `to_text` is the identity on any valid text.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(256 + self.program.len() * 32);
        let c = &self.config;
        out.push_str(&format!("autocomm-artifact v{ARTIFACT_VERSION}\n"));
        out.push_str(&format!("key {}\n", c.key));
        out.push_str(&format!("nodes {}\n", c.nodes));
        out.push_str(&format!("comm_qubits {}\n", c.comm_qubits));
        out.push_str(&format!(
            "topology {} {} {}\n",
            c.topology,
            c.links,
            c.diameter.map_or("-".to_string(), |d| d.to_string())
        ));
        out.push_str(&format!("strategy {}\n", c.strategy));
        out.push_str(&format!("refine_iters {}\n", c.refine_iters));
        out.push_str(&format!("buffer {}\n", c.buffer.name()));
        out.push_str(&format!(
            "ablations {}\n",
            join_or_dash(c.ablations.iter().map(|a| a.name().to_string()))
        ));
        out.push_str(&format!(
            "circuit {} {} {} {}\n",
            self.circuit.qubits,
            self.circuit.gates,
            self.circuit.two_qubit_gates,
            self.circuit.remote_cx
        ));
        out.push_str(&format!(
            "ir {} {} {} {}\n",
            self.ir.gates, self.ir.unique_gates, self.ir.dag_edges, self.ir.burst_pairs
        ));
        let p = &self.placement;
        out.push_str(&format!(
            "placement {} {} {} {} {} {}\n",
            p.iterations,
            p.cut_weight,
            p.weighted_cost,
            p.initial_epr_cost,
            p.final_epr_cost,
            join_or_dash(p.node_map.iter().map(|n| n.index().to_string()))
        ));
        let w = &p.work;
        out.push_str(&format!(
            "placement_work {} {} {} {} {} {}\n",
            w.oee_exchanges,
            w.oee_scanned,
            w.oee_cache_hits,
            w.place_exchanges,
            w.rounds_skipped,
            u8::from(w.saturated)
        ));
        let m = &self.metrics;
        out.push_str(&format!(
            "metrics {} {} {} {} {} {}\n",
            m.total_comms,
            m.tp_comms,
            m.peak_rem_cx,
            m.total_rem_cx,
            m.num_blocks,
            m.total_epr_cost
        ));
        out.push_str(&format!(
            "per_comm_rem_cx {}\n",
            join_or_dash(m.per_comm_rem_cx.iter().map(|x| x.to_string()))
        ));
        out.push_str(&format!(
            "pair_comms {}\n",
            join_or_dash(m.pair_comms.iter().map(|(a, b, n)| format!(
                "{}:{}:{}",
                a.index(),
                b.index(),
                n
            )))
        ));
        let b = &self.buffering;
        out.push_str(&format!(
            "buffering {} {} {} {} {} {} {} {}\n",
            b.policy.name(),
            b.requests,
            b.prefetch_hits,
            b.prefetch_misses,
            b.hit_rate,
            b.mean_epr_wait,
            b.mean_pair_age,
            u8::from(b.fell_back)
        ));
        out.push_str(&format!(
            "occupancy_hist {}\n",
            join_or_dash(b.occupancy_hist.iter().map(|x| x.to_string()))
        ));
        let s = &self.schedule;
        out.push_str(&format!(
            "schedule {} {} {} {} {} {}\n",
            s.makespan, s.epr_pairs, s.swaps, s.fusion_savings, s.cat_blocks, s.tp_blocks
        ));
        out.push_str(&format!(
            "link_traffic {}\n",
            join_or_dash(s.link_traffic.iter().map(|(a, b, n)| format!(
                "{}:{}:{}",
                a.index(),
                b.index(),
                n
            )))
        ));
        out.push_str(&format!("ops {}\n", self.program.len()));
        for op in &self.program {
            match op {
                CommOp::Local(g) => out.push_str(&format!("l {}\n", gate_record(g))),
                CommOp::Cat { q, node, body } => {
                    out.push_str(&format!("c {} {} {}\n", q.index(), node.index(), body.len()));
                    for g in body {
                        out.push_str(&format!("g {}\n", gate_record(g)));
                    }
                }
                CommOp::Tp { q, node, body } => {
                    out.push_str(&format!("t {} {} {}\n", q.index(), node.index(), body.len()));
                    for g in body {
                        out.push_str(&format!("g {}\n", gate_record(g)));
                    }
                }
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parses the canonical text form back into an artifact.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError`] with the first offending 1-based line on
    /// any malformed, missing, or trailing record.
    pub fn from_text(text: &str) -> Result<CompiledArtifact, ArtifactError> {
        let mut lines = Reader::new(text);
        let header = lines.next_record("header")?;
        if header != format!("autocomm-artifact v{ARTIFACT_VERSION}") {
            return Err(lines.err(format!("unsupported header '{header}'")));
        }
        let key = lines.tagged("key")?.to_string();
        let nodes = lines.tagged("nodes")?.parse::<usize>().map_err(|e| lines.err(e))?;
        let comm_qubits =
            lines.tagged("comm_qubits")?.parse::<usize>().map_err(|e| lines.err(e))?;
        let topo_line = lines.tagged("topology")?.to_string();
        let mut topo = topo_line.split(' ');
        let topology = topo.next().unwrap_or_default().to_string();
        let links = parse_field(&lines, topo.next(), "topology links")?;
        let diameter = match topo.next() {
            Some("-") => None,
            Some(d) => Some(d.parse::<usize>().map_err(|e| lines.err(e))?),
            None => return Err(lines.err("topology record truncated")),
        };
        let strategy = lines.tagged("strategy")?.to_string();
        let refine_iters =
            lines.tagged("refine_iters")?.parse::<usize>().map_err(|e| lines.err(e))?;
        let buffer_name = lines.tagged("buffer")?.to_string();
        let buffer = BufferPolicy::parse(&buffer_name)
            .ok_or_else(|| lines.err(format!("unknown buffer policy '{buffer_name}'")))?;
        let ablations = split_or_dash(lines.tagged("ablations")?)
            .map(|name| {
                Ablation::parse(name).ok_or_else(|| lines.err(format!("unknown ablation '{name}'")))
            })
            .collect::<Result<Vec<_>, _>>()?;

        let [qubits, gates, two_qubit_gates, remote_cx] = lines.fixed("circuit")?;
        let circuit = ArtifactCircuitStats { qubits, gates, two_qubit_gates, remote_cx };
        let [ir_gates, unique_gates, dag_edges, burst_pairs] = lines.fixed("ir")?;
        let ir = ArtifactIrStats { gates: ir_gates, unique_gates, dag_edges, burst_pairs };

        let place_line = lines.tagged("placement")?.to_string();
        let mut f = place_line.split(' ');
        let mut placement = PlacementReport {
            iterations: parse_field(&lines, f.next(), "placement iterations")?,
            cut_weight: parse_field(&lines, f.next(), "placement cut_weight")?,
            weighted_cost: parse_field(&lines, f.next(), "placement weighted_cost")?,
            initial_epr_cost: parse_field(&lines, f.next(), "placement initial_epr_cost")?,
            final_epr_cost: parse_field(&lines, f.next(), "placement final_epr_cost")?,
            node_map: split_or_dash(f.next().unwrap_or("-"))
                .map(|n| Ok(NodeId::new(n.parse::<usize>().map_err(|e| lines.err(e))?)))
                .collect::<Result<Vec<_>, ArtifactError>>()?,
            work: PlacementWork::default(),
        };
        let work_line = lines.tagged("placement_work")?.to_string();
        let mut f = work_line.split(' ');
        placement.work = PlacementWork {
            oee_exchanges: parse_field(&lines, f.next(), "placement_work oee_exchanges")?,
            oee_scanned: parse_field(&lines, f.next(), "placement_work oee_scanned")?,
            oee_cache_hits: parse_field(&lines, f.next(), "placement_work oee_cache_hits")?,
            place_exchanges: parse_field(&lines, f.next(), "placement_work place_exchanges")?,
            rounds_skipped: parse_field(&lines, f.next(), "placement_work rounds_skipped")?,
            saturated: parse_field::<u8>(&lines, f.next(), "placement_work saturated")? != 0,
        };

        let metrics_line = lines.tagged("metrics")?.to_string();
        let mut f = metrics_line.split(' ');
        let mut metrics = CommMetrics {
            total_comms: parse_field(&lines, f.next(), "metrics total_comms")?,
            tp_comms: parse_field(&lines, f.next(), "metrics tp_comms")?,
            peak_rem_cx: parse_field(&lines, f.next(), "metrics peak_rem_cx")?,
            total_rem_cx: parse_field(&lines, f.next(), "metrics total_rem_cx")?,
            per_comm_rem_cx: Vec::new(),
            num_blocks: parse_field(&lines, f.next(), "metrics num_blocks")?,
            total_epr_cost: parse_field(&lines, f.next(), "metrics total_epr_cost")?,
            pair_comms: Vec::new(),
        };
        metrics.per_comm_rem_cx = split_or_dash(lines.tagged("per_comm_rem_cx")?)
            .map(|x| x.parse::<f64>().map_err(|e| lines.err(e)))
            .collect::<Result<Vec<_>, _>>()?;
        metrics.pair_comms = split_or_dash(lines.tagged("pair_comms")?)
            .map(|t| parse_triple(&lines, t))
            .collect::<Result<Vec<_>, _>>()?;

        let buf_line = lines.tagged("buffering")?.to_string();
        let mut f = buf_line.split(' ');
        let policy_name = f.next().unwrap_or_default();
        let mut buffering = BufferingReport {
            policy: BufferPolicy::parse(policy_name)
                .ok_or_else(|| lines.err(format!("unknown buffer policy '{policy_name}'")))?,
            requests: parse_field(&lines, f.next(), "buffering requests")?,
            prefetch_hits: parse_field(&lines, f.next(), "buffering prefetch_hits")?,
            prefetch_misses: parse_field(&lines, f.next(), "buffering prefetch_misses")?,
            hit_rate: parse_field(&lines, f.next(), "buffering hit_rate")?,
            mean_epr_wait: parse_field(&lines, f.next(), "buffering mean_epr_wait")?,
            mean_pair_age: parse_field(&lines, f.next(), "buffering mean_pair_age")?,
            occupancy_hist: Vec::new(),
            fell_back: parse_field::<u8>(&lines, f.next(), "buffering fell_back")? != 0,
        };
        buffering.occupancy_hist = split_or_dash(lines.tagged("occupancy_hist")?)
            .map(|x| x.parse::<u64>().map_err(|e| lines.err(e)))
            .collect::<Result<Vec<_>, _>>()?;

        let sched_line = lines.tagged("schedule")?.to_string();
        let mut f = sched_line.split(' ');
        let mut schedule = ArtifactSchedule {
            makespan: parse_field(&lines, f.next(), "schedule makespan")?,
            epr_pairs: parse_field(&lines, f.next(), "schedule epr_pairs")?,
            swaps: parse_field(&lines, f.next(), "schedule swaps")?,
            fusion_savings: parse_field(&lines, f.next(), "schedule fusion_savings")?,
            cat_blocks: parse_field(&lines, f.next(), "schedule cat_blocks")?,
            tp_blocks: parse_field(&lines, f.next(), "schedule tp_blocks")?,
            link_traffic: Vec::new(),
        };
        schedule.link_traffic = split_or_dash(lines.tagged("link_traffic")?)
            .map(|t| parse_triple(&lines, t))
            .collect::<Result<Vec<_>, _>>()?;

        let ops = lines.tagged("ops")?.parse::<usize>().map_err(|e| lines.err(e))?;
        let mut program = Vec::with_capacity(ops);
        for _ in 0..ops {
            let record = lines.next_record("comm op")?.to_string();
            let (tag, rest) = record.split_once(' ').unwrap_or((record.as_str(), ""));
            match tag {
                "l" => program.push(CommOp::Local(parse_gate(&lines, rest)?)),
                "c" | "t" => {
                    let mut f = rest.split(' ');
                    let q = QubitId::new(parse_field(&lines, f.next(), "op qubit")?);
                    let node = NodeId::new(parse_field(&lines, f.next(), "op node")?);
                    let len: usize = parse_field(&lines, f.next(), "op body length")?;
                    let mut body = Vec::with_capacity(len);
                    for _ in 0..len {
                        let g = lines.tagged("g")?.to_string();
                        body.push(parse_gate(&lines, &g)?);
                    }
                    program.push(if tag == "c" {
                        CommOp::Cat { q, node, body }
                    } else {
                        CommOp::Tp { q, node, body }
                    });
                }
                other => return Err(lines.err(format!("unknown op record '{other}'"))),
            }
        }
        let end = lines.next_record("end")?;
        if end != "end" {
            return Err(lines.err(format!("expected 'end', found '{end}'")));
        }
        if let Some(extra) = lines.peek() {
            let extra = extra.to_string();
            return Err(lines.err(format!("trailing content '{extra}'")));
        }

        Ok(CompiledArtifact {
            config: ArtifactConfig {
                key,
                nodes,
                comm_qubits,
                topology,
                links,
                diameter,
                strategy,
                refine_iters,
                buffer,
                ablations,
            },
            circuit,
            ir,
            placement,
            metrics,
            buffering,
            schedule,
            program,
        })
    }
}

/// One gate as a single record: `kind qubits params cbit cond`, each list
/// comma-joined with `-` for empty/none. Parameters use Rust's shortest
/// round-trip `f64` formatting, so the record is bit-exact.
fn gate_record(g: &Gate) -> String {
    format!(
        "{} {} {} {} {}",
        g.kind().name(),
        join_or_dash(g.qubits().iter().map(|q| q.index().to_string())),
        join_or_dash(g.params().iter().map(|p| p.to_string())),
        g.cbit().map_or("-".to_string(), |c| c.index().to_string()),
        g.condition().map_or("-".to_string(), |c| c.index().to_string()),
    )
}

fn parse_gate(lines: &Reader<'_>, record: &str) -> Result<Gate, ArtifactError> {
    let mut f = record.split(' ');
    let kind_name = f.next().unwrap_or_default();
    let kind = GateKind::parse(kind_name)
        .ok_or_else(|| lines.err(format!("unknown gate kind '{kind_name}'")))?;
    let qubits = split_or_dash(f.next().unwrap_or("-"))
        .map(|q| Ok(QubitId::new(q.parse::<usize>().map_err(|e| lines.err(e))?)))
        .collect::<Result<Vec<_>, ArtifactError>>()?;
    let params = split_or_dash(f.next().unwrap_or("-"))
        .map(|p| p.parse::<f64>().map_err(|e| lines.err(e)))
        .collect::<Result<Vec<_>, _>>()?;
    let cbit = parse_opt_bit(lines, f.next())?;
    let condition = parse_opt_bit(lines, f.next())?;
    let mut gate = match (kind, cbit) {
        (GateKind::Measure, Some(c)) => {
            if qubits.len() != 1 {
                return Err(lines.err("measure takes exactly one qubit"));
            }
            Gate::measure(qubits[0], c)
        }
        (_, Some(_)) => return Err(lines.err(format!("gate kind '{kind_name}' takes no cbit"))),
        (_, None) => Gate::try_new(kind, qubits, params).map_err(|e| lines.err(e))?,
    };
    if let Some(c) = condition {
        gate = gate.with_condition(c);
    }
    Ok(gate)
}

fn parse_opt_bit(lines: &Reader<'_>, field: Option<&str>) -> Result<Option<CBitId>, ArtifactError> {
    match field {
        Some("-") => Ok(None),
        Some(c) => Ok(Some(CBitId::new(c.parse::<usize>().map_err(|e| lines.err(e))?))),
        None => Err(lines.err("gate record truncated")),
    }
}

fn parse_field<T: std::str::FromStr>(
    lines: &Reader<'_>,
    field: Option<&str>,
    what: &str,
) -> Result<T, ArtifactError>
where
    T::Err: fmt::Display,
{
    let field = field.ok_or_else(|| lines.err(format!("missing {what}")))?;
    field.parse::<T>().map_err(|e| lines.err(format!("{what}: {e}")))
}

fn parse_triple(
    lines: &Reader<'_>,
    triple: &str,
) -> Result<(NodeId, NodeId, usize), ArtifactError> {
    let mut f = triple.split(':');
    let a: usize = parse_field(lines, f.next(), "triple node")?;
    let b: usize = parse_field(lines, f.next(), "triple node")?;
    let n: usize = parse_field(lines, f.next(), "triple count")?;
    Ok((NodeId::new(a), NodeId::new(b), n))
}

fn join_or_dash(items: impl Iterator<Item = String>) -> String {
    let joined = items.collect::<Vec<_>>().join(",");
    if joined.is_empty() {
        "-".to_string()
    } else {
        joined
    }
}

fn split_or_dash(field: &str) -> impl Iterator<Item = &str> {
    field.split(',').filter(|s| !s.is_empty() && *s != "-")
}

/// Line cursor with 1-based position for error reporting.
struct Reader<'a> {
    lines: std::iter::Peekable<std::str::Lines<'a>>,
    line: std::cell::Cell<usize>,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Self {
        Reader { lines: text.lines().peekable(), line: std::cell::Cell::new(0) }
    }

    fn err(&self, message: impl fmt::Display) -> ArtifactError {
        ArtifactError { line: self.line.get(), message: message.to_string() }
    }

    fn peek(&mut self) -> Option<&str> {
        self.lines.peek().copied()
    }

    fn next_record(&mut self, what: &str) -> Result<&'a str, ArtifactError> {
        self.line.set(self.line.get() + 1);
        self.lines.next().ok_or_else(|| self.err(format!("missing {what} record")))
    }

    /// Consumes the next line, which must start with `tag` followed by a
    /// space (or be exactly `tag`), and returns the rest.
    fn tagged(&mut self, tag: &str) -> Result<&'a str, ArtifactError> {
        let record = self.next_record(tag)?;
        match record.strip_prefix(tag) {
            Some("") => Ok(""),
            Some(rest) => rest
                .strip_prefix(' ')
                .ok_or_else(|| self.err(format!("expected '{tag}' record, found '{record}'"))),
            None => Err(self.err(format!("expected '{tag}' record, found '{record}'"))),
        }
    }

    /// A record of exactly `N` unsigned integers after its tag.
    fn fixed<const N: usize>(&mut self, tag: &str) -> Result<[usize; N], ArtifactError> {
        let rest = self.tagged(tag)?;
        let mut out = [0usize; N];
        let mut fields = rest.split(' ');
        for slot in &mut out {
            *slot = parse_field(self, fields.next(), tag)?;
        }
        if fields.next().is_some() {
            return Err(self.err(format!("trailing fields in '{tag}' record")));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AutoComm;
    use dqc_circuit::{Circuit, Partition};

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    fn compile_sample() -> CompiledArtifact {
        let mut c = Circuit::new(4);
        c.push(Gate::h(q(0))).unwrap();
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::rz(0.75, q(0))).unwrap();
        c.push(Gate::cx(q(0), q(3))).unwrap();
        c.push(Gate::cx(q(3), q(0))).unwrap();
        let p = Partition::block(4, 2).unwrap();
        let hw = HardwareSpec::for_partition(&p);
        let result = AutoComm::new().compile(&c, &p).unwrap();
        let config = ArtifactConfig {
            key: "test-key".into(),
            nodes: 2,
            comm_qubits: 2,
            strategy: "block".into(),
            refine_iters: 0,
            buffer: BufferPolicy::OnDemand,
            ablations: vec![Ablation::NoCommute],
            ..ArtifactConfig::default()
        };
        let circuit =
            ArtifactCircuitStats { qubits: 4, gates: c.len(), two_qubit_gates: 3, remote_cx: 3 };
        CompiledArtifact::capture(
            config,
            circuit,
            &hw,
            &PlacementReport {
                iterations: 0,
                cut_weight: 3,
                weighted_cost: 3,
                node_map: vec![NodeId::new(0), NodeId::new(1)],
                initial_epr_cost: result.metrics.total_epr_cost,
                final_epr_cost: result.metrics.total_epr_cost,
                work: PlacementWork {
                    oee_exchanges: 1,
                    oee_scanned: 6,
                    ..PlacementWork::default()
                },
            },
            &result,
        )
    }

    #[test]
    fn round_trip_is_exact_and_byte_identical() {
        let artifact = compile_sample();
        let text = artifact.to_text();
        let parsed = CompiledArtifact::from_text(&text).unwrap();
        assert_eq!(parsed, artifact);
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn program_carries_comm_primitives() {
        let artifact = compile_sample();
        assert!(!artifact.program.is_empty());
        assert!(artifact
            .program
            .iter()
            .any(|op| matches!(op, CommOp::Cat { .. } | CommOp::Tp { .. })));
    }

    #[test]
    fn gates_with_conditions_round_trip() {
        let g = Gate::x(q(1)).with_condition(CBitId::new(3));
        let reader = Reader::new("");
        let parsed = parse_gate(&reader, &gate_record(&g)).unwrap();
        assert_eq!(parsed, g);
        let m = Gate::measure(q(0), CBitId::new(2));
        assert_eq!(parse_gate(&reader, &gate_record(&m)).unwrap(), m);
        let u = Gate::u3(0.1, -0.0, 2e-9, q(2));
        assert_eq!(parse_gate(&reader, &gate_record(&u)).unwrap(), u);
    }

    #[test]
    fn malformed_text_reports_the_line() {
        let artifact = compile_sample();
        let mut text = artifact.to_text();
        text = text.replace("metrics ", "metrics x");
        let err = CompiledArtifact::from_text(&text).unwrap_err();
        assert!(err.line > 1, "{err}");
        assert!(CompiledArtifact::from_text("bogus").is_err());
        let truncated = artifact.to_text().replace("end\n", "");
        assert!(CompiledArtifact::from_text(&truncated).is_err());
        let trailing = artifact.to_text() + "extra\n";
        assert!(CompiledArtifact::from_text(&trailing).is_err());
    }
}
