//! Burst-communication blocks.

use std::collections::BTreeSet;
use std::fmt;

use dqc_circuit::{Gate, NodeId, Partition, QubitId};

/// One burst-communication block: an ordered group of gates between a
/// single *burst qubit* and a single remote *node* (paper §3.2).
///
/// The body holds both the remote two-qubit gates of the pair and any
/// interior local gates absorbed during aggregation (gates on the remote
/// node's qubits, or non-commuting single-qubit gates on the burst qubit —
/// paper Algorithm 1's `non_commute_gates`).
#[derive(Clone, Debug, PartialEq)]
pub struct CommBlock {
    qubit: QubitId,
    node: NodeId,
    gates: Vec<Gate>,
}

impl CommBlock {
    /// An empty block for the burst pair `(qubit, node)`.
    pub fn new(qubit: QubitId, node: NodeId) -> Self {
        CommBlock { qubit, node, gates: Vec::new() }
    }

    /// The burst qubit.
    pub fn qubit(&self) -> QubitId {
        self.qubit
    }

    /// The remote node the burst qubit communicates with.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The body, in execution order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Appends a gate to the body.
    pub fn push(&mut self, gate: Gate) {
        self.gates.push(gate);
    }

    /// Number of body gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The remote two-qubit gates of the pair (body gates acting on the
    /// burst qubit with their partner on the remote node).
    pub fn remote_gates(&self) -> impl Iterator<Item = &Gate> {
        let q = self.qubit;
        self.gates.iter().filter(move |g| g.is_two_qubit_unitary() && g.acts_on(q))
    }

    /// Number of remote two-qubit gates carried by this block — the
    /// paper's “# REM CX” per communication once the body is in the CX+U3
    /// basis.
    pub fn remote_gate_count(&self) -> usize {
        self.remote_gates().count()
    }

    /// Every qubit referenced by the body.
    pub fn involved_qubits(&self) -> BTreeSet<QubitId> {
        self.gates.iter().flat_map(|g| g.qubits().iter().copied()).collect()
    }

    /// The remote node's qubits used by the body, ascending.
    pub fn partner_qubits(&self) -> Vec<QubitId> {
        let mut out: BTreeSet<QubitId> = BTreeSet::new();
        for g in &self.gates {
            for &q in g.qubits() {
                if q != self.qubit {
                    out.insert(q);
                }
            }
        }
        out.into_iter().collect()
    }

    /// The node the burst qubit lives on.
    pub fn home(&self, partition: &Partition) -> NodeId {
        partition.node_of(self.qubit)
    }

    /// Drops trailing body gates that are not remote gates of the pair
    /// (they never needed to ride the communication; aggregation calls this
    /// before sealing a block). Returns the trimmed-off suffix in order.
    pub fn trim_trailing_locals(&mut self) -> Vec<Gate> {
        let q = self.qubit;
        let last_remote = self.gates.iter().rposition(|g| g.is_two_qubit_unitary() && g.acts_on(q));
        match last_remote {
            Some(i) => self.gates.split_off(i + 1),
            None => std::mem::take(&mut self.gates),
        }
    }
}

impl fmt::Display for CommBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block[{} ↔ {}; {} gates, {} remote]",
            self.qubit,
            self.node,
            self.gates.len(),
            self.remote_gate_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    fn sample_block() -> CommBlock {
        let mut b = CommBlock::new(q(0), NodeId::new(1));
        b.push(Gate::cx(q(0), q(2)));
        b.push(Gate::h(q(3)));
        b.push(Gate::cx(q(0), q(3)));
        b
    }

    #[test]
    fn counts_and_partners() {
        let b = sample_block();
        assert_eq!(b.len(), 3);
        assert_eq!(b.remote_gate_count(), 2);
        assert_eq!(b.partner_qubits(), vec![q(2), q(3)]);
        assert_eq!(b.involved_qubits().len(), 3);
    }

    #[test]
    fn trim_trailing_locals_keeps_remote_suffix() {
        let mut b = sample_block();
        b.push(Gate::t(q(2)));
        b.push(Gate::h(q(3)));
        let trimmed = b.trim_trailing_locals();
        assert_eq!(trimmed.len(), 2);
        assert_eq!(b.len(), 3);
        assert_eq!(b.remote_gate_count(), 2);
    }

    #[test]
    fn trim_on_remote_free_block_empties_it() {
        let mut b = CommBlock::new(q(0), NodeId::new(1));
        b.push(Gate::h(q(2)));
        let trimmed = b.trim_trailing_locals();
        assert_eq!(trimmed.len(), 1);
        assert!(b.is_empty());
    }

    #[test]
    fn home_uses_partition() {
        let p = Partition::block(4, 2).unwrap();
        let b = sample_block();
        assert_eq!(b.home(&p).index(), 0);
        assert_eq!(b.node().index(), 1);
    }

    #[test]
    fn display_summarizes() {
        let s = sample_block().to_string();
        assert!(s.contains("q0"));
        assert!(s.contains("N1"));
        assert!(s.contains("2 remote"));
    }
}
