//! Burst-communication blocks.

use std::collections::BTreeSet;
use std::fmt;

use dqc_circuit::{Gate, GateId, GateTable, NodeId, Partition, QubitId};

/// One burst-communication block: an ordered group of gates between a
/// single *burst qubit* and a single remote *node* (paper §3.2).
///
/// Since the `CommIr` refactor the body is a list of [`GateId`]s into the
/// compile's shared [`GateTable`] — building, splitting, and cloning blocks
/// moves `u32` indices, never gate payloads. The remote-gate count is
/// maintained on push so the hot metric needs no table at all; body
/// accessors that need gate contents take the table explicitly.
///
/// The body holds both the remote two-qubit gates of the pair and any
/// interior local gates absorbed during aggregation (gates on the remote
/// node's qubits, or non-commuting single-qubit gates on the burst qubit —
/// paper Algorithm 1's `non_commute_gates`).
#[derive(Clone, Debug, PartialEq)]
pub struct CommBlock {
    qubit: QubitId,
    node: NodeId,
    gates: Vec<GateId>,
    remote: u32,
}

impl CommBlock {
    /// An empty block for the burst pair `(qubit, node)`.
    pub fn new(qubit: QubitId, node: NodeId) -> Self {
        CommBlock { qubit, node, gates: Vec::new(), remote: 0 }
    }

    /// The burst qubit.
    pub fn qubit(&self) -> QubitId {
        self.qubit
    }

    /// The remote node the burst qubit communicates with.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The body as gate ids, in execution order.
    pub fn ids(&self) -> &[GateId] {
        &self.gates
    }

    /// The body gates, in execution order, resolved through `table`.
    pub fn gates<'a>(&'a self, table: &'a GateTable) -> impl Iterator<Item = &'a Gate> + 'a {
        self.gates.iter().map(|&id| table.gate(id))
    }

    /// Whether `gate` counts as a remote gate of this block's pair: a
    /// two-qubit unitary acting on the burst qubit.
    fn is_remote(&self, gate: &Gate) -> bool {
        gate.is_two_qubit_unitary() && gate.acts_on(self.qubit)
    }

    /// Appends a gate to the body. The resolved `gate` must be `id`'s gate
    /// in the compile's table (both are passed so the block can classify it
    /// without a table lookup).
    pub fn push(&mut self, id: GateId, gate: &Gate) {
        if self.is_remote(gate) {
            self.remote += 1;
        }
        self.gates.push(id);
    }

    /// Number of body gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The remote two-qubit gates of the pair (body gates acting on the
    /// burst qubit with their partner on the remote node).
    pub fn remote_gates<'a>(&'a self, table: &'a GateTable) -> impl Iterator<Item = &'a Gate> + 'a {
        self.gates(table).filter(|g| self.is_remote(g))
    }

    /// Number of remote two-qubit gates carried by this block — the
    /// paper's “# REM CX” per communication once the body is in the CX+U3
    /// basis. Maintained on push, so no table is needed.
    pub fn remote_gate_count(&self) -> usize {
        self.remote as usize
    }

    /// Every qubit referenced by the body.
    pub fn involved_qubits(&self, table: &GateTable) -> BTreeSet<QubitId> {
        self.gates(table).flat_map(|g| g.qubits().iter().copied()).collect()
    }

    /// The remote node's qubits used by the body, ascending.
    pub fn partner_qubits(&self, table: &GateTable) -> Vec<QubitId> {
        let mut out: BTreeSet<QubitId> = BTreeSet::new();
        for g in self.gates(table) {
            for &q in g.qubits() {
                if q != self.qubit {
                    out.insert(q);
                }
            }
        }
        out.into_iter().collect()
    }

    /// The node the burst qubit lives on.
    pub fn home(&self, partition: &Partition) -> NodeId {
        partition.node_of(self.qubit)
    }

    /// Drops trailing body gates that are not remote gates of the pair
    /// (they never needed to ride the communication; aggregation calls this
    /// before sealing a block). Returns the trimmed-off suffix in order.
    pub fn trim_trailing_locals(&mut self, table: &GateTable) -> Vec<GateId> {
        let last_remote = self.gates.iter().rposition(|&id| self.is_remote(table.gate(id)));
        match last_remote {
            Some(i) => self.gates.split_off(i + 1),
            None => std::mem::take(&mut self.gates),
        }
    }

    /// A one-line description (needs the table only for the body length
    /// breakdown already cached, so none is taken).
    pub fn describe(&self) -> String {
        format!(
            "block[{} ↔ {}; {} gates, {} remote]",
            self.qubit,
            self.node,
            self.gates.len(),
            self.remote
        )
    }
}

impl fmt::Display for CommBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    fn push(b: &mut CommBlock, table: &mut GateTable, gate: Gate) {
        let id = table.intern(&gate);
        b.push(id, &gate);
    }

    fn sample_block(table: &mut GateTable) -> CommBlock {
        let mut b = CommBlock::new(q(0), NodeId::new(1));
        push(&mut b, table, Gate::cx(q(0), q(2)));
        push(&mut b, table, Gate::h(q(3)));
        push(&mut b, table, Gate::cx(q(0), q(3)));
        b
    }

    #[test]
    fn counts_and_partners() {
        let mut table = GateTable::new();
        let b = sample_block(&mut table);
        assert_eq!(b.len(), 3);
        assert_eq!(b.remote_gate_count(), 2);
        assert_eq!(b.partner_qubits(&table), vec![q(2), q(3)]);
        assert_eq!(b.involved_qubits(&table).len(), 3);
        assert_eq!(b.remote_gates(&table).count(), 2);
    }

    #[test]
    fn trim_trailing_locals_keeps_remote_suffix() {
        let mut table = GateTable::new();
        let mut b = sample_block(&mut table);
        push(&mut b, &mut table, Gate::t(q(2)));
        push(&mut b, &mut table, Gate::h(q(3)));
        let trimmed = b.trim_trailing_locals(&table);
        assert_eq!(trimmed.len(), 2);
        assert_eq!(b.len(), 3);
        assert_eq!(b.gates(&table).count(), 3);
    }

    #[test]
    fn trim_on_remote_free_block_empties_it() {
        let mut table = GateTable::new();
        let mut b = CommBlock::new(q(0), NodeId::new(1));
        push(&mut b, &mut table, Gate::h(q(2)));
        let trimmed = b.trim_trailing_locals(&table);
        assert_eq!(trimmed.len(), 1);
        assert!(b.is_empty());
    }

    #[test]
    fn home_uses_partition() {
        let mut table = GateTable::new();
        let p = Partition::block(4, 2).unwrap();
        let b = sample_block(&mut table);
        assert_eq!(b.home(&p).index(), 0);
        assert_eq!(b.node().index(), 1);
    }

    #[test]
    fn display_summarizes() {
        let mut table = GateTable::new();
        let s = sample_block(&mut table).to_string();
        assert!(s.contains("q0"));
        assert!(s.contains("N1"));
        assert!(s.contains("2 remote"));
    }
}
