//! AutoComm: burst-communication optimization for distributed quantum
//! programs (reproduction of Wu et al., MICRO 2022).
//!
//! The compiler sits behind gate unrolling and qubit partitioning and runs
//! three passes (paper Figure 1):
//!
//! 1. **Communication aggregation** ([`aggregate`]) — discovers *burst
//!    communication*: maximal groups of remote two-qubit gates between one
//!    qubit and one node, merged across intervening gates using commutation
//!    rules (paper Algorithm 1 plus iterative refinement over qubit-node
//!    pairs).
//! 2. **Communication assignment** ([`assign`]) — pattern analysis per
//!    block: unidirectional control-form blocks ride a single Cat-Comm EPR
//!    pair, target-form blocks are H-conjugated first (paper Fig. 10a), and
//!    bidirectional or obstructed blocks fall back to TP-Comm at the flat
//!    cost of two EPR pairs (paper Fig. 9).
//! 3. **Communication scheduling** ([`schedule`]) — resource-constrained
//!    burst-greedy scheduling with EPR prefetching, parallel commutable
//!    blocks (paper Fig. 12/13), and TP fusion chains (paper Fig. 14).
//!
//! Since the pass-manager refactor, each stage is a [`Pass`] over a shared
//! [`PassContext`], composed by a [`Pipeline`] that times every stage and
//! returns per-pass [`PassReport`]s. [`AutoComm`] maps an
//! [`AutoCommOptions`] configuration (including every Fig. 17
//! [`Ablation`]) onto the canonical pipeline; [`CommMetrics`] reproduces
//! the paper's evaluation metrics (Tot Comm, TP-Comm, Peak # REM CX,
//! burst distribution); [`lower_assigned`] lowers compiled programs
//! through `dqc-protocols` so the whole pipeline can be verified against
//! the original circuit on a state-vector simulator.
//!
//! Since the placement re-platform, the block→physical-node map is a
//! first-class [`Placement`] consumed by `assign_on`/`schedule`/
//! `lower_assigned_on`: an in-pipeline [`PlacementPass`] optimizes it
//! against the interconnect's routed hop distances, and the iterative
//! driver [`AutoComm::compile_placed`] feeds *measured* communication
//! traffic ([`CommMetrics::pair_comms`]) back into hop-weighted
//! partitioning + node placement until the EPR cost stops improving.
//!
//! # Quickstart
//!
//! ```
//! use autocomm::AutoComm;
//! use dqc_circuit::{Circuit, Gate, Partition, QubitId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let q = |i| QubitId::new(i);
//! let mut circuit = Circuit::new(4);
//! circuit.push(Gate::cx(q(0), q(2)))?;
//! circuit.push(Gate::cx(q(0), q(3)))?;
//! let partition = Partition::block(4, 2)?;
//!
//! let result = AutoComm::new().compile(&circuit, &partition)?;
//! // Two remote CXs ride one Cat-Comm EPR pair.
//! assert_eq!(result.metrics.total_comms, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod analysis;
mod artifact;
mod assign;
mod block;
mod error;
mod ir;
mod lower;
mod metrics;
mod orient;
mod par;
mod pass;
mod pipeline;
mod placement;
mod program;
mod schedule;

pub use aggregate::{
    aggregate, aggregate_ir, aggregate_ir_with_stats, aggregate_no_commute,
    aggregate_no_commute_ir, AggregateOptions, AggregateStats, AggregatedProgram, Item,
};
pub use analysis::inverse_burst_distribution;
pub use artifact::{
    ArtifactCircuitStats, ArtifactConfig, ArtifactError, ArtifactIrStats, ArtifactSchedule,
    CompiledArtifact, ARTIFACT_VERSION,
};
pub use assign::{
    assign, assign_cat_only, assign_cat_only_on, assign_incremental, assign_on, AssignedBlock,
    AssignedItem, AssignedProgram, CatOrientation, Scheme,
};
pub use block::CommBlock;
pub use dqc_circuit::PAR_THRESHOLD;
pub use dqc_hardware::BufferPolicy;
pub use error::CompileError;
pub use ir::{CommIr, DAG_WINDOW};
pub use lower::{lower_assigned, lower_assigned_on, lower_plan, CommOp};
pub use metrics::{burst_distribution, BufferingReport, CommMetrics};
pub use orient::{orient_symmetric_gates, orient_symmetric_gates_sequential};
pub use pass::{
    AggregatePass, AssignPass, IrPass, LowerPass, MetricsPass, OrientPass, Pass, PassContext,
    PassReport, PlacementPass, SchedulePass, UnrollPass,
};
pub use pipeline::{
    Ablation, AutoComm, AutoCommOptions, CompileResult, Pipeline, PipelineBuilder, PipelineOutput,
    PlacementConfig, PlacementReport, PlacementStrategy, PlacementWork,
};
pub use placement::{comm_weighted_graph, Placement};
pub use program::{pair_stats, remote_pairs_of};
pub use schedule::{schedule, ScheduleOptions, ScheduleSummary};
