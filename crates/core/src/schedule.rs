//! Event-driven communication scheduling with EPR buffering (paper §4.4
//! plus the CollComm-style buffered-generation engine).
//!
//! The scheduler lays an assigned program onto the hardware timeline with
//! the paper's three latency optimizations:
//!
//! * **EPR prefetching** — preparation starts as soon as communication
//!   slots free up, hiding `tep` behind preceding computation (“execute as
//!   many blocks as possible, as soon as EPR pairs are prepared”);
//! * **block-level parallelism** — commutable Cat blocks sharing the burst
//!   qubit overlap (paper Fig. 12), and independent TP teleports align
//!   automatically because both endpoints' claims are issued eagerly
//!   (Fig. 13b);
//! * **TP fusion** — consecutive TP blocks teleporting the same qubit form
//!   a cycle `A → B → C → A`, saving `(n-1)` EPR pairs and
//!   `(n-1)(tep + t_tele)` latency over teleporting home each time
//!   (Fig. 14b).
//!
//! Disabling all three yields the plain-greedy ablation of paper
//! Fig. 17(c).
//!
//! On top of those, [`BufferPolicy`] selects how EPR pairs are
//! materialized. [`BufferPolicy::OnDemand`] reproduces the historical
//! engine bit for bit: every pair goes through one monolithic
//! [`dqc_hardware::Timeline::claim_comm`] at burst time, holding the
//! end-node communication slots from generation start to protocol
//! completion. The buffered policies ([`BufferPolicy::Prefetch`],
//! [`BufferPolicy::Greedy`]) run the discrete-event engine instead: the
//! scheduler prescans its walk of the DAG-ordered item list into a comm
//! *request sequence* (the lookahead frontier), a
//! [`dqc_hardware::ResourceManager`] issues generation events for upcoming
//! requests during local-computation slack (depositing heralded pairs into
//! per-node [`dqc_hardware::EprBuffer`]s), and each burst pops its matching
//! buffered pair — or blocks until one matures, falling back to on-demand
//! generation when buffers are full or capacity-constrained. Because
//! buffered generation occupies end-node slots only from herald to
//! consumption (not for the whole generation window), pair preparation
//! pipelines deeper than the comm-qubit budget on contended nodes.
//!
//! Buffered schedules are guarded by a strict-improvement rail: when the
//! buffered makespan does not beat the on-demand one, the legacy schedule
//! is returned (with [`BufferingReport::fell_back`] set), so `Prefetch`
//! and `Greedy` never lose to `OnDemand`.

use dqc_circuit::{CommSummary, Gate, GateTable, NodeId, QubitId};
use dqc_hardware::{
    BufferPolicy, HardwareSpec, NetworkTopology, ResourceManager, Timeline, TimelineEvent,
};

use crate::assign::split_into_segments;
use crate::metrics::BufferingReport;
use crate::{AssignedItem, AssignedProgram, CommBlock, Placement, Scheme};

/// Scheduler feature toggles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleOptions {
    /// Issue EPR preparations as early as slot availability allows.
    pub prefetch_epr: bool,
    /// Overlap commutable Cat blocks sharing the burst qubit.
    pub parallel_commutable: bool,
    /// Fuse consecutive same-qubit TP blocks into teleport cycles.
    pub fuse_tp_chains: bool,
    /// Record timeline events (needed for validation; off for large runs).
    pub record_events: bool,
    /// How EPR pairs are materialized relative to the bursts that consume
    /// them ([`BufferPolicy::OnDemand`] is the bit-identical legacy
    /// engine).
    pub buffer: BufferPolicy,
    /// Run the strict-improvement rail's two walks sequentially on the
    /// calling thread instead of on two scoped threads — the
    /// `schedule_scale` gate's reference mode (the two executions are
    /// pinned identical by the scheduler property suite).
    pub sequential_rails: bool,
    /// Run the timeline on the historical linear-scan slot/channel lookups
    /// instead of the earliest-free indexes — the `schedule_scale` gate's
    /// other reference mode (see
    /// [`dqc_hardware::Timeline::with_linear_scan_reference`]).
    pub linear_scan_timeline: bool,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions {
            prefetch_epr: true,
            parallel_commutable: true,
            fuse_tp_chains: true,
            record_events: false,
            buffer: BufferPolicy::OnDemand,
            sequential_rails: false,
            linear_scan_timeline: false,
        }
    }
}

impl ScheduleOptions {
    /// The plain as-soon-as-possible schedule without burst-aware
    /// optimizations (paper Fig. 17c's “Greedy”).
    pub fn plain_greedy() -> Self {
        ScheduleOptions {
            prefetch_epr: false,
            parallel_commutable: false,
            fuse_tp_chains: false,
            record_events: false,
            buffer: BufferPolicy::OnDemand,
            sequential_rails: false,
            linear_scan_timeline: false,
        }
    }

    /// These options with `policy` selecting the EPR-buffering engine.
    #[must_use]
    pub fn with_buffer(mut self, policy: BufferPolicy) -> Self {
        self.buffer = policy;
        self
    }
}

/// Outcome of scheduling.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleSummary {
    /// Program latency in CX units.
    pub makespan: f64,
    /// EPR pairs actually consumed, counted per *link-level* generation —
    /// multi-hop routes are charged one pair per hop (TP fusion reduces
    /// this below the metric-level “Tot Comm”).
    pub epr_pairs: usize,
    /// Entanglement swaps performed at relay nodes (0 on all-to-all).
    pub swaps: usize,
    /// EPR pairs generated per interconnect link, `(node, node, pairs)`,
    /// for links that carried any traffic.
    pub link_traffic: Vec<(NodeId, NodeId, usize)>,
    /// Teleports (and EPR pairs) saved by TP fusion.
    pub fusion_savings: usize,
    /// Cat blocks scheduled (counting Cat-only segments individually).
    pub cat_blocks: usize,
    /// TP blocks scheduled.
    pub tp_blocks: usize,
    /// What the EPR-buffering engine did: policy, prefetch hit rate, pair
    /// wait/staleness, buffer occupancy distribution.
    pub buffering: BufferingReport,
    /// Recorded events when [`ScheduleOptions::record_events`] was set.
    pub events: Option<Vec<TimelineEvent>>,
}

/// Schedules `program` on machine `hw` and reports latency and EPR usage.
/// All timeline claims, routes, and link traffic are issued against the
/// *physical* nodes of `placement` — the identity placement reproduces the
/// historical block-`i`-on-node-`i` behavior exactly.
///
/// Under a buffered [`ScheduleOptions::buffer`] policy both the buffered
/// and the on-demand schedules are computed and the better one returned
/// (strict-improvement rail; see the module docs).
///
/// # Panics
///
/// Panics if the placement's node count exceeds the hardware's, or if a
/// node needs more concurrent communications than it has comm qubits (the
/// timeline enforces this invariant).
pub fn schedule(
    program: &AssignedProgram,
    placement: &Placement,
    hw: &HardwareSpec,
    options: ScheduleOptions,
) -> ScheduleSummary {
    assert!(placement.num_nodes() <= hw.num_nodes(), "hardware must provide every placed node");
    let highest = placement.node_map().iter().map(|n| n.index()).max().unwrap_or(0);
    assert!(
        highest < hw.num_nodes(),
        "placement maps a block onto node {highest}, but the hardware has {} node(s)",
        hw.num_nodes()
    );
    if !options.buffer.is_buffered() {
        return schedule_run(program, placement, hw, options, Vec::new());
    }
    // One shared prescan feeds the buffered rail (the on-demand rail never
    // reads it); historically each buffered `schedule_run` re-walked it.
    let requests = comm_requests(program, placement, hw.topology(), options);
    let base_options = ScheduleOptions { buffer: BufferPolicy::OnDemand, ..options };
    // The two rails are independent walks over immutable inputs, so they
    // run on two scoped threads (same idiom and threshold as `par_map` —
    // small programs never pay the spawn). Results are compared exactly as
    // in the sequential order, so the rail's outcome is byte-identical.
    let parallel = !options.sequential_rails && program.items().len() >= crate::par::PAR_THRESHOLD;
    let (base, buffered) = if parallel {
        std::thread::scope(|scope| {
            let base =
                scope.spawn(|| schedule_run(program, placement, hw, base_options, Vec::new()));
            let buffered = schedule_run(program, placement, hw, options, requests);
            let base = base.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
            (base, buffered)
        })
    } else {
        (
            schedule_run(program, placement, hw, base_options, Vec::new()),
            schedule_run(program, placement, hw, options, requests),
        )
    };
    if buffered.makespan + 1e-9 < base.makespan {
        buffered
    } else {
        // The buffered attempt did not strictly improve: keep the legacy
        // schedule, but report the attempt's buffer statistics so the
        // fallback is visible.
        let mut summary = base;
        let mut report = buffered.buffering;
        report.fell_back = true;
        summary.buffering = report;
        summary
    }
}

/// One full walk of the program under a fixed engine (no rail).
/// `requests` is the shared [`comm_requests`] prescan for buffered
/// policies (empty for on-demand — that rail never consults it).
fn schedule_run(
    program: &AssignedProgram,
    placement: &Placement,
    hw: &HardwareSpec,
    options: ScheduleOptions,
    requests: Vec<(NodeId, NodeId)>,
) -> ScheduleSummary {
    let table = program.ir().table();
    let mut tl = Timeline::new(program.num_qubits(), hw);
    if options.record_events {
        tl = tl.with_recording();
    }
    if options.linear_scan_timeline {
        tl = tl.with_linear_scan_reference();
    }
    let rm = ResourceManager::new(tl, options.buffer, requests, hw.comm_qubits_per_node());
    let mut sched = Scheduler {
        rm,
        table,
        placement,
        options,
        open_group: None,
        group_summary: CommSummary::new(program.num_qubits(), program.num_cbits()),
        cat_blocks: 0,
        tp_blocks: 0,
        fusion_savings: 0,
    };

    let items = program.items();
    let mut i = 0usize;
    while i < items.len() {
        match &items[i] {
            AssignedItem::Local(id) => {
                let g = table.gate(*id);
                sched.close_group_if_conflicts(g.qubits());
                sched.rm.timeline_mut().schedule_gate(g);
                i += 1;
            }
            AssignedItem::Block(b) => match b.scheme {
                Scheme::Cat(_) => {
                    if b.comms == 1 {
                        sched.schedule_cat_block(&b.block);
                    } else {
                        // Cat-only split: one communication per segment.
                        for seg in split_into_segments(table, &b.block) {
                            sched.schedule_cat_block(&seg);
                        }
                    }
                    i += 1;
                }
                Scheme::Tp => {
                    // Gather a fusion chain of consecutive TP blocks on the
                    // same burst qubit. Local gates not touching the qubit
                    // may interleave (scheduled in place); single-qubit
                    // unitaries *on* the qubit ride the chain and execute on
                    // the teleported state at whichever node holds it.
                    let q = b.block.qubit();
                    let chain_end = if sched.options.fuse_tp_chains {
                        find_chain_end(table, items, i, q)
                    } else {
                        i + 1
                    };
                    let mut chain: Vec<ChainStep<'_>> = Vec::new();
                    for item in &items[i..chain_end] {
                        match item {
                            AssignedItem::Block(tb) if tb.scheme == Scheme::Tp => {
                                chain.push(ChainStep::Block(&tb.block));
                            }
                            AssignedItem::Local(id) if table.gate(*id).acts_on(q) => {
                                chain.push(ChainStep::OnState(table.gate(*id)));
                            }
                            AssignedItem::Local(id) => {
                                // Interleaved local gate: schedule in place.
                                sched.rm.timeline_mut().schedule_gate(table.gate(*id));
                            }
                            AssignedItem::Block(_) => unreachable!("chain scan"),
                        }
                    }
                    sched.schedule_tp_chain(&chain);
                    i = chain_end;
                }
            },
        }
    }
    sched.finish()
}

/// Prescans the schedule walk into its comm request sequence — the
/// endpoint pairs every [`dqc_hardware::Timeline`] claim will be issued
/// for, in consumption order. The item list is a topological
/// linearization of the program DAG, so this sequence *is* the lookahead
/// frontier the buffered engine prefetches along. Mirrors the walk's
/// structural decisions exactly: Cat-split segmentation, TP chain
/// grouping, and hop-distance-aware re-homing (all placement/topology
/// functions, independent of timing).
fn comm_requests(
    program: &AssignedProgram,
    placement: &Placement,
    topology: &NetworkTopology,
    options: ScheduleOptions,
) -> Vec<(NodeId, NodeId)> {
    let table = program.ir().table();
    let items = program.items();
    let mut requests = Vec::new();
    let mut i = 0usize;
    while i < items.len() {
        let b = match &items[i] {
            AssignedItem::Local(_) => {
                i += 1;
                continue;
            }
            AssignedItem::Block(b) => b,
        };
        match b.scheme {
            Scheme::Cat(_) => {
                let home = placement.physical_node_of(b.block.qubit());
                let node = placement.physical_of(b.block.node());
                let comms =
                    if b.comms == 1 { 1 } else { split_into_segments(table, &b.block).len() };
                for _ in 0..comms {
                    requests.push((home, node));
                }
                i += 1;
            }
            Scheme::Tp => {
                let q = b.block.qubit();
                let chain_end =
                    if options.fuse_tp_chains { find_chain_end(table, items, i, q) } else { i + 1 };
                let home = placement.physical_node_of(q);
                let mut cursor = home;
                let mut hop = |from: NodeId, to: NodeId| requests.push((from, to));
                for item in &items[i..chain_end] {
                    let AssignedItem::Block(tb) = item else { continue };
                    if tb.scheme != Scheme::Tp {
                        continue;
                    }
                    let node = placement.physical_of(tb.block.node());
                    if node != cursor {
                        if cursor != home && node != home && rehomes(topology, cursor, node, home) {
                            hop(cursor, home);
                            cursor = home;
                        }
                        if node != cursor {
                            hop(cursor, node);
                            cursor = node;
                        }
                    }
                }
                hop(cursor, home);
                i = chain_end;
            }
        }
    }
    requests
}

/// The TP-chain junction decision shared by the prescan and the walk:
/// continuing `cursor → node` directly is only worth it while strictly
/// cheaper than re-homing (see [`Scheduler::schedule_tp_chain`]).
fn rehomes(topology: &NetworkTopology, cursor: NodeId, node: NodeId, home: NodeId) -> bool {
    let direct = topology.route_weight(cursor, node).expect("connected topology");
    let via_home = topology.route_weight(cursor, home).expect("connected")
        + topology.route_weight(home, node).expect("connected");
    direct + 1e-12 >= via_home
}

/// Extends `[start..end)` over consecutive TP blocks with burst qubit `q`,
/// allowing interleaved local gates that do not touch `q` and single-qubit
/// unitaries on `q` itself (they execute on the teleported state).
fn find_chain_end(table: &GateTable, items: &[AssignedItem], start: usize, q: QubitId) -> usize {
    let mut end = start + 1;
    let mut probe = end;
    while probe < items.len() {
        match &items[probe] {
            AssignedItem::Block(b) if b.scheme == Scheme::Tp && b.block.qubit() == q => {
                probe += 1;
                end = probe;
            }
            AssignedItem::Local(id) => {
                let g = table.gate(*id);
                if g.acts_on(q)
                    && !(g.num_qubits() == 1 && g.kind().is_unitary() && g.condition().is_none())
                {
                    break;
                }
                probe += 1;
            }
            AssignedItem::Block(_) => break,
        }
    }
    end
}

/// One step of a TP fusion chain.
enum ChainStep<'a> {
    /// A TP block executed at its remote node.
    Block(&'a CommBlock),
    /// A single-qubit gate applied to the teleported state wherever it is.
    OnState(&'a Gate),
}

/// A set of overlapping commutable Cat blocks sharing one burst qubit
/// (paper Fig. 12). Member bodies live in the scheduler's reused
/// [`CommSummary`], so joiner checks are `O(operands)` per gate instead of
/// a rescan of every member body.
struct CatGroup {
    qubit: QubitId,
    /// Time the burst qubit frees up for the next member's entangler CX.
    q_stagger: f64,
    /// Latest disentangle end among members.
    end: f64,
}

struct Scheduler<'a> {
    rm: ResourceManager,
    table: &'a GateTable,
    placement: &'a Placement,
    options: ScheduleOptions,
    open_group: Option<CatGroup>,
    /// Summary of every member body of the open group.
    group_summary: CommSummary,
    cat_blocks: usize,
    tp_blocks: usize,
    fusion_savings: usize,
}

impl Scheduler<'_> {
    fn claim_earliest(&self, fallback: f64) -> f64 {
        if self.options.prefetch_epr {
            0.0
        } else {
            fallback
        }
    }

    /// Closes the open Cat group when `qubits` intersect its burst qubit
    /// (the group's logical end was already bumped onto the timeline, so
    /// this only drops the bookkeeping).
    fn close_group_if_conflicts(&mut self, qubits: &[QubitId]) {
        if let Some(g) = &self.open_group {
            if qubits.contains(&g.qubit) {
                self.open_group = None;
            }
        }
    }

    /// Whether the candidate body commutes with every member body of the
    /// open group (an exact [`dqc_circuit::commutes_with_all`] through the
    /// group summary).
    fn joins_group(&self, block: &CommBlock) -> bool {
        block.ids().iter().all(|&id| self.group_summary.commutes_with(self.table, id))
    }

    fn schedule_cat_block(&mut self, block: &CommBlock) {
        self.cat_blocks += 1;
        let q = block.qubit();
        // Claims route between *physical* nodes: where the placement put
        // the home and remote blocks.
        let home = self.placement.physical_node_of(q);
        let node = self.placement.physical_of(block.node());
        let lat = *self.rm.timeline().latency();

        // Decide group membership before touching the timeline.
        let joins = self.options.parallel_commutable
            && matches!(&self.open_group, Some(group) if group.qubit == q)
            && self.joins_group(block);
        let q_avail = if joins {
            self.open_group.as_ref().expect("joins implies open").q_stagger
        } else {
            self.open_group = None;
            self.rm.timeline().qubit_free_at(q)
        };

        let earliest = self.claim_earliest(q_avail);
        let claim = self.rm.acquire(home, node, earliest, q_avail);
        let ent_start = claim.epr_ready.max(q_avail);
        let tl = self.rm.timeline_mut();
        // The burst qubit is physically busy for the entangler's local CX.
        tl.occupy_qubits("cat-entangle", &[q], ent_start, ent_start + lat.t_2q);
        let ent_end = ent_start + lat.cat_entangle();

        // Body: gates touching q run on the remote copy (one comm qubit →
        // they serialize on `comm_cursor`); pure node-local gates obey only
        // their own operand wires.
        let mut comm_cursor = ent_end;
        let mut body_end = ent_end;
        for gate in block.gates(self.table) {
            if gate.acts_on(q) {
                let partners: Vec<QubitId> =
                    gate.qubits().iter().copied().filter(|&x| x != q).collect();
                let start =
                    partners.iter().map(|&x| tl.qubit_free_at(x)).fold(comm_cursor, f64::max);
                let end = start + lat.gate(gate);
                if !partners.is_empty() {
                    tl.occupy_qubits("cat-body", &partners, start, end);
                }
                comm_cursor = end;
                body_end = body_end.max(end);
            } else {
                let (_, end) = tl.schedule_gate_after(gate, ent_end);
                body_end = body_end.max(end);
            }
        }

        let dis_end = body_end.max(comm_cursor) + lat.cat_disentangle();
        tl.bump_qubit(q, dis_end);
        tl.release_comm(&claim, dis_end);

        // Update / open the group; either way the body joins the summary.
        if self.options.parallel_commutable {
            match &mut self.open_group {
                Some(group) if group.qubit == q => {
                    group.q_stagger = ent_start + lat.t_2q;
                    group.end = group.end.max(dis_end);
                }
                _ => {
                    self.group_summary.clear();
                    self.open_group =
                        Some(CatGroup { qubit: q, q_stagger: ent_start + lat.t_2q, end: dis_end });
                }
            }
            for &id in block.ids() {
                self.group_summary.add(self.table, id);
            }
        }
    }

    /// Schedules a chain of TP blocks with the same burst qubit as one
    /// teleport cycle `home → N₁ → … → N_m → home` (a single block is the
    /// degenerate cycle `home → N → home`, the paper's 2-EPR accounting).
    fn schedule_tp_chain(&mut self, chain: &[ChainStep<'_>]) {
        let blocks: Vec<&CommBlock> = chain
            .iter()
            .filter_map(|s| match s {
                ChainStep::Block(b) => Some(*b),
                ChainStep::OnState(_) => None,
            })
            .collect();
        assert!(!blocks.is_empty(), "chains contain at least one block");
        self.tp_blocks += blocks.len();
        if blocks.len() > 1 {
            self.fusion_savings += blocks.len() - 1;
        }
        let q = blocks[0].qubit();
        self.close_group_if_conflicts(&[q]);
        let home = self.placement.physical_node_of(q);
        let lat = *self.rm.timeline().latency();

        let mut state_time = self.rm.timeline().qubit_free_at(q);
        let journey_start = state_time;
        let mut cursor_node = home;
        // The claim whose destination slot currently stores the state.
        let mut holding: Option<dqc_hardware::CommClaim> = None;

        let hop = |sched: &mut Self,
                   from: NodeId,
                   to: NodeId,
                   state_time: f64,
                   holding: &mut Option<dqc_hardware::CommClaim>|
         -> f64 {
            let earliest = sched.claim_earliest(state_time);
            let claim = sched.rm.acquire(from, to, earliest, state_time);
            let t_start = claim.epr_ready.max(state_time);
            let t_end = t_start + lat.teleport();
            // The source side frees once the Bell measurement is done; the
            // slot that held the state on `from` (previous hop's
            // destination) frees as well — the state just left.
            sched.rm.timeline_mut().release_comm_source(&claim, t_end);
            if let Some(prev) = holding.take() {
                sched.rm.timeline_mut().release_comm_dest(&prev, t_end);
            }
            *holding = Some(claim);
            t_end
        };

        for step in chain {
            let block = match step {
                ChainStep::Block(b) => *b,
                ChainStep::OnState(g) => {
                    // Applied to the state on whichever node holds it.
                    state_time += lat.gate(g);
                    continue;
                }
            };
            let node = self.placement.physical_of(block.node());
            if node != cursor_node {
                // Hop-distance-aware fusion: continuing the chain directly
                // is worth it only while the direct route is strictly
                // cheaper than re-homing (teleport home, then out again).
                // On all-to-all machines direct is always 1 < 2, preserving
                // the paper's always-fuse behavior; on sparse topologies a
                // junction whose route passes home anyway breaks the chain
                // there, freeing home's comm slots at equal link cost.
                if cursor_node != home
                    && node != home
                    && rehomes(self.rm.timeline().topology(), cursor_node, node, home)
                {
                    state_time = hop(self, cursor_node, home, state_time, &mut holding);
                    cursor_node = home;
                    self.fusion_savings = self.fusion_savings.saturating_sub(1);
                }
                if node != cursor_node {
                    state_time = hop(self, cursor_node, node, state_time, &mut holding);
                    cursor_node = node;
                }
            }
            // Body on `node`, with the comm qubit (holding q) serializing.
            let mut comm_cursor = state_time;
            let tl = self.rm.timeline_mut();
            for gate in block.gates(self.table) {
                if gate.acts_on(q) {
                    let partners: Vec<QubitId> =
                        gate.qubits().iter().copied().filter(|&x| x != q).collect();
                    let start =
                        partners.iter().map(|&x| tl.qubit_free_at(x)).fold(comm_cursor, f64::max);
                    let end = start + lat.gate(gate);
                    if !partners.is_empty() {
                        tl.occupy_qubits("tp-body", &partners, start, end);
                    }
                    comm_cursor = end;
                } else {
                    let (_, end) = tl.schedule_gate_after(gate, state_time);
                    comm_cursor = comm_cursor.max(end);
                }
            }
            state_time = comm_cursor;
        }

        // Teleport home; the arrival slot frees immediately after the local
        // relocation onto the original wire (uncharged, as in the paper).
        state_time = hop(self, cursor_node, home, state_time, &mut holding);
        if let Some(last) = holding.take() {
            self.rm.timeline_mut().release_comm_dest(&last, state_time);
        }
        self.rm.timeline_mut().occupy_qubits("tp-journey", &[q], journey_start, state_time);
    }

    fn finish(self) -> ScheduleSummary {
        let policy = self.rm.policy();
        let (tl, metrics) = self.rm.finish();
        ScheduleSummary {
            makespan: tl.makespan(),
            epr_pairs: tl.epr_pairs_consumed(),
            swaps: tl.swaps_performed(),
            link_traffic: tl.link_traffic().collect(),
            fusion_savings: self.fusion_savings,
            cat_blocks: self.cat_blocks,
            tp_blocks: self.tp_blocks,
            buffering: BufferingReport::new(policy, &metrics, false),
            events: tl.events().map(|e| e.to_vec()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{aggregate, assign, AggregateOptions};
    use dqc_circuit::{Circuit, Partition};

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    fn compile_and_schedule(
        c: &Circuit,
        p: &Partition,
        options: ScheduleOptions,
    ) -> ScheduleSummary {
        let program = assign(&aggregate(c, p, AggregateOptions::default()));
        schedule(&program, &Placement::identity(p), &HardwareSpec::for_partition(p), options)
    }

    #[test]
    #[should_panic(expected = "maps a block onto node")]
    fn out_of_range_placement_fails_loudly() {
        // An injective map can still point past the machine; the scheduler
        // must reject it with a clear message, not an index panic deep in
        // the timeline.
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(dqc_circuit::Gate::cx(q(0), q(2))).unwrap();
        let program = assign(&aggregate(&c, &p, AggregateOptions::default()));
        let placement = Placement::new(p.clone(), vec![NodeId::new(0), NodeId::new(5)]).unwrap();
        let hw = HardwareSpec::for_partition(&p);
        schedule(&program, &placement, &hw, ScheduleOptions::default());
    }

    #[test]
    fn single_cat_block_latency() {
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(dqc_circuit::Gate::cx(q(0), q(2))).unwrap();
        let s = compile_and_schedule(&c, &p, ScheduleOptions::default());
        assert_eq!(s.epr_pairs, 1);
        assert_eq!(s.cat_blocks, 1);
        // tep + entangle + CX + disentangle = 12 + 7.1 + 1 + 6.2 = 26.3.
        assert!((s.makespan - 26.3).abs() < 1e-9, "makespan {}", s.makespan);
    }

    #[test]
    fn tp_chain_fusion_saves_pairs() {
        // Bidirectional bursts from q0 to two different nodes, back to back.
        let p = Partition::block(6, 3).unwrap();
        let mut c = Circuit::new(6);
        for node_q in [2usize, 4] {
            c.push(dqc_circuit::Gate::cx(q(0), q(node_q))).unwrap();
            c.push(dqc_circuit::Gate::cx(q(node_q), q(0))).unwrap();
        }
        let fused = compile_and_schedule(&c, &p, ScheduleOptions::default());
        assert_eq!(fused.tp_blocks, 2);
        assert_eq!(fused.fusion_savings, 1);
        assert_eq!(fused.epr_pairs, 3); // 2m = 4 without fusion

        let plain = compile_and_schedule(&c, &p, ScheduleOptions::plain_greedy());
        assert_eq!(plain.epr_pairs, 4);
        assert!(
            fused.makespan < plain.makespan,
            "fusion must shorten the schedule: {} vs {}",
            fused.makespan,
            plain.makespan
        );
    }

    #[test]
    fn prefetch_hides_epr_latency() {
        // A long local prologue lets prefetching hide the EPR preparation.
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        for _ in 0..20 {
            c.push(dqc_circuit::Gate::cx(q(0), q(1))).unwrap();
        }
        c.push(dqc_circuit::Gate::cx(q(0), q(2))).unwrap();
        let with = compile_and_schedule(&c, &p, ScheduleOptions::default());
        let without = compile_and_schedule(&c, &p, ScheduleOptions::plain_greedy());
        assert!(with.makespan + 1e-9 < without.makespan);
        // The 12-unit prep hides fully behind the 20-unit prologue.
        assert!((without.makespan - with.makespan - 12.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_cat_groups_overlap() {
        // Two commutable cat blocks sharing the control qubit (Fig. 12).
        let p = Partition::block(6, 3).unwrap();
        let mut c = Circuit::new(6);
        c.push(dqc_circuit::Gate::cx(q(0), q(2))).unwrap();
        c.push(dqc_circuit::Gate::cx(q(0), q(4))).unwrap();
        let par = compile_and_schedule(&c, &p, ScheduleOptions::default());
        let seq = compile_and_schedule(&c, &p, ScheduleOptions::plain_greedy());
        assert!(par.makespan < seq.makespan);
        // Parallel: both blocks end ≈ together (stagger = 1 CX).
        assert!((par.makespan - 27.3).abs() < 1e-6, "got {}", par.makespan);
    }

    #[test]
    fn events_validate_against_hardware() {
        let p = Partition::block(6, 2).unwrap();
        let c = dqc_circuit::unroll_circuit(&dqc_workloads::qft(6)).unwrap();
        let program = assign(&aggregate(&c, &p, AggregateOptions::default()));
        let hw = HardwareSpec::for_partition(&p);
        let opts = ScheduleOptions { record_events: true, ..ScheduleOptions::default() };
        let s = schedule(&program, &Placement::identity(&p), &hw, opts);
        let events = s.events.expect("recording enabled");
        dqc_hardware::validate_events(&events, &hw).unwrap();
        assert!(s.makespan > 0.0);
    }

    #[test]
    fn plain_greedy_never_beats_burst_greedy() {
        for seed in 0..5 {
            let (c, p) = dqc_workloads::random_distributed_circuit(8, 2, 60, seed);
            let c = dqc_circuit::unroll_circuit(&c).unwrap();
            let burst = compile_and_schedule(&c, &p, ScheduleOptions::default());
            let plain = compile_and_schedule(&c, &p, ScheduleOptions::plain_greedy());
            assert!(
                burst.makespan <= plain.makespan + 1e-9,
                "seed {seed}: burst {} > plain {}",
                burst.makespan,
                plain.makespan
            );
        }
    }

    fn linear_hw(p: &Partition) -> HardwareSpec {
        HardwareSpec::for_partition(p)
            .with_topology(dqc_hardware::NetworkTopology::linear(p.num_nodes()).unwrap())
            .unwrap()
    }

    #[test]
    fn sparse_topology_charges_per_hop() {
        // A single cat block between the ends of a 3-node chain: 2 hops,
        // 2 link pairs, 1 swap, and strictly more latency than all-to-all.
        let p = Partition::block(6, 3).unwrap();
        let mut c = Circuit::new(6);
        c.push(dqc_circuit::Gate::cx(q(0), q(4))).unwrap();
        let program = assign(&aggregate(&c, &p, AggregateOptions::default()));
        let dense = schedule(
            &program,
            &Placement::identity(&p),
            &HardwareSpec::for_partition(&p),
            ScheduleOptions::default(),
        );
        let sparse = schedule(
            &program,
            &Placement::identity(&p),
            &linear_hw(&p),
            ScheduleOptions::default(),
        );
        assert_eq!(dense.epr_pairs, 1);
        assert_eq!(dense.swaps, 0);
        assert_eq!(sparse.epr_pairs, 2);
        assert_eq!(sparse.swaps, 1);
        assert!(sparse.makespan > dense.makespan);
        let n = dqc_circuit::NodeId::new;
        assert_eq!(sparse.link_traffic, vec![(n(0), n(1), 1), (n(1), n(2), 1)]);
    }

    #[test]
    fn all_to_all_summary_reports_no_swaps_or_relays() {
        let p = Partition::block(6, 2).unwrap();
        let c = dqc_circuit::unroll_circuit(&dqc_workloads::qft(6)).unwrap();
        let s = compile_and_schedule(&c, &p, ScheduleOptions::default());
        assert_eq!(s.swaps, 0);
        assert!(s.link_traffic.iter().all(|&(a, b, _)| a != b));
        let total: usize = s.link_traffic.iter().map(|&(_, _, t)| t).sum();
        assert_eq!(total, s.epr_pairs, "per-link traffic partitions the EPR count");
    }

    #[test]
    fn tp_chain_rehomes_when_the_route_passes_home() {
        // Home node 1 sits between nodes 0 and 2 on a chain. A fused TP
        // tour 1→0→2→1 would route its 0→2 junction through home anyway,
        // so the hop-aware scheduler breaks the chain there (one fewer
        // fusion saving than on all-to-all).
        let p = Partition::block(6, 3).unwrap();
        let mut c = Circuit::new(6);
        // Three gates per remote node make q2 the ranked burst qubit of
        // both blocks (so they form one TP chain).
        for node_q in [0usize, 4] {
            c.push(dqc_circuit::Gate::cx(q(2), q(node_q))).unwrap();
            c.push(dqc_circuit::Gate::cx(q(node_q), q(2))).unwrap();
            c.push(dqc_circuit::Gate::cx(q(2), q(node_q + 1))).unwrap();
        }
        let program = assign(&aggregate(&c, &p, AggregateOptions::default()));
        let dense = schedule(
            &program,
            &Placement::identity(&p),
            &HardwareSpec::for_partition(&p),
            ScheduleOptions::default(),
        );
        let sparse = schedule(
            &program,
            &Placement::identity(&p),
            &linear_hw(&p),
            ScheduleOptions::default(),
        );
        assert_eq!(dense.fusion_savings, 1, "all-to-all fuses the junction");
        assert_eq!(sparse.fusion_savings, 0, "linear re-homes at the junction");
        // Re-homing costs the same link pairs as the direct 2-hop route.
        assert_eq!(sparse.epr_pairs, 4);
        assert_eq!(sparse.swaps, 0, "every leg of the re-homed tour is adjacent");
    }

    #[test]
    fn sparse_events_validate_against_the_link_model() {
        let p = Partition::block(8, 4).unwrap();
        let c = dqc_circuit::unroll_circuit(&dqc_workloads::qft(8)).unwrap();
        let program = assign(&aggregate(&c, &p, AggregateOptions::default()));
        let hw = linear_hw(&p);
        let opts = ScheduleOptions { record_events: true, ..ScheduleOptions::default() };
        let s = schedule(&program, &Placement::identity(&p), &hw, opts);
        dqc_hardware::validate_events(&s.events.expect("recording enabled"), &hw).unwrap();
        assert!(s.swaps > 0, "QFT over a 4-chain must swap");
    }

    // ---- EPR buffering ----------------------------------------------------

    fn buffered(depth: usize) -> ScheduleOptions {
        ScheduleOptions::default().with_buffer(BufferPolicy::Prefetch { depth })
    }

    #[test]
    fn on_demand_policy_is_the_default_and_reports_no_hits() {
        let p = Partition::block(6, 3).unwrap();
        let c = dqc_circuit::unroll_circuit(&dqc_workloads::qft(6)).unwrap();
        let s = compile_and_schedule(&c, &p, ScheduleOptions::default());
        assert_eq!(s.buffering.policy, BufferPolicy::OnDemand);
        assert_eq!(s.buffering.prefetch_hits, 0);
        assert!(s.buffering.requests > 0);
        assert!(!s.buffering.fell_back);
    }

    #[test]
    fn buffered_policies_never_lose_and_report_their_run() {
        let p = Partition::block(8, 4).unwrap();
        let c = dqc_circuit::unroll_circuit(&dqc_workloads::qft(8)).unwrap();
        let program = assign(&aggregate(&c, &p, AggregateOptions::default()));
        let hw = linear_hw(&p);
        let base = schedule(&program, &Placement::identity(&p), &hw, ScheduleOptions::default());
        for policy in [
            BufferPolicy::Prefetch { depth: 2 },
            BufferPolicy::Prefetch { depth: 8 },
            BufferPolicy::Greedy,
        ] {
            let s = schedule(
                &program,
                &Placement::identity(&p),
                &hw,
                ScheduleOptions::default().with_buffer(policy),
            );
            assert!(
                s.makespan <= base.makespan + 1e-9,
                "{policy:?} lost: {} vs {}",
                s.makespan,
                base.makespan
            );
            assert_eq!(s.epr_pairs, base.epr_pairs, "{policy:?} changed EPR accounting");
            assert_eq!(s.swaps, base.swaps);
            assert_eq!(s.buffering.policy, policy);
            assert_eq!(
                s.buffering.requests,
                s.buffering.prefetch_hits + s.buffering.prefetch_misses
            );
        }
    }

    #[test]
    fn prefetch_wins_under_link_contention() {
        // Back-to-back cat bursts from both end nodes of a chain contend
        // for links and comm slots; buffered generation pipelines past the
        // slot-hold serialization and must strictly win.
        let p = Partition::block(8, 4).unwrap();
        let c = dqc_circuit::unroll_circuit(&dqc_workloads::qft(8)).unwrap();
        let program = assign(&aggregate(&c, &p, AggregateOptions::default()));
        let hw = linear_hw(&p);
        let base = schedule(&program, &Placement::identity(&p), &hw, ScheduleOptions::default());
        let pre = schedule(&program, &Placement::identity(&p), &hw, buffered(4));
        assert!(
            pre.makespan + 1e-9 < base.makespan,
            "prefetch should hide generation latency here: {} vs {}",
            pre.makespan,
            base.makespan
        );
        assert!(pre.buffering.prefetch_hits > 0);
        assert!(!pre.buffering.fell_back);
        assert!(pre.buffering.hit_rate > 0.0 && pre.buffering.hit_rate <= 1.0);
    }

    #[test]
    fn buffered_events_validate_against_hardware() {
        let p = Partition::block(8, 4).unwrap();
        let c = dqc_circuit::unroll_circuit(&dqc_workloads::qft(8)).unwrap();
        let program = assign(&aggregate(&c, &p, AggregateOptions::default()));
        let hw = linear_hw(&p);
        let opts = ScheduleOptions { record_events: true, ..buffered(4) };
        let s = schedule(&program, &Placement::identity(&p), &hw, opts);
        dqc_hardware::validate_events(&s.events.expect("recording enabled"), &hw).unwrap();
    }

    #[test]
    fn comm_request_prescan_matches_the_walk() {
        // The prescan must predict exactly the claims the walk issues —
        // the debug assertion in `ResourceManager::acquire` checks this on
        // every buffered schedule; here we lock the counts explicitly.
        for (c, p) in [
            {
                let c = dqc_circuit::unroll_circuit(&dqc_workloads::qft(8)).unwrap();
                (c, Partition::block(8, 4).unwrap())
            },
            {
                let c = dqc_circuit::unroll_circuit(&dqc_workloads::uccsd(8)).unwrap();
                (c, Partition::block(8, 4).unwrap())
            },
        ] {
            let program = assign(&aggregate(&c, &p, AggregateOptions::default()));
            for hw in [HardwareSpec::for_partition(&p), linear_hw(&p)] {
                let placement = Placement::identity(&p);
                let requests =
                    comm_requests(&program, &placement, hw.topology(), ScheduleOptions::default());
                let s = schedule(&program, &placement, &hw, buffered(4));
                assert_eq!(requests.len(), s.buffering.requests, "{}", hw.topology().name());
            }
        }
    }
}
