//! Communication assignment (paper §4.3).
//!
//! Each burst block's pattern decides its physical scheme:
//!
//! * **unidirectional control-form** (every remote gate Z-diagonal on the
//!   burst qubit, no interior gate on it) → Cat-Comm, one EPR pair;
//! * **unidirectional target-form** (every remote CX targets the burst
//!   qubit, no interior gate on it) → H-conjugate to control form (paper
//!   Fig. 10a), then Cat-Comm, one EPR pair;
//! * anything else — direction changes or non-hoistable interior gates on
//!   the burst qubit (paper's block ③ with its T† obstruction, or the
//!   bidirectional Fig. 9b) → the Cat cost is the number of single-call
//!   segments while TP-Comm costs a flat two EPR pairs; the cheaper wins
//!   and ties go to TP, exactly the paper's default.
//!
//! Since the topology re-platforming the cost model is hop-distance-aware
//! ([`assign_on`]): every end-to-end communication between nodes at routed
//! hop distance `h` consumes `h` link-level EPR pairs, recorded per block
//! as [`AssignedBlock::epr_cost`]. On multi-hop pairs the 2-segment tie
//! flips from TP to a split Cat: the cat-disentangler needs no fresh
//! entanglement, while TP-Comm's teleport-home leg must run a second swap
//! chain through scarce relay-node slots. At `h == 1` every decision is
//! exactly the paper's, so all-to-all machines reproduce the historical
//! assignment bit for bit.
//!
//! Since the `CommIr` refactor blocks carry gate ids; segmentation walks
//! the shared table instead of cloned bodies, and splitting a block into
//! segments copies `u32` indices only.

use std::sync::Arc;

use dqc_circuit::{AxisBehavior, Gate, GateId, GateTable, WireClass};
use dqc_hardware::NetworkTopology;

use crate::par::par_map;
use crate::{AggregatedProgram, CommBlock, CommIr, Item, Placement};

/// How a Cat-Comm block is oriented before expansion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CatOrientation {
    /// Remote gates use the burst qubit as control (expandable directly).
    Control,
    /// Remote gates use the burst qubit as CX target; lowering conjugates
    /// the block with Hadamards first (paper Fig. 10a).
    Target,
}

/// The physical scheme chosen for one block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheme {
    /// Cat-entangler/disentangler; one EPR pair per single-call segment.
    Cat(CatOrientation),
    /// Teleport there and back; two EPR pairs regardless of block size.
    Tp,
}

/// A burst block with its assigned scheme and communication cost.
#[derive(Clone, Debug, PartialEq)]
pub struct AssignedBlock {
    /// The block.
    pub block: CommBlock,
    /// Chosen scheme.
    pub scheme: Scheme,
    /// Remote communications (end-to-end) this block is charged for in the
    /// paper's metric: 1 for a single-call Cat block, `segments` for a
    /// Cat-only split, 2 for TP.
    pub comms: usize,
    /// Number of single-call Cat segments the body splits into.
    pub segments: usize,
    /// Link-level EPR pairs this block is charged for under the hardware's
    /// routed hop distances: `comms × hops(home, node)`. Equal to `comms`
    /// on all-to-all machines.
    pub epr_cost: usize,
}

/// An aggregated program with every block assigned a scheme, sharing the
/// compile's [`CommIr`].
#[derive(Clone, Debug)]
pub struct AssignedProgram {
    ir: Arc<CommIr>,
    items: Vec<AssignedItem>,
}

/// One element of an assigned program.
#[derive(Clone, Debug, PartialEq)]
pub enum AssignedItem {
    /// A local gate (an id into the program's table).
    Local(GateId),
    /// An assigned burst block.
    Block(AssignedBlock),
}

impl PartialEq for AssignedProgram {
    fn eq(&self, other: &Self) -> bool {
        self.num_qubits() == other.num_qubits()
            && self.num_cbits() == other.num_cbits()
            && self.items.len() == other.items.len()
            && self.items.iter().zip(&other.items).all(|(a, b)| match (a, b) {
                (AssignedItem::Local(x), AssignedItem::Local(y)) => self.gate(*x) == other.gate(*y),
                (AssignedItem::Block(x), AssignedItem::Block(y)) => {
                    x.scheme == y.scheme
                        && x.comms == y.comms
                        && x.segments == y.segments
                        && x.epr_cost == y.epr_cost
                        && x.block.qubit() == y.block.qubit()
                        && x.block.node() == y.block.node()
                        && x.block.ids().len() == y.block.ids().len()
                        && x.block
                            .gates(self.ir.table())
                            .zip(y.block.gates(other.ir.table()))
                            .all(|(g, h)| g == h)
                }
                _ => false,
            })
    }
}

impl AssignedProgram {
    /// The shared indexed IR this program resolves against.
    pub fn ir(&self) -> &Arc<CommIr> {
        &self.ir
    }

    /// Resolves a gate id through the program's table.
    pub fn gate(&self, id: GateId) -> &Gate {
        self.ir.gate(id)
    }

    /// Items in execution order.
    pub fn items(&self) -> &[AssignedItem] {
        &self.items
    }

    /// Iterates over assigned blocks in execution order.
    pub fn blocks(&self) -> impl Iterator<Item = &AssignedBlock> {
        self.items.iter().filter_map(|i| match i {
            AssignedItem::Block(b) => Some(b),
            AssignedItem::Local(_) => None,
        })
    }

    /// Register width.
    pub fn num_qubits(&self) -> usize {
        self.ir.num_qubits()
    }

    /// Classical register width.
    pub fn num_cbits(&self) -> usize {
        self.ir.num_cbits()
    }
}

/// Splits a block body into maximal single-call Cat segments and reports
/// the orientation when there is exactly one.
///
/// A segment extends while remote gates keep one orientation (Z-diagonal on
/// the burst qubit = control form; X-diagonal = target form) and no
/// incompatible interior gate touches the burst qubit.
pub(crate) fn cat_segments(table: &GateTable, block: &CommBlock) -> (usize, CatOrientation) {
    // Walks the table's precomputed per-wire class records exclusively —
    // never the heap-allocated gates — so the hot per-block assignment
    // stage reads only flat arena `Vec`s. `WireClass` reproduces
    // `AxisBehavior::of` exactly on operand wires, with `Block` standing
    // in for non-unitary opacity (both are segment breakers here).
    let q = block.qubit().index();
    let mut segments = 0usize;
    let mut current: Option<CatOrientation> = None;
    let mut first = CatOrientation::Control;
    for &id in block.ids() {
        let Some(class) = table.wire_class_on(id, q) else {
            continue; // node-local interior gate: rides along
        };
        if table.is_unitary(id) && table.operand_count(id) == 2 {
            let orientation = match class {
                WireClass::ZDiag => CatOrientation::Control,
                WireClass::XDiag => CatOrientation::Target,
                WireClass::Opaque | WireClass::Block => {
                    // e.g. a SWAP: no cat segment can carry it; force splits.
                    current = None;
                    segments += 2;
                    continue;
                }
            };
            match current {
                Some(o) if o == orientation => {}
                _ => {
                    segments += 1;
                    if segments == 1 {
                        first = orientation;
                    }
                    current = Some(orientation);
                }
            }
        } else {
            // Interior single-qubit gate on the burst qubit: compatible with
            // the running orientation only if it is diagonal in the same
            // basis (then the cat copy commutes through it).
            let compatible = matches!(
                (current, class),
                (Some(CatOrientation::Control), WireClass::ZDiag)
                    | (Some(CatOrientation::Target), WireClass::XDiag)
            );
            if !compatible {
                current = None;
            }
        }
    }
    (segments.max(1), first)
}

/// Hybrid assignment (the paper's scheme): single-call blocks ride
/// Cat-Comm; everything else takes TP-Comm at two EPR pairs (ties included).
/// Hop distances are the paper's implicit all-to-all (1 everywhere).
pub fn assign(program: &AggregatedProgram) -> AssignedProgram {
    assign_with(program, true, None)
}

/// Cat-Comm-only ablation (paper Fig. 17b, modeling the Diadamo et al.
/// style compiler): every block is implemented by Cat-Comm, costing one
/// EPR pair per single-call segment.
pub fn assign_cat_only(program: &AggregatedProgram) -> AssignedProgram {
    assign_with(program, false, None)
}

/// Hybrid assignment against an explicit interconnect topology: the cost
/// model charges `hops(home, node)` link-level EPR pairs per end-to-end
/// communication between the *physical* nodes the placement pins the two
/// blocks to, and the 2-segment Cat/TP tie flips to Cat on multi-hop pairs
/// (see the module docs). With `NetworkTopology::all_to_all` — or any
/// topology under the identity placement of a diameter-1 machine — this is
/// exactly [`assign`].
///
/// # Panics
///
/// Panics if `topology` leaves a communicating node pair unreachable.
/// `HardwareSpec::with_topology` rejects disconnected machines, so programs
/// compiled through the pipeline never hit this; only hand-built
/// topologies from `NetworkTopology::from_links` can.
pub fn assign_on(
    program: &AggregatedProgram,
    placement: &Placement,
    topology: &NetworkTopology,
) -> AssignedProgram {
    assign_with(program, true, Some((placement, topology)))
}

/// [`assign_cat_only`] with hop-distance-aware `epr_cost` accounting.
///
/// # Panics
///
/// See [`assign_on`].
pub fn assign_cat_only_on(
    program: &AggregatedProgram,
    placement: &Placement,
    topology: &NetworkTopology,
) -> AssignedProgram {
    assign_with(program, false, Some((placement, topology)))
}

/// Routed hop distance between a block's physical endpoints (1 without an
/// explicit topology — the paper's implicit all-to-all).
fn block_hops(block: &CommBlock, routing: Option<(&Placement, &NetworkTopology)>) -> usize {
    routing
        .map(|(placement, topology)| {
            let home = placement.physical_of(block.home(placement.partition()));
            let node = placement.physical_of(block.node());
            topology.hop_distance(home, node).unwrap_or_else(|| {
                panic!(
                    "topology has no route between {home} and {node} (pass a \
                     connected topology, e.g. one accepted by \
                     HardwareSpec::with_topology)"
                )
            })
        })
        .unwrap_or(1)
}

/// Scheme decision for one block at a known hop distance — the pure
/// per-block kernel both the full assignment fan-out and the incremental
/// re-assignment share.
fn assign_block(table: &GateTable, b: &CommBlock, hops: usize, hybrid: bool) -> AssignedBlock {
    let (segments, orientation) = cat_segments(table, b);
    let (scheme, comms) = if segments == 1 {
        (Scheme::Cat(orientation), 1)
    } else if !hybrid {
        (Scheme::Cat(orientation), segments)
    } else if hops > 1 && segments == 2 {
        // End-to-end tie (2 vs 2). On multi-hop pairs the split
        // Cat wins: its disentanglers need no fresh
        // entanglement, while TP's teleport-home leg runs a
        // second swap chain through scarce relay slots.
        (Scheme::Cat(orientation), segments)
    } else {
        // Cat would need `segments` pairs, TP always needs 2;
        // ties go to TP at hop distance 1 (paper block ③).
        (Scheme::Tp, 2)
    };
    AssignedBlock { block: b.clone(), scheme, comms, segments, epr_cost: comms * hops }
}

fn assign_with(
    program: &AggregatedProgram,
    hybrid: bool,
    routing: Option<(&Placement, &NetworkTopology)>,
) -> AssignedProgram {
    let table = program.ir().table();
    // Per-item work is independent; fan out on scoped threads with a
    // deterministic in-order merge (par_map), so the parallel result is
    // bit-identical to the sequential one.
    let items = par_map(program.items(), |item| match item {
        Item::Local(id) => AssignedItem::Local(*id),
        Item::Block(b) => {
            AssignedItem::Block(assign_block(table, b, block_hops(b, routing), hybrid))
        }
    });
    AssignedProgram { ir: Arc::clone(program.ir()), items }
}

/// Re-derives a scheme assignment after a placement change (`hybrid` as in
/// [`assign`] vs [`assign_cat_only`]), reusing every
/// block whose **physical endpoints did not move**: a block's segmentation
/// depends only on its body, and its scheme/cost only on the routed hop
/// distance between its two physical endpoints, so an unmoved block's
/// previous [`AssignedBlock`] is bit-identical to a fresh recompute. Only
/// blocks with a moved endpoint re-run [`cat_segments`].
///
/// This is the incremental-recompilation kernel of
/// [`crate::AutoComm::compile_placed`]: a refinement round that moves two
/// of *n* partition blocks re-assigns only the bursts touching those two
/// nodes instead of the whole program.
///
/// Both placements must share one logical partition (refinement rounds
/// only permute the block→node map).
///
/// # Panics
///
/// See [`assign_on`]; debug builds also assert the partitions match.
pub fn assign_incremental(
    prev: &AssignedProgram,
    prev_placement: &Placement,
    placement: &Placement,
    topology: &NetworkTopology,
    hybrid: bool,
) -> AssignedProgram {
    debug_assert_eq!(
        prev_placement.partition(),
        placement.partition(),
        "incremental re-assignment requires an unchanged logical partition"
    );
    let table = prev.ir().table();
    let items = par_map(prev.items(), |item| match item {
        AssignedItem::Local(id) => AssignedItem::Local(*id),
        AssignedItem::Block(ab) => {
            let home = ab.block.home(placement.partition());
            let node = ab.block.node();
            let moved = prev_placement.physical_of(home) != placement.physical_of(home)
                || prev_placement.physical_of(node) != placement.physical_of(node);
            if moved {
                let hops = block_hops(&ab.block, Some((placement, topology)));
                AssignedItem::Block(assign_block(table, &ab.block, hops, hybrid))
            } else {
                AssignedItem::Block(ab.clone())
            }
        }
    });
    AssignedProgram { ir: Arc::clone(prev.ir()), items }
}

/// Splits a block into its single-call Cat segments (used when lowering
/// Cat-only assignments, and by the scheduler to serialize split blocks).
/// Interior node-local gates attach to the current segment. Only gate ids
/// move — bodies are never cloned.
pub(crate) fn split_into_segments(table: &GateTable, block: &CommBlock) -> Vec<CommBlock> {
    let q = block.qubit();
    let mut out: Vec<CommBlock> = Vec::new();
    let mut current = CommBlock::new(q, block.node());
    let mut orientation: Option<CatOrientation> = None;
    let seal = |blk: &mut CommBlock, out: &mut Vec<CommBlock>| {
        if !blk.is_empty() {
            out.push(std::mem::replace(blk, CommBlock::new(q, block.node())));
        }
    };
    for &id in block.ids() {
        let gate = table.gate(id);
        if !gate.acts_on(q) {
            current.push(id, gate);
            continue;
        }
        let behavior = AxisBehavior::of(gate, q);
        if gate.is_two_qubit_unitary() {
            let o = match behavior {
                AxisBehavior::ZDiag => CatOrientation::Control,
                AxisBehavior::XDiag => CatOrientation::Target,
                AxisBehavior::Opaque => {
                    // Unsplittable remote gate: isolate it.
                    seal(&mut current, &mut out);
                    orientation = None;
                    let mut solo = CommBlock::new(q, block.node());
                    solo.push(id, gate);
                    out.push(solo);
                    continue;
                }
            };
            match orientation {
                Some(cur) if cur == o => current.push(id, gate),
                _ => {
                    seal(&mut current, &mut out);
                    orientation = Some(o);
                    current.push(id, gate);
                }
            }
        } else {
            let compatible = matches!(
                (orientation, behavior),
                (Some(CatOrientation::Control), AxisBehavior::ZDiag)
                    | (Some(CatOrientation::Target), AxisBehavior::XDiag)
            );
            if compatible {
                current.push(id, gate);
            } else {
                seal(&mut current, &mut out);
                orientation = None;
                current.push(id, gate);
            }
        }
    }
    seal(&mut current, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_circuit::{Circuit, NodeId, Partition, QubitId};

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    /// Builds an IR whose stream is exactly `gates`, plus a block holding
    /// all of them for the pair (q0, N1).
    fn ir_and_block(gates: Vec<Gate>) -> (Arc<CommIr>, CommBlock) {
        let mut c = Circuit::new(4);
        for g in &gates {
            c.push(g.clone()).unwrap();
        }
        let ir = CommIr::build_shared(&c, &Partition::block(4, 2).unwrap());
        let mut b = CommBlock::new(q(0), NodeId::new(1));
        for (pos, _) in gates.iter().enumerate() {
            let id = ir.stream()[pos];
            b.push(id, ir.gate(id));
        }
        (ir, b)
    }

    fn assigned_single(gates: Vec<Gate>, hybrid: bool) -> AssignedBlock {
        let (ir, block) = ir_and_block(gates);
        let program = AggregatedProgram::from_parts(ir, vec![Item::Block(block)]);
        let assigned = if hybrid { assign(&program) } else { assign_cat_only(&program) };
        let block = assigned.blocks().next().unwrap().clone();
        block
    }

    #[test]
    fn control_form_gets_cat() {
        let a = assigned_single(
            vec![Gate::cx(q(0), q(2)), Gate::ry(0.2, q(2)), Gate::cx(q(0), q(3))],
            true,
        );
        assert_eq!(a.scheme, Scheme::Cat(CatOrientation::Control));
        assert_eq!(a.comms, 1);
    }

    #[test]
    fn target_form_gets_cat_with_conjugation() {
        let a = assigned_single(vec![Gate::cx(q(2), q(0)), Gate::cx(q(3), q(0))], true);
        assert_eq!(a.scheme, Scheme::Cat(CatOrientation::Target));
        assert_eq!(a.comms, 1);
    }

    #[test]
    fn bidirectional_gets_tp() {
        let a = assigned_single(vec![Gate::cx(q(0), q(2)), Gate::cx(q(2), q(0))], true);
        assert_eq!(a.scheme, Scheme::Tp);
        assert_eq!(a.comms, 2);
        assert_eq!(a.segments, 2);
    }

    #[test]
    fn obstructed_unidirectional_defaults_to_tp() {
        // Paper block ③: T† on the burst qubit between two control-form CXs.
        let a =
            assigned_single(vec![Gate::cx(q(0), q(2)), Gate::h(q(0)), Gate::cx(q(0), q(3))], true);
        assert_eq!(a.scheme, Scheme::Tp);
        assert_eq!(a.segments, 2);
    }

    #[test]
    fn diagonal_interior_on_burst_is_harmless() {
        let a =
            assigned_single(vec![Gate::cx(q(0), q(2)), Gate::t(q(0)), Gate::cx(q(0), q(3))], true);
        assert_eq!(a.scheme, Scheme::Cat(CatOrientation::Control));
        assert_eq!(a.comms, 1);
    }

    #[test]
    fn cat_only_pays_per_segment() {
        let a = assigned_single(
            vec![Gate::cx(q(0), q(2)), Gate::cx(q(2), q(0)), Gate::cx(q(0), q(3))],
            false,
        );
        assert!(matches!(a.scheme, Scheme::Cat(_)));
        assert_eq!(a.segments, 3);
        assert_eq!(a.comms, 3);
    }

    #[test]
    fn split_segments_cover_all_gates() {
        let (ir, b) = ir_and_block(vec![
            Gate::cx(q(0), q(2)),
            Gate::h(q(2)),
            Gate::cx(q(2), q(0)),
            Gate::cx(q(3), q(0)),
        ]);
        let segs = split_into_segments(ir.table(), &b);
        assert_eq!(segs.len(), 2);
        let total: usize = segs.iter().map(|s| s.len()).sum();
        assert_eq!(total, b.len());
        assert_eq!(segs[0].remote_gate_count(), 1);
        assert_eq!(segs[1].remote_gate_count(), 2);
    }

    #[test]
    fn singleton_block_is_always_cat() {
        let a = assigned_single(vec![Gate::cx(q(2), q(0))], true);
        assert_eq!(a.scheme, Scheme::Cat(CatOrientation::Target));
        assert_eq!(a.comms, 1);
    }

    /// Builds a block between q0 (node 0) and node 2 of a 3-node machine
    /// and assigns it against `topology`.
    fn assigned_distance_two(gates: Vec<Gate>, topology: &NetworkTopology) -> AssignedBlock {
        let p = Partition::block(6, 3).unwrap();
        let mut c = Circuit::new(6);
        for g in &gates {
            c.push(g.clone()).unwrap();
        }
        let ir = CommIr::build_shared(&c, &p);
        let mut b = CommBlock::new(q(0), NodeId::new(2));
        for (pos, _) in gates.iter().enumerate() {
            let id = ir.stream()[pos];
            b.push(id, ir.gate(id));
        }
        let program = AggregatedProgram::from_parts(ir, vec![Item::Block(b)]);
        assign_on(&program, &Placement::identity(&p), topology).blocks().next().unwrap().clone()
    }

    #[test]
    fn placement_changes_the_charged_hops() {
        use dqc_circuit::NodeId;
        // Same single-call block (q0 ↔ node 2) on a 3-chain: the identity
        // map pays 2 hops; placing block 2 adjacent to block 0 pays 1.
        let linear = NetworkTopology::linear(3).unwrap();
        let p = Partition::block(6, 3).unwrap();
        let mut c = Circuit::new(6);
        c.push(Gate::cx(q(0), q(4))).unwrap();
        let ir = CommIr::build_shared(&c, &p);
        let mut b = CommBlock::new(q(0), NodeId::new(2));
        let id = ir.stream()[0];
        b.push(id, ir.gate(id));
        let program = AggregatedProgram::from_parts(ir, vec![Item::Block(b)]);
        let identity = assign_on(&program, &Placement::identity(&p), &linear);
        assert_eq!(identity.blocks().next().unwrap().epr_cost, 2);
        let swapped =
            Placement::new(p, vec![NodeId::new(0), NodeId::new(2), NodeId::new(1)]).unwrap();
        let placed = assign_on(&program, &swapped, &linear);
        assert_eq!(placed.blocks().next().unwrap().epr_cost, 1, "adjacent after placement");
    }

    /// Incremental re-assignment equals a fresh `assign_on` whether the
    /// moved endpoint is the block's home, its remote node, or neither.
    #[test]
    fn incremental_reassignment_matches_full() {
        use dqc_circuit::NodeId;
        let p = Partition::block(8, 4).unwrap();
        let mut c = Circuit::new(8);
        // Blocks across several node pairs, mixing schemes.
        c.push(Gate::cx(q(0), q(2))).unwrap(); // block pair (0, 1)
        c.push(Gate::cx(q(0), q(3))).unwrap();
        c.push(Gate::cx(q(1), q(4))).unwrap(); // block pair (0, 2)
        c.push(Gate::cx(q(4), q(1))).unwrap(); // bidirectional → 2 segments
        c.push(Gate::h(q(5))).unwrap(); // local
        c.push(Gate::cx(q(6), q(1))).unwrap(); // block pair (3, 0)
        let agg = crate::aggregate(&c, &p, crate::AggregateOptions::default());
        let topology = NetworkTopology::linear(4).unwrap();
        let n = NodeId::new;
        let before = Placement::identity(&p);
        let prev = assign_on(&agg, &before, &topology);
        // Swap nodes 1 and 3: pairs (0,1) and (3,0) move, pair (0,2) does not.
        let after = Placement::new(p.clone(), vec![n(0), n(3), n(2), n(1)]).unwrap();
        let full = assign_on(&agg, &after, &topology);
        let incremental = assign_incremental(&prev, &before, &after, &topology, true);
        assert_eq!(incremental, full);
        // A no-op re-placement reuses every block.
        let unmoved = assign_incremental(&prev, &before, &before, &topology, true);
        assert_eq!(unmoved, prev);
        // Cat-only assignments take the same incremental path.
        let prev_cat = assign_cat_only_on(&agg, &before, &topology);
        let full_cat = assign_cat_only_on(&agg, &after, &topology);
        let inc_cat = assign_incremental(&prev_cat, &before, &after, &topology, false);
        assert_eq!(inc_cat, full_cat);
    }

    /// Randomized agreement: incremental == full across random circuits and
    /// random placement permutations on a multi-hop topology.
    #[test]
    fn incremental_reassignment_matches_full_randomized() {
        use dqc_circuit::NodeId;
        let nodes = 5;
        let p = Partition::block(10, nodes).unwrap();
        let topology = NetworkTopology::ring(nodes).unwrap();
        let mut state = 0x9e37_79b9u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..12 {
            let mut c = Circuit::new(10);
            for _ in 0..60 {
                let a = (rng() % 10) as usize;
                let b = (rng() % 10) as usize;
                match rng() % 4 {
                    0 => c.push(Gate::h(q(a))).unwrap(),
                    1 => c.push(Gate::t(q(a))).unwrap(),
                    _ if a != b => c.push(Gate::cx(q(a), q(b))).unwrap(),
                    _ => c.push(Gate::rz(0.25, q(a))).unwrap(),
                }
            }
            let agg = crate::aggregate(&c, &p, crate::AggregateOptions::default());
            // Random permutation via Fisher–Yates.
            let mut map: Vec<NodeId> = (0..nodes).map(NodeId::new).collect();
            for i in (1..nodes).rev() {
                map.swap(i, (rng() % (i as u64 + 1)) as usize);
            }
            let before = Placement::identity(&p);
            let after = Placement::new(p.clone(), map).unwrap();
            let prev = assign_on(&agg, &before, &topology);
            let full = assign_on(&agg, &after, &topology);
            let incremental = assign_incremental(&prev, &before, &after, &topology, true);
            assert_eq!(incremental, full);
        }
    }

    #[test]
    fn all_to_all_routing_matches_the_paper_rule() {
        let bidi = vec![Gate::cx(q(0), q(4)), Gate::cx(q(4), q(0))];
        let a = assigned_distance_two(bidi, &NetworkTopology::all_to_all(3));
        assert_eq!(a.scheme, Scheme::Tp);
        assert_eq!(a.comms, 2);
        assert_eq!(a.epr_cost, 2, "hop distance 1 leaves epr_cost == comms");
    }

    #[test]
    fn multi_hop_two_segment_tie_flips_to_cat() {
        let linear = NetworkTopology::linear(3).unwrap();
        let bidi = vec![Gate::cx(q(0), q(4)), Gate::cx(q(4), q(0))];
        let a = assigned_distance_two(bidi, &linear);
        assert!(matches!(a.scheme, Scheme::Cat(_)), "2-segment tie goes to Cat at hop 2");
        assert_eq!(a.comms, 2);
        assert_eq!(a.epr_cost, 4, "2 end-to-end comms × 2 hops");
        // Three or more segments still prefer TP's flat two comms.
        let tri = vec![Gate::cx(q(0), q(4)), Gate::cx(q(4), q(0)), Gate::cx(q(0), q(5))];
        let a = assigned_distance_two(tri, &linear);
        assert_eq!(a.scheme, Scheme::Tp);
        assert_eq!(a.epr_cost, 4);
        // Single-call blocks stay Cat but are charged per hop.
        let single = vec![Gate::cx(q(0), q(4)), Gate::cx(q(0), q(5))];
        let a = assigned_distance_two(single, &linear);
        assert_eq!(a.scheme, Scheme::Cat(CatOrientation::Control));
        assert_eq!(a.comms, 1);
        assert_eq!(a.epr_cost, 2);
    }
}
