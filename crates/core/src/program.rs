//! Queries over distributed programs: remote gates and qubit-node pairs.

use std::collections::HashMap;

use dqc_circuit::{Circuit, Gate, NodeId, Partition, QubitId};

/// The (qubit, node) pairs a remote two-qubit gate participates in.
///
/// A remote gate with operands `a` on node A and `b` on node B belongs to
/// the burst pair `(a, B)` and symmetrically `(b, A)` (paper §3.2). Returns
/// an empty vector for local or non-two-qubit gates.
///
/// ```
/// use autocomm::remote_pairs_of;
/// use dqc_circuit::{Gate, Partition, QubitId};
/// let p = Partition::block(4, 2).unwrap();
/// let pairs = remote_pairs_of(&Gate::cx(QubitId::new(0), QubitId::new(2)), &p);
/// assert_eq!(pairs.len(), 2);
/// assert_eq!(pairs[0].0, QubitId::new(0)); // q0 talks to node 1
/// assert_eq!(pairs[0].1.index(), 1);
/// ```
pub fn remote_pairs_of(gate: &Gate, partition: &Partition) -> Vec<(QubitId, NodeId)> {
    if !gate.is_two_qubit_unitary() || !partition.is_remote(gate) {
        return Vec::new();
    }
    let a = gate.qubits()[0];
    let b = gate.qubits()[1];
    vec![(a, partition.node_of(b)), (b, partition.node_of(a))]
}

/// Number of remote gates associated with every (qubit, node) pair — the
/// statistic the aggregation preprocessing ranks pairs by (the paper starts
/// “with the qubit-node pair associated with the most remote gates”).
pub fn pair_stats(circuit: &Circuit, partition: &Partition) -> HashMap<(QubitId, NodeId), usize> {
    // Count densely (qubit x node grid), then export the non-zero cells —
    // the per-gate loop never hashes.
    let nodes = partition.num_nodes();
    let mut dense = vec![0usize; circuit.num_qubits() * nodes];
    for gate in circuit.gates() {
        for (q, node) in remote_pairs_of(gate, partition) {
            dense[q.index() * nodes + node.index()] += 1;
        }
    }
    dense
        .into_iter()
        .enumerate()
        .filter(|&(_, n)| n > 0)
        .map(|(slot, n)| ((QubitId::new(slot / nodes), NodeId::new(slot % nodes)), n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn local_gates_have_no_pairs() {
        let p = Partition::block(4, 2).unwrap();
        assert!(remote_pairs_of(&Gate::cx(q(0), q(1)), &p).is_empty());
        assert!(remote_pairs_of(&Gate::h(q(0)), &p).is_empty());
    }

    #[test]
    fn pair_stats_counts_both_directions() {
        let p = Partition::block(4, 2).unwrap();
        let mut c = Circuit::new(4);
        c.push(Gate::cx(q(0), q(2))).unwrap();
        c.push(Gate::cx(q(0), q(3))).unwrap();
        c.push(Gate::cx(q(1), q(2))).unwrap();
        let stats = pair_stats(&c, &p);
        // q0 talks to node 1 twice.
        assert_eq!(stats[&(q(0), NodeId::new(1))], 2);
        // q2 talks to node 0 twice (from q0 and q1).
        assert_eq!(stats[&(q(2), NodeId::new(0))], 2);
        assert_eq!(stats[&(q(3), NodeId::new(0))], 1);
        assert_eq!(stats[&(q(1), NodeId::new(1))], 1);
    }
}
