//! State-vector simulation with measurement, reset, and classical control.

use dqc_circuit::{Circuit, Gate, GateKind, QubitId};

use crate::matrix::single_qubit_matrix;
use crate::{Complex, SimError, SplitMix64};

/// Hard cap on dense-simulation register size (2²⁴ amplitudes ≈ 256 MiB).
const MAX_QUBITS: usize = 24;

/// The classical bit register accompanying a simulation run.
///
/// ```
/// use dqc_sim::ClassicalState;
/// let mut c = ClassicalState::new(2);
/// c.set(1, true);
/// assert!(c.get(1));
/// assert!(!c.get(0));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ClassicalState {
    bits: Vec<bool>,
}

impl ClassicalState {
    /// All-zero register of `n` bits.
    pub fn new(n: usize) -> Self {
        ClassicalState { bits: vec![false; n] }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the register is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Value of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn get(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn set(&mut self, i: usize, v: bool) {
        self.bits[i] = v;
    }

    /// The bits as a slice.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }
}

/// A dense state vector over `n` qubits (qubit `i` = bit `i` of the index).
///
/// Supports all unitary gates of the IR natively plus measurement, reset,
/// and classically conditioned gates — everything the Cat-Comm / TP-Comm
/// protocol expansions need.
///
/// ```
/// use dqc_circuit::{Circuit, Gate, QubitId};
/// use dqc_sim::{SplitMix64, StateVector};
///
/// # fn main() -> Result<(), dqc_sim::SimError> {
/// let q = |i| QubitId::new(i);
/// let mut bell = Circuit::new(2);
/// bell.push(Gate::h(q(0))).unwrap();
/// bell.push(Gate::cx(q(0), q(1))).unwrap();
/// let mut psi = StateVector::zero_state(2)?;
/// psi.run(&bell, &mut SplitMix64::new(1))?;
/// assert!((psi.probability_one(q(1)) - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<Complex>,
}

impl StateVector {
    /// |0…0⟩ over `n` qubits.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] beyond the dense-simulation cap.
    pub fn zero_state(n: usize) -> Result<Self, SimError> {
        if n > MAX_QUBITS {
            return Err(SimError::TooManyQubits { requested: n, limit: MAX_QUBITS });
        }
        let mut amps = vec![Complex::ZERO; 1 << n];
        amps[0] = Complex::ONE;
        Ok(StateVector { num_qubits: n, amps })
    }

    /// Builds a state from explicit amplitudes (length must be a power of
    /// two). The amplitudes are used as-is; callers wanting a normalized
    /// state should call [`StateVector::normalize`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidStateLength`] for non-power-of-two lengths
    /// and [`SimError::TooManyQubits`] beyond the cap.
    pub fn from_amplitudes(amps: Vec<Complex>) -> Result<Self, SimError> {
        if !amps.len().is_power_of_two() {
            return Err(SimError::InvalidStateLength { len: amps.len() });
        }
        let n = amps.len().trailing_zeros() as usize;
        if n > MAX_QUBITS {
            return Err(SimError::TooManyQubits { requested: n, limit: MAX_QUBITS });
        }
        Ok(StateVector { num_qubits: n, amps })
    }

    /// Haar-ish random normalized state (Gaussian components via
    /// Box–Muller), reproducible from the given stream.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] beyond the cap.
    pub fn random_state(n: usize, rng: &mut SplitMix64) -> Result<Self, SimError> {
        let mut s = StateVector::zero_state(n)?;
        for a in s.amps.iter_mut() {
            *a = Complex::new(gaussian(rng), gaussian(rng));
        }
        s.normalize();
        Ok(s)
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The amplitude vector (length `2^n`).
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// ⟨self|other⟩.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] for different register sizes.
    pub fn inner_product(&self, other: &StateVector) -> Result<Complex, SimError> {
        if self.num_qubits != other.num_qubits {
            return Err(SimError::DimensionMismatch { context: "inner product" });
        }
        let mut acc = Complex::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            acc += a.conj() * *b;
        }
        Ok(acc)
    }

    /// |⟨self|other⟩|² — global-phase-insensitive overlap.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] for different register sizes.
    pub fn fidelity(&self, other: &StateVector) -> Result<f64, SimError> {
        Ok(self.inner_product(other)?.norm_sqr())
    }

    /// Fidelity of the reduced state on `data_qubits` against the pure state
    /// `expected` (which lives on exactly `data_qubits.len()` qubits, in the
    /// listed order: `data_qubits[j]` is qubit `j` of `expected`).
    ///
    /// Computes Σ_rest |⟨expected, rest|self⟩|², which equals
    /// ⟨expected|ρ_data|expected⟩. The value is 1 exactly when the full state
    /// is `expected ⊗ (anything)` with the data register unentangled from the
    /// rest — the property the protocol expansions must restore.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] when sizes are inconsistent.
    pub fn subset_fidelity(
        &self,
        expected: &StateVector,
        data_qubits: &[QubitId],
    ) -> Result<f64, SimError> {
        if expected.num_qubits != data_qubits.len()
            || data_qubits.iter().any(|q| q.index() >= self.num_qubits)
        {
            return Err(SimError::DimensionMismatch { context: "subset fidelity" });
        }
        let k = data_qubits.len();
        let rest_qubits: Vec<usize> =
            (0..self.num_qubits).filter(|i| !data_qubits.iter().any(|q| q.index() == *i)).collect();
        let mut total = 0.0;
        for rest_bits in 0..(1usize << rest_qubits.len()) {
            let mut base = 0usize;
            for (j, &qi) in rest_qubits.iter().enumerate() {
                if (rest_bits >> j) & 1 == 1 {
                    base |= 1 << qi;
                }
            }
            // ⟨expected, rest|self⟩ for this rest assignment.
            let mut overlap = Complex::ZERO;
            for x in 0..(1usize << k) {
                let mut idx = base;
                for (j, q) in data_qubits.iter().enumerate() {
                    if (x >> j) & 1 == 1 {
                        idx |= 1 << q.index();
                    }
                }
                overlap += expected.amps[x].conj() * self.amps[idx];
            }
            total += overlap.norm_sqr();
        }
        Ok(total)
    }

    /// Probability of measuring 1 on `q`.
    ///
    /// # Panics
    ///
    /// Panics when `q` is out of range.
    pub fn probability_one(&self, q: QubitId) -> f64 {
        let bit = 1usize << q.index();
        self.amps.iter().enumerate().filter(|(i, _)| i & bit != 0).map(|(_, a)| a.norm_sqr()).sum()
    }

    /// Rescales to unit norm (no-op on the zero vector).
    pub fn normalize(&mut self) {
        let norm: f64 = self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        if norm > 0.0 {
            for a in self.amps.iter_mut() {
                *a = a.scale(1.0 / norm);
            }
        }
    }

    /// Runs all gates of `circuit`, creating a fresh classical register of
    /// `circuit.num_cbits()` bits and returning it.
    ///
    /// # Errors
    ///
    /// Propagates classical-register and dimension errors from
    /// [`StateVector::apply`].
    pub fn run(
        &mut self,
        circuit: &Circuit,
        rng: &mut SplitMix64,
    ) -> Result<ClassicalState, SimError> {
        let mut classical = ClassicalState::new(circuit.num_cbits());
        self.run_with(circuit, &mut classical, rng)?;
        Ok(classical)
    }

    /// Runs all gates of `circuit` against an existing classical register.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`StateVector::apply`].
    pub fn run_with(
        &mut self,
        circuit: &Circuit,
        classical: &mut ClassicalState,
        rng: &mut SplitMix64,
    ) -> Result<(), SimError> {
        for g in circuit.gates() {
            self.apply(g, classical, rng)?;
        }
        Ok(())
    }

    /// Applies one gate (unitary, measurement, reset, or conditioned).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MissingClassicalBit`] when a measurement target or
    /// condition bit is outside `classical`, and
    /// [`SimError::DimensionMismatch`] when an operand exceeds the register.
    pub fn apply(
        &mut self,
        gate: &Gate,
        classical: &mut ClassicalState,
        rng: &mut SplitMix64,
    ) -> Result<(), SimError> {
        if gate.qubits().iter().any(|q| q.index() >= self.num_qubits) {
            return Err(SimError::DimensionMismatch { context: "gate operand" });
        }
        if let Some(cond) = gate.condition() {
            if cond.index() >= classical.len() {
                return Err(SimError::MissingClassicalBit { index: cond.index() });
            }
            if !classical.get(cond.index()) {
                return Ok(());
            }
        }
        match gate.kind() {
            GateKind::Barrier | GateKind::I => Ok(()),
            GateKind::Measure => {
                let c = gate.cbit().expect("measure carries a cbit");
                if c.index() >= classical.len() {
                    return Err(SimError::MissingClassicalBit { index: c.index() });
                }
                let outcome = self.measure_qubit(gate.qubits()[0], rng);
                classical.set(c.index(), outcome);
                Ok(())
            }
            GateKind::Reset => {
                let q = gate.qubits()[0];
                if self.measure_qubit(q, rng) {
                    self.apply_x(q);
                }
                Ok(())
            }
            GateKind::Cx => {
                let (c, t) = (gate.qubits()[0], gate.qubits()[1]);
                self.apply_cx(c, t);
                Ok(())
            }
            GateKind::X => {
                self.apply_x(gate.qubits()[0]);
                Ok(())
            }
            GateKind::Swap => {
                let (a, b) = (gate.qubits()[0], gate.qubits()[1]);
                let (ab, bb) = (1usize << a.index(), 1usize << b.index());
                for i in 0..self.amps.len() {
                    if i & ab != 0 && i & bb == 0 {
                        let j = (i & !ab) | bb;
                        self.amps.swap(i, j);
                    }
                }
                Ok(())
            }
            GateKind::Cz | GateKind::Crz | GateKind::Cp | GateKind::Rzz => {
                self.apply_two_qubit_diagonal(gate);
                Ok(())
            }
            GateKind::Z
            | GateKind::S
            | GateKind::Sdg
            | GateKind::T
            | GateKind::Tdg
            | GateKind::Rz
            | GateKind::Phase => {
                self.apply_single_diagonal(gate);
                Ok(())
            }
            GateKind::Ccx | GateKind::Mcx => {
                let (controls, target) = gate.qubits().split_at(gate.num_qubits() - 1);
                let mut cmask = 0usize;
                for c in controls {
                    cmask |= 1 << c.index();
                }
                let tbit = 1usize << target[0].index();
                for i in 0..self.amps.len() {
                    if i & cmask == cmask && i & tbit == 0 {
                        let j = i | tbit;
                        self.amps.swap(i, j);
                    }
                }
                Ok(())
            }
            _ => {
                // Generic dense single-qubit unitary (H, Y, RX, RY, SX, U3).
                let m = single_qubit_matrix(gate.kind(), gate.params())
                    .expect("remaining kinds are single-qubit unitaries");
                self.apply_single(gate.qubits()[0], &m);
                Ok(())
            }
        }
    }

    fn apply_single(&mut self, q: QubitId, m: &[[Complex; 2]; 2]) {
        let bit = 1usize << q.index();
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                let j = i | bit;
                let (a, b) = (self.amps[i], self.amps[j]);
                self.amps[i] = m[0][0] * a + m[0][1] * b;
                self.amps[j] = m[1][0] * a + m[1][1] * b;
            }
        }
    }

    fn apply_x(&mut self, q: QubitId) {
        let bit = 1usize << q.index();
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                self.amps.swap(i, i | bit);
            }
        }
    }

    fn apply_cx(&mut self, c: QubitId, t: QubitId) {
        let (cb, tb) = (1usize << c.index(), 1usize << t.index());
        for i in 0..self.amps.len() {
            if i & cb != 0 && i & tb == 0 {
                self.amps.swap(i, i | tb);
            }
        }
    }

    fn apply_single_diagonal(&mut self, gate: &Gate) {
        let m = single_qubit_matrix(gate.kind(), gate.params())
            .expect("diagonal kinds are single-qubit");
        let (d0, d1) = (m[0][0], m[1][1]);
        let bit = 1usize << gate.qubits()[0].index();
        for (i, a) in self.amps.iter_mut().enumerate() {
            *a = if i & bit == 0 { d0 * *a } else { d1 * *a };
        }
    }

    fn apply_two_qubit_diagonal(&mut self, gate: &Gate) {
        let (qa, qb) = (gate.qubits()[0], gate.qubits()[1]);
        let (ba, bb) = (1usize << qa.index(), 1usize << qb.index());
        let diag: [Complex; 4] = match gate.kind() {
            GateKind::Cz => [Complex::ONE, Complex::ONE, Complex::ONE, Complex::real(-1.0)],
            GateKind::Cp => {
                let t = gate.theta().expect("cp parameter");
                [Complex::ONE, Complex::ONE, Complex::ONE, Complex::cis(t)]
            }
            GateKind::Crz => {
                let t = gate.theta().expect("crz parameter") / 2.0;
                [Complex::ONE, Complex::cis(-t), Complex::ONE, Complex::cis(t)]
            }
            GateKind::Rzz => {
                let t = gate.theta().expect("rzz parameter") / 2.0;
                [Complex::cis(-t), Complex::cis(t), Complex::cis(t), Complex::cis(-t)]
            }
            _ => unreachable!("two-qubit diagonal kinds"),
        };
        for (i, a) in self.amps.iter_mut().enumerate() {
            let la = usize::from(i & ba != 0);
            let lb = usize::from(i & bb != 0);
            *a = diag[la | (lb << 1)] * *a;
        }
    }

    fn measure_qubit(&mut self, q: QubitId, rng: &mut SplitMix64) -> bool {
        let p1 = self.probability_one(q);
        let outcome = rng.next_f64() < p1;
        let bit = 1usize << q.index();
        let keep_one = outcome;
        let norm = if keep_one { p1.sqrt() } else { (1.0 - p1).sqrt() };
        let scale = if norm > 0.0 { 1.0 / norm } else { 0.0 };
        for (i, a) in self.amps.iter_mut().enumerate() {
            let is_one = i & bit != 0;
            *a = if is_one == keep_one { a.scale(scale) } else { Complex::ZERO };
        }
        outcome
    }
}

fn gaussian(rng: &mut SplitMix64) -> f64 {
    // Box–Muller; avoid log(0).
    let u1 = rng.next_f64().max(1e-300);
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_circuit::CBitId;

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    fn rng() -> SplitMix64 {
        SplitMix64::new(12345)
    }

    #[test]
    fn zero_state_has_unit_amplitude_at_origin() {
        let s = StateVector::zero_state(3).unwrap();
        assert_eq!(s.amplitudes()[0], Complex::ONE);
        assert!((s.probability_one(q(0))).abs() < 1e-12);
    }

    #[test]
    fn x_flips_basis_state() {
        let mut s = StateVector::zero_state(2).unwrap();
        let mut c = ClassicalState::new(0);
        s.apply(&Gate::x(q(1)), &mut c, &mut rng()).unwrap();
        assert!(s.amplitudes()[2].approx_eq(Complex::ONE, 1e-12));
    }

    #[test]
    fn bell_state_probabilities() {
        let mut circuit = Circuit::new(2);
        circuit.push(Gate::h(q(0))).unwrap();
        circuit.push(Gate::cx(q(0), q(1))).unwrap();
        let mut s = StateVector::zero_state(2).unwrap();
        s.run(&circuit, &mut rng()).unwrap();
        assert!((s.probability_one(q(0)) - 0.5).abs() < 1e-12);
        assert!((s.probability_one(q(1)) - 0.5).abs() < 1e-12);
        // Amplitudes at |01⟩ and |10⟩ must vanish.
        assert!(s.amplitudes()[1].norm() < 1e-12);
        assert!(s.amplitudes()[2].norm() < 1e-12);
    }

    #[test]
    fn measurement_collapses_and_records() {
        let mut circuit = Circuit::with_cbits(1, 1);
        circuit.push(Gate::x(q(0))).unwrap();
        circuit.push(Gate::measure(q(0), CBitId::new(0))).unwrap();
        let mut s = StateVector::zero_state(1).unwrap();
        let c = s.run(&circuit, &mut rng()).unwrap();
        assert!(c.get(0));
        assert!((s.probability_one(q(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_statistics_on_plus_state() {
        let mut ones = 0;
        let mut stream = rng();
        for _ in 0..500 {
            let mut s = StateVector::zero_state(1).unwrap();
            let mut c = ClassicalState::new(1);
            s.apply(&Gate::h(q(0)), &mut c, &mut stream).unwrap();
            s.apply(&Gate::measure(q(0), CBitId::new(0)), &mut c, &mut stream).unwrap();
            if c.get(0) {
                ones += 1;
            }
        }
        assert!((180..=320).contains(&ones), "got {ones} ones out of 500");
    }

    #[test]
    fn conditioned_gate_fires_only_on_one() {
        let mut s = StateVector::zero_state(1).unwrap();
        let mut c = ClassicalState::new(1);
        let gate = Gate::x(q(0)).with_condition(CBitId::new(0));
        s.apply(&gate, &mut c, &mut rng()).unwrap();
        assert!(s.amplitudes()[0].approx_eq(Complex::ONE, 1e-12));
        c.set(0, true);
        s.apply(&gate, &mut c, &mut rng()).unwrap();
        assert!(s.amplitudes()[1].approx_eq(Complex::ONE, 1e-12));
    }

    #[test]
    fn reset_returns_qubit_to_zero() {
        let mut s = StateVector::zero_state(2).unwrap();
        let mut c = ClassicalState::new(0);
        let mut r = rng();
        s.apply(&Gate::h(q(0)), &mut c, &mut r).unwrap();
        s.apply(&Gate::cx(q(0), q(1)), &mut c, &mut r).unwrap();
        s.apply(&Gate::reset(q(0)), &mut c, &mut r).unwrap();
        assert!(s.probability_one(q(0)) < 1e-12);
    }

    #[test]
    fn teleportation_moves_a_state() {
        // Teleport qubit 0 onto qubit 2 (paper Fig. 2b structure).
        let mut r = rng();
        let single = StateVector::random_state(1, &mut r).unwrap();
        // Embed |ψ⟩ on qubit 0 of a 3-qubit register.
        let mut amps = vec![Complex::ZERO; 8];
        amps[0] = single.amplitudes()[0];
        amps[1] = single.amplitudes()[1];
        let mut s = StateVector::from_amplitudes(amps).unwrap();

        let mut tele = Circuit::with_cbits(3, 2);
        tele.push(Gate::h(q(1))).unwrap();
        tele.push(Gate::cx(q(1), q(2))).unwrap(); // EPR on (1,2)
        tele.push(Gate::cx(q(0), q(1))).unwrap();
        tele.push(Gate::h(q(0))).unwrap();
        tele.push(Gate::measure(q(0), CBitId::new(0))).unwrap();
        tele.push(Gate::measure(q(1), CBitId::new(1))).unwrap();
        tele.push(Gate::x(q(2)).with_condition(CBitId::new(1))).unwrap();
        tele.push(Gate::z(q(2)).with_condition(CBitId::new(0))).unwrap();
        s.run(&tele, &mut r).unwrap();

        let f = s.subset_fidelity(&single, &[q(2)]).unwrap();
        assert!((f - 1.0).abs() < 1e-9, "teleportation fidelity {f}");
    }

    #[test]
    fn subset_fidelity_detects_mismatch() {
        let mut s = StateVector::zero_state(2).unwrap();
        let mut c = ClassicalState::new(0);
        s.apply(&Gate::x(q(0)), &mut c, &mut rng()).unwrap();
        let zero = StateVector::zero_state(1).unwrap();
        let f = s.subset_fidelity(&zero, &[q(0)]).unwrap();
        assert!(f < 1e-12);
        let f = s.subset_fidelity(&zero, &[q(1)]).unwrap();
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_state_is_normalized() {
        let s = StateVector::random_state(4, &mut rng()).unwrap();
        let norm: f64 = s.amplitudes().iter().map(|a| a.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(StateVector::zero_state(30).is_err());
        assert!(StateVector::from_amplitudes(vec![Complex::ONE; 3]).is_err());
        let mut s = StateVector::zero_state(1).unwrap();
        let mut c = ClassicalState::new(0);
        let err = s.apply(&Gate::h(q(5)), &mut c, &mut rng()).unwrap_err();
        assert!(matches!(err, SimError::DimensionMismatch { .. }));
        let err = s.apply(&Gate::measure(q(0), CBitId::new(0)), &mut c, &mut rng()).unwrap_err();
        assert!(matches!(err, SimError::MissingClassicalBit { .. }));
    }

    #[test]
    fn crz_matches_unrolled_form() {
        // CRZ applied natively equals its 2-CX unrolling on a random state.
        let mut r = rng();
        let base = StateVector::random_state(2, &mut r).unwrap();
        let gate = Gate::crz(0.77, q(0), q(1));
        let mut native = base.clone();
        let mut c = ClassicalState::new(0);
        native.apply(&gate, &mut c, &mut r).unwrap();
        let mut unrolled = base.clone();
        for g in dqc_circuit::unroll_gate(&gate, 2).unwrap() {
            unrolled.apply(&g, &mut c, &mut r).unwrap();
        }
        let f = native.fidelity(&unrolled).unwrap();
        assert!((f - 1.0).abs() < 1e-9);
    }
}
