//! Simulator error type.

use std::error::Error;
use std::fmt;

/// Errors produced by the simulator and equivalence checkers.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The register is too large for dense simulation.
    TooManyQubits {
        /// Requested register size.
        requested: usize,
        /// Hard cap for this operation.
        limit: usize,
    },
    /// Matrix dimensions do not match the operation.
    DimensionMismatch {
        /// Human-readable description.
        context: &'static str,
    },
    /// The circuit contains a non-unitary operation where a unitary is
    /// required (e.g. building a dense unitary of a measuring circuit).
    NonUnitary {
        /// Name of the offending operation.
        kind: &'static str,
    },
    /// A gate referenced a classical bit the register does not have.
    MissingClassicalBit {
        /// Index of the missing bit.
        index: usize,
    },
    /// A state vector was constructed with an invalid amplitude count.
    InvalidStateLength {
        /// Supplied amplitude count.
        len: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TooManyQubits { requested, limit } => {
                write!(f, "dense simulation of {requested} qubits exceeds the {limit}-qubit limit")
            }
            SimError::DimensionMismatch { context } => {
                write!(f, "matrix dimension mismatch in {context}")
            }
            SimError::NonUnitary { kind } => {
                write!(f, "operation `{kind}` is not unitary")
            }
            SimError::MissingClassicalBit { index } => {
                write!(f, "classical bit c{index} outside the classical register")
            }
            SimError::InvalidStateLength { len } => {
                write!(f, "state length {len} is not a power of two")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::TooManyQubits { requested: 40, limit: 24 };
        assert!(e.to_string().contains("40"));
        let e = SimError::NonUnitary { kind: "measure" };
        assert!(e.to_string().contains("measure"));
    }
}
