//! Dense complex matrices and operator embedding.

use std::fmt;

use dqc_circuit::{Gate, GateKind, QubitId};

use crate::{Complex, SimError};

/// Basis convention used throughout the simulator: qubit `i` is bit `i` of
/// the basis-state index (qubit 0 is the least significant bit).
pub(crate) const BASIS_NOTE: &str = "qubit i = bit i (LSB first)";

/// A dense square complex matrix, row-major.
///
/// ```
/// use dqc_sim::Matrix;
/// let id = Matrix::identity(4);
/// assert!(id.is_unitary(1e-12));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    dim: usize,
    data: Vec<Complex>,
}

impl Matrix {
    /// The `dim × dim` zero matrix.
    pub fn zeros(dim: usize) -> Self {
        Matrix { dim, data: vec![Complex::ZERO; dim * dim] }
    }

    /// The `dim × dim` identity.
    pub fn identity(dim: usize) -> Self {
        let mut m = Matrix::zeros(dim);
        for i in 0..dim {
            m.set(i, i, Complex::ONE);
        }
        m
    }

    /// Builds a matrix from rows of complex entries.
    ///
    /// # Panics
    ///
    /// Panics if the rows are not square.
    pub fn from_rows(rows: &[Vec<Complex>]) -> Self {
        let dim = rows.len();
        let mut m = Matrix::zeros(dim);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), dim, "matrix rows must be square");
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }

    /// Side length.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn get(&self, row: usize, col: usize) -> Complex {
        self.data[row * self.dim + col]
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn set(&mut self, row: usize, col: usize, v: Complex) {
        self.data[row * self.dim + col] = v;
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] when dimensions differ.
    pub fn mul(&self, rhs: &Matrix) -> Result<Matrix, SimError> {
        if self.dim != rhs.dim {
            return Err(SimError::DimensionMismatch { context: "matrix multiply" });
        }
        let d = self.dim;
        let mut out = Matrix::zeros(d);
        for i in 0..d {
            for k in 0..d {
                let a = self.get(i, k);
                if a == Complex::ZERO {
                    continue;
                }
                for j in 0..d {
                    let v = out.get(i, j) + a * rhs.get(k, j);
                    out.set(i, j, v);
                }
            }
        }
        Ok(out)
    }

    /// Kronecker product `self ⊗ rhs` (self becomes the high-order factor).
    pub fn kron(&self, rhs: &Matrix) -> Matrix {
        let d1 = self.dim;
        let d2 = rhs.dim;
        let mut out = Matrix::zeros(d1 * d2);
        for i1 in 0..d1 {
            for j1 in 0..d1 {
                let a = self.get(i1, j1);
                if a == Complex::ZERO {
                    continue;
                }
                for i2 in 0..d2 {
                    for j2 in 0..d2 {
                        out.set(i1 * d2 + i2, j1 * d2 + j2, a * rhs.get(i2, j2));
                    }
                }
            }
        }
        out
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Matrix {
        let mut out = Matrix::zeros(self.dim);
        for i in 0..self.dim {
            for j in 0..self.dim {
                out.set(j, i, self.get(i, j).conj());
            }
        }
        out
    }

    /// Whether `self† · self ≈ I` within `tol` per entry.
    pub fn is_unitary(&self, tol: f64) -> bool {
        let prod = match self.adjoint().mul(self) {
            Ok(p) => p,
            Err(_) => return false,
        };
        let id = Matrix::identity(self.dim);
        prod.approx_eq(&id, tol)
    }

    /// Entry-wise approximate equality.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.dim == other.dim
            && self.data.iter().zip(&other.data).all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Embeds a `2^k`-dimensional operator acting on `operands` into the
    /// full `2^n`-dimensional space (`n = num_qubits`), under the crate's
    /// LSB-first basis convention: operand `j` of the local operator is bit
    /// `j` of the local index.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] when the local dimension does
    /// not match `operands`, or an operand exceeds the register.
    pub fn embed(&self, operands: &[QubitId], num_qubits: usize) -> Result<Matrix, SimError> {
        let k = operands.len();
        if self.dim != 1 << k {
            return Err(SimError::DimensionMismatch { context: "embed operand count" });
        }
        if operands.iter().any(|q| q.index() >= num_qubits) {
            return Err(SimError::DimensionMismatch { context: "embed operand range" });
        }
        let n = 1usize << num_qubits;
        let mut out = Matrix::zeros(n);
        for gin in 0..n {
            // Split the global index into the local operand bits and the rest.
            let mut lin = 0usize;
            let mut rest = gin;
            for (j, q) in operands.iter().enumerate() {
                if (gin >> q.index()) & 1 == 1 {
                    lin |= 1 << j;
                }
                rest &= !(1 << q.index());
            }
            for lout in 0..self.dim {
                let v = self.get(lout, lin);
                if v == Complex::ZERO {
                    continue;
                }
                let mut gout = rest;
                for (j, q) in operands.iter().enumerate() {
                    if (lout >> j) & 1 == 1 {
                        gout |= 1 << q.index();
                    }
                }
                let cur = out.get(gout, gin) + v;
                out.set(gout, gin, cur);
            }
        }
        Ok(out)
    }

    /// Largest |entry|.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|c| c.norm()).fold(0.0, f64::max)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}x{} matrix; {BASIS_NOTE}]", self.dim, self.dim)?;
        for i in 0..self.dim {
            for j in 0..self.dim {
                write!(f, " {}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The 2×2 matrix of a single-qubit unitary kind, or `None` for other kinds.
pub(crate) fn single_qubit_matrix(kind: GateKind, params: &[f64]) -> Option<[[Complex; 2]; 2]> {
    use std::f64::consts::FRAC_1_SQRT_2 as RSQRT2;
    let c = Complex::real;
    let m = match kind {
        GateKind::I => [[c(1.0), c(0.0)], [c(0.0), c(1.0)]],
        GateKind::H => [[c(RSQRT2), c(RSQRT2)], [c(RSQRT2), c(-RSQRT2)]],
        GateKind::X => [[c(0.0), c(1.0)], [c(1.0), c(0.0)]],
        GateKind::Y => [[Complex::ZERO, -Complex::I], [Complex::I, Complex::ZERO]],
        GateKind::Z => [[c(1.0), c(0.0)], [c(0.0), c(-1.0)]],
        GateKind::S => [[c(1.0), c(0.0)], [c(0.0), Complex::I]],
        GateKind::Sdg => [[c(1.0), c(0.0)], [c(0.0), -Complex::I]],
        GateKind::T => [[c(1.0), c(0.0)], [c(0.0), Complex::cis(std::f64::consts::FRAC_PI_4)]],
        GateKind::Tdg => [[c(1.0), c(0.0)], [c(0.0), Complex::cis(-std::f64::consts::FRAC_PI_4)]],
        GateKind::Sx => {
            let p = Complex::new(0.5, 0.5);
            let n = Complex::new(0.5, -0.5);
            [[p, n], [n, p]]
        }
        GateKind::Rx => {
            let t = params[0] / 2.0;
            let (cos, sin) = (t.cos(), t.sin());
            [[c(cos), Complex::new(0.0, -sin)], [Complex::new(0.0, -sin), c(cos)]]
        }
        GateKind::Ry => {
            let t = params[0] / 2.0;
            [[c(t.cos()), c(-t.sin())], [c(t.sin()), c(t.cos())]]
        }
        GateKind::Rz => {
            let t = params[0] / 2.0;
            [[Complex::cis(-t), c(0.0)], [c(0.0), Complex::cis(t)]]
        }
        GateKind::Phase => [[c(1.0), c(0.0)], [c(0.0), Complex::cis(params[0])]],
        GateKind::U3 => {
            let (t, phi, lam) = (params[0] / 2.0, params[1], params[2]);
            [
                [c(t.cos()), -Complex::cis(lam).scale(t.sin())],
                [Complex::cis(phi).scale(t.sin()), Complex::cis(phi + lam).scale(t.cos())],
            ]
        }
        _ => return None,
    };
    Some(m)
}

/// Dense unitary of one gate over its own operands (local dimension `2^k`,
/// operand `j` = bit `j`).
///
/// # Errors
///
/// Returns [`SimError::NonUnitary`] for measurements, resets, barriers, and
/// classically conditioned gates.
pub fn gate_unitary(gate: &Gate) -> Result<Matrix, SimError> {
    if gate.condition().is_some() {
        return Err(SimError::NonUnitary { kind: "conditioned gate" });
    }
    if !gate.kind().is_unitary() {
        return Err(SimError::NonUnitary { kind: gate.kind().name() });
    }
    if let Some(m2) = single_qubit_matrix(gate.kind(), gate.params()) {
        let mut m = Matrix::zeros(2);
        for (i, row) in m2.iter().enumerate() {
            for (j, &entry) in row.iter().enumerate() {
                m.set(i, j, entry);
            }
        }
        return Ok(m);
    }
    let k = gate.num_qubits();
    let dim = 1usize << k;
    let mut m = Matrix::zeros(dim);
    match gate.kind() {
        GateKind::Cx => {
            // bit0 = control, bit1 = target
            for idx in 0..dim {
                let c = idx & 1;
                let out = if c == 1 { idx ^ 2 } else { idx };
                m.set(out, idx, Complex::ONE);
            }
        }
        GateKind::Cz => {
            for idx in 0..dim {
                let v = if idx == 3 { Complex::real(-1.0) } else { Complex::ONE };
                m.set(idx, idx, v);
            }
        }
        GateKind::Swap => {
            m.set(0, 0, Complex::ONE);
            m.set(1, 2, Complex::ONE);
            m.set(2, 1, Complex::ONE);
            m.set(3, 3, Complex::ONE);
        }
        GateKind::Crz => {
            let t = gate.theta().expect("crz parameter") / 2.0;
            // diag over (control=bit0, target=bit1)
            m.set(0, 0, Complex::ONE);
            m.set(2, 2, Complex::ONE);
            m.set(1, 1, Complex::cis(-t)); // control 1, target 0
            m.set(3, 3, Complex::cis(t)); // control 1, target 1
        }
        GateKind::Cp => {
            let t = gate.theta().expect("cp parameter");
            for idx in 0..dim {
                let v = if idx == 3 { Complex::cis(t) } else { Complex::ONE };
                m.set(idx, idx, v);
            }
        }
        GateKind::Rzz => {
            let t = gate.theta().expect("rzz parameter") / 2.0;
            for idx in 0..dim {
                let parity = (idx & 1) ^ ((idx >> 1) & 1);
                let v = if parity == 0 { Complex::cis(-t) } else { Complex::cis(t) };
                m.set(idx, idx, v);
            }
        }
        GateKind::Ccx | GateKind::Mcx => {
            let controls_mask = (1usize << (k - 1)) - 1;
            let target_bit = 1usize << (k - 1);
            for idx in 0..dim {
                let out = if idx & controls_mask == controls_mask { idx ^ target_bit } else { idx };
                m.set(out, idx, Complex::ONE);
            }
        }
        _ => unreachable!("all unitary kinds handled"),
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn identity_is_unitary() {
        assert!(Matrix::identity(8).is_unitary(1e-12));
    }

    #[test]
    fn all_gate_matrices_are_unitary() {
        let gates = vec![
            Gate::i(q(0)),
            Gate::h(q(0)),
            Gate::x(q(0)),
            Gate::y(q(0)),
            Gate::z(q(0)),
            Gate::s(q(0)),
            Gate::sdg(q(0)),
            Gate::t(q(0)),
            Gate::tdg(q(0)),
            Gate::sx(q(0)),
            Gate::rx(0.3, q(0)),
            Gate::ry(0.3, q(0)),
            Gate::rz(0.3, q(0)),
            Gate::phase(0.3, q(0)),
            Gate::u3(0.3, 0.5, 0.7, q(0)),
            Gate::cx(q(0), q(1)),
            Gate::cz(q(0), q(1)),
            Gate::swap(q(0), q(1)),
            Gate::crz(0.3, q(0), q(1)),
            Gate::cp(0.3, q(0), q(1)),
            Gate::rzz(0.3, q(0), q(1)),
            Gate::ccx(q(0), q(1), q(2)),
            Gate::mcx(&[q(0), q(1), q(2)], q(3)),
        ];
        for g in gates {
            assert!(gate_unitary(&g).unwrap().is_unitary(1e-10), "{g}");
        }
    }

    #[test]
    fn hadamard_squares_to_identity() {
        let h = gate_unitary(&Gate::h(q(0))).unwrap();
        assert!(h.mul(&h).unwrap().approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn hxh_equals_z() {
        let h = gate_unitary(&Gate::h(q(0))).unwrap();
        let x = gate_unitary(&Gate::x(q(0))).unwrap();
        let z = gate_unitary(&Gate::z(q(0))).unwrap();
        let hxh = h.mul(&x).unwrap().mul(&h).unwrap();
        assert!(hxh.approx_eq(&z, 1e-12));
    }

    #[test]
    fn cx_flips_target_when_control_set() {
        let cx = gate_unitary(&Gate::cx(q(0), q(1))).unwrap();
        // |control=1, target=0⟩ is local index 1; expect index 3 out.
        assert!(cx.get(3, 1).approx_eq(Complex::ONE, 1e-12));
        assert!(cx.get(1, 3).approx_eq(Complex::ONE, 1e-12));
        assert!(cx.get(0, 0).approx_eq(Complex::ONE, 1e-12));
        assert!(cx.get(2, 2).approx_eq(Complex::ONE, 1e-12));
    }

    #[test]
    fn non_unitary_kinds_rejected() {
        let m = Gate::measure(q(0), dqc_circuit::CBitId::new(0));
        assert!(matches!(gate_unitary(&m), Err(SimError::NonUnitary { .. })));
        let g = Gate::x(q(0)).with_condition(dqc_circuit::CBitId::new(0));
        assert!(matches!(gate_unitary(&g), Err(SimError::NonUnitary { .. })));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = gate_unitary(&Gate::x(q(0))).unwrap();
        let id = Matrix::identity(2);
        let k = id.kron(&x);
        assert_eq!(k.dim(), 4);
        // I ⊗ X: X acts on the low-order factor.
        assert!(k.get(0, 1).approx_eq(Complex::ONE, 1e-12));
        assert!(k.get(2, 3).approx_eq(Complex::ONE, 1e-12));
    }

    #[test]
    fn embed_matches_kron_for_adjacent_qubits() {
        // X on qubit 1 of 2 = X ⊗ I under our LSB convention.
        let x = gate_unitary(&Gate::x(q(0))).unwrap();
        let embedded = x.embed(&[q(1)], 2).unwrap();
        let kron = x.kron(&Matrix::identity(2));
        assert!(embedded.approx_eq(&kron, 1e-12));
    }

    #[test]
    fn embed_respects_operand_order() {
        // CX with control q1, target q0 in a 2-qubit register.
        let cx = gate_unitary(&Gate::cx(q(1), q(0))).unwrap();
        let m = cx.embed(&[q(1), q(0)], 2).unwrap();
        // Global |q1=1, q0=0⟩ = index 2 → target q0 flips → index 3.
        assert!(m.get(3, 2).approx_eq(Complex::ONE, 1e-12));
        assert!(m.get(1, 1).approx_eq(Complex::ONE, 1e-12));
    }

    #[test]
    fn embed_rejects_bad_shapes() {
        let x = gate_unitary(&Gate::x(q(0))).unwrap();
        assert!(x.embed(&[q(0), q(1)], 2).is_err());
        assert!(x.embed(&[q(5)], 2).is_err());
    }

    #[test]
    fn adjoint_of_s_is_sdg() {
        let s = gate_unitary(&Gate::s(q(0))).unwrap();
        let sdg = gate_unitary(&Gate::sdg(q(0))).unwrap();
        assert!(s.adjoint().approx_eq(&sdg, 1e-12));
    }

    #[test]
    fn mcx_matrix_is_permutation() {
        let g = Gate::mcx(&[q(0), q(1)], q(2));
        let m = gate_unitary(&g).unwrap();
        let ccx = gate_unitary(&Gate::ccx(q(0), q(1), q(2))).unwrap();
        assert!(m.approx_eq(&ccx, 1e-12));
    }
}
