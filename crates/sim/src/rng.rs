//! Deterministic pseudo-random stream for measurement sampling.

/// SplitMix64: a tiny, fast, well-distributed PRNG.
///
/// Protocol verification must be reproducible, so the simulator samples
/// measurement outcomes from this self-contained deterministic stream
/// instead of a system RNG. The generator passes through the full 2⁶⁴
/// state space and is more than adequate for sampling branch outcomes.
///
/// ```
/// use dqc_sim::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `0..bound` (`bound > 0`).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Modulo bias is negligible for the small bounds used here.
        self.next_u64() % bound
    }

    /// A fresh generator seeded from this stream (for forking independent
    /// substreams).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0x5EED_5EED_5EED_5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SplitMix64::new(99);
        let mut sum = 0.0;
        let n = 10_000;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn bounded_sampling() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn fork_creates_independent_stream() {
        let mut a = SplitMix64::new(5);
        let mut f = a.fork();
        assert_ne!(a.next_u64(), f.next_u64());
    }
}
