//! Minimal complex arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// Only the operations the simulator needs are provided; the type is `Copy`
/// and behaves like a plain value.
///
/// ```
/// use dqc_sim::Complex;
/// let i = Complex::I;
/// assert!((i * i + Complex::ONE).norm() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a real number.
    pub fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// e^{iθ}.
    pub fn cis(theta: f64) -> Self {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// |z|².
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// |z|.
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplies by a real scalar.
    pub fn scale(self, s: f64) -> Self {
        Complex { re: self.re * s, im: self.im * s }
    }

    /// Whether both components are within `tol` of `other`'s.
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self - other).norm() <= tol
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.4}+{:.4}i", self.re, self.im)
        } else {
            write!(f, "{:.4}-{:.4}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-0.5, 0.25);
        assert!((a + b - a - b).norm() < 1e-15);
        assert!(((a * b) / b).approx_eq(a, 1e-12));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..8 {
            let z = Complex::cis(k as f64 * std::f64::consts::FRAC_PI_4);
            assert!((z.norm() - 1.0).abs() < 1e-12);
        }
        assert!(Complex::cis(std::f64::consts::PI).approx_eq(Complex::real(-1.0), 1e-12));
    }

    #[test]
    fn conjugation_and_norm() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!(z.conj(), Complex::new(3.0, 4.0));
        assert!((z * z.conj()).approx_eq(Complex::real(25.0), 1e-12));
    }

    #[test]
    fn display_and_from() {
        assert_eq!(Complex::from(2.0), Complex::real(2.0));
        assert_eq!(Complex::new(1.0, -1.0).to_string(), "1.0000-1.0000i");
    }
}
