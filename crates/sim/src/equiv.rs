//! Dense-unitary construction and equivalence checking.

use dqc_circuit::{Circuit, Gate};

use crate::{ClassicalState, Complex, Matrix, SimError, SplitMix64, StateVector};

pub use crate::matrix::gate_unitary;

/// Hard cap for dense circuit unitaries (`2^12 = 4096` columns).
const MAX_UNITARY_QUBITS: usize = 12;

/// Builds the full `2^n × 2^n` unitary of a measurement-free circuit by
/// propagating every basis column through the state-vector kernels.
///
/// # Errors
///
/// Returns [`SimError::NonUnitary`] if the circuit contains measurement,
/// reset, or conditioned gates, and [`SimError::TooManyQubits`] above the
/// 12-qubit cap.
///
/// ```
/// use dqc_circuit::{Circuit, Gate, QubitId};
/// use dqc_sim::circuit_unitary;
/// let mut c = Circuit::new(1);
/// c.push(Gate::h(QubitId::new(0))).unwrap();
/// let u = circuit_unitary(&c).unwrap();
/// assert!(u.is_unitary(1e-12));
/// ```
pub fn circuit_unitary(circuit: &Circuit) -> Result<Matrix, SimError> {
    let n = circuit.num_qubits();
    if n > MAX_UNITARY_QUBITS {
        return Err(SimError::TooManyQubits { requested: n, limit: MAX_UNITARY_QUBITS });
    }
    for g in circuit.gates() {
        if g.condition().is_some() {
            return Err(SimError::NonUnitary { kind: "conditioned gate" });
        }
        if !g.kind().is_unitary() && g.kind() != dqc_circuit::GateKind::Barrier {
            return Err(SimError::NonUnitary { kind: g.kind().name() });
        }
    }
    let dim = 1usize << n;
    let mut out = Matrix::zeros(dim);
    let mut classical = ClassicalState::new(0);
    let mut rng = SplitMix64::new(0); // never consulted: circuit is unitary
    for col in 0..dim {
        let mut amps = vec![Complex::ZERO; dim];
        amps[col] = Complex::ONE;
        let mut sv = StateVector::from_amplitudes(amps)?;
        for g in circuit.gates() {
            sv.apply(g, &mut classical, &mut rng)?;
        }
        for (row, a) in sv.amplitudes().iter().enumerate() {
            out.set(row, col, *a);
        }
    }
    Ok(out)
}

/// Whether `b ≈ e^{iφ} · a` for some global phase φ, within `tol` per entry.
///
/// ```
/// use dqc_circuit::{Gate, QubitId};
/// use dqc_sim::{equivalent_up_to_phase, gate_unitary, Matrix};
/// let z = gate_unitary(&Gate::z(QubitId::new(0))).unwrap();
/// // RZ(π) = diag(e^{-iπ/2}, e^{iπ/2}) = -i · Z.
/// let rz = gate_unitary(&Gate::rz(std::f64::consts::PI, QubitId::new(0))).unwrap();
/// assert!(equivalent_up_to_phase(&z, &rz, 1e-12));
/// ```
pub fn equivalent_up_to_phase(a: &Matrix, b: &Matrix, tol: f64) -> bool {
    if a.dim() != b.dim() {
        return false;
    }
    // Find the entry of largest magnitude in `a` to anchor the phase.
    let mut best = (0usize, 0usize);
    let mut best_norm = -1.0;
    for i in 0..a.dim() {
        for j in 0..a.dim() {
            let n = a.get(i, j).norm();
            if n > best_norm {
                best_norm = n;
                best = (i, j);
            }
        }
    }
    if best_norm <= tol {
        // `a` is (numerically) zero; matrices are equal iff `b` is too.
        return b.max_abs() <= tol;
    }
    let phase = b.get(best.0, best.1) / a.get(best.0, best.1);
    if (phase.norm() - 1.0).abs() > tol {
        return false;
    }
    for i in 0..a.dim() {
        for j in 0..a.dim() {
            if !(a.get(i, j) * phase).approx_eq(b.get(i, j), tol) {
                return false;
            }
        }
    }
    true
}

/// Whether two measurement-free circuits implement the same unitary up to
/// global phase.
///
/// # Errors
///
/// Propagates [`circuit_unitary`] errors; circuits must have equal register
/// sizes (checked via the resulting dimensions).
pub fn circuits_equivalent(a: &Circuit, b: &Circuit, tol: f64) -> Result<bool, SimError> {
    let ua = circuit_unitary(a)?;
    let ub = circuit_unitary(b)?;
    Ok(equivalent_up_to_phase(&ua, &ub, tol))
}

/// Convenience: dense unitary of a single gate embedded in an `n`-qubit
/// register.
///
/// # Errors
///
/// Propagates [`gate_unitary`] and embedding errors.
pub fn embedded_gate_unitary(gate: &Gate, num_qubits: usize) -> Result<Matrix, SimError> {
    gate_unitary(gate)?.embed(gate.qubits(), num_qubits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_circuit::{GateKind, QubitId};

    fn q(i: usize) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn unitary_of_bell_pair_circuit() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(q(0))).unwrap();
        c.push(Gate::cx(q(0), q(1))).unwrap();
        let u = circuit_unitary(&c).unwrap();
        assert!(u.is_unitary(1e-10));
        // Column 0 is the Bell state (|00⟩ + |11⟩)/√2.
        assert!((u.get(0, 0).norm() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((u.get(3, 0).norm() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!(u.get(1, 0).norm() < 1e-12);
    }

    #[test]
    fn measuring_circuit_rejected() {
        let mut c = Circuit::with_cbits(1, 1);
        c.push(Gate::measure(q(0), dqc_circuit::CBitId::new(0))).unwrap();
        assert!(matches!(circuit_unitary(&c), Err(SimError::NonUnitary { .. })));
    }

    #[test]
    fn commuting_reorder_is_equivalent() {
        let mut a = Circuit::new(3);
        a.push(Gate::cx(q(0), q(1))).unwrap();
        a.push(Gate::cx(q(0), q(2))).unwrap();
        let mut b = Circuit::new(3);
        b.push(Gate::cx(q(0), q(2))).unwrap();
        b.push(Gate::cx(q(0), q(1))).unwrap();
        assert!(circuits_equivalent(&a, &b, 1e-10).unwrap());
    }

    #[test]
    fn non_commuting_reorder_is_detected() {
        let mut a = Circuit::new(2);
        a.push(Gate::h(q(0))).unwrap();
        a.push(Gate::cx(q(0), q(1))).unwrap();
        let mut b = Circuit::new(2);
        b.push(Gate::cx(q(0), q(1))).unwrap();
        b.push(Gate::h(q(0))).unwrap();
        assert!(!circuits_equivalent(&a, &b, 1e-10).unwrap());
    }

    #[test]
    fn phase_equivalence_is_tolerant_to_global_phase_only() {
        let z = gate_unitary(&Gate::z(q(0))).unwrap();
        let rz_pi = gate_unitary(&Gate::rz(std::f64::consts::PI, q(0))).unwrap();
        assert!(equivalent_up_to_phase(&z, &rz_pi, 1e-12));
        let s = gate_unitary(&Gate::s(q(0))).unwrap();
        assert!(!equivalent_up_to_phase(&z, &s, 1e-12));
    }

    #[test]
    fn unroll_rules_preserve_semantics() {
        // Every decomposable kind, against its unrolled form.
        let theta = 0.731;
        let gates = vec![
            Gate::cz(q(0), q(1)),
            Gate::crz(theta, q(0), q(1)),
            Gate::cp(theta, q(0), q(1)),
            Gate::rzz(theta, q(0), q(1)),
            Gate::swap(q(0), q(1)),
            Gate::ccx(q(0), q(1), q(2)),
        ];
        for gate in gates {
            let n = gate.num_qubits();
            let mut orig = Circuit::new(n);
            orig.push(gate.clone()).unwrap();
            let unrolled = dqc_circuit::unroll_circuit(&orig).unwrap();
            assert!(
                circuits_equivalent(&orig, &unrolled, 1e-9).unwrap(),
                "unroll of {gate} changed semantics"
            );
        }
    }

    #[test]
    fn mcx_unroll_preserves_semantics_with_dirty_ancillas() {
        for n_controls in 3..6usize {
            let total = 2 * n_controls - 1;
            let controls: Vec<QubitId> = (0..n_controls).map(q).collect();
            let gate = Gate::mcx(&controls, q(n_controls));
            let mut orig = Circuit::new(total);
            orig.push(gate).unwrap();
            let unrolled = dqc_circuit::unroll_circuit(&orig).unwrap();
            assert!(
                circuits_equivalent(&orig, &unrolled, 1e-8).unwrap(),
                "mcx with {n_controls} controls"
            );
        }
    }

    #[test]
    fn mcx_split_path_preserves_semantics() {
        // 4 controls + target + exactly one spare qubit forces the split.
        let controls: Vec<QubitId> = (0..4).map(q).collect();
        let gate = Gate::mcx(&controls, q(4));
        let mut orig = Circuit::new(6);
        orig.push(gate).unwrap();
        let unrolled = dqc_circuit::unroll_circuit(&orig).unwrap();
        assert!(unrolled.gates().iter().all(|g| g.num_qubits() <= 2));
        assert!(circuits_equivalent(&orig, &unrolled, 1e-8).unwrap());
    }

    #[test]
    fn embedded_gate_unitary_matches_circuit() {
        let gate = Gate::cx(q(1), q(0));
        let via_embed = embedded_gate_unitary(&gate, 3).unwrap();
        let mut c = Circuit::new(3);
        c.push(gate).unwrap();
        let via_circuit = circuit_unitary(&c).unwrap();
        assert!(via_embed.approx_eq(&via_circuit, 1e-12));
    }

    #[test]
    fn barrier_is_identity_in_unitary() {
        let mut c = Circuit::new(2);
        c.push(Gate::barrier(&[q(0), q(1)])).unwrap();
        let u = circuit_unitary(&c).unwrap();
        assert!(u.approx_eq(&Matrix::identity(4), 1e-12));
        assert!(!GateKind::Barrier.is_unitary());
    }
}
