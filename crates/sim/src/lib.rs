//! Functional simulation and equivalence checking for the AutoComm
//! reproduction.
//!
//! The AutoComm paper evaluates compilation quality (EPR-pair counts and a
//! normalized latency model), but a trustworthy reproduction must also show
//! that every transformation — commutation-based reordering, gate unrolling,
//! and the Cat-Comm / TP-Comm protocol expansions with their mid-circuit
//! measurements and classically controlled corrections — preserves program
//! semantics. This crate provides the machinery:
//!
//! * [`Complex`] — minimal complex arithmetic (no external dependency);
//! * [`Matrix`] — dense unitaries, Kronecker products, operator embedding,
//!   and [`circuit_unitary`] for measurement-free circuits;
//! * [`StateVector`] — a state-vector simulator supporting measurement,
//!   reset, and classically conditioned gates, driven by a deterministic
//!   [`SplitMix64`] stream so protocol verification is reproducible;
//! * [`equivalent_up_to_phase`] / [`StateVector::subset_fidelity`] —
//!   equivalence checks up to global phase, including fidelity of a data
//!   register embedded in a larger register of communication qubits.
//!
//! # Example: verifying a rewrite
//!
//! ```
//! use dqc_circuit::{Circuit, Gate, QubitId};
//! use dqc_sim::{circuit_unitary, equivalent_up_to_phase};
//!
//! # fn main() -> Result<(), dqc_sim::SimError> {
//! let q = |i| QubitId::new(i);
//! // CX(0,1) then CX(0,2) ...
//! let mut a = Circuit::new(3);
//! a.push(Gate::cx(q(0), q(1))).unwrap();
//! a.push(Gate::cx(q(0), q(2))).unwrap();
//! // ... commutes (shared control).
//! let mut b = Circuit::new(3);
//! b.push(Gate::cx(q(0), q(2))).unwrap();
//! b.push(Gate::cx(q(0), q(1))).unwrap();
//! assert!(equivalent_up_to_phase(
//!     &circuit_unitary(&a)?,
//!     &circuit_unitary(&b)?,
//!     1e-9,
//! ));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
mod equiv;
mod error;
mod matrix;
mod rng;
mod state;

pub use complex::Complex;
pub use equiv::{
    circuit_unitary, circuits_equivalent, embedded_gate_unitary, equivalent_up_to_phase,
    gate_unitary,
};
pub use error::SimError;
pub use matrix::Matrix;
pub use rng::SplitMix64;
pub use state::{ClassicalState, StateVector};
