//! Application benchmarks: BV, QAOA max-cut, UCCSD.

#[cfg(test)]
use dqc_circuit::GateKind;
use dqc_circuit::{Circuit, Gate, QubitId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Bernstein–Vazirani with the default secret pattern `s_i = (i % 3 != 0)`
/// (≈ ⅔ density, close to the paper's CX counts). Qubit 0 is the oracle
/// ancilla, inputs are qubits `1..n`.
///
/// # Panics
///
/// Panics if `num_qubits < 2`.
///
/// ```
/// use dqc_workloads::bv;
/// let c = bv(10);
/// assert_eq!(c.num_qubits(), 10);
/// ```
pub fn bv(num_qubits: usize) -> Circuit {
    assert!(num_qubits >= 2, "BV needs an ancilla plus at least one input");
    let secret: Vec<bool> = (0..num_qubits - 1).map(|i| i % 3 != 0).collect();
    bv_with_secret(&secret)
}

/// Bernstein–Vazirani with an explicit secret string; the register holds
/// `secret.len() + 1` qubits with the ancilla at qubit 0.
///
/// The oracle is the usual phase-kickback chain: `CX(input_i → ancilla)`
/// for every set secret bit — the all-target burst pattern of paper
/// Fig. 9(c).
///
/// # Panics
///
/// Panics if `secret` is empty.
pub fn bv_with_secret(secret: &[bool]) -> Circuit {
    assert!(!secret.is_empty(), "BV needs at least one input qubit");
    let n = secret.len() + 1;
    let q = QubitId::new;
    let anc = q(0);
    let mut c = Circuit::new(n);
    // Ancilla in |−⟩, inputs in |+⟩.
    c.push(Gate::x(anc)).expect("in range");
    c.push(Gate::h(anc)).expect("in range");
    for i in 1..n {
        c.push(Gate::h(q(i))).expect("in range");
    }
    for (i, &bit) in secret.iter().enumerate() {
        if bit {
            c.push(Gate::cx(q(i + 1), anc)).expect("in range");
        }
    }
    for i in 1..n {
        c.push(Gate::h(q(i))).expect("in range");
    }
    c
}

/// One QAOA max-cut layer over a random `num_edges`-edge graph on
/// `num_qubits` vertices: `H` wall, one `RZZ(γ)` per edge, `RX(β)` wall.
///
/// Edges are sampled without replacement from a seeded generator, so a
/// `(num_qubits, num_edges, seed)` triple is fully reproducible. The paper
/// uses ≈ 20·n edges for its QAOA rows.
///
/// # Panics
///
/// Panics if `num_qubits < 2` or `num_edges` exceeds the simple-graph
/// maximum `n(n-1)/2`.
///
/// ```
/// use dqc_workloads::qaoa_maxcut;
/// let c = qaoa_maxcut(8, 12, 7);
/// let rzz = c.gates().iter()
///     .filter(|g| g.kind() == dqc_circuit::GateKind::Rzz)
///     .count();
/// assert_eq!(rzz, 12);
/// ```
pub fn qaoa_maxcut(num_qubits: usize, num_edges: usize, seed: u64) -> Circuit {
    assert!(num_qubits >= 2, "QAOA needs at least two vertices");
    let max_edges = num_qubits * (num_qubits - 1) / 2;
    assert!(
        num_edges <= max_edges,
        "{num_edges} edges exceed the simple-graph maximum {max_edges}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = std::collections::HashSet::new();
    let mut edges = Vec::with_capacity(num_edges);
    while edges.len() < num_edges {
        let a = rng.random_range(0..num_qubits);
        let b = rng.random_range(0..num_qubits);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if chosen.insert(key) {
            edges.push(key);
        }
    }

    let q = QubitId::new;
    let gamma = 0.42;
    let beta = 0.77;
    let mut c = Circuit::new(num_qubits);
    for i in 0..num_qubits {
        c.push(Gate::h(q(i))).expect("in range");
    }
    for (a, b) in edges {
        c.push(Gate::rzz(gamma, q(a), q(b))).expect("in range");
    }
    for i in 0..num_qubits {
        c.push(Gate::rx(2.0 * beta, q(i))).expect("in range");
    }
    c
}

/// UCCSD ansatz over `num_qubits` spin orbitals with `num_qubits / 4`
/// occupied orbitals (LiH / BeH₂ / CH₄ scale as 8 / 12 / 16 qubits in the
/// paper), Jordan–Wigner encoded.
///
/// Every single excitation `i→a` contributes two Pauli-string exponentials
/// (XY, YX) and every double excitation `ij→ab` contributes eight, each
/// lowered to basis changes + a CX ladder + `RZ` + the mirrored ladder —
/// the bursty unidirectional chains the paper's UCCSD rows exhibit.
///
/// # Panics
///
/// Panics if `num_qubits < 8` or not a multiple of 4.
pub fn uccsd(num_qubits: usize) -> Circuit {
    assert!(
        num_qubits >= 8 && num_qubits.is_multiple_of(4),
        "UCCSD generator expects a multiple of 4, at least 8 qubits"
    );
    let occ = num_qubits / 4;
    let mut c = Circuit::new(num_qubits);
    let mut theta_idx = 0usize;
    let mut next_theta = || {
        theta_idx += 1;
        0.05 * theta_idx as f64
    };

    // Reference state: occupied orbitals set.
    for i in 0..occ {
        c.push(Gate::x(QubitId::new(i))).expect("in range");
    }

    // Single excitations i → a: strings XY and YX.
    for i in 0..occ {
        for a in occ..num_qubits {
            let theta = next_theta();
            pauli_exponential(&mut c, &[(i, Axis::X), (a, Axis::Y)], theta);
            pauli_exponential(&mut c, &[(i, Axis::Y), (a, Axis::X)], -theta);
        }
    }
    // Double excitations (i<j) → (a<b): the eight standard strings.
    const DOUBLE_STRINGS: [([Axis; 4], f64); 8] = [
        ([Axis::X, Axis::X, Axis::Y, Axis::X], 1.0),
        ([Axis::Y, Axis::X, Axis::Y, Axis::Y], 1.0),
        ([Axis::X, Axis::Y, Axis::Y, Axis::Y], 1.0),
        ([Axis::X, Axis::X, Axis::X, Axis::Y], 1.0),
        ([Axis::Y, Axis::X, Axis::X, Axis::X], -1.0),
        ([Axis::X, Axis::Y, Axis::X, Axis::X], -1.0),
        ([Axis::Y, Axis::Y, Axis::Y, Axis::X], -1.0),
        ([Axis::Y, Axis::Y, Axis::X, Axis::Y], -1.0),
    ];
    for i in 0..occ {
        for j in i + 1..occ {
            for a in occ..num_qubits {
                for b in a + 1..num_qubits {
                    let theta = next_theta();
                    for (axes, sign) in DOUBLE_STRINGS {
                        let ops = [(i, axes[0]), (j, axes[1]), (a, axes[2]), (b, axes[3])];
                        pauli_exponential(&mut c, &ops, sign * theta / 8.0);
                    }
                }
            }
        }
    }
    c
}

/// Pauli axis of one factor in an exponentiated string.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Axis {
    X,
    Y,
}

/// Appends exp(-i θ/2 · P) for the Pauli string `P` given as (qubit, axis)
/// pairs (Z factors of the Jordan–Wigner string are carried by the CX
/// ladder over the intermediate qubits).
fn pauli_exponential(c: &mut Circuit, ops: &[(usize, Axis)], theta: f64) {
    let q = QubitId::new;
    // Basis changes into Z.
    for &(i, axis) in ops {
        match axis {
            Axis::X => c.push(Gate::h(q(i))).expect("in range"),
            Axis::Y => c.push(Gate::rx(std::f64::consts::FRAC_PI_2, q(i))).expect("in range"),
        }
    }
    // CX ladder across the involved qubits (sorted ascending).
    let mut involved: Vec<usize> = ops.iter().map(|&(i, _)| i).collect();
    involved.sort_unstable();
    for w in involved.windows(2) {
        c.push(Gate::cx(q(w[0]), q(w[1]))).expect("in range");
    }
    let last = *involved.last().expect("non-empty string");
    c.push(Gate::rz(theta, q(last))).expect("in range");
    for w in involved.windows(2).rev() {
        c.push(Gate::cx(q(w[0]), q(w[1]))).expect("in range");
    }
    // Undo basis changes.
    for &(i, axis) in ops {
        match axis {
            Axis::X => c.push(Gate::h(q(i))).expect("in range"),
            Axis::Y => c.push(Gate::rx(-std::f64::consts::FRAC_PI_2, q(i))).expect("in range"),
        }
    }
}

/// Counts gates of `kind` (test helper exposed for the suite module).
#[cfg(test)]
pub(crate) fn count_kind(c: &Circuit, kind: GateKind) -> usize {
    c.gates().iter().filter(|g| g.kind() == kind).count()
}

/// Quantum phase estimation of a single-qubit phase gate `P(2πφ)`:
/// `counting` counting qubits (qubits `0..counting`), one eigenstate qubit
/// (the last), controlled-phase ladder, then the inverse QFT on the
/// counting register. A standard composite workload exercising both the
/// all-control burst pattern (the ladder) and QFT-style diagonal cascades.
///
/// # Panics
///
/// Panics if `counting == 0`.
///
/// ```
/// use dqc_workloads::qpe;
/// let c = qpe(4, 0.3125); // φ = 5/16: exactly representable in 4 bits
/// assert_eq!(c.num_qubits(), 5);
/// ```
pub fn qpe(counting: usize, phase: f64) -> Circuit {
    assert!(counting > 0, "QPE needs at least one counting qubit");
    let n = counting + 1;
    let q = QubitId::new;
    let target = q(counting);
    let mut c = Circuit::new(n);
    // Eigenstate |1⟩ of P(θ), counting register in |+⟩^t.
    c.push(Gate::x(target)).expect("in range");
    for i in 0..counting {
        c.push(Gate::h(q(i))).expect("in range");
    }
    // Controlled-U^{2^k}: counting qubit k accumulates phase 2^k · 2πφ.
    for k in 0..counting {
        let theta = std::f64::consts::TAU * phase * (1u64 << k) as f64;
        c.push(Gate::cp(theta, q(k), target)).expect("in range");
    }
    // Inverse QFT on the counting register (the target is untouched).
    for gate in crate::qft_inverse(counting).gates() {
        c.push(gate.clone()).expect("in range");
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_sim::{SplitMix64, StateVector};

    #[test]
    fn bv_recovers_its_secret() {
        // After the oracle sandwich, measuring the inputs yields the secret.
        let secret = [true, false, true, true];
        let c = bv_with_secret(&secret);
        let mut s = StateVector::zero_state(c.num_qubits()).unwrap();
        s.run(&c, &mut SplitMix64::new(3)).unwrap();
        for (i, &bit) in secret.iter().enumerate() {
            let p1 = s.probability_one(QubitId::new(i + 1));
            if bit {
                assert!(p1 > 1.0 - 1e-9, "input {i} should read 1");
            } else {
                assert!(p1 < 1e-9, "input {i} should read 0");
            }
        }
    }

    #[test]
    fn bv_default_secret_density() {
        let c = bv(100);
        let cx = count_kind(&c, GateKind::Cx);
        assert_eq!(cx, 66); // 2/3 of 99 inputs
    }

    #[test]
    fn qaoa_is_reproducible_and_simple() {
        let a = qaoa_maxcut(10, 20, 5);
        let b = qaoa_maxcut(10, 20, 5);
        assert_eq!(a, b);
        let c = qaoa_maxcut(10, 20, 6);
        assert_ne!(a, c);
        // No duplicate edges: RZZ count equals requested edges.
        assert_eq!(count_kind(&a, GateKind::Rzz), 20);
    }

    #[test]
    #[should_panic(expected = "exceed the simple-graph maximum")]
    fn qaoa_rejects_too_many_edges() {
        let _ = qaoa_maxcut(4, 100, 0);
    }

    #[test]
    fn uccsd_structure() {
        let c = uccsd(8);
        // occ=2, virt=6 → 12 singles × 2 strings + 15 doubles × 8 strings.
        let rz = count_kind(&c, GateKind::Rz);
        assert_eq!(rz, 12 * 2 + 15 * 8);
        // Reference state: two X gates.
        assert_eq!(count_kind(&c, GateKind::X), 2);
        assert!(c.two_qubit_gate_count() > 500);
    }

    #[test]
    fn pauli_exponential_is_unitary_identity_at_zero_angle() {
        use dqc_sim::{circuit_unitary, equivalent_up_to_phase, Matrix};
        let mut c = Circuit::new(3);
        pauli_exponential(&mut c, &[(0, Axis::X), (2, Axis::Y)], 0.0);
        let u = circuit_unitary(&c).unwrap();
        assert!(equivalent_up_to_phase(&u, &Matrix::identity(8), 1e-9));
    }

    #[test]
    fn pauli_exponential_matches_direct_matrix() {
        use dqc_sim::{circuit_unitary, equivalent_up_to_phase, gate_unitary, Matrix};
        // exp(-iθ/2 X⊗Y) on two qubits, against the circuit construction.
        let theta = 0.63;
        let mut c = Circuit::new(2);
        pauli_exponential(&mut c, &[(0, Axis::X), (1, Axis::Y)], theta);
        let circuit_u = circuit_unitary(&c).unwrap();

        // Direct: XY = X ⊗ Y (qubit 1 high bit); exp = cos I - i sin · XY.
        let x = gate_unitary(&dqc_circuit::Gate::x(QubitId::new(0))).unwrap();
        let y = gate_unitary(&dqc_circuit::Gate::y(QubitId::new(0))).unwrap();
        let xy = y.kron(&x); // qubit0 = X (low), qubit1 = Y (high)
        let (cos, sin) = ((theta / 2.0).cos(), (theta / 2.0).sin());
        let mut direct = Matrix::zeros(4);
        let id = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                let v = id.get(i, j).scale(cos) + (dqc_sim::Complex::I * xy.get(i, j)).scale(-sin);
                direct.set(i, j, v);
            }
        }
        assert!(equivalent_up_to_phase(&circuit_u, &direct, 1e-9));
    }
}
