//! Benchmark circuit generators for the AutoComm evaluation (paper Table 2).
//!
//! Two families, mirroring the paper:
//!
//! * **Building blocks** — [`mctr`] (multi-controlled X), [`rca`] (Cuccaro
//!   ripple-carry adder), [`qft`] (quantum Fourier transform);
//! * **Applications** — [`bv`] (Bernstein–Vazirani), [`qaoa_maxcut`]
//!   (QAOA for max-cut on random graphs), [`uccsd`] (unitary
//!   coupled-cluster ansatz with Jordan–Wigner Pauli ladders).
//!
//! Generators emit high-level gates (`Ccx`, `Mcx`, `Cp`, `Rzz`, …); the
//! compiler's gate-unrolling stage lowers them to the `CX + U3` basis in
//! which the paper counts remote CXs. Absolute gate counts differ from the
//! paper's tables by small decomposition constants (documented in
//! EXPERIMENTS.md); the communication *structure* — which qubit pairs
//! interact, in which order — follows the published constructions.
//!
//! [`table2_configs`] enumerates the exact 18 (workload, #qubit, #node)
//! rows of paper Table 2 for the benchmark harness, and [`random_circuit`]
//! supplies inputs for property-based testing.
//!
//! ```
//! use dqc_workloads::qft;
//! let c = qft(4);
//! // 4 H + 6 CP + 2 SWAP
//! assert_eq!(c.len(), 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apps;
mod blocks;
mod random;
mod suite;

pub use apps::{bv, bv_with_secret, qaoa_maxcut, qpe, uccsd};
pub use blocks::{ghz, mctr, node_ring_exchange, qft, qft_inverse, rca};
pub use random::{large_sparse_circuit, random_circuit, random_distributed_circuit};
pub use suite::{generate, smoke_suite, table2_configs, BenchConfig, Workload};
