//! Building-block benchmarks: MCTR, RCA, QFT.

use dqc_circuit::{Circuit, Gate, QubitId};

/// Multi-controlled gate benchmark (paper “MCTR”): one `n/2`-controlled X
/// over an `n`-qubit register, the remaining qubits serving as the dirty
/// ancillas its linear-cost decomposition borrows.
///
/// # Panics
///
/// Panics if `num_qubits < 6` (the decomposition needs controls, a target,
/// and at least one ancilla).
///
/// ```
/// use dqc_workloads::mctr;
/// let c = mctr(8);
/// assert_eq!(c.num_qubits(), 8);
/// assert_eq!(c.len(), 1); // a single Mcx, unrolled later
/// ```
pub fn mctr(num_qubits: usize) -> Circuit {
    assert!(num_qubits >= 6, "MCTR needs at least 6 qubits, got {num_qubits}");
    let num_controls = num_qubits / 2;
    let controls: Vec<QubitId> = (0..num_controls).map(QubitId::new).collect();
    let target = QubitId::new(num_controls);
    let mut c = Circuit::new(num_qubits);
    c.push(Gate::mcx(&controls, target)).expect("operands in range");
    c
}

/// Cuccaro ripple-carry adder (paper “RCA”) over `num_qubits` qubits:
/// `cin, a0, b0, a1, b1, …, cout`, computing `b += a`.
///
/// Per bit the MAJ/UMA pair costs 4 CX + 2 Toffolis (16 CX unrolled),
/// matching the structure counted in paper Table 2.
///
/// # Panics
///
/// Panics if `num_qubits < 4` or `num_qubits` is odd (the layout needs
/// `2k + 2` qubits).
///
/// ```
/// use dqc_workloads::rca;
/// let c = rca(6); // 2-bit adder
/// assert_eq!(c.num_qubits(), 6);
/// ```
pub fn rca(num_qubits: usize) -> Circuit {
    assert!(
        num_qubits >= 4 && num_qubits.is_multiple_of(2),
        "RCA needs an even register of at least 4 qubits, got {num_qubits}"
    );
    let k = (num_qubits - 2) / 2;
    let q = QubitId::new;
    let cin = q(0);
    let a = |i: usize| q(1 + 2 * i);
    let b = |i: usize| q(2 + 2 * i);
    let cout = q(num_qubits - 1);

    let mut c = Circuit::new(num_qubits);
    let push = |g: Gate, c: &mut Circuit| c.push(g).expect("operands in range");

    // MAJ sweep: carry chain cin, a0, a1, ... .
    for i in 0..k {
        let carry = if i == 0 { cin } else { a(i - 1) };
        push(Gate::cx(a(i), b(i)), &mut c);
        push(Gate::cx(a(i), carry), &mut c);
        push(Gate::ccx(carry, b(i), a(i)), &mut c);
    }
    push(Gate::cx(a(k - 1), cout), &mut c);
    // UMA sweep (2-CX form), restoring a and finishing b.
    for i in (0..k).rev() {
        let carry = if i == 0 { cin } else { a(i - 1) };
        push(Gate::ccx(carry, b(i), a(i)), &mut c);
        push(Gate::cx(a(i), carry), &mut c);
        push(Gate::cx(carry, b(i)), &mut c);
    }
    c
}

/// Textbook quantum Fourier transform (paper “QFT”): for each qubit an H
/// followed by controlled phases from every later qubit, plus the final
/// reversal swaps.
///
/// Controlled phases are emitted as `Cp(π/2^d)`, which unroll to the same
/// two remote CXs as the paper's CRZ form and are diagonal (hence mutually
/// commutable — the property §3.2's burst analysis exploits).
///
/// # Panics
///
/// Panics if `num_qubits == 0`.
///
/// ```
/// use dqc_workloads::qft;
/// let c = qft(3);
/// assert_eq!(c.two_qubit_gate_count(), 3 + 1); // 3 CP + 1 swap
/// ```
pub fn qft(num_qubits: usize) -> Circuit {
    assert!(num_qubits > 0, "QFT needs at least one qubit");
    let q = QubitId::new;
    let mut c = Circuit::new(num_qubits);
    for i in (0..num_qubits).rev() {
        c.push(Gate::h(q(i))).expect("in range");
        for j in (0..i).rev() {
            let angle = std::f64::consts::PI * 0.5f64.powi((i - j) as i32);
            c.push(Gate::cp(angle, q(j), q(i))).expect("in range");
        }
    }
    for i in 0..num_qubits / 2 {
        c.push(Gate::swap(q(i), q(num_qubits - 1 - i))).expect("in range");
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_circuit::{unroll_circuit, CircuitStats, GateKind};

    #[test]
    fn mctr_unrolls_linearly() {
        // n/2 controls with n/2-1 spare qubits → V-chain: 4(n/2-2) Toffolis.
        for n in [8usize, 12, 20] {
            let c = mctr(n);
            let u = unroll_circuit(&c).unwrap();
            let cx = u.two_qubit_gate_count();
            assert_eq!(cx, 24 * (n / 2 - 2), "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 6 qubits")]
    fn mctr_rejects_tiny_registers() {
        let _ = mctr(4);
    }

    #[test]
    fn rca_gate_structure() {
        let c = rca(10); // 4-bit adder
        let k = 4;
        // Per bit: 2 CCX + 4 CX, plus the carry-out CX.
        let stats = CircuitStats::of(&c, None);
        assert_eq!(stats.by_kind[&GateKind::Ccx], 2 * k);
        assert_eq!(stats.by_kind[&GateKind::Cx], 4 * k + 1);
        let u = unroll_circuit(&c).unwrap();
        assert_eq!(u.two_qubit_gate_count(), 16 * k + 1);
    }

    #[test]
    fn rca_adds_correctly() {
        // Functional check on the 2-bit adder via state-vector simulation:
        // encode a=2 (a1=1), b=1 (b0=1); expect b = 3, a restored, no carry.
        use dqc_sim::{SplitMix64, StateVector};
        let q = QubitId::new;
        let mut prep = Circuit::new(6);
        prep.push(Gate::x(q(3))).unwrap(); // a1 (qubit layout cin,a0,b0,a1,b1,cout)
        prep.push(Gate::x(q(2))).unwrap(); // b0
        prep.append_circuit(&rca(6)).unwrap();
        let mut s = StateVector::zero_state(6).unwrap();
        s.run(&prep, &mut SplitMix64::new(1)).unwrap();
        // Expected basis state: a=2 restored (q3=1), b=3 (q2=1, q4=1).
        let expect_index = (1 << 3) | (1 << 2) | (1 << 4);
        assert!(s.amplitudes()[expect_index].norm() > 1.0 - 1e-9, "adder output wrong");
    }

    #[test]
    #[should_panic(expected = "even register")]
    fn rca_rejects_odd_registers() {
        let _ = rca(7);
    }

    #[test]
    fn qft_counts() {
        let n = 6;
        let c = qft(n);
        let stats = CircuitStats::of(&c, None);
        assert_eq!(stats.by_kind[&GateKind::H], n);
        assert_eq!(stats.by_kind[&GateKind::Cp], n * (n - 1) / 2);
        assert_eq!(stats.by_kind[&GateKind::Swap], n / 2);
    }

    #[test]
    fn qft_matches_dft_matrix() {
        // QFT|j⟩ amplitudes are ω^{jk}/√N with the bit-reversal swaps folded in.
        use dqc_sim::circuit_unitary;
        let n = 3;
        let u = circuit_unitary(&qft(n)).unwrap();
        let dim = 1 << n;
        let omega = 2.0 * std::f64::consts::PI / dim as f64;
        for j in 0..dim {
            for k in 0..dim {
                let expect =
                    dqc_sim::Complex::cis(omega * (j * k) as f64).scale(1.0 / (dim as f64).sqrt());
                let got = u.get(k, j);
                assert!(
                    got.approx_eq(expect, 1e-9),
                    "entry ({k},{j}): got {got}, expected {expect}"
                );
            }
        }
    }
}

/// Inverse quantum Fourier transform: the exact adjoint of [`qft`]
/// (reversed gate order, negated phases).
///
/// # Panics
///
/// Panics if `num_qubits == 0`.
///
/// ```
/// use dqc_workloads::qft_inverse;
/// let c = qft_inverse(4);
/// assert_eq!(c.num_qubits(), 4);
/// ```
pub fn qft_inverse(num_qubits: usize) -> Circuit {
    assert!(num_qubits > 0, "QFT needs at least one qubit");
    let mut c = Circuit::new(num_qubits);
    for gate in qft(num_qubits).gates().iter().rev() {
        let adj = match gate.kind() {
            dqc_circuit::GateKind::H | dqc_circuit::GateKind::Swap => gate.clone(),
            dqc_circuit::GateKind::Cp => {
                Gate::cp(-gate.theta().expect("cp parameter"), gate.qubits()[0], gate.qubits()[1])
            }
            _ => unreachable!("qft emits only H, CP, and SWAP"),
        };
        c.push(adj).expect("in range");
    }
    c
}

/// GHZ-state preparation: `H` on qubit 0 followed by a CX chain — the
/// canonical entanglement-distribution benchmark for modular machines
/// (every node-boundary crossing is one remote CX).
///
/// # Panics
///
/// Panics if `num_qubits == 0`.
///
/// ```
/// use dqc_workloads::ghz;
/// let c = ghz(5);
/// assert_eq!(c.len(), 5); // 1 H + 4 CX
/// ```
pub fn ghz(num_qubits: usize) -> Circuit {
    assert!(num_qubits > 0, "GHZ needs at least one qubit");
    let q = QubitId::new;
    let mut c = Circuit::new(num_qubits);
    c.push(Gate::h(q(0))).expect("in range");
    for i in 1..num_qubits {
        c.push(Gate::cx(q(i - 1), q(i))).expect("in range");
    }
    c
}

/// Topology-sensitivity stressor: `rounds` of inter-node exchanges mixing
/// nearest-neighbour traffic (node `i` ↔ node `i+1`, cheap on chains and
/// rings) with antipodal traffic (node `i` ↔ node `i + k/2`, the worst
/// case for sparse interconnects). Under a block partition of `num_qubits`
/// over `num_nodes`, qubit `i·(n/k)` is node `i`'s representative.
///
/// On an all-to-all machine every exchange costs one hop; on a linear
/// chain the antipodal exchanges pay `k/2` hops of entanglement swapping,
/// so the makespan spread between topologies isolates the routing layer.
///
/// # Panics
///
/// Panics if `num_nodes == 0` or `num_qubits < num_nodes`.
///
/// ```
/// use dqc_workloads::node_ring_exchange;
/// let c = node_ring_exchange(8, 4, 2);
/// assert!(c.len() > 0);
/// ```
pub fn node_ring_exchange(num_qubits: usize, num_nodes: usize, rounds: usize) -> Circuit {
    assert!(num_nodes > 0, "need at least one node");
    assert!(num_qubits >= num_nodes, "need at least one qubit per node");
    let per_node = num_qubits / num_nodes;
    let rep = |node: usize| QubitId::new(node * per_node);
    let mut c = Circuit::new(num_qubits);
    for round in 0..rounds {
        // Neighbour exchanges: a short burst in each direction.
        for i in 0..num_nodes.saturating_sub(1) {
            c.push(Gate::cx(rep(i), rep(i + 1))).expect("in range");
            c.push(Gate::cx(rep(i), rep(i + 1))).expect("in range");
        }
        // Antipodal exchanges: control alternates by round so blocks stay
        // unidirectional (Cat-friendly) but the traffic crosses the
        // machine's diameter.
        if num_nodes >= 3 {
            let half = num_nodes / 2;
            for i in 0..half {
                let (a, b) = (rep(i), rep(i + half));
                let (ctrl, tgt) = if round % 2 == 0 { (a, b) } else { (b, a) };
                c.push(Gate::cx(ctrl, tgt)).expect("in range");
                c.push(Gate::cx(ctrl, tgt)).expect("in range");
            }
        }
    }
    c
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use dqc_sim::{circuit_unitary, equivalent_up_to_phase, Matrix, SplitMix64, StateVector};

    #[test]
    fn qft_inverse_is_the_adjoint() {
        let n = 4;
        let mut both = qft(n);
        both.append_circuit(&qft_inverse(n)).unwrap();
        let u = circuit_unitary(&both).unwrap();
        assert!(equivalent_up_to_phase(&u, &Matrix::identity(1 << n), 1e-9));
    }

    #[test]
    fn node_ring_exchange_mixes_neighbour_and_antipodal_traffic() {
        let k = 4;
        let c = node_ring_exchange(8, k, 2);
        assert!(c.gates().iter().all(|g| g.num_qubits() == 2));
        // Per round: 3 neighbour pairs × 2 + 2 antipodal pairs × 2 = 10.
        assert_eq!(c.len(), 20);
        // Antipodal pairs actually cross half the machine under a block
        // partition (distance k/2 in node space).
        let p = dqc_circuit::Partition::block(8, k).unwrap();
        let max_span = c
            .gates()
            .iter()
            .map(|g| {
                let nodes: Vec<usize> = g.qubits().iter().map(|&q| p.node_of(q).index()).collect();
                nodes.iter().max().unwrap() - nodes.iter().min().unwrap()
            })
            .max()
            .unwrap();
        assert_eq!(max_span, k / 2);
    }

    #[test]
    fn ghz_prepares_the_ghz_state() {
        let n = 5;
        let mut s = StateVector::zero_state(n).unwrap();
        s.run(&ghz(n), &mut SplitMix64::new(1)).unwrap();
        let amp0 = s.amplitudes()[0];
        let amp1 = s.amplitudes()[(1 << n) - 1];
        let r = std::f64::consts::FRAC_1_SQRT_2;
        assert!((amp0.norm() - r).abs() < 1e-12);
        assert!((amp1.norm() - r).abs() < 1e-12);
        // All other amplitudes vanish.
        let other: f64 = s
            .amplitudes()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 0 && *i != (1 << n) - 1)
            .map(|(_, a)| a.norm_sqr())
            .sum();
        assert!(other < 1e-12);
    }

    #[test]
    fn qpe_recovers_exact_phases() {
        use crate::qpe;
        use dqc_circuit::QubitId;
        // φ = j / 2^t is exactly representable: the counting register must
        // collapse deterministically onto |j⟩ (bit k of j on qubit k).
        let t = 4usize;
        for j in [1usize, 5, 11] {
            let phase = j as f64 / (1 << t) as f64;
            let c = qpe(t, phase);
            let mut s = StateVector::zero_state(c.num_qubits()).unwrap();
            s.run(&c, &mut SplitMix64::new(9)).unwrap();
            for k in 0..t {
                let p1 = s.probability_one(QubitId::new(k));
                let expect = (j >> k) & 1;
                assert!(
                    (p1 - expect as f64).abs() < 1e-9,
                    "phase {phase}: counting bit {k} read {p1}, expected {expect}"
                );
            }
        }
    }
}
