//! Random circuit generation for property-based testing.

use dqc_circuit::{Circuit, Gate, Partition, QubitId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A reproducible random circuit mixing single-qubit gates (including
/// non-Clifford rotations) and two-qubit gates from the full IR alphabet.
///
/// Intended for property tests: small registers, arbitrary structure, and
/// deterministic from `(num_qubits, num_gates, seed)`.
///
/// # Panics
///
/// Panics if `num_qubits < 2`.
///
/// ```
/// use dqc_workloads::random_circuit;
/// let a = random_circuit(4, 30, 1);
/// let b = random_circuit(4, 30, 1);
/// assert_eq!(a, b);
/// assert_eq!(a.len(), 30);
/// ```
pub fn random_circuit(num_qubits: usize, num_gates: usize, seed: u64) -> Circuit {
    assert!(num_qubits >= 2, "random circuits need at least two qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(num_qubits);
    for _ in 0..num_gates {
        c.push(random_gate(num_qubits, &mut rng)).expect("operands in range");
    }
    c
}

/// A random circuit biased toward cross-node gates under a block partition:
/// returns the circuit together with the partition used, ready for
/// end-to-end compilation tests.
///
/// # Panics
///
/// Panics if the register cannot be spread over `num_nodes` nodes.
pub fn random_distributed_circuit(
    num_qubits: usize,
    num_nodes: usize,
    num_gates: usize,
    seed: u64,
) -> (Circuit, Partition) {
    let partition = Partition::block(num_qubits, num_nodes).expect("valid node count");
    let circuit = random_circuit(num_qubits, num_gates, seed);
    (circuit, partition)
}

fn random_gate(num_qubits: usize, rng: &mut StdRng) -> Gate {
    let q = |i: usize| QubitId::new(i);
    let a = rng.random_range(0..num_qubits);
    let choice = rng.random_range(0..12u32);
    if choice < 5 {
        // Single-qubit gate.
        let theta = rng.random_range(0.0..std::f64::consts::TAU);
        match choice {
            0 => Gate::h(q(a)),
            1 => Gate::t(q(a)),
            2 => Gate::rz(theta, q(a)),
            3 => Gate::rx(theta, q(a)),
            _ => Gate::x(q(a)),
        }
    } else {
        let mut b = rng.random_range(0..num_qubits - 1);
        if b >= a {
            b += 1;
        }
        let theta = rng.random_range(0.0..std::f64::consts::TAU);
        match choice {
            5..=7 => Gate::cx(q(a), q(b)),
            8 => Gate::cz(q(a), q(b)),
            9 => Gate::crz(theta, q(a), q(b)),
            10 => Gate::rzz(theta, q(a), q(b)),
            _ => Gate::cp(theta, q(a), q(b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let a = random_circuit(5, 100, 42);
        assert_eq!(a.len(), 100);
        assert_eq!(a, random_circuit(5, 100, 42));
        assert_ne!(a, random_circuit(5, 100, 43));
    }

    #[test]
    fn distributed_variant_bundles_partition() {
        let (c, p) = random_distributed_circuit(6, 3, 50, 7);
        assert_eq!(c.num_qubits(), 6);
        assert_eq!(p.num_nodes(), 3);
        assert!(c.gates().iter().any(|g| p.is_remote(g)), "expect remote gates");
    }

    #[test]
    fn gates_are_valid_for_register() {
        let c = random_circuit(3, 500, 9);
        for g in c.gates() {
            for qb in g.qubits() {
                assert!(qb.index() < 3);
            }
        }
    }
}
