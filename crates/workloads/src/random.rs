//! Random circuit generation for property-based testing.

use dqc_circuit::{Circuit, Gate, Partition, QubitId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A reproducible random circuit mixing single-qubit gates (including
/// non-Clifford rotations) and two-qubit gates from the full IR alphabet.
///
/// Intended for property tests: small registers, arbitrary structure, and
/// deterministic from `(num_qubits, num_gates, seed)`.
///
/// # Panics
///
/// Panics if `num_qubits < 2`.
///
/// ```
/// use dqc_workloads::random_circuit;
/// let a = random_circuit(4, 30, 1);
/// let b = random_circuit(4, 30, 1);
/// assert_eq!(a, b);
/// assert_eq!(a.len(), 30);
/// ```
pub fn random_circuit(num_qubits: usize, num_gates: usize, seed: u64) -> Circuit {
    assert!(num_qubits >= 2, "random circuits need at least two qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(num_qubits);
    for _ in 0..num_gates {
        c.push(random_gate(num_qubits, &mut rng)).expect("operands in range");
    }
    c
}

/// A random circuit biased toward cross-node gates under a block partition:
/// returns the circuit together with the partition used, ready for
/// end-to-end compilation tests.
///
/// # Panics
///
/// Panics if the register cannot be spread over `num_nodes` nodes.
pub fn random_distributed_circuit(
    num_qubits: usize,
    num_nodes: usize,
    num_gates: usize,
    seed: u64,
) -> (Circuit, Partition) {
    let partition = Partition::block(num_qubits, num_nodes).expect("valid node count");
    let circuit = random_circuit(num_qubits, num_gates, seed);
    (circuit, partition)
}

/// A large random circuit whose interaction graph is *sparse* with a
/// power-law degree distribution: a few hub qubits touch many partners,
/// most qubits touch a handful. This is the shape the placement-scale
/// benches need — dense `random_circuit` registers at 1024+ qubits give
/// every pair weight and drown the sparse-graph machinery in an O(n²)
/// edge set that real programs don't have.
///
/// The interaction topology is grown by preferential attachment
/// (Barabási–Albert, 4 attachments per qubit): each qubit joins the graph
/// by linking to 4 distinct earlier qubits drawn proportionally to their
/// current degree, yielding `P(degree) ∝ degree⁻³` with hub degrees around
/// `4·√n` — heavy-tailed, but never the near-clique rows a rank-weighted
/// endpoint draw produces. Gates then sample edges uniformly, so heavily
/// connected pairs accumulate weight. Everything is exact integer
/// arithmetic over a seeded generator: deterministic from
/// `(num_qubits, num_gates, seed)` on every platform. Roughly a quarter of
/// the gates are single-qubit rotations; the rest are CXs along edges.
///
/// # Panics
///
/// Panics if `num_qubits < 2`.
///
/// ```
/// use dqc_workloads::large_sparse_circuit;
/// let a = large_sparse_circuit(64, 400, 7);
/// assert_eq!(a, large_sparse_circuit(64, 400, 7));
/// assert_eq!(a.len(), 400);
/// ```
pub fn large_sparse_circuit(num_qubits: usize, num_gates: usize, seed: u64) -> Circuit {
    assert!(num_qubits >= 2, "sparse circuits need at least two qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let m = 4.min(num_qubits - 1);

    // Grow the scale-free interaction topology: a seed clique on the first
    // m+1 labels, then each new label attaches to m distinct predecessors
    // sampled uniformly from the running endpoint list — i.e. proportional
    // to current degree, the preferential-attachment rule.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut endpoints: Vec<u32> = Vec::new();
    let seed_size = m + 1;
    for i in 0..seed_size as u32 {
        for j in i + 1..seed_size as u32 {
            edges.push((i, j));
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    let mut targets: Vec<u32> = Vec::with_capacity(m);
    for v in seed_size as u32..num_qubits as u32 {
        targets.clear();
        while targets.len() < m {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            edges.push((t, v));
            endpoints.push(t);
            endpoints.push(v);
        }
    }

    // Relabel through a random permutation (Fisher–Yates) so hubs land
    // anywhere in the register instead of clustering at low indices, which
    // would hand the block partitioner a pre-solved instance.
    let mut perm: Vec<u32> = (0..num_qubits as u32).collect();
    for i in (1..num_qubits).rev() {
        let j = rng.random_range(0..i + 1);
        perm.swap(i, j);
    }

    let q = |i: u32| QubitId::new(perm[i as usize] as usize);
    let mut c = Circuit::new(num_qubits);
    for g in 0..num_gates {
        if g % 4 == 0 {
            let a = endpoints[rng.random_range(0..endpoints.len())];
            let theta = rng.random_range(0.0..std::f64::consts::TAU);
            c.push(Gate::rz(theta, q(a))).expect("operand in range");
        } else {
            let (a, b) = edges[rng.random_range(0..edges.len())];
            c.push(Gate::cx(q(a), q(b))).expect("operands in range");
        }
    }
    c
}

fn random_gate(num_qubits: usize, rng: &mut StdRng) -> Gate {
    let q = |i: usize| QubitId::new(i);
    let a = rng.random_range(0..num_qubits);
    let choice = rng.random_range(0..12u32);
    if choice < 5 {
        // Single-qubit gate.
        let theta = rng.random_range(0.0..std::f64::consts::TAU);
        match choice {
            0 => Gate::h(q(a)),
            1 => Gate::t(q(a)),
            2 => Gate::rz(theta, q(a)),
            3 => Gate::rx(theta, q(a)),
            _ => Gate::x(q(a)),
        }
    } else {
        let mut b = rng.random_range(0..num_qubits - 1);
        if b >= a {
            b += 1;
        }
        let theta = rng.random_range(0.0..std::f64::consts::TAU);
        match choice {
            5..=7 => Gate::cx(q(a), q(b)),
            8 => Gate::cz(q(a), q(b)),
            9 => Gate::crz(theta, q(a), q(b)),
            10 => Gate::rzz(theta, q(a), q(b)),
            _ => Gate::cp(theta, q(a), q(b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let a = random_circuit(5, 100, 42);
        assert_eq!(a.len(), 100);
        assert_eq!(a, random_circuit(5, 100, 42));
        assert_ne!(a, random_circuit(5, 100, 43));
    }

    #[test]
    fn distributed_variant_bundles_partition() {
        let (c, p) = random_distributed_circuit(6, 3, 50, 7);
        assert_eq!(c.num_qubits(), 6);
        assert_eq!(p.num_nodes(), 3);
        assert!(c.gates().iter().any(|g| p.is_remote(g)), "expect remote gates");
    }

    #[test]
    fn large_sparse_is_deterministic_and_sparse() {
        let n = 256;
        let c = large_sparse_circuit(n, 2000, 11);
        assert_eq!(c, large_sparse_circuit(n, 2000, 11));
        assert_ne!(c, large_sparse_circuit(n, 2000, 12));
        assert_eq!(c.len(), 2000);
        // Count distinct interacting pairs: a power-law profile stays far
        // below the n·(n-1)/2 dense ceiling even with thousands of gates.
        let mut pairs = std::collections::HashSet::new();
        let mut degree = vec![0usize; n];
        for g in c.gates() {
            let qs: Vec<usize> = g.qubits().iter().map(|q| q.index()).collect();
            if qs.len() == 2 {
                pairs.insert((qs[0].min(qs[1]), qs[0].max(qs[1])));
                degree[qs[0]] += 1;
                degree[qs[1]] += 1;
            }
        }
        assert!(pairs.len() < n * (n - 1) / 20, "graph should be sparse: {}", pairs.len());
        // Skewed degrees: the busiest qubit sees far more gates than the
        // median qubit (power-law head vs body).
        degree.sort_unstable();
        assert!(
            degree[n - 1] >= 8 * degree[n / 2].max(1),
            "max {} median {}",
            degree[n - 1],
            degree[n / 2]
        );
    }

    #[test]
    fn gates_are_valid_for_register() {
        let c = random_circuit(3, 500, 9);
        for g in c.gates() {
            for qb in g.qubits() {
                assert!(qb.index() < 3);
            }
        }
    }
}
