//! The paper's benchmark suite (Table 2) as data.

use std::fmt;

use dqc_circuit::Circuit;

use crate::{bv, mctr, qaoa_maxcut, qft, rca, uccsd};

/// The six benchmark families of paper Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Multi-controlled gate (building block).
    Mctr,
    /// Ripple-carry adder (building block).
    Rca,
    /// Quantum Fourier transform (building block).
    Qft,
    /// Bernstein–Vazirani (application).
    Bv,
    /// QAOA max-cut (application).
    Qaoa,
    /// UCCSD ansatz (application).
    Uccsd,
}

impl Workload {
    /// Paper acronym.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Mctr => "MCTR",
            Workload::Rca => "RCA",
            Workload::Qft => "QFT",
            Workload::Bv => "BV",
            Workload::Qaoa => "QAOA",
            Workload::Uccsd => "UCCSD",
        }
    }

    /// Whether the paper files this under “building blocks” (vs
    /// “real-world applications”).
    pub fn is_building_block(self) -> bool {
        matches!(self, Workload::Mctr | Workload::Rca | Workload::Qft)
    }

    /// All six workloads, in the paper's table order.
    pub fn all() -> [Workload; 6] {
        [
            Workload::Mctr,
            Workload::Rca,
            Workload::Qft,
            Workload::Bv,
            Workload::Qaoa,
            Workload::Uccsd,
        ]
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One row of paper Table 2: a workload at a given register size spread
/// over a given node count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BenchConfig {
    /// Benchmark family.
    pub workload: Workload,
    /// Total logical qubits.
    pub num_qubits: usize,
    /// Number of quantum nodes.
    pub num_nodes: usize,
}

impl BenchConfig {
    /// Builds a config.
    pub fn new(workload: Workload, num_qubits: usize, num_nodes: usize) -> Self {
        BenchConfig { workload, num_qubits, num_nodes }
    }

    /// Paper-style row label, e.g. `QFT-100-10`.
    pub fn label(&self) -> String {
        format!("{}-{}-{}", self.workload, self.num_qubits, self.num_nodes)
    }
}

impl fmt::Display for BenchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// The 18 rows of paper Table 2: MCTR/RCA/QFT/BV/QAOA at (100,10),
/// (200,20), (300,30) and UCCSD at (8,4), (12,6), (16,8).
pub fn table2_configs() -> Vec<BenchConfig> {
    let mut rows = Vec::new();
    for w in [Workload::Mctr, Workload::Rca, Workload::Qft, Workload::Bv, Workload::Qaoa] {
        for (q, n) in [(100, 10), (200, 20), (300, 30)] {
            rows.push(BenchConfig::new(w, q, n));
        }
    }
    for (q, n) in [(8, 4), (12, 6), (16, 8)] {
        rows.push(BenchConfig::new(Workload::Uccsd, q, n));
    }
    rows
}

/// A small fixed suite covering every Table-2 workload family at smoke
/// scale — the workload set behind `autocomm batch --suite` and the CI
/// batch smoke test. Node counts here are the generator defaults; batch
/// callers typically re-partition over their own `--nodes`.
pub fn smoke_suite() -> Vec<BenchConfig> {
    vec![
        BenchConfig::new(Workload::Mctr, 16, 4),
        BenchConfig::new(Workload::Rca, 16, 4),
        BenchConfig::new(Workload::Qft, 16, 4),
        BenchConfig::new(Workload::Bv, 16, 4),
        BenchConfig::new(Workload::Qaoa, 16, 4),
        BenchConfig::new(Workload::Uccsd, 8, 4),
    ]
}

/// Generates the circuit for a config. QAOA uses ≈ 20·n random edges with a
/// seed derived from the config so every run of the harness sees the same
/// graph.
///
/// # Panics
///
/// Propagates the generator panics for invalid sizes (see each generator's
/// documentation).
pub fn generate(config: &BenchConfig) -> Circuit {
    match config.workload {
        Workload::Mctr => mctr(config.num_qubits),
        Workload::Rca => rca(config.num_qubits),
        Workload::Qft => qft(config.num_qubits),
        Workload::Bv => bv(config.num_qubits),
        Workload::Qaoa => {
            // ≈ 20·n edges as in the paper, clamped to half the simple-graph
            // maximum so scaled-down (quick) registers stay valid.
            let n = config.num_qubits;
            let edges = (20 * n).min(n * (n - 1) / 4);
            let seed = (n * 31 + config.num_nodes) as u64;
            qaoa_maxcut(n, edges, seed)
        }
        Workload::Uccsd => uccsd(config.num_qubits),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_eighteen_rows() {
        let rows = table2_configs();
        assert_eq!(rows.len(), 18);
        assert_eq!(rows[0].label(), "MCTR-100-10");
        assert_eq!(rows[17].label(), "UCCSD-16-8");
        // Qubits evenly divisible by nodes in every row.
        for r in &rows {
            assert_eq!(r.num_qubits % r.num_nodes, 0, "{r}");
        }
    }

    #[test]
    fn generate_matches_register_size() {
        for r in table2_configs() {
            // Keep the test quick: skip the largest configs.
            if r.num_qubits > 100 {
                continue;
            }
            let c = generate(&r);
            assert_eq!(c.num_qubits(), r.num_qubits, "{r}");
            assert!(!c.is_empty(), "{r}");
        }
    }

    #[test]
    fn workload_classification() {
        assert!(Workload::Qft.is_building_block());
        assert!(!Workload::Qaoa.is_building_block());
        assert_eq!(Workload::all().len(), 6);
    }
}
