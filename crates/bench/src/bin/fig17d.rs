//! Regenerates paper Fig. 17(d): improv. factor vs #qubit for MCTR at
//! 10 / 20 / 50 nodes.

use dqc_bench::{print_table, quick_requested, run_config};
use dqc_workloads::{BenchConfig, Workload};

fn main() {
    let quick = quick_requested();
    let qubit_range: Vec<usize> =
        if quick { vec![100, 200] } else { vec![100, 200, 300, 400, 500, 600] };
    let node_counts: Vec<usize> = if quick { vec![10, 20] } else { vec![10, 20, 50] };

    let mut rows = Vec::new();
    for &q in &qubit_range {
        let mut cells = vec![q.to_string()];
        for &n in &node_counts {
            if q % n != 0 || q / n < 2 {
                cells.push("-".into());
                continue;
            }
            let row = run_config(&BenchConfig::new(Workload::Mctr, q, n));
            cells.push(format!("{:.2}", row.improv_factor()));
        }
        rows.push(cells);
    }
    let header: Vec<String> = std::iter::once("#qubit".to_string())
        .chain(node_counts.iter().map(|n| format!("{n} nodes")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table("Fig. 17(d): improv. factor vs #qubit (MCTR)", &header_refs, &rows);
    println!("\nPaper trend: factors converge as #qubit/#node grows.");
}
