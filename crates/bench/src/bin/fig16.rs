//! Regenerates paper Fig. 16: AutoComm vs the GP-TP compiler, averaged per
//! benchmark family.

use std::collections::BTreeMap;

use dqc_bench::{configs, paper, print_table, quick_requested, run_config};

fn main() {
    let quick = quick_requested();
    let mut per_family: BTreeMap<&'static str, (f64, f64, usize)> = BTreeMap::new();
    for config in configs(quick) {
        let row = run_config(&config);
        let entry = per_family.entry(config.workload.name()).or_insert((0.0, 0.0, 0));
        entry.0 += row.gp_improv_factor();
        entry.1 += row.gp_lat_dec_factor();
        entry.2 += 1;
    }
    let mut rows = Vec::new();
    for (name, paper_improv, paper_lat) in paper::FIG16 {
        if let Some((i, l, n)) = per_family.get(name) {
            rows.push(vec![
                name.to_string(),
                format!("{:.2}", i / *n as f64),
                format!("{:.2}", l / *n as f64),
                format!("{paper_improv:.1}"),
                format!("{paper_lat:.1}"),
            ]);
        }
    }
    print_table(
        "Fig. 16: relative performance vs GP-TP (averaged per family)",
        &["family", "improv", "LAT-DEC", "paper improv", "paper LAT-DEC"],
        &rows,
    );
}
