//! Regenerates paper Fig. 17(c): the scheduling ablation — plain greedy
//! latency divided by burst-greedy latency, on MCTR and QFT.

use autocomm::AutoComm;
use dqc_baselines::ablation::compile_plain_greedy;
use dqc_bench::{oee_mapping, paper, print_table, quick_requested};
use dqc_workloads::{generate, BenchConfig, Workload};

fn main() {
    let sizes: Vec<(usize, usize)> = if quick_requested() {
        vec![(20, 2), (30, 3), (40, 4)]
    } else {
        vec![(100, 10), (200, 20), (300, 30)]
    };
    let mut rows = Vec::new();
    for workload in [Workload::Mctr, Workload::Qft] {
        for (i, &(q, n)) in sizes.iter().enumerate() {
            let config = BenchConfig::new(workload, q, n);
            let circuit = generate(&config);
            let partition = oee_mapping(&circuit, n);
            let full = AutoComm::new().compile(&circuit, &partition).unwrap();
            let ablated = compile_plain_greedy(&circuit, &partition).unwrap();
            let ratio = ablated.schedule.makespan / full.schedule.makespan.max(1e-9);
            let published =
                paper::FIG17C.iter().find(|(w, _)| *w == workload.name()).map(|(_, v)| v[i.min(2)]);
            rows.push(vec![
                config.label(),
                format!("{:.0}", ablated.schedule.makespan),
                format!("{:.0}", full.schedule.makespan),
                format!("{ratio:.2}"),
                published.map_or("-".into(), |p| format!("{p:.2}")),
            ]);
        }
    }
    print_table(
        "Fig. 17(c): scheduling ablation (Greedy / Burst-greedy latency)",
        &["name", "greedy", "burst-greedy", "ratio", "paper ratio"],
        &rows,
    );
}
