//! Front-end scale regression gate: the deterministic, asserting evidence
//! for the flattened front end (chunked parallel QASM parsing, par-fanned
//! orient/unroll, and streaming aggregation that never materializes the
//! conflict DAG). The deterministic stdout of this binary is diffed by CI
//! against `crates/bench/baselines/frontend_scale.json` (recorded from a
//! `--quick` run, which is what the CI job executes).
//!
//! In-binary rails, asserted on every run:
//!
//! * **Streaming aggregation** — on a 100k-gate distributed circuit the
//!   default streaming conflict filter must aggregate ≥ 1.5× faster than
//!   the materialized-DAG reference rail
//!   ([`AggregateOptions::materialized_dag`], whose cost honestly includes
//!   the CSR build it forces) and produce a bit-identical program;
//! * **Bounded working set** — the streaming rail's peak tracked-entry
//!   count must respect its `O(wires)` bound (2 entries per qubit/classical
//!   wire, independent of stream length), and a full [`ConflictScan`] sweep
//!   must respect its `O(wires × window)` ring-slot bound — neither may
//!   scale with the gate count;
//! * **Parallel parse** — parsing 1M gates of generated QASM through the
//!   chunked `from_qasm` must be ≥ 2× faster than the sequential reference
//!   rail ([`from_qasm_sequential`]) and return a bit-identical circuit
//!   (the ratio needs a second core; identity is asserted regardless);
//! * **Fanned orient/unroll** — the par-mapped [`unroll_circuit`] and
//!   [`orient_symmetric_gates`] paths must match their sequential rails
//!   gate for gate.
//!
//! Timings go to stderr (they vary per machine); stdout carries only
//! deterministic structure counts and memory counters.

use std::sync::Arc;
use std::time::Instant;

use autocomm::{
    aggregate_ir_with_stats, orient_symmetric_gates, orient_symmetric_gates_sequential,
    AggregateOptions, CommIr, DAG_WINDOW,
};
use dqc_circuit::{
    from_qasm, from_qasm_sequential, to_qasm, unroll_circuit, unroll_circuit_sequential, Circuit,
    ConflictScan, Gate, Partition, QubitId,
};
use dqc_workloads::random_distributed_circuit;

/// A diagonal-heavy distributed circuit (QAOA-like): long runs of mutually
/// commuting `rz`/`rzz` gates fenced by an `h` layer every `fence` gates,
/// over a block partition so most `rzz` interactions are remote. Long
/// commuting runs are exactly where materializing the conflict DAG is
/// expensive (the windowed scan walks the full window per wire before
/// giving up) and where the streaming per-wire filter costs nothing extra —
/// the workload the streaming-vs-materialized ratio is honest on.
fn diagonal_remote(num_qubits: usize, num_gates: usize, fence: usize) -> (Circuit, Partition) {
    let q = |i: usize| QubitId::new(i);
    let mut circuit = Circuit::new(num_qubits);
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut pushed = 0usize;
    while pushed < num_gates {
        if pushed > 0 && pushed.is_multiple_of(fence) {
            for i in 0..num_qubits {
                circuit.push(Gate::h(q(i))).unwrap();
            }
            pushed += num_qubits;
            continue;
        }
        let r = rng();
        let a = (r as usize >> 8) % num_qubits;
        let theta = 0.1 + (r % 628) as f64 / 100.0;
        if r % 4 == 0 {
            let b = (a + 1 + (r as usize >> 32) % (num_qubits - 1)) % num_qubits;
            circuit.push(Gate::rzz(theta, q(a), q(b))).unwrap();
        } else {
            circuit.push(Gate::rz(theta, q(a))).unwrap();
        }
        pushed += 1;
    }
    let partition = Partition::block(num_qubits, 4).expect("4-node block partition");
    (circuit, partition)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn timed<T>(rounds: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let ms: Vec<f64> = (0..rounds)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    (median(ms), f())
}

fn main() {
    let quick = dqc_bench::quick_requested();
    // --quick shrinks every input ~10× (same code paths, CI-smoke speed)
    // and relaxes the ratio rails, which need 100k-gate aggregations and
    // 1M-gate parses for the filter and chunking costs to dominate noise.
    let scale = if quick { 10_000 } else { 100_000 };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // ── Rail 1: streaming vs materialized-DAG aggregation ──────────────
    // The shared workload: a 100k-gate diagonal-heavy circuit over a
    // 4-node block partition — long mutually-commuting runs where the
    // windowed DAG build pays its full window per wire per gate. The IR is
    // built once; each timed round clones it un-forced so the materialized
    // rail honestly pays the CSR build it forces.
    let (circuit, partition) = diagonal_remote(8, scale, scale / 4);
    let base_ir = CommIr::build(&circuit, &partition);
    let streaming_opts = AggregateOptions::default();
    let materialized_opts = AggregateOptions { materialized_dag: true, ..streaming_opts };
    let (streaming_ms, (streaming_prog, streaming_stats)) =
        timed(3, || aggregate_ir_with_stats(Arc::new(base_ir.clone()), streaming_opts));
    let (materialized_ms, (materialized_prog, materialized_stats)) =
        timed(3, || aggregate_ir_with_stats(Arc::new(base_ir.clone()), materialized_opts));
    assert_eq!(
        streaming_prog, materialized_prog,
        "streaming aggregation drifted from the materialized-DAG reference"
    );
    let agg_speedup = materialized_ms / streaming_ms;
    eprintln!(
        "aggregation ({} gates): materialized dag {materialized_ms:.1} ms, streaming \
         {streaming_ms:.1} ms ({agg_speedup:.2}x)",
        circuit.len()
    );
    if !quick {
        assert!(
            agg_speedup >= 1.5,
            "streaming aggregation must be >= 1.5x the materialized-DAG rail, got \
             {agg_speedup:.2}x"
        );
    }

    // ── Rail 2: working sets stay O(wires), not O(gates) ───────────────
    assert!(
        streaming_stats.peak_tracked_entries <= streaming_stats.tracked_entry_bound,
        "streaming filter tracked {} entries, bound {}",
        streaming_stats.peak_tracked_entries,
        streaming_stats.tracked_entry_bound
    );
    assert!(!streaming_stats.used_materialized_dag);
    assert!(materialized_stats.used_materialized_dag);
    assert_eq!(
        materialized_stats.peak_tracked_entries, 0,
        "the materialized rail must not touch the streaming wire maps"
    );
    assert!(
        streaming_stats.tracked_entry_bound < circuit.len(),
        "the tracked-entry bound must be O(wires), far below the gate count"
    );
    // The default compile path must never have forced the CSR arrays…
    let streaming_edges = {
        let ir = Arc::new(base_ir.clone());
        let (_, _) = aggregate_ir_with_stats(Arc::clone(&ir), streaming_opts);
        ir.dag_edges_if_built()
    };
    assert_eq!(streaming_edges, None, "streaming aggregation materialized the conflict DAG");
    // …while a full ConflictScan sweep stays within its ring-slot bound.
    let mut scan = ConflictScan::new(
        base_ir.table(),
        base_ir.stream(),
        circuit.num_qubits(),
        circuit.num_cbits(),
        DAG_WINDOW,
    );
    let mut scanned_edges = 0usize;
    while let Some(set) = scan.advance() {
        scanned_edges += set.len();
    }
    assert!(
        scan.peak_live_slots() <= scan.slot_bound(),
        "conflict scan held {} live slots, bound {}",
        scan.peak_live_slots(),
        scan.slot_bound()
    );
    assert!(
        scan.slot_bound() < circuit.len(),
        "the ring-slot bound must be O(wires x window), far below the gate count"
    );
    // The streamed predecessor sets are exactly the materialized edges.
    let dag_edges = {
        let ir = base_ir.clone();
        ir.dag().edge_count()
    };
    assert_eq!(scanned_edges, dag_edges, "conflict scan drifted from the materialized build");

    // ── Rail 3: chunked parallel parse vs sequential reference ─────────
    let (parse_circuit, _) = random_distributed_circuit(32, 4, scale * 10, 7);
    let qasm = to_qasm(&parse_circuit);
    let (parallel_ms, parsed_parallel) = timed(3, || from_qasm(&qasm).expect("generated QASM"));
    let (sequential_ms, parsed_sequential) =
        timed(3, || from_qasm_sequential(&qasm).expect("generated QASM"));
    assert_eq!(
        parsed_parallel, parsed_sequential,
        "chunked parallel parse drifted from the sequential reference"
    );
    assert_eq!(parsed_parallel, parse_circuit, "QASM round trip drifted");
    let parse_speedup = sequential_ms / parallel_ms;
    eprintln!(
        "parse ({} gates, {} MiB): sequential {sequential_ms:.1} ms, chunked {parallel_ms:.1} \
         ms ({parse_speedup:.2}x, {cores} core(s))",
        parse_circuit.len(),
        qasm.len() >> 20
    );
    // The ratio rail needs a second core — on one core the chunk workers
    // time-slice and the speedup is physically capped at 1.0x (identity
    // above is still asserted).
    if !quick && cores >= 2 {
        assert!(
            parse_speedup >= 2.0,
            "chunked parse must be >= 2x the sequential reference, got {parse_speedup:.2}x"
        );
    }

    // ── Rail 4: fanned orient/unroll match their sequential rails ──────
    let (unrolled_ms, unrolled) =
        timed(1, || unroll_circuit(&parse_circuit).expect("workload unrolls"));
    let t = Instant::now();
    let unrolled_seq = unroll_circuit_sequential(&parse_circuit).expect("workload unrolls");
    let unrolled_seq_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(unrolled, unrolled_seq, "fanned unroll drifted from the sequential rail");
    eprintln!(
        "unroll ({} gates -> {}): sequential {unrolled_seq_ms:.1} ms, fanned {unrolled_ms:.1} ms",
        parse_circuit.len(),
        unrolled.len()
    );
    let oriented = orient_symmetric_gates(&circuit, &partition);
    let oriented_seq = orient_symmetric_gates_sequential(&circuit, &partition);
    assert_eq!(oriented, oriented_seq, "fanned orient drifted from the sequential rail");

    // Deterministic JSON, diffed against the recorded baseline by CI
    // (which runs this binary under --quick; the baseline records the
    // --quick stdout).
    println!("{{");
    println!(
        "  \"workload\": {{\"gates\": {}, \"qubits\": {}, \"nodes\": 4, \"window\": {DAG_WINDOW}}},",
        circuit.len(),
        circuit.num_qubits()
    );
    println!(
        "  \"aggregation\": {{\"blocks\": {}, \"items\": {}, \"streaming_matches_materialized\": \
         true, \"streaming_leaves_dag_lazy\": true}},",
        streaming_prog.block_count(),
        streaming_prog.items().len()
    );
    println!(
        "  \"working_set\": {{\"peak_tracked_entries\": {}, \"tracked_entry_bound\": {}, \
         \"peak_live_ring_slots\": {}, \"ring_slot_bound\": {}, \"materialized_dag_edges\": \
         {}}},",
        streaming_stats.peak_tracked_entries,
        streaming_stats.tracked_entry_bound,
        scan.peak_live_slots(),
        scan.slot_bound(),
        dag_edges
    );
    println!(
        "  \"memory\": {{\"table_arena_bytes\": {}, \"unique_gates\": {}, \"stream_len\": {}}},",
        base_ir.table().arena_bytes(),
        base_ir.table().len(),
        base_ir.stream().len()
    );
    println!(
        "  \"parse\": {{\"gates\": {}, \"chunked_matches_sequential\": true, \
         \"round_trips\": true}},",
        parse_circuit.len()
    );
    println!(
        "  \"fanned_rails\": {{\"unrolled_gates\": {}, \"unroll_matches_sequential\": true, \
         \"orient_matches_sequential\": true}}",
        unrolled.len()
    );
    println!("}}");
    eprintln!(
        "frontend scale gate OK: streaming aggregation {agg_speedup:.2}x, chunked parse \
         {parse_speedup:.2}x, peak tracked {}/{} entries, peak rings {}/{} slots",
        streaming_stats.peak_tracked_entries,
        streaming_stats.tracked_entry_bound,
        scan.peak_live_slots(),
        scan.slot_bound()
    );
}
