//! IR-scale regression gate: the deterministic, asserting companion of the
//! `ir_scale` criterion bench and the acceptance evidence for the
//! 100k–1M-gate compile re-platform (arena gate tables, windowed DAG
//! build, parallel assign/lower, incremental recompilation). The recorded
//! measurements live in `crates/bench/baselines/ir_1m_baseline.json`; the
//! deterministic stdout of this binary is diffed by CI against
//! `crates/bench/baselines/ir_scale_gate.json`.
//!
//! In-binary rails, asserted on every run:
//!
//! * **Windowed DAG build** — on a 100k-gate diagonal-heavy circuit
//!   (commuting runs thousands of gates long) the bounded-window
//!   commutation scan is ≥ 10× faster than the unbounded scan it replaced;
//! * **Incremental recompilation** — re-assigning a 100k-gate program
//!   after a two-node placement swap (`assign_incremental` + metrics,
//!   what a refinement round costs) is ≥ 5× cheaper than the full
//!   round-0 pipeline, and bit-identical to a full re-assign;
//! * **1M-gate completion** — a full 1M-gate compile finishes within a
//!   generous wall-clock budget (the absolute-threshold rail).
//!
//! Timings go to stderr (they vary per machine); stdout carries only
//! deterministic structure counts and metrics.

use std::time::Instant;

use autocomm::{assign_incremental, assign_on, AutoComm, CommMetrics, Placement};
use dqc_circuit::{Circuit, DependencyDag, Gate, QubitId};
use dqc_hardware::{HardwareSpec, NetworkTopology};
use dqc_workloads::random_distributed_circuit;

/// The bounded commutation window the pipeline builds DAGs with
/// (`autocomm::DAG_WINDOW`).
const WINDOW: usize = autocomm::DAG_WINDOW;

/// A 100k-gate diagonal-heavy circuit (QAOA-like): long runs of mutually
/// commuting `rz`/`rzz` gates, fenced by an `h` layer every `fence` gates
/// so the unbounded commutation scan stays polynomially bounded (runs of
/// ~3k gates per wire) while still dwarfing the 64-gate window.
fn diagonal_heavy(num_qubits: usize, num_gates: usize, fence: usize) -> Circuit {
    let q = |i: usize| QubitId::new(i);
    let mut circuit = Circuit::new(num_qubits);
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut pushed = 0usize;
    while pushed < num_gates {
        if pushed > 0 && pushed.is_multiple_of(fence) {
            for i in 0..num_qubits {
                circuit.push(Gate::h(q(i))).unwrap();
            }
            pushed += num_qubits;
            continue;
        }
        let r = rng();
        let a = (r as usize >> 8) % num_qubits;
        let theta = 0.1 + (r % 628) as f64 / 100.0;
        if r % 4 == 0 {
            let b = (a + 1 + (r as usize >> 32) % (num_qubits - 1)) % num_qubits;
            circuit.push(Gate::rzz(theta, q(a), q(b))).unwrap();
        } else {
            circuit.push(Gate::rz(theta, q(a))).unwrap();
        }
        pushed += 1;
    }
    circuit
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let quick = dqc_bench::quick_requested();
    // --quick shrinks every input ~10× (same code paths, CI-smoke speed)
    // and relaxes the ratio rails, which need long commuting runs and big
    // compiles to be meaningful.
    let scale = if quick { 10_000 } else { 100_000 };

    // ── Rail 1: windowed vs unbounded commutation-aware DAG build ──────
    let dag_circuit = diagonal_heavy(8, scale, scale / 4);
    let windowed_ms: Vec<f64> = (0..3)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(DependencyDag::commutation_aware_windowed(&dag_circuit, WINDOW));
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    let t = Instant::now();
    let naive_dag = DependencyDag::commutation_aware(&dag_circuit);
    let naive_ms = t.elapsed().as_secs_f64() * 1e3;
    let windowed_dag = DependencyDag::commutation_aware_windowed(&dag_circuit, WINDOW);
    let dag_speedup = naive_ms / median(windowed_ms.clone());
    eprintln!(
        "dag build ({} gates): naive {naive_ms:.1} ms, windowed {:.1} ms ({dag_speedup:.1}x)",
        dag_circuit.len(),
        median(windowed_ms)
    );
    if !quick {
        assert!(
            dag_speedup >= 10.0,
            "windowed DAG build must be >= 10x the unbounded scan, got {dag_speedup:.1}x"
        );
    }

    // ── Rail 2: incremental refinement round vs round-0 full compile ───
    let (circuit, partition) = random_distributed_circuit(64, 8, scale, 7);
    let topology = NetworkTopology::ring(8).unwrap();
    let hw = HardwareSpec::for_partition(&partition)
        .with_topology(topology.clone())
        .expect("ring is valid for 8 nodes");
    let t = Instant::now();
    let round0 = AutoComm::new().compile_on(&circuit, &partition, &hw).expect("100k compile");
    let round0_ms = t.elapsed().as_secs_f64() * 1e3;
    // A refinement round that swaps two physical nodes: what the placement
    // driver pays per accepted iteration.
    let mut node_map = round0.placement.node_map().to_vec();
    node_map.swap(1, 5);
    let moved =
        Placement::new(round0.placement.partition().clone(), node_map).expect("valid node map");
    let round_ms: Vec<f64> = (0..3)
        .map(|_| {
            let t = Instant::now();
            let inc =
                assign_incremental(&round0.assigned, &round0.placement, &moved, &topology, true);
            std::hint::black_box(CommMetrics::of(&inc));
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    let incremental =
        assign_incremental(&round0.assigned, &round0.placement, &moved, &topology, true);
    let inc_metrics = CommMetrics::of(&incremental);
    // Bit-identity rail: the reuse path must equal a full re-assign.
    let full = assign_on(&round0.aggregated, &moved, &topology);
    assert_eq!(
        inc_metrics,
        CommMetrics::of(&full),
        "incremental re-assign drifted from the full re-assign"
    );
    let round_speedup = round0_ms / median(round_ms.clone());
    eprintln!(
        "refinement round ({} gates): round 0 {round0_ms:.1} ms, incremental {:.2} ms \
         ({round_speedup:.1}x)",
        circuit.len(),
        median(round_ms.clone())
    );
    if !quick {
        assert!(
            round_speedup >= 5.0,
            "an incremental round must be >= 5x cheaper than round 0, got {round_speedup:.1}x"
        );
        assert!(round0_ms < 30_000.0, "100k-gate compile took {round0_ms:.0} ms (budget 30 s)");
    }

    // ── Rail 3: the 1M-gate compile completes ──────────────────────────
    let (big, big_partition) = random_distributed_circuit(32, 4, scale * 10, 7);
    let t = Instant::now();
    let big_result = AutoComm::new().compile(&big, &big_partition).expect("1M compile");
    let big_ms = t.elapsed().as_secs_f64() * 1e3;
    eprintln!("{}-gate compile: {big_ms:.0} ms", big.len());
    if !quick {
        assert!(big_ms < 120_000.0, "1M-gate compile took {big_ms:.0} ms (budget 120 s)");
    }

    // Deterministic JSON, diffed against the recorded baseline by CI
    // (full runs only — --quick shrinks the inputs).
    let m = &inc_metrics;
    let b = &big_result.metrics;
    println!("{{");
    println!("  \"window\": {WINDOW},");
    println!(
        "  \"dag\": {{\"gates\": {}, \"naive_edges\": {}, \"windowed_edges\": {}}},",
        dag_circuit.len(),
        naive_dag.edge_count(),
        windowed_dag.edge_count()
    );
    println!(
        "  \"incremental\": {{\"gates\": {}, \"total_comms\": {}, \"tp_comms\": {}, \
         \"epr_cost\": {}, \"matches_full_reassign\": true}},",
        circuit.len(),
        m.total_comms,
        m.tp_comms,
        m.total_epr_cost
    );
    println!(
        "  \"one_million\": {{\"gates\": {}, \"total_comms\": {}, \"tp_comms\": {}, \
         \"epr_cost\": {}}}",
        big.len(),
        b.total_comms,
        b.tp_comms,
        b.total_epr_cost
    );
    println!("}}");
    eprintln!(
        "ir scale gate OK: windowed dag {dag_speedup:.1}x, incremental round {round_speedup:.1}x, \
         1M compile {big_ms:.0} ms"
    );
}
