//! Future-work experiment (paper §6, “extending to general collective
//! communication”): with more than two communication qubits per node, more
//! bursts overlap. Sweeps the per-node communication-qubit budget and
//! reports latency and estimated fidelity for AutoComm-compiled programs.

use autocomm::AutoComm;
use dqc_bench::{oee_mapping, print_table, quick_requested};
use dqc_circuit::{unroll_circuit, CircuitStats};
use dqc_hardware::{FidelityModel, HardwareSpec};
use dqc_workloads::{generate, BenchConfig, Workload};

fn main() {
    let (q, n) = if quick_requested() { (30, 3) } else { (100, 10) };
    let budgets = [2usize, 3, 4, 6, 8, 12];
    let model = FidelityModel::default();

    let mut rows = Vec::new();
    for workload in [Workload::Qft, Workload::Qaoa, Workload::Rca] {
        let config = BenchConfig::new(workload, q, n);
        let circuit = generate(&config);
        let partition = oee_mapping(&circuit, n);
        let stats = CircuitStats::of(&unroll_circuit(&circuit).expect("unrolls"), Some(&partition));
        let mut cells = vec![config.label()];
        let mut base_latency = None;
        for &budget in &budgets {
            let hw = HardwareSpec::for_partition(&partition)
                .with_comm_qubits(budget)
                .expect("positive budget");
            let r = AutoComm::new().compile_on(&circuit, &partition, &hw).expect("compiles");
            let base = *base_latency.get_or_insert(r.schedule.makespan);
            let inputs = FidelityModel::inputs_for(
                stats.num_1q,
                stats.num_2q,
                r.schedule.epr_pairs,
                circuit.num_qubits(),
                r.schedule.makespan,
                hw.latency(),
            );
            cells.push(format!(
                "{:.2}x/{:.2}",
                base / r.schedule.makespan,
                model.estimate(&inputs)
            ));
        }
        rows.push(cells);
    }
    let header: Vec<String> = std::iter::once("name".to_string())
        .chain(budgets.iter().map(|b| format!("{b} cq")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table(
        "§6 extension: speedup vs 2-comm-qubit baseline / est. fidelity, per budget",
        &header_refs,
        &rows,
    );
    println!("\nEach cell: (latency at 2 comm qubits ÷ latency at this budget) / fidelity.");
}
