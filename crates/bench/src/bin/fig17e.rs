//! Regenerates paper Fig. 17(e): improv. factor vs #node for MCTR at
//! 100 / 200 / 300 qubits.

use dqc_bench::{print_table, quick_requested, run_config};
use dqc_workloads::{BenchConfig, Workload};

fn main() {
    let quick = quick_requested();
    let node_range: Vec<usize> = if quick { vec![2, 10] } else { vec![2, 10, 20, 50, 100] };
    let qubit_counts: Vec<usize> = if quick { vec![100] } else { vec![100, 200, 300] };

    let mut rows = Vec::new();
    for &n in &node_range {
        let mut cells = vec![n.to_string()];
        for &q in &qubit_counts {
            if q % n != 0 || q / n < 2 {
                cells.push("-".into());
                continue;
            }
            let row = run_config(&BenchConfig::new(Workload::Mctr, q, n));
            cells.push(format!("{:.2}", row.improv_factor()));
        }
        rows.push(cells);
    }
    let header: Vec<String> = std::iter::once("#node".to_string())
        .chain(qubit_counts.iter().map(|q| format!("{q} qubits")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table("Fig. 17(e): improv. factor vs #node (MCTR)", &header_refs, &rows);
    println!("\nPaper trend: performance degrades when #qubit/#node gets small.");
}
