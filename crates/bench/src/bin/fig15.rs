//! Regenerates paper Fig. 15: Pr[one communication carries ≥ X REM-CXs]
//! per workload, plus (with `--inverse`) the §3.2 inverse-burst analysis.

use autocomm::{burst_distribution, inverse_burst_distribution};
use dqc_bench::{configs, oee_mapping, print_table, quick_requested, run_config};
use dqc_circuit::unroll_circuit;
use dqc_workloads::generate;

fn main() {
    let quick = quick_requested();
    let inverse = std::env::args().any(|a| a == "--inverse");
    let max_x = 20usize;

    let mut rows = Vec::new();
    for config in configs(quick) {
        let row = run_config(&config);
        let dist = burst_distribution(&row.metrics, max_x);
        let mut cells = vec![config.label()];
        for x in [1usize, 2, 4, 6, 8, 10, 15, 20] {
            cells.push(format!("{:.2}", dist[x - 1]));
        }
        rows.push(cells);
    }
    print_table(
        "Fig. 15: Pr[one comm carries >= X REM-CXs]",
        &["name", "X=1", "X=2", "X=4", "X=6", "X=8", "X=10", "X=15", "X=20"],
        &rows,
    );

    if inverse {
        let mut rows = Vec::new();
        for config in configs(quick) {
            if config.num_qubits > 100 {
                continue; // the analysis is illustrative; keep it fast
            }
            let circuit = generate(&config);
            let unrolled = unroll_circuit(&circuit).expect("benchmarks unroll");
            let partition = oee_mapping(&circuit, config.num_nodes);
            let dist = inverse_burst_distribution(&unrolled, &partition, 8);
            let mut cells = vec![config.label()];
            for x in [2usize, 4, 6, 8] {
                cells.push(format!("{:.2}", dist[x - 1]));
            }
            rows.push(cells);
        }
        print_table(
            "§3.2 inverse-burst distribution P(x)",
            &["name", "P(2)", "P(4)", "P(6)", "P(8)"],
            &rows,
        );
    }
}
