//! Regenerates paper Table 3: AutoComm results and factors over the sparse
//! Cat-per-CX baseline, side by side with the published numbers.

use dqc_bench::{configs, paper, print_table, quick_requested, run_config};

fn main() {
    let quick = quick_requested();
    let mut rows = Vec::new();
    let mut improv_sum = 0.0;
    let mut lat_sum = 0.0;
    let mut n = 0.0;
    for config in configs(quick) {
        let row = run_config(&config);
        let published = paper::table3_row(&config.label());
        improv_sum += row.improv_factor();
        lat_sum += row.lat_dec_factor();
        n += 1.0;
        rows.push(vec![
            config.label(),
            row.metrics.total_comms.to_string(),
            row.metrics.tp_comms.to_string(),
            format!("{:.1}", row.metrics.peak_rem_cx),
            format!("{:.2}", row.improv_factor()),
            format!("{:.2}", row.lat_dec_factor()),
            published.map_or("-".into(), |p| format!("{:.2}", p.improv)),
            published.map_or("-".into(), |p| format!("{:.2}", p.lat_dec)),
        ]);
    }
    print_table(
        "Table 3: AutoComm vs sparse baseline",
        &[
            "name",
            "TotComm",
            "TP-Comm",
            "Peak#REMCX",
            "improv",
            "LAT-DEC",
            "paper improv",
            "paper LAT-DEC",
        ],
        &rows,
    );
    println!(
        "\nAverages: improv {:.2}x (paper 4.1x), LAT-DEC {:.2}x (paper 3.5x)",
        improv_sum / n,
        lat_sum / n
    );
}
