//! Placement-sensitivity sweep: compiles the smoke suite (plus the
//! `node_ring_exchange` stressor and the 1024-qubit power-law
//! `large_sparse_circuit` workload) against every standard interconnect under
//! each placement strategy — `block` (contiguous partition, identity map),
//! `oee` (the paper's partitioner, identity map), and `topo` (OEE plus the
//! topology- and traffic-aware iterative placement driver) — and reports
//! the assignment-level hop-weighted EPR cost per combination.
//!
//! The recorded numbers live in
//! `crates/bench/baselines/placement_sensitivity.json`; regenerate them
//! with `cargo run --release -p dqc-bench --bin placement_sweep`. Every
//! reported quantity is an integer produced by fully deterministic
//! optimization loops, so CI simply diffs the sweep's stdout against the
//! baseline and fails on any drift.
//!
//! In-binary safety rails, asserted on every run:
//!
//! * per workload, `topo` never exceeds `oee` (the driver starts from the
//!   OEE identity placement and only accepts strict improvements);
//! * per topology, the suite-summed `topo` cost never exceeds `block`
//!   (the acceptance criterion of the placement re-platform).

use autocomm::{AutoComm, PlacementConfig};
use dqc_bench::{oee_mapping, quick_requested, sweep_inputs};
use dqc_circuit::{Circuit, Partition};
use dqc_hardware::{HardwareSpec, NetworkTopology};

const STRATEGIES: [&str; 3] = ["block", "oee", "topo"];

struct Row {
    workload: String,
    topology: String,
    strategy: &'static str,
    epr_cost: usize,
    total_comms: usize,
    iterations: usize,
}

fn partition_for(circuit: &Circuit, nodes: usize, strategy: &str) -> Partition {
    match strategy {
        "block" => Partition::block(circuit.num_qubits(), nodes).expect("divisible sizes"),
        _ => oee_mapping(circuit, nodes),
    }
}

fn main() {
    let quick = quick_requested();
    let nodes = 4usize;
    let refine_iters = 3usize;
    let topologies = || {
        vec![
            NetworkTopology::all_to_all(nodes),
            NetworkTopology::linear(nodes).unwrap(),
            NetworkTopology::grid(2, 2).unwrap(),
            NetworkTopology::star(nodes).unwrap(),
        ]
    };

    let inputs: Vec<(String, Circuit)> = sweep_inputs(nodes, true, quick, true);

    let mut rows: Vec<Row> = Vec::new();
    for (label, circuit) in &inputs {
        for topology in topologies() {
            let mut costs = [0usize; 3];
            for (si, strategy) in STRATEGIES.iter().enumerate() {
                let partition = partition_for(circuit, nodes, strategy);
                let hw = HardwareSpec::for_partition(&partition)
                    .with_topology(topology.clone())
                    .expect("standard topologies are valid for 4 nodes");
                let config = PlacementConfig {
                    refine_iters: if *strategy == "topo" { refine_iters } else { 0 },
                    ..Default::default()
                };
                let (result, report) = AutoComm::new()
                    .compile_placed(circuit, &partition, &hw, &config)
                    .expect("suite workloads compile");
                costs[si] = result.metrics.total_epr_cost;
                rows.push(Row {
                    workload: label.clone(),
                    topology: topology.name().to_owned(),
                    strategy,
                    epr_cost: result.metrics.total_epr_cost,
                    total_comms: result.metrics.total_comms,
                    iterations: report.iterations,
                });
            }
            let [_, oee, topo] = costs;
            assert!(
                topo <= oee,
                "{label}/{}: topo {topo} beat by its own oee start {oee}",
                topology.name()
            );
        }
    }

    // Per-topology strategy totals, with the acceptance assertion.
    let mut totals: Vec<(String, [usize; 3])> = Vec::new();
    for topology in topologies() {
        let mut sums = [0usize; 3];
        for row in rows.iter().filter(|r| r.topology == topology.name()) {
            let si = STRATEGIES.iter().position(|s| *s == row.strategy).unwrap();
            sums[si] += row.epr_cost;
        }
        let [block, _, topo] = sums;
        assert!(
            topo <= block,
            "{}: suite-summed topo {topo} must not exceed block {block}",
            topology.name()
        );
        totals.push((topology.name().to_owned(), sums));
    }

    // Deterministic JSON, diffed against the recorded baseline by CI.
    println!("{{");
    println!("  \"nodes\": {nodes},");
    println!("  \"refine_iters\": {refine_iters},");
    println!("  \"strategies\": [\"block\", \"oee\", \"topo\"],");
    println!("  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        println!(
            "    {{\"workload\": \"{}\", \"topology\": \"{}\", \"strategy\": \"{}\", \
             \"epr_cost\": {}, \"total_comms\": {}, \"iterations\": {}}}{comma}",
            r.workload, r.topology, r.strategy, r.epr_cost, r.total_comms, r.iterations
        );
    }
    println!("  ],");
    println!("  \"totals\": [");
    for (i, (name, [block, oee, topo])) in totals.iter().enumerate() {
        let comma = if i + 1 == totals.len() { "" } else { "," };
        println!(
            "    {{\"topology\": \"{name}\", \"block\": {block}, \"oee\": {oee}, \
             \"topo\": {topo}}}{comma}"
        );
    }
    println!("  ]");
    println!("}}");

    for (name, [block, oee, topo]) in &totals {
        eprintln!(
            "{name:<12} block {block:>5}  oee {oee:>5}  topo {topo:>5}  ({:.1}% vs block)",
            100.0 * (*block as f64 - *topo as f64) / (*block).max(1) as f64
        );
    }
    eprintln!("placement sweep OK: topo <= oee per workload, topo <= block per topology");
}
