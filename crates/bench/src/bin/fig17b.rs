//! Regenerates paper Fig. 17(b): the assignment ablation — Cat-Comm-only
//! communication cost divided by the hybrid scheme, on RCA and QFT.

use autocomm::AutoComm;
use dqc_baselines::ablation::compile_cat_only;
use dqc_bench::{oee_mapping, paper, print_table, quick_requested};
use dqc_workloads::{generate, BenchConfig, Workload};

fn main() {
    let sizes: Vec<(usize, usize)> = if quick_requested() {
        vec![(20, 2), (30, 3), (40, 4)]
    } else {
        vec![(100, 10), (200, 20), (300, 30)]
    };
    let mut rows = Vec::new();
    for workload in [Workload::Rca, Workload::Qft] {
        for (i, &(q, n)) in sizes.iter().enumerate() {
            let config = BenchConfig::new(workload, q, n);
            let circuit = generate(&config);
            let partition = oee_mapping(&circuit, n);
            let full = AutoComm::new().compile(&circuit, &partition).unwrap();
            let ablated = compile_cat_only(&circuit, &partition).unwrap();
            let ratio = ablated.metrics.total_comms as f64 / full.metrics.total_comms.max(1) as f64;
            let published =
                paper::FIG17B.iter().find(|(w, _)| *w == workload.name()).map(|(_, v)| v[i.min(2)]);
            rows.push(vec![
                config.label(),
                ablated.metrics.total_comms.to_string(),
                full.metrics.total_comms.to_string(),
                format!("{ratio:.2}"),
                published.map_or("-".into(), |p| format!("{p:.2}")),
            ]);
        }
    }
    print_table(
        "Fig. 17(b): assignment ablation (Cat-Comm only / Hybrid comms)",
        &["name", "cat-only", "hybrid", "ratio", "paper ratio"],
        &rows,
    );
}
