//! Regenerates paper Fig. 17(a): the aggregation ablation — communication
//! cost without commutation rules divided by the full pass, on QFT and BV.

use autocomm::AutoComm;
use dqc_baselines::ablation::compile_no_commute;
use dqc_bench::{oee_mapping, paper, print_table, quick_requested};
use dqc_workloads::{generate, BenchConfig, Workload};

fn main() {
    let sizes: Vec<(usize, usize)> = if quick_requested() {
        vec![(20, 2), (30, 3), (40, 4)]
    } else {
        vec![(100, 10), (200, 20), (300, 30)]
    };
    let mut rows = Vec::new();
    for workload in [Workload::Qft, Workload::Bv] {
        for (i, &(q, n)) in sizes.iter().enumerate() {
            let config = BenchConfig::new(workload, q, n);
            let circuit = generate(&config);
            let partition = oee_mapping(&circuit, n);
            let full = AutoComm::new().compile(&circuit, &partition).unwrap();
            let ablated = compile_no_commute(&circuit, &partition).unwrap();
            let ratio = ablated.metrics.total_comms as f64 / full.metrics.total_comms.max(1) as f64;
            let published =
                paper::FIG17A.iter().find(|(w, _)| *w == workload.name()).map(|(_, v)| v[i.min(2)]);
            rows.push(vec![
                config.label(),
                ablated.metrics.total_comms.to_string(),
                full.metrics.total_comms.to_string(),
                format!("{ratio:.2}"),
                published.map_or("-".into(), |p| format!("{p:.2}")),
            ]);
        }
    }
    print_table(
        "Fig. 17(a): aggregation ablation (No Commute / Commute comms)",
        &["name", "no-commute", "full", "ratio", "paper ratio"],
        &rows,
    );
}
