//! Compile-service latency gate: boots the daemon in-process on a
//! loopback socket, pushes a set of 10k-gate circuits through it cold
//! (every job compiles) and then warm (every job answered from the
//! content-addressed artifact cache), and measures client-side
//! end-to-end latency for both. The acceptance rail is asserted on
//! every full run: **warm p50 must be ≥ 20× faster than cold p50** at
//! the 10k-gate tier, and every warm response must be byte-identical
//! to its cold counterpart.
//!
//! Latencies vary per machine, so stdout is not baseline-diffed; the
//! recorded reference run lives in
//! `crates/bench/baselines/service_latency.json` (regenerate by
//! redirecting this binary's stdout there). `--quick` shrinks the
//! inputs ~10× and skips the ratio rail (CI-smoke speed).

use std::net::TcpListener;
use std::time::Instant;

use dqc_cli::json::Json;
use dqc_cli::serve::{roundtrip, serve_on, ServeArgs};
use dqc_workloads::random_circuit;

fn percentile(samples: &mut [f64], p: f64) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let at = ((samples.len() - 1) as f64 * p).round() as usize;
    samples[at]
}

fn main() {
    let quick = dqc_bench::quick_requested();
    let gates = if quick { 1_000 } else { 10_000 };
    let circuits = if quick { 3 } else { 8 };
    let warm_repeats = if quick { 3 } else { 10 };

    // In-process daemon on an ephemeral loopback port.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let args = ServeArgs { port: 0, workers: 4, cache_capacity: 64, port_file: None };
    let server = std::thread::spawn(move || serve_on(listener, args));

    // Distinct 10k-gate-tier jobs: every cold submission really compiles.
    let requests: Vec<String> = (0..circuits)
        .map(|seed| {
            let circuit = random_circuit(32, gates, 100 + seed as u64);
            Json::object([
                ("op", Json::string("compile")),
                ("qasm", Json::string(dqc_circuit::to_qasm(&circuit))),
                ("nodes", Json::number(4.0)),
            ])
            .to_string()
        })
        .collect();

    let timed = |request: &str| {
        let t = Instant::now();
        let response = roundtrip(&addr, request).expect("service response");
        (t.elapsed().as_secs_f64() * 1e3, response)
    };

    let mut cold_ms = Vec::new();
    let mut cold_responses = Vec::new();
    for request in &requests {
        let (ms, response) = timed(request);
        assert!(response.contains("\"status\":\"ok\""), "cold compile failed: {response}");
        cold_ms.push(ms);
        cold_responses.push(response);
    }

    let mut warm_ms = Vec::new();
    let mut byte_identical = true;
    for _ in 0..warm_repeats {
        for (request, cold_response) in requests.iter().zip(&cold_responses) {
            let (ms, response) = timed(request);
            byte_identical &= response == *cold_response;
            warm_ms.push(ms);
        }
    }
    assert!(byte_identical, "a warm response drifted from its cold compile");

    // All warm lookups must have been cache hits.
    let stats = roundtrip(&addr, "{\"op\":\"stats\"}").expect("stats");
    let parsed = Json::parse(&stats).expect("stats parse");
    let stat = |key: &str| {
        parsed
            .get("stats")
            .and_then(|s| s.get(key))
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("{key} in {stats}"))
    };
    assert_eq!(stat("cache_misses"), circuits as f64, "every circuit compiles exactly once");
    assert_eq!(stat("cache_hits"), (circuits * warm_repeats) as f64, "every repeat must hit");

    roundtrip(&addr, "{\"op\":\"shutdown\"}").expect("shutdown");
    server.join().expect("server thread").expect("clean shutdown");

    let cold_p50 = percentile(&mut cold_ms, 0.50);
    let cold_p99 = percentile(&mut cold_ms, 0.99);
    let warm_p50 = percentile(&mut warm_ms, 0.50);
    let warm_p99 = percentile(&mut warm_ms, 0.99);
    let speedup = cold_p50 / warm_p50;
    eprintln!(
        "service sweep ({gates} gates × {circuits} circuits): cold p50 {cold_p50:.2} ms, \
         warm p50 {warm_p50:.3} ms ({speedup:.0}x)"
    );
    // The acceptance rail: warm hits >= 20x faster than cold compiles at
    // the 10k-gate tier (--quick shrinks the tier, where the ratio is
    // not meaningful).
    if !quick {
        assert!(
            warm_p50 * 20.0 <= cold_p50,
            "warm p50 must be >= 20x faster than cold p50, got {speedup:.1}x \
             ({warm_p50:.3} ms vs {cold_p50:.2} ms)"
        );
    }

    println!("{{");
    println!("  \"tier_gates\": {gates},");
    println!("  \"circuits\": {circuits},");
    println!("  \"warm_repeats\": {warm_repeats},");
    println!("  \"cold_ms\": {{\"p50\": {cold_p50:.3}, \"p99\": {cold_p99:.3}}},");
    println!("  \"warm_ms\": {{\"p50\": {warm_p50:.3}, \"p99\": {warm_p99:.3}}},");
    println!("  \"speedup_p50\": {speedup:.1},");
    println!("  \"byte_identical\": true");
    println!("}}");
}
