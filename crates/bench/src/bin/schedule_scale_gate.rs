//! Schedule-scale regression gate: the deterministic, asserting companion
//! of the `schedule_scale` criterion bench and the acceptance evidence for
//! the schedule-stage scaling work (parallel dual-rail evaluation, indexed
//! timeline, schedule reuse). The deterministic stdout of this binary is
//! diffed by CI against `crates/bench/baselines/schedule_scale.json`.
//!
//! In-binary rails, asserted on every run:
//!
//! * **Parallel dual-rail** — under a buffered policy the scheduler runs
//!   the on-demand base rail and the buffered rail on two scoped threads;
//!   at 100k gates that must be ≥ 1.6× faster than the sequential
//!   reference ([`ScheduleOptions::sequential_rails`]) and return a
//!   bit-identical [`ScheduleSummary`] (the ratio needs a second core;
//!   on one-core machines only the identity half is asserted);
//! * **Indexed timeline** — the earliest-free slot/channel indexes must
//!   make a 100k-gate buffered schedule on a comm-rich `grid` machine
//!   ≥ 2× faster than the historical linear-scan lookups
//!   ([`ScheduleOptions::linear_scan_timeline`]), again bit-identically;
//! * **1M-gate completion** — scheduling a 1M-gate buffered program
//!   finishes within a generous wall-clock budget.
//!
//! Timings go to stderr (they vary per machine); stdout carries only
//! deterministic schedule metrics.

use std::time::Instant;

use autocomm::{schedule, AutoComm, BufferPolicy, ScheduleOptions, ScheduleSummary};
use dqc_hardware::{HardwareSpec, NetworkTopology};
use dqc_workloads::random_distributed_circuit;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Medians three timed runs of `schedule` under `options`, returning the
/// median milliseconds and the (deterministic) summary.
fn timed_schedule(
    program: &autocomm::AssignedProgram,
    placement: &autocomm::Placement,
    hw: &HardwareSpec,
    options: ScheduleOptions,
) -> (f64, ScheduleSummary) {
    let ms: Vec<f64> = (0..3)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(schedule(program, placement, hw, options));
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    (median(ms), schedule(program, placement, hw, options))
}

fn main() {
    let quick = dqc_bench::quick_requested();
    // --quick shrinks every input ~10× (same code paths, CI-smoke speed)
    // and relaxes the ratio rails, which need 100k-gate schedules for the
    // timeline and rail costs to dominate setup noise.
    let scale = if quick { 10_000 } else { 100_000 };

    // The shared workload: a 100k-gate circuit over 9 nodes on a 3×3 grid
    // with a deep comm-qubit budget — multi-hop routes exercise relay
    // swaps and channel claims, and the wide slot vectors are where the
    // linear scans the indexes replace actually cost something.
    let (circuit, partition) = random_distributed_circuit(72, 9, scale, 7);
    let topology = NetworkTopology::grid(3, 3).expect("3x3 grid is valid");
    let hw = HardwareSpec::for_partition(&partition)
        .with_comm_qubits(128)
        .expect("128 comm qubits is a valid budget")
        .with_topology(topology)
        .expect("grid covers the 9 placed nodes");
    let compiled = AutoComm::new().compile_on(&circuit, &partition, &hw).expect("100k compile");
    let buffered = ScheduleOptions::default().with_buffer(BufferPolicy::Prefetch { depth: 4 });

    // ── Rail 1: parallel dual-rail vs sequential reference ─────────────
    let (parallel_ms, parallel_summary) =
        timed_schedule(&compiled.assigned, &compiled.placement, &hw, buffered);
    let sequential = ScheduleOptions { sequential_rails: true, ..buffered };
    let (sequential_ms, sequential_summary) =
        timed_schedule(&compiled.assigned, &compiled.placement, &hw, sequential);
    assert_eq!(
        parallel_summary, sequential_summary,
        "parallel dual-rail schedule drifted from the sequential reference"
    );
    let rail_speedup = sequential_ms / parallel_ms;
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!(
        "dual-rail ({} gates): sequential {sequential_ms:.1} ms, parallel {parallel_ms:.1} ms \
         ({rail_speedup:.2}x, {cores} core(s))",
        circuit.len()
    );
    // The ratio rail needs a second core to mean anything — on a one-core
    // machine the two scoped threads time-slice and the speedup is
    // physically capped at 1.0x (identity above is still asserted).
    if !quick && cores >= 2 {
        assert!(
            rail_speedup >= 1.6,
            "parallel dual-rail must be >= 1.6x the sequential reference, got {rail_speedup:.2}x"
        );
    }

    // ── Rail 2: indexed timeline vs linear-scan reference ──────────────
    // Both modes run sequential rails so the comparison isolates the
    // timeline lookups from thread scheduling.
    let linear = ScheduleOptions { linear_scan_timeline: true, ..sequential };
    let (indexed_ms, indexed_summary) =
        timed_schedule(&compiled.assigned, &compiled.placement, &hw, sequential);
    let (linear_ms, linear_summary) =
        timed_schedule(&compiled.assigned, &compiled.placement, &hw, linear);
    assert_eq!(
        indexed_summary, linear_summary,
        "indexed timeline schedule drifted from the linear-scan reference"
    );
    let timeline_speedup = linear_ms / indexed_ms;
    eprintln!(
        "timeline ({} gates, 128 comm qubits): linear scan {linear_ms:.1} ms, indexed \
         {indexed_ms:.1} ms ({timeline_speedup:.2}x)",
        circuit.len()
    );
    if !quick {
        assert!(
            timeline_speedup >= 2.0,
            "indexed timeline must be >= 2x the linear-scan reference, got {timeline_speedup:.2}x"
        );
    }

    // ── Rail 3: the 1M-gate buffered schedule completes ────────────────
    let (big, big_partition) = random_distributed_circuit(32, 4, scale * 10, 7);
    let big_hw = HardwareSpec::for_partition(&big_partition)
        .with_comm_qubits(8)
        .expect("8 comm qubits is a valid budget")
        .with_topology(NetworkTopology::ring(4).expect("ring of 4 is valid"))
        .expect("ring covers the 4 placed nodes");
    let big_compiled =
        AutoComm::new().compile_on(&big, &big_partition, &big_hw).expect("1M compile");
    let t = Instant::now();
    let big_summary = schedule(&big_compiled.assigned, &big_compiled.placement, &big_hw, buffered);
    let big_ms = t.elapsed().as_secs_f64() * 1e3;
    eprintln!("{}-gate buffered schedule: {big_ms:.0} ms", big.len());
    if !quick {
        assert!(big_ms < 60_000.0, "1M-gate buffered schedule took {big_ms:.0} ms (budget 60 s)");
    }

    // Deterministic JSON, diffed against the recorded baseline by CI
    // (full runs only — --quick shrinks the inputs).
    let s = &parallel_summary;
    let b = &big_summary;
    println!("{{");
    println!(
        "  \"workload\": {{\"gates\": {}, \"nodes\": 9, \"comm_qubits\": 128, \"topology\": \
         \"grid3x3\", \"buffer\": \"{}\"}},",
        circuit.len(),
        s.buffering.policy.name()
    );
    println!(
        "  \"buffered\": {{\"makespan\": {:.2}, \"epr_pairs\": {}, \"swaps\": {}, \
         \"fusion_savings\": {}, \"requests\": {}, \"prefetch_hits\": {}, \"fell_back\": {}}},",
        s.makespan,
        s.epr_pairs,
        s.swaps,
        s.fusion_savings,
        s.buffering.requests,
        s.buffering.prefetch_hits,
        s.buffering.fell_back
    );
    println!(
        "  \"identity\": {{\"parallel_matches_sequential\": true, \
         \"indexed_matches_linear_scan\": true}},"
    );
    println!(
        "  \"one_million\": {{\"gates\": {}, \"makespan\": {:.2}, \"epr_pairs\": {}, \"swaps\": \
         {}, \"fell_back\": {}}}",
        big.len(),
        b.makespan,
        b.epr_pairs,
        b.swaps,
        b.buffering.fell_back
    );
    println!("}}");
    eprintln!(
        "schedule scale gate OK: dual-rail {rail_speedup:.2}x, indexed timeline \
         {timeline_speedup:.2}x, 1M buffered schedule {big_ms:.0} ms"
    );
}
