//! Buffer-sensitivity sweep: compiles the smoke suite under the on-demand
//! and prefetch EPR-buffering policies on each sparse standard interconnect
//! (linear, grid, star) with the paper's finite two-comm-qubit budget, and
//! reports the schedule makespan, prefetch effectiveness, and EPR wait per
//! combination.
//!
//! The recorded numbers live in
//! `crates/bench/baselines/buffer_sensitivity.json`; regenerate them with
//! `cargo run --release -p dqc-bench --bin buffer_sweep`. Every reported
//! quantity is produced by a fully deterministic discrete-event schedule,
//! so CI simply diffs the sweep's stdout against the baseline and fails on
//! any drift (the scheduler gate, mirroring the placement gate).
//!
//! In-binary safety rails, asserted on every run:
//!
//! * per workload × topology, `prefetch` never exceeds the `on-demand`
//!   makespan (the engine's strict-improvement rail, re-checked here);
//! * per topology, the suite-summed `prefetch` makespan is *strictly*
//!   below `on-demand` (the acceptance criterion of the buffering
//!   re-platform).

use autocomm::{AutoComm, AutoCommOptions, BufferPolicy};
use dqc_bench::{oee_mapping, sweep_inputs};
use dqc_circuit::Partition;
use dqc_hardware::{HardwareSpec, NetworkTopology};

const POLICIES: [BufferPolicy; 2] = [BufferPolicy::OnDemand, BufferPolicy::Prefetch { depth: 4 }];

struct Row {
    workload: String,
    topology: String,
    policy: String,
    makespan: f64,
    epr_pairs: usize,
    prefetch_hits: usize,
    comm_requests: usize,
    mean_epr_wait: f64,
    fell_back: bool,
}

fn main() {
    let nodes = 4usize;
    let topologies = || {
        vec![
            NetworkTopology::linear(nodes).unwrap(),
            NetworkTopology::grid(2, 2).unwrap(),
            NetworkTopology::star(nodes).unwrap(),
        ]
    };

    let mut rows: Vec<Row> = Vec::new();
    for (label, circuit) in sweep_inputs(nodes, false, false, false) {
        let partition: Partition = oee_mapping(&circuit, nodes);
        for topology in topologies() {
            let hw = HardwareSpec::for_partition(&partition)
                .with_topology(topology.clone())
                .expect("standard topologies are valid for 4 nodes");
            let mut makespans = [0.0f64; 2];
            for (pi, policy) in POLICIES.into_iter().enumerate() {
                let result = AutoComm::with_options(AutoCommOptions::default().with_buffer(policy))
                    .compile_on(&circuit, &partition, &hw)
                    .expect("suite workloads compile");
                let s = &result.schedule;
                makespans[pi] = s.makespan;
                rows.push(Row {
                    workload: label.clone(),
                    topology: topology.name().to_owned(),
                    policy: policy.name(),
                    makespan: s.makespan,
                    epr_pairs: s.epr_pairs,
                    prefetch_hits: s.buffering.prefetch_hits,
                    comm_requests: s.buffering.requests,
                    mean_epr_wait: s.buffering.mean_epr_wait,
                    fell_back: s.buffering.fell_back,
                });
            }
            let [on_demand, prefetch] = makespans;
            assert!(
                prefetch <= on_demand + 1e-9,
                "{label}/{}: prefetch {prefetch} beat by on-demand {on_demand}",
                topology.name()
            );
        }
    }

    // Per-topology policy totals, with the acceptance assertion.
    let mut totals: Vec<(String, [f64; 2])> = Vec::new();
    for topology in topologies() {
        let mut sums = [0.0f64; 2];
        for row in rows.iter().filter(|r| r.topology == topology.name()) {
            let pi = POLICIES.iter().position(|p| p.name() == row.policy).unwrap();
            sums[pi] += row.makespan;
        }
        let [on_demand, prefetch] = sums;
        assert!(
            prefetch + 1e-6 < on_demand,
            "{}: suite-summed prefetch {prefetch} must strictly beat on-demand {on_demand}",
            topology.name()
        );
        totals.push((topology.name().to_owned(), sums));
    }

    // Deterministic JSON, diffed against the recorded baseline by CI.
    println!("{{");
    println!("  \"nodes\": {nodes},");
    println!("  \"comm_qubits\": 2,");
    println!("  \"policies\": [\"on-demand\", \"prefetch:4\"],");
    println!("  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        println!(
            "    {{\"workload\": \"{}\", \"topology\": \"{}\", \"policy\": \"{}\", \
             \"makespan\": {:.1}, \"epr_pairs\": {}, \"prefetch_hits\": {}, \
             \"comm_requests\": {}, \"mean_epr_wait\": {:.2}, \"fell_back\": {}}}{comma}",
            r.workload,
            r.topology,
            r.policy,
            r.makespan,
            r.epr_pairs,
            r.prefetch_hits,
            r.comm_requests,
            r.mean_epr_wait,
            r.fell_back
        );
    }
    println!("  ],");
    println!("  \"totals\": [");
    for (i, (name, [on_demand, prefetch])) in totals.iter().enumerate() {
        let comma = if i + 1 == totals.len() { "" } else { "," };
        println!(
            "    {{\"topology\": \"{name}\", \"on_demand\": {on_demand:.1}, \
             \"prefetch\": {prefetch:.1}}}{comma}"
        );
    }
    println!("  ]");
    println!("}}");

    for (name, [on_demand, prefetch]) in &totals {
        eprintln!(
            "{name:<12} on-demand {on_demand:>8.1}  prefetch {prefetch:>8.1}  \
             ({:.1}% faster)",
            100.0 * (on_demand - prefetch) / on_demand.max(1.0)
        );
    }
    eprintln!("buffer sweep OK: prefetch <= on-demand per workload, strictly faster per topology");
}
