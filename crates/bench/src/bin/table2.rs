//! Regenerates paper Table 2: benchmark program characteristics under the
//! OEE qubit mapping. Pass `--quick` for scaled-down configurations.

use dqc_bench::{configs, oee_mapping, print_table, quick_requested};
use dqc_circuit::{unroll_circuit, CircuitStats};
use dqc_workloads::generate;

fn main() {
    let quick = quick_requested();
    let mut rows = Vec::new();
    for config in configs(quick) {
        let circuit = generate(&config);
        let unrolled = unroll_circuit(&circuit).expect("benchmarks unroll");
        let partition = oee_mapping(&circuit, config.num_nodes);
        let stats = CircuitStats::of(&unrolled, Some(&partition));
        rows.push(vec![
            config.label(),
            config.num_qubits.to_string(),
            config.num_nodes.to_string(),
            stats.num_gates.to_string(),
            stats.num_2q.to_string(),
            stats.num_remote_2q.to_string(),
        ]);
    }
    print_table(
        "Table 2: benchmark programs (unrolled, OEE mapping)",
        &["name", "#qubit", "#node", "#gate", "#CX", "#REM CX"],
        &rows,
    );
    println!("\nNote: #gate/#CX differ from the paper by decomposition constants");
    println!("(see EXPERIMENTS.md); the remote-CX structure drives all results.");
}
