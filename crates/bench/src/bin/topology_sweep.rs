//! Topology-sensitivity sweep: compiles the smoke suite (plus the
//! `node_ring_exchange` stressor) against every standard interconnect and
//! reports makespan / link-level EPR pairs / entanglement swaps per
//! topology. The recorded numbers live in
//! `crates/bench/baselines/topology_sensitivity.json`; regenerate them
//! with `cargo run --release -p dqc-bench --bin topology_sweep`.
//!
//! The sweep's two invariants are the refactor's safety rails:
//!
//! * `all-to-all` must match the historical pipeline exactly (the batch
//!   driver and tier-1 tests cross-check the same numbers);
//! * every sparse topology must be ≥ all-to-all in both makespan and EPR
//!   pairs on every workload (routing can only add cost).

use autocomm::{AutoComm, CompileResult};
use dqc_bench::{quick_requested, sweep_inputs};
use dqc_circuit::{Circuit, Partition};
use dqc_hardware::{HardwareSpec, NetworkTopology};

struct Row {
    workload: String,
    topology: String,
    makespan: f64,
    epr_pairs: usize,
    swaps: usize,
    tot_comms: usize,
}

fn compile_on(c: &Circuit, p: &Partition, topology: NetworkTopology) -> CompileResult {
    let hw = HardwareSpec::for_partition(p)
        .with_topology(topology)
        .expect("standard topologies are valid for 4 nodes");
    AutoComm::new().compile_on(c, p, &hw).expect("suite workloads compile")
}

fn main() {
    let quick = quick_requested();
    let nodes = 4usize;
    let topologies = |n: usize| {
        vec![
            NetworkTopology::all_to_all(n),
            NetworkTopology::linear(n).unwrap(),
            NetworkTopology::ring(n).unwrap(),
            NetworkTopology::grid(2, n / 2).unwrap(),
            NetworkTopology::star(n).unwrap(),
        ]
    };

    let inputs: Vec<(String, Circuit)> = sweep_inputs(nodes, true, quick, false);

    let mut rows: Vec<Row> = Vec::new();
    for (label, circuit) in &inputs {
        let p = Partition::block(circuit.num_qubits(), nodes).expect("divisible sizes");
        let mut dense: Option<(f64, usize)> = None;
        for topology in topologies(nodes) {
            let name = topology.name().to_owned();
            let r = compile_on(circuit, &p, topology);
            let (makespan, epr) = (r.schedule.makespan, r.schedule.epr_pairs);
            match dense {
                None => dense = Some((makespan, epr)),
                Some((m0, e0)) => {
                    assert!(
                        makespan + 1e-9 >= m0 && epr >= e0,
                        "{label}/{name}: sparse beat all-to-all ({makespan} < {m0} or {epr} < {e0})"
                    );
                }
            }
            rows.push(Row {
                workload: label.clone(),
                topology: name,
                makespan,
                epr_pairs: epr,
                swaps: r.schedule.swaps,
                tot_comms: r.metrics.total_comms,
            });
        }
    }

    println!(
        "{:<14} {:<12} {:>10} {:>6} {:>6} {:>6} {:>9}",
        "workload", "topology", "makespan", "epr", "swaps", "comms", "vs dense"
    );
    let mut dense_makespan = 0.0;
    for row in &rows {
        if row.topology == "all-to-all" {
            dense_makespan = row.makespan;
        }
        println!(
            "{:<14} {:<12} {:>10.1} {:>6} {:>6} {:>6} {:>8.2}x",
            row.workload,
            row.topology,
            row.makespan,
            row.epr_pairs,
            row.swaps,
            row.tot_comms,
            row.makespan / dense_makespan,
        );
    }
    println!(
        "\n{} workloads × {} topologies; sparse ≥ all-to-all everywhere (asserted).",
        inputs.len(),
        topologies(nodes).len()
    );
}
