//! Placement-scale regression gate: the deterministic, asserting companion
//! of the `placement_scale` criterion bench and the acceptance evidence for
//! the placement-stage scaling work (sparse CSR interaction graph,
//! gain-cached exchange loop, parallel cold scan, warm-started refinement).
//! The deterministic stdout of this binary is diffed by CI against
//! `crates/bench/baselines/placement_scale.json` (recorded under `--quick`,
//! which is also how CI runs it).
//!
//! In-binary rails, asserted on every run:
//!
//! * **Gain-cached exchange loop** — on a 1024-qubit power-law circuit the
//!   default gain-cached OEE refinement must be ≥ 10× faster than the
//!   historical full-rescan reference ([`OeeOptions::full_rescan`]) and
//!   produce a bit-identical assignment with identical exchange counts
//!   (the ratio is relaxed under `--quick`, which shrinks the register;
//!   identity is asserted always);
//! * **Parallel cold scan** — at 4096 qubits (above `PAR_THRESHOLD` rows)
//!   the fanned first-round candidate scan must be ≥ 1.6× faster than the
//!   sequential rail ([`OeeOptions::sequential_scan`]) when a second core
//!   exists, and bit-identical regardless;
//! * **4096-qubit refinement** — a full gain-cached refinement of the
//!   4096-qubit graph completes within a generous wall-clock budget;
//! * **Warm-started driver** — the incremental `compile_placed` (warm OEE
//!   cache, round skipping) matches the `force_full` reference
//!   report-for-report and metric-for-metric.
//!
//! Timings go to stderr (they vary per machine); stdout carries only
//! deterministic counts, cut weights, and metrics.

use std::time::Instant;

use autocomm::{AutoComm, PlacementConfig};
use dqc_circuit::{unroll_circuit, NodeId, Partition};
use dqc_hardware::{HardwareSpec, NetworkTopology};
use dqc_partition::{oee_refine_on_stats, InteractionGraph, OeeOptions, OeeStats, UniformDistance};
use dqc_workloads::large_sparse_circuit;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn sparse_graph(qubits: usize) -> InteractionGraph {
    let circuit = large_sparse_circuit(qubits, qubits * 8, 0x5EED);
    let unrolled = unroll_circuit(&circuit).expect("sparse workload unrolls");
    InteractionGraph::from_circuit(&unrolled)
}

/// Medians three timed refinements under `options`, returning the median
/// milliseconds and the (deterministic) partition + stats.
fn timed_refine(
    graph: &InteractionGraph,
    initial: &Partition,
    node_map: &[NodeId],
    options: OeeOptions,
) -> (f64, Partition, OeeStats) {
    let ms: Vec<f64> = (0..3)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(oee_refine_on_stats(
                graph,
                initial.clone(),
                node_map,
                &UniformDistance,
                options,
            ));
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    let (p, stats) =
        oee_refine_on_stats(graph, initial.clone(), node_map, &UniformDistance, options);
    (median(ms), p, stats)
}

fn main() {
    let quick = dqc_bench::quick_requested();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let identity = |k: usize| -> Vec<NodeId> { (0..k).map(NodeId::new).collect() };

    // ── Rail 1: gain-cached loop vs full-rescan reference ──────────────
    // 8 nodes maximizes cross pairs; --quick shrinks the register (the
    // 10x ratio needs the O(n²)-per-exchange rescan cost to dominate).
    let n1 = if quick { 256 } else { 1024 };
    let nodes1 = 8;
    let graph1 = sparse_graph(n1);
    let initial1 = Partition::block(n1, nodes1).expect("divisible register");
    let map1 = identity(nodes1);
    let cached_opts = OeeOptions::default();
    let rescan_opts =
        OeeOptions { full_rescan: true, sequential_scan: true, ..OeeOptions::default() };
    let (cached_ms, cached_p, cached_stats) = timed_refine(&graph1, &initial1, &map1, cached_opts);
    let (rescan_ms, rescan_p, rescan_stats) = timed_refine(&graph1, &initial1, &map1, rescan_opts);
    assert_eq!(cached_p, rescan_p, "gain-cached refinement drifted from the full-rescan reference");
    assert_eq!(
        cached_stats.exchanges, rescan_stats.exchanges,
        "gain-cached refinement applied a different exchange count"
    );
    let cached_speedup = rescan_ms / cached_ms;
    eprintln!(
        "gain cache ({n1} qubits, {} edges, {} exchanges): full rescan {rescan_ms:.1} ms, \
         gain-cached {cached_ms:.1} ms ({cached_speedup:.2}x)",
        graph1.num_edges(),
        cached_stats.exchanges
    );
    if !quick {
        assert!(
            cached_speedup >= 10.0,
            "gain-cached loop must be >= 10x the full-rescan reference, got {cached_speedup:.2}x"
        );
    }

    // ── Rail 2: parallel cold scan vs sequential rail ──────────────────
    // 4096 rows puts the per-row fan above PAR_THRESHOLD on both modes'
    // input; capping exchanges at 0 isolates the cold candidate scan.
    let n2 = 4096;
    let graph2 = sparse_graph(n2);
    let initial2 = Partition::block(n2, nodes1).expect("divisible register");
    let map2 = identity(nodes1);
    let scan_only = OeeOptions { max_exchanges: 0, ..OeeOptions::default() };
    let (par_ms, par_p, par_stats) = timed_refine(&graph2, &initial2, &map2, scan_only);
    let seq_only = OeeOptions { sequential_scan: true, ..scan_only };
    let (seq_ms, seq_p, seq_stats) = timed_refine(&graph2, &initial2, &map2, seq_only);
    assert_eq!(par_p, seq_p, "parallel cold scan drifted from the sequential rail");
    assert_eq!(par_stats.scanned, seq_stats.scanned, "parallel scan covered a different set");
    let scan_speedup = seq_ms / par_ms;
    eprintln!(
        "cold scan ({n2} qubits, {} candidates): sequential {seq_ms:.1} ms, parallel \
         {par_ms:.1} ms ({scan_speedup:.2}x, {cores} core(s))",
        par_stats.scanned
    );
    if !quick && cores >= 2 {
        assert!(
            scan_speedup >= 1.6,
            "parallel cold scan must be >= 1.6x the sequential rail, got {scan_speedup:.2}x"
        );
    }

    // ── Rail 3: large-register refinement completes ────────────────────
    let n3 = if quick { 1024 } else { 4096 };
    let graph3 = sparse_graph(n3);
    let initial3 = Partition::block(n3, nodes1).expect("divisible register");
    let t = Instant::now();
    let (refined3, stats3) = oee_refine_on_stats(
        &graph3,
        initial3,
        &identity(nodes1),
        &UniformDistance,
        OeeOptions::default(),
    );
    let big_ms = t.elapsed().as_secs_f64() * 1e3;
    eprintln!("{n3}-qubit gain-cached refinement: {big_ms:.0} ms, {} exchanges", stats3.exchanges);
    if !quick {
        assert!(big_ms < 60_000.0, "4096-qubit refinement took {big_ms:.0} ms (budget 60 s)");
    }

    // ── Rail 4: warm-started driver vs force_full reference ────────────
    let n4 = if quick { 256 } else { 1024 };
    let circuit4 = large_sparse_circuit(n4, n4 * 8, 0x5EED);
    let partition4 = {
        let unrolled = unroll_circuit(&circuit4).expect("sparse workload unrolls");
        let graph = InteractionGraph::from_circuit(&unrolled);
        dqc_partition::oee_partition(&graph, 4).expect("4 nodes is valid")
    };
    let hw = HardwareSpec::for_partition(&partition4)
        .with_topology(NetworkTopology::grid(2, 2).expect("2x2 grid is valid"))
        .expect("grid covers the 4 placed nodes");
    let config = PlacementConfig::default();
    let full_config = PlacementConfig { force_full: true, ..config };
    let t = Instant::now();
    let (warm_result, warm_report) = AutoComm::new()
        .compile_placed(&circuit4, &partition4, &hw, &config)
        .expect("sparse workload compiles");
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let (full_result, full_report) = AutoComm::new()
        .compile_placed(&circuit4, &partition4, &hw, &full_config)
        .expect("sparse workload compiles");
    let full_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(warm_report, full_report, "warm driver drifted from the force_full reference");
    assert_eq!(
        warm_result.metrics, full_result.metrics,
        "warm driver metrics drifted from the force_full reference"
    );
    eprintln!(
        "warm driver ({n4} qubits, grid 2x2): force_full {full_ms:.1} ms, incremental \
         {warm_ms:.1} ms ({} round(s) skipped, {} cache hits)",
        warm_report.work.rounds_skipped, warm_report.work.oee_cache_hits
    );

    // Deterministic JSON, diffed against the recorded baseline by CI.
    let w = &warm_report.work;
    println!("{{");
    println!(
        "  \"gain_cached\": {{\"qubits\": {n1}, \"nodes\": {nodes1}, \"edges\": {}, \
         \"exchanges\": {}, \"scanned\": {}, \"initial_cut\": {}, \"final_cut\": {}, \
         \"identical_to_full_rescan\": true}},",
        graph1.num_edges(),
        cached_stats.exchanges,
        rescan_stats.scanned,
        graph1.cut_weight(&initial1),
        graph1.cut_weight(&cached_p)
    );
    println!(
        "  \"parallel_scan\": {{\"qubits\": {n2}, \"edges\": {}, \"scanned\": {}, \
         \"identical_to_sequential\": true}},",
        graph2.num_edges(),
        par_stats.scanned
    );
    println!(
        "  \"large_refine\": {{\"qubits\": {n3}, \"edges\": {}, \"exchanges\": {}, \
         \"final_cut\": {}}},",
        graph3.num_edges(),
        stats3.exchanges,
        graph3.cut_weight(&refined3)
    );
    println!(
        "  \"warm_driver\": {{\"qubits\": {n4}, \"iterations\": {}, \"epr_cost\": {}, \
         \"oee_exchanges\": {}, \"oee_cache_hits\": {}, \"rounds_skipped\": {}, \
         \"saturated\": {}, \"identical_to_force_full\": true}}",
        warm_report.iterations,
        warm_result.metrics.total_epr_cost,
        w.oee_exchanges,
        w.oee_cache_hits,
        w.rounds_skipped,
        w.saturated
    );
    println!("}}");
    eprintln!(
        "placement scale gate OK: gain cache {cached_speedup:.2}x, parallel scan \
         {scan_speedup:.2}x, {n3}-qubit refinement {big_ms:.0} ms"
    );
}
