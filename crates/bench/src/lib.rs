//! Experiment harness regenerating the AutoComm paper's tables and figures.
//!
//! Each binary in `src/bin/` reproduces one artifact:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table2` | Table 2 — benchmark characteristics |
//! | `table3` | Table 3 — AutoComm vs sparse baseline |
//! | `fig15` | Fig. 15 — burst-communication distribution |
//! | `fig16` | Fig. 16 — comparison against GP-TP |
//! | `fig17a` | Fig. 17(a) — aggregation ablation |
//! | `fig17b` | Fig. 17(b) — assignment ablation |
//! | `fig17c` | Fig. 17(c) — scheduling ablation |
//! | `fig17d` | Fig. 17(d) — sensitivity to #qubit |
//! | `fig17e` | Fig. 17(e) — sensitivity to #node |
//!
//! Every binary accepts `--quick` to run scaled-down configurations (same
//! code paths, minutes → seconds). The library exposes the plumbing:
//! [`run_config`] compiles one Table-2 row with AutoComm and both
//! baselines, and [`paper`] holds the published numbers for side-by-side
//! reporting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod paper;

use autocomm::{AutoComm, CommMetrics, CompileResult, ScheduleSummary};
use dqc_baselines::{compile_ferrari, compile_gp_tp, BaselineResult};
use dqc_circuit::{unroll_circuit, Circuit, CircuitStats, Partition};
use dqc_hardware::HardwareSpec;
use dqc_partition::{oee_partition, InteractionGraph};
use dqc_workloads::{generate, node_ring_exchange, smoke_suite, BenchConfig};

/// Everything measured for one benchmark configuration.
#[derive(Clone, Debug)]
pub struct ExperimentRow {
    /// The configuration.
    pub config: BenchConfig,
    /// Unrolled-circuit statistics under the OEE mapping (Table 2 columns).
    pub stats: CircuitStats,
    /// AutoComm metrics (Table 3 columns).
    pub metrics: CommMetrics,
    /// AutoComm schedule.
    pub schedule: ScheduleSummary,
    /// Sparse Cat-per-CX baseline.
    pub baseline: BaselineResult,
    /// GP-TP baseline.
    pub gp_tp: BaselineResult,
}

impl ExperimentRow {
    /// Paper “improv. factor”: baseline comms / AutoComm comms.
    pub fn improv_factor(&self) -> f64 {
        ratio(self.baseline.total_comms as f64, self.metrics.total_comms as f64)
    }

    /// Paper “LAT-DEC factor”: baseline latency / AutoComm latency.
    pub fn lat_dec_factor(&self) -> f64 {
        ratio(self.baseline.makespan, self.schedule.makespan)
    }

    /// Fig. 16 communication ratio vs GP-TP.
    pub fn gp_improv_factor(&self) -> f64 {
        ratio(self.gp_tp.total_comms as f64, self.metrics.total_comms as f64)
    }

    /// Fig. 16 latency ratio vs GP-TP.
    pub fn gp_lat_dec_factor(&self) -> f64 {
        ratio(self.gp_tp.makespan, self.schedule.makespan)
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        1.0
    } else {
        num / den
    }
}

/// Builds the OEE qubit → node mapping for a circuit (the paper's “Static
/// Overall Extreme Exchange” front-end, applied to the unrolled circuit's
/// interaction graph).
///
/// # Panics
///
/// Panics on impossible node counts or unrollable circuits.
pub fn oee_mapping(circuit: &Circuit, num_nodes: usize) -> Partition {
    let unrolled = unroll_circuit(circuit).expect("benchmark circuits unroll");
    let graph = InteractionGraph::from_circuit(&unrolled);
    oee_partition(&graph, num_nodes).expect("valid node count")
}

/// Generates, maps, and compiles one configuration with AutoComm and both
/// baselines.
///
/// # Panics
///
/// Panics if compilation fails (benchmark circuits are always valid).
pub fn run_config(config: &BenchConfig) -> ExperimentRow {
    let circuit = generate(config);
    let partition = oee_mapping(&circuit, config.num_nodes);
    let hw = HardwareSpec::for_partition(&partition);
    let result: CompileResult =
        AutoComm::new().compile(&circuit, &partition).expect("pipeline succeeds");
    let stats = CircuitStats::of(&result.unrolled, Some(&partition));
    let baseline = compile_ferrari(&circuit, &partition, &hw).expect("baseline succeeds");
    let gp_tp = compile_gp_tp(&circuit, &partition, &hw).expect("gp-tp succeeds");
    ExperimentRow {
        config: *config,
        stats,
        metrics: result.metrics,
        schedule: result.schedule,
        baseline,
        gp_tp,
    }
}

/// The benchmark list, scaled down when `quick` is set (same workloads and
/// node ratios, smaller registers) so every figure can be smoke-tested.
pub fn configs(quick: bool) -> Vec<BenchConfig> {
    if !quick {
        return dqc_workloads::table2_configs();
    }
    use dqc_workloads::Workload::*;
    let mut rows = Vec::new();
    for w in [Mctr, Rca, Qft, Bv, Qaoa] {
        rows.push(BenchConfig::new(w, 20, 2));
        rows.push(BenchConfig::new(w, 30, 3));
    }
    rows.push(BenchConfig::new(Uccsd, 8, 4));
    rows
}

/// Returns true when the process arguments request quick mode.
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// The labelled workload set shared by the deterministic sweep binaries
/// (`buffer_sweep`, `topology_sweep`, `placement_sweep`): every smoke-suite
/// program, optionally followed by the `node_ring_exchange` interconnect
/// stressor (`RING-X-16-4`, scaled down under `--quick`) and the
/// 1024-qubit power-law `large_sparse_circuit` workload (`large`; 256
/// qubits under `--quick`) that exercises the sparse-graph placement path
/// at a register size the smoke suite never reaches.
///
/// Keeping the list in one place keeps the three recorded sweep baselines
/// in lockstep: a workload added here reaches every sweep at once. Only
/// `placement_sweep` opts into `large` — the buffer and topology sweeps
/// measure the scheduler, where a 1024-qubit register adds minutes of
/// runtime without touching the code under test.
pub fn sweep_inputs(
    nodes: usize,
    stressor: bool,
    quick: bool,
    large: bool,
) -> Vec<(String, Circuit)> {
    let mut inputs: Vec<(String, Circuit)> =
        smoke_suite().into_iter().map(|config| (config.label(), generate(&config))).collect();
    if stressor {
        inputs
            .push(("RING-X-16-4".into(), node_ring_exchange(16, nodes, if quick { 2 } else { 6 })));
    }
    if large {
        let qubits = if quick { 256 } else { 1024 };
        let gates = qubits * 8;
        inputs.push((
            format!("SPARSE-{qubits}-{gates}"),
            dqc_workloads::large_sparse_circuit(qubits, gates, 0x5EED),
        ));
    }
    inputs
}

/// Markdown-ish table printer: header + aligned rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqc_workloads::Workload;

    #[test]
    fn quick_configs_cover_all_workloads() {
        let rows = configs(true);
        for w in Workload::all() {
            assert!(rows.iter().any(|r| r.workload == w), "{w} missing");
        }
    }

    #[test]
    fn run_config_produces_consistent_row() {
        let row = run_config(&BenchConfig::new(Workload::Qft, 16, 2));
        assert_eq!(row.stats.num_remote_2q, row.metrics.total_rem_cx);
        assert_eq!(row.baseline.total_comms, row.stats.num_remote_2q);
        assert!(row.improv_factor() >= 1.0);
        assert!(row.lat_dec_factor() > 0.0);
    }

    #[test]
    fn ratio_guards_division_by_zero() {
        assert_eq!(super::ratio(5.0, 0.0), 1.0);
        assert_eq!(super::ratio(6.0, 2.0), 3.0);
    }
}
